"""The on-disk snapshot envelope: magic, version, length, CRC32.

A snapshot file is a fixed header followed by an opaque payload::

    offset  size  field
    0       8     magic  b"HBSNAP01"
    8       4     format version (little-endian u32)
    12      4     flags (reserved, 0)
    16      8     payload length in bytes (u64)
    24      4     CRC32 of the payload (u32)
    28      ...   payload

The header CRC covers the payload as *captured* — a bit flipped at
rest (``storage_bitflip``) lands after the checksum is computed, so
validation at read time catches it.  Writes are atomic: the envelope
lands in a same-directory ``.tmp`` file, is fsynced, then renamed over
the target, so a torn write (crash mid-stream) can leave a short temp
file behind but never a half-written snapshot at the target path.

Storage faults are injected through the
:class:`~repro.faults.FaultInjector` hooks ``on_storage_write`` /
``corrupt_bytes`` / ``on_storage_read`` — deterministically, like
every other fault kind, so a crash drill replays bit-for-bit.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Optional, Union

from repro.faults.plan import PartialRead, TornWrite

MAGIC = b"HBSNAP01"
FORMAT_VERSION = 1
#: snapshot file suffix; anything else in the directory is ignored
SUFFIX = ".hbsnap"

_HEADER = struct.Struct("<IIQI")  # version, flags, payload_len, payload_crc
HEADER_SIZE = len(MAGIC) + _HEADER.size


class SnapshotCorrupt(ValueError):
    """A snapshot file failed envelope validation (magic, version,
    length or CRC) — the restore ladder skips it and falls back."""

    def __init__(self, path, reason: str):
        super().__init__(f"corrupt snapshot {path}: {reason}")
        self.path = Path(path)
        self.reason = reason


def write_envelope(path: Union[str, Path], payload: bytes,
                   injector=None) -> Path:
    """Atomically write ``payload`` inside a checksummed envelope.

    An injected :class:`~repro.faults.TornWrite` persists exactly the
    drawn prefix of the envelope to the temp file (the observable
    crash artifact) and propagates — the target path is never touched
    by a failed write.  An injected ``storage_bitflip`` corrupts the
    payload *after* the CRC is computed: the write succeeds silently
    and the damage surfaces at read time.
    """
    path = Path(path)
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    stored = payload
    if injector is not None:
        stored, _flips = injector.corrupt_bytes(payload)
    blob = MAGIC + _HEADER.pack(FORMAT_VERSION, 0, len(stored), crc) + stored
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        if injector is not None:
            try:
                injector.on_storage_write(len(blob))
            except TornWrite as fault:
                cut = int(len(blob) * fault.fraction)
                fh.write(blob[:cut])
                fh.flush()
                os.fsync(fh.fileno())
                raise
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def read_envelope(path: Union[str, Path], injector=None) -> bytes:
    """Validate and return a snapshot file's payload.

    Raises :class:`SnapshotCorrupt` on any envelope violation.  An
    injected :class:`~repro.faults.PartialRead` truncates the buffer
    to the drawn prefix — validation then rejects it exactly as it
    would a genuinely short read.
    """
    path = Path(path)
    data = path.read_bytes()
    if injector is not None:
        try:
            injector.on_storage_read(len(data))
        except PartialRead as fault:
            data = data[: int(len(data) * fault.fraction)]
    if len(data) < HEADER_SIZE or data[: len(MAGIC)] != MAGIC:
        raise SnapshotCorrupt(path, "bad magic or truncated header")
    version, _flags, length, crc = _HEADER.unpack(
        data[len(MAGIC): HEADER_SIZE]
    )
    if version != FORMAT_VERSION:
        raise SnapshotCorrupt(path, f"unsupported format version {version}")
    payload = data[HEADER_SIZE:]
    if len(payload) != length:
        raise SnapshotCorrupt(
            path, f"payload truncated ({len(payload)} of {length} bytes)"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise SnapshotCorrupt(path, "payload CRC mismatch")
    return payload


def peek_version(path: Union[str, Path]) -> Optional[int]:
    """The format version of a snapshot file, or None if the header is
    unreadable (too short / wrong magic)."""
    try:
        data = Path(path).read_bytes()
    except OSError:
        return None
    if len(data) < HEADER_SIZE or data[: len(MAGIC)] != MAGIC:
        return None
    version = _HEADER.unpack(data[len(MAGIC): HEADER_SIZE])[0]
    return int(version)
