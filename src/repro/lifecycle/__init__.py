"""Crash-consistent index lifecycle: snapshot, restore, warm restart.

The paper builds an index once and measures steady-state search; a
production index *restarts* — on deploys, node failures and flaky
disks — and the restart path is where naive designs lose either data
(torn snapshot accepted as truth) or minutes (cold per-key rebuild,
then a full re-discovery of the (D, R) split).  This package closes
both holes:

* :mod:`repro.lifecycle.format` — the versioned, CRC-checksummed,
  atomically-written snapshot envelope;
* :mod:`repro.lifecycle.snapshot` — payload capture (both segments,
  GPU mirror metadata, the committed split), the
  :class:`SnapshotManager` restore ladder (newest intact snapshot →
  older snapshots → cold bulk-build), and :func:`warm_restart`;
* :mod:`repro.lifecycle.bulkload` — the sort-based bottom-up rebuild
  every rung uses, plus the per-key baseline it replaces.

Storage faults (torn write, at-rest bitflip, partial read) inject
through :mod:`repro.faults` at dedicated sites, so every crash drill
replays deterministically; ``benchmarks/bench_lifecycle.py`` gates
restore-vs-cold-build time and drill outcomes in CI.
"""

from repro.lifecycle.bulkload import bulk_load, cold_build_per_key
from repro.lifecycle.format import (
    FORMAT_VERSION,
    MAGIC,
    SUFFIX,
    SnapshotCorrupt,
    peek_version,
    read_envelope,
    write_envelope,
)
from repro.lifecycle.snapshot import (
    PAYLOAD_VERSION,
    LifecycleStats,
    RestoreError,
    RestoreResult,
    SnapshotContents,
    SnapshotManager,
    WarmRestart,
    capture_payload,
    mirror_image,
    parse_payload,
    warm_restart,
)

__all__ = [
    "MAGIC",
    "SUFFIX",
    "FORMAT_VERSION",
    "PAYLOAD_VERSION",
    "SnapshotCorrupt",
    "read_envelope",
    "write_envelope",
    "peek_version",
    "SnapshotContents",
    "capture_payload",
    "parse_payload",
    "mirror_image",
    "LifecycleStats",
    "SnapshotManager",
    "RestoreError",
    "RestoreResult",
    "WarmRestart",
    "warm_restart",
    "bulk_load",
    "cold_build_per_key",
]
