"""Versioned snapshots, the restore ladder, and warm restart.

A snapshot captures everything a node needs to resume serving:

* the **L-segment** — the sorted key/value contents (the source of
  truth for every tree kind);
* the **I-segment mirror metadata** — the CRC of the packed device
  image plus its layout parameters (``last_base`` / ``node_stride``
  for the regular hybrid, ``gpu_depth`` for the implicit), so a
  restore can prove the rebuilt mirror is bit-identical to the one
  that was serving;
* the **committed (D, R) split** — the adaptive controller's last
  applied operating point, so a warm restart serves at it from the
  first bucket instead of re-discovering from scratch.

Restore is a ladder: newest snapshot first, envelope-validated
(:func:`repro.lifecycle.format.read_envelope`) and mirror-verified;
any corrupt rung — torn write, bit rot, partial read, mirror mismatch
— is skipped and the next-newest tried; when every snapshot is
exhausted an optional cold source bulk-builds from scratch.  Rebuilds
go through :func:`repro.io.build_index`, the sort-based bottom-up
path — never per-key inserts.
"""

from __future__ import annotations

import io as _stdio
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.adaptive import AdaptiveConfig, AdaptiveController
from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.faults.plan import FaultError
from repro.io import _KINDS, _contents, _parse_meta, build_index
from repro.lifecycle.format import (
    SUFFIX,
    SnapshotCorrupt,
    read_envelope,
    write_envelope,
)
from repro.memsim.mainmem import MemorySystem
from repro.obs import NULL_OBS
from repro.platform.configs import MachineConfig

#: payload schema version (independent of the envelope format version)
PAYLOAD_VERSION = 1

Split = Tuple[int, float]


# ----------------------------------------------------------------------
# payload capture / parse


def mirror_image(tree) -> Optional[np.ndarray]:
    """The device I-segment image of a hybrid tree, packed from the
    CPU side only (no device access, no injector draws, no counters).

    None for CPU-only kinds — they have no mirror to verify.
    """
    if isinstance(tree, HBPlusTree):
        return tree.pack_i_segment()
    if isinstance(tree, ImplicitHBPlusTree):
        parts = [lvl.reshape(-1) for lvl in tree.cpu_tree.inner_levels]
        if parts:
            return np.concatenate(parts)
        return np.full(
            tree.cpu_tree.fanout, tree.spec.max_value, dtype=tree.spec.dtype
        )
    return None


def _mirror_meta(tree) -> Dict[str, int]:
    """Layout parameters the rebuilt mirror must reproduce exactly."""
    if isinstance(tree, HBPlusTree):
        return {
            "last_base": int(tree.last_base),
            "node_stride": int(tree.node_stride),
        }
    if isinstance(tree, ImplicitHBPlusTree):
        return {"gpu_depth": int(tree.gpu_depth)}
    return {}


@dataclass
class SnapshotContents:
    """A parsed snapshot payload, ready to rebuild from."""

    kind: str
    key_bits: int
    keys: np.ndarray
    values: np.ndarray
    epoch: int
    split: Optional[Split] = None
    fanout: Optional[int] = None
    mirror_crc: Optional[int] = None
    mirror_meta: Dict[str, int] = field(default_factory=dict)


def capture_payload(tree, split: Optional[Split] = None,
                    epoch: int = 0) -> bytes:
    """Serialize a tree (plus the committed split) to payload bytes.

    Read-only: packs the mirror image from the CPU tree, so capturing
    never consults the injector's GPU sites or mutates device
    counters — lookups before and after a snapshot are bit-identical.
    """
    for cls, kind in _KINDS.items():
        if type(tree) is cls:
            break
    else:
        raise TypeError(f"cannot snapshot a {type(tree).__name__}")
    keys, values = _contents(tree)
    meta = {
        "payload_version": PAYLOAD_VERSION,
        "kind": kind,
        "key_bits": tree.spec.bits,
        "epoch": int(epoch),
    }
    if kind == "implicit-cpu":
        meta["fanout"] = tree.fanout
    for name, value in _mirror_meta(tree).items():
        meta[f"mirror_{name}"] = value
    arrays = {
        "keys": keys,
        "values": values,
        "meta": np.asarray([f"{k}={v}" for k, v in meta.items()]),
    }
    if split is not None:
        arrays["split"] = np.asarray(
            [float(split[0]), float(split[1])], dtype=np.float64
        )
    image = mirror_image(tree)
    if image is not None:
        arrays["mirror_crc"] = np.asarray(
            [zlib.crc32(image.tobytes()) & 0xFFFFFFFF], dtype=np.uint64
        )
    buf = _stdio.BytesIO()
    np.savez(buf, **arrays)
    return buf.getvalue()


def parse_payload(payload: bytes) -> SnapshotContents:
    """Decode payload bytes (already envelope-validated)."""
    with np.load(_stdio.BytesIO(payload), allow_pickle=False) as archive:
        keys = archive["keys"]
        values = archive["values"]
        meta = _parse_meta(archive["meta"])
        split = None
        if "split" in archive.files:
            raw = archive["split"]
            split = (int(raw[0]), float(raw[1]))
        mirror_crc = None
        if "mirror_crc" in archive.files:
            mirror_crc = int(archive["mirror_crc"][0])
    version = int(meta.get("payload_version", -1))
    if version != PAYLOAD_VERSION:
        raise SnapshotCorrupt(
            "<payload>", f"unsupported payload version {version}"
        )
    mirror_meta = {
        k[len("mirror_"):]: int(v)
        for k, v in meta.items()
        if k.startswith("mirror_") and k != "mirror_crc"
    }
    return SnapshotContents(
        kind=meta["kind"],
        key_bits=int(meta["key_bits"]),
        keys=keys,
        values=values,
        epoch=int(meta.get("epoch", 0)),
        split=split,
        fanout=int(meta["fanout"]) if "fanout" in meta else None,
        mirror_crc=mirror_crc,
        mirror_meta=mirror_meta,
    )


# ----------------------------------------------------------------------
# the manager


@dataclass
class LifecycleStats:
    """Snapshot/restore activity, mirrored to ``live.lifecycle.*``."""

    snapshots: int = 0
    snapshot_failures: int = 0
    snapshot_bytes: int = 0
    pruned: int = 0
    restores: int = 0
    restore_fallbacks: int = 0
    corrupt_snapshots: int = 0
    cold_builds: int = 0
    mirror_drift: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "snapshots": self.snapshots,
            "snapshot_failures": self.snapshot_failures,
            "snapshot_bytes": self.snapshot_bytes,
            "pruned": self.pruned,
            "restores": self.restores,
            "restore_fallbacks": self.restore_fallbacks,
            "corrupt_snapshots": self.corrupt_snapshots,
            "cold_builds": self.cold_builds,
            "mirror_drift": self.mirror_drift,
        }


class RestoreError(RuntimeError):
    """No intact snapshot survived the ladder and no cold source was
    available."""


@dataclass
class RestoreResult:
    """What a restore produced and where it came from."""

    tree: object
    split: Optional[Split]
    source: str  # "snapshot" or "cold"
    path: Optional[Path] = None
    epoch: int = 0
    #: snapshots rejected (corrupt / unreadable) before this one
    skipped: int = 0
    #: True when the rebuilt GPU mirror reproduced the capture-time
    #: device image bit-for-bit (see ``SnapshotManager._rebuild``)
    mirror_verified: bool = False


class SnapshotManager:
    """Owns a directory of versioned snapshots and the restore ladder.

    ``save`` is atomic and failure-contained: an injected storage
    fault costs the snapshot, never the live tree or any existing
    snapshot.  ``restore_latest`` walks snapshots newest-first and
    degrades — corrupt rungs are counted, skipped, and reported
    through obs; ``cold_source`` is the last rung.
    """

    def __init__(self, directory: Union[str, Path], injector=None,
                 obs=None, keep: int = 8):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.injector = injector
        self.obs = obs if obs is not None else NULL_OBS
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.keep = keep
        self.stats = LifecycleStats()

    # -- directory ------------------------------------------------------

    def snapshots(self) -> List[Path]:
        """Snapshot files, oldest first (sequence order)."""
        return sorted(self.directory.glob(f"*{SUFFIX}"))

    def _next_path(self) -> Path:
        seq = 0
        for path in self.snapshots():
            stem = path.name[: -len(SUFFIX)]
            try:
                seq = max(seq, int(stem.rsplit("-", 1)[-1]))
            except ValueError:
                continue
        return self.directory / f"snap-{seq + 1:08d}{SUFFIX}"

    def _prune(self) -> None:
        extra = self.snapshots()[: -self.keep]
        for path in extra:
            path.unlink()
            self.stats.pruned += 1

    # -- save -----------------------------------------------------------

    def save(self, tree, split: Optional[Split] = None,
             epoch: Optional[int] = None) -> Optional[Path]:
        """Snapshot ``tree`` (and the committed split) atomically.

        Returns the written path, or None when an injected storage
        fault aborted the write — in which case the target directory's
        set of valid snapshots is exactly what it was before.
        """
        obs = self.obs
        path = self._next_path()
        if epoch is None:
            epoch = int(path.name[len("snap-"): -len(SUFFIX)])
        kind = _KINDS.get(type(tree), type(tree).__name__)
        with obs.span("lifecycle.snapshot", kind=kind, path=path.name):
            payload = capture_payload(tree, split=split, epoch=epoch)
            try:
                write_envelope(path, payload, injector=self.injector)
            except FaultError as exc:
                self.stats.snapshot_failures += 1
                obs.count("live.lifecycle.snapshot_failures")
                obs.emit("snapshot_failed", path=str(path),
                         fault=exc.kind.value)
                return None
        self.stats.snapshots += 1
        self.stats.snapshot_bytes += len(payload)
        obs.count("live.lifecycle.snapshots")
        obs.emit("snapshot", path=str(path), epoch=epoch,
                 bytes=len(payload), split=split)
        self._prune()
        return path

    def save_engine(self, engine, split: Optional[Split] = None,
                    epoch: Optional[int] = None) -> Optional[Path]:
        """Snapshot a live engine's tree under load.

        Quiesces the engine (waits out in-flight batches, parks new
        ones) for exactly the duration of the capture+write; when
        ``split`` is omitted the engine's balancer, if any, supplies
        its current committed split.
        """
        if split is None and getattr(engine, "balancer", None) is not None:
            split = engine.balancer.split()
        with engine.quiesce():
            return self.save(engine.tree, split=split, epoch=epoch)

    # -- restore --------------------------------------------------------

    def restore_latest(
        self,
        machine: Optional[MachineConfig] = None,
        mem: Optional[MemorySystem] = None,
        fill: float = 1.0,
        cold_source: Optional[Callable[[], object]] = None,
    ) -> RestoreResult:
        """Rebuild from the newest intact snapshot, degrading as needed.

        The ladder: newest snapshot → next-newest → ... →
        ``cold_source()`` → :class:`RestoreError`.  A rung is rejected
        for a bad envelope (torn / truncated / bit-rotted / partially
        read); the rebuilt GPU mirror is then checked against the
        capture-time image CRC, with the outcome reported as
        ``RestoreResult.mirror_verified`` (see :meth:`_rebuild`).
        """
        obs = self.obs
        skipped = 0
        with obs.span("lifecycle.restore", directory=str(self.directory)):
            for path in reversed(self.snapshots()):
                try:
                    payload = read_envelope(path, injector=self.injector)
                    contents = parse_payload(payload)
                    tree, verified = self._rebuild(
                        contents, machine, mem, fill, path
                    )
                except (SnapshotCorrupt, FaultError) as exc:
                    skipped += 1
                    self.stats.corrupt_snapshots += 1
                    obs.count("live.lifecycle.corrupt_snapshots")
                    obs.emit("snapshot_rejected", path=str(path),
                             reason=str(exc))
                    continue
                self.stats.restores += 1
                if skipped:
                    self.stats.restore_fallbacks += 1
                    obs.count("live.lifecycle.restore_fallbacks")
                obs.count("live.lifecycle.restores")
                obs.emit("restore", path=str(path), epoch=contents.epoch,
                         skipped=skipped, split=contents.split)
                return RestoreResult(
                    tree=tree, split=contents.split, source="snapshot",
                    path=path, epoch=contents.epoch, skipped=skipped,
                    mirror_verified=verified,
                )
            if cold_source is not None:
                with obs.span("lifecycle.cold_build"):
                    tree = cold_source()
                self.stats.cold_builds += 1
                obs.count("live.lifecycle.cold_builds")
                obs.emit("restore", path=None, epoch=0, skipped=skipped,
                         split=None)
                return RestoreResult(
                    tree=tree, split=None, source="cold", skipped=skipped,
                )
        raise RestoreError(
            f"no intact snapshot in {self.directory} "
            f"({skipped} rejected) and no cold source"
        )

    def _rebuild(self, contents: SnapshotContents,
                 machine, mem, fill, path):
        """Bulk-build from parsed contents and verify the mirror.

        Returns ``(tree, mirror_verified)``.  ``mirror_verified`` is
        True when the rebuilt I-segment reproduces the capture-time
        device image bit-for-bit (layout meta and CRC both match) —
        guaranteed for a pristine bulk-built source restored at the
        same fill.  A mismatch is *drift*, not corruption: the
        envelope CRC already vouched for the contents, and an
        insert-grown source tree (or a different ``fill``)
        legitimately canonicalises to another node arrangement with
        identical lookup answers.  Drift is counted and emitted so an
        operator can tell a byte-exact warm image from a logically
        equivalent rebuild.
        """
        tree = build_index(
            contents.kind, contents.keys, contents.values,
            key_bits=contents.key_bits, fanout=contents.fanout,
            mem=mem, machine=machine, fill=fill,
        )
        verified = False
        if contents.mirror_crc is not None:
            image = mirror_image(tree)
            crc = (
                zlib.crc32(image.tobytes()) & 0xFFFFFFFF
                if image is not None else None
            )
            rebuilt_meta = _mirror_meta(tree)
            verified = (
                crc == contents.mirror_crc
                and rebuilt_meta == contents.mirror_meta
            )
            if not verified:
                self.stats.mirror_drift += 1
                self.obs.count("live.lifecycle.mirror_drift")
                self.obs.emit(
                    "mirror_layout_drift", path=str(path),
                    saved=contents.mirror_meta, rebuilt=rebuilt_meta,
                )
        return tree, verified


# ----------------------------------------------------------------------
# warm restart


@dataclass
class WarmRestart:
    """A restored tree plus its pinned adaptive controller."""

    tree: object
    controller: Optional[AdaptiveController]
    restore: RestoreResult


def warm_restart(
    manager: SnapshotManager,
    machine: Optional[MachineConfig] = None,
    mem: Optional[MemorySystem] = None,
    fill: float = 1.0,
    cold_source: Optional[Callable[[], object]] = None,
    config: Optional[AdaptiveConfig] = None,
    bucket_size: Optional[int] = None,
    obs=None,
) -> WarmRestart:
    """Restore + resume serving at the committed (D, R) split.

    When the restored snapshot carried a committed split and the tree
    is hybrid, the returned controller starts pinned at that split
    with *no* init-time reprofiling or discovery — the first live
    window re-profiles on real traffic before any move, exactly like
    a controller that had been running all along.  Cold restores (no
    snapshot survived) get ``controller=None``: with no committed
    split to trust, the caller should discover from scratch.
    """
    result = manager.restore_latest(
        machine=machine, mem=mem, fill=fill, cold_source=cold_source
    )
    controller = None
    if result.split is not None and isinstance(
        result.tree, (HBPlusTree, ImplicitHBPlusTree)
    ):
        controller = AdaptiveController.warm_start(
            result.tree, result.split, config=config,
            bucket_size=bucket_size, obs=obs,
        )
    return WarmRestart(tree=result.tree, controller=controller,
                       restore=result)
