"""Bulk rebuild paths: sort-based bottom-up vs per-key inserts.

Every restore and rebuild in :mod:`repro.lifecycle` goes through
:func:`bulk_load` — sort once, then build each level bottom-up in
bulk, the way the paper's batch-rebuild pipeline (and FliX-style GPU
index reconstruction) assumes.  :func:`cold_build_per_key` is the
anti-pattern kept as a measured baseline: an empty tree grown one
``insert`` at a time, which is what a naive cold start would do and
what ``benchmarks/bench_lifecycle.py`` shows losing by ~an order of
magnitude.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.hbtree import HBPlusTree
from repro.io import build_index
from repro.keys import key_spec
from repro.memsim.mainmem import MemorySystem
from repro.platform.configs import MachineConfig


def bulk_load(
    kind: str,
    keys,
    values,
    *,
    key_bits: int = 64,
    fanout: Optional[int] = None,
    mem: Optional[MemorySystem] = None,
    machine: Optional[MachineConfig] = None,
    fill: float = 1.0,
):
    """Sort-based bottom-up build of any supported tree kind.

    Unlike :func:`repro.io.build_index` (which trusts archive order),
    this accepts contents in any order: it sorts by key once and
    bulk-builds, so a rebuild from an unsorted delta log costs one
    ``argsort`` plus the linear bottom-up pass — never N inserts.
    """
    spec = key_spec(key_bits)
    keys = spec.coerce(keys)
    values = np.asarray(values, dtype=spec.dtype)
    if len(keys) != len(values):
        raise ValueError("keys and values must have equal length")
    if len(keys) > 1 and not np.all(keys[:-1] <= keys[1:]):
        order = np.argsort(keys, kind="stable")
        keys, values = keys[order], values[order]
    return build_index(
        kind, keys, values, key_bits=key_bits, fanout=fanout,
        mem=mem, machine=machine, fill=fill,
    )


def cold_build_per_key(
    keys,
    values,
    machine: MachineConfig,
    key_bits: int = 64,
    mem: Optional[MemorySystem] = None,
    fill: float = 1.0,
) -> HBPlusTree:
    """The naive cold start: per-key inserts into an empty hybrid
    tree, then one full mirror upload.  Benchmark baseline only."""
    spec = key_spec(key_bits)
    keys = spec.coerce(keys)
    values = np.asarray(values, dtype=spec.dtype)
    tree = HBPlusTree((), (), machine=machine, key_bits=key_bits,
                      mem=mem, fill=fill)
    for k, v in zip(keys.tolist(), values.tolist()):
        tree.cpu_tree.insert(int(k), int(v))
    tree.mirror_i_segment()
    return tree
