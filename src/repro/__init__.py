"""HB+-tree: a hybrid CPU-GPU B+-tree for in-memory indexing.

A faithful, fully simulated reproduction of

    A. Shahvarani, H.-A. Jacobsen.  "A Hybrid B+-tree as Solution for
    In-Memory Indexing on CPU-GPU Heterogeneous Computing Platforms",
    SIGMOD 2016.

Quick start::

    import numpy as np
    from repro import ImplicitHBPlusTree, machine_m1
    from repro.workloads import generate_dataset

    keys, values = generate_dataset(1 << 16)
    tree = ImplicitHBPlusTree(keys, values, machine=machine_m1())
    assert tree.lookup(int(keys[0])) == int(values[0])

    costs = tree.bucket_costs()          # the paper's T1..T4
    print(costs.throughput_qps("double_buffered", 16384) / 1e6, "MQPS")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
per-figure reproduction results.
"""

from repro.core.batching import (
    BatchingEngine,
    BatchStats,
    BucketPlan,
    SortedDelta,
    measure_sorted_delta,
    plan_bucket,
)
from repro.core.framework import (
    CssTreeAdapter,
    HybridFramework,
    HybridPlan,
    ImplicitHBAdapter,
    LeafStoredTreeAdapter,
    RegularHBAdapter,
)
from repro.core.gpu_update import GpuAssistedUpdater
from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.load_balance import LoadBalancer
from repro.core.mixed import ConcurrentQueryEngine, OptimisticMixedEngine
from repro.core.overlap import OverlappedEngine, OverlapStats
from repro.core.pipeline import BucketStrategy, PipelineSimulator
from repro.core.resilience import (
    GpuUnavailable,
    ResilienceConfig,
    ResilienceStats,
    ResilientHBPlusTree,
)
from repro.core.update import AsyncBatchUpdater, SyncUpdater
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.cpu.gapped import GappedCpuBPlusTree, GapStats
from repro.cpu.css_tree import CssTree
from repro.cpu.fast_tree import FastTree
from repro.cpu.node_search import NodeSearchAlgorithm
from repro.io import build_index, load_index, save_index
from repro.lifecycle import (
    RestoreError,
    SnapshotCorrupt,
    SnapshotManager,
    bulk_load,
    warm_restart,
)
from repro.service import (
    AdmissionPolicy,
    HashRouter,
    IndexService,
    QuotaConfig,
    QuotaExceeded,
    RangeRouter,
    ServiceConfig,
    Shard,
    ShardOverloaded,
    TenantQuotas,
    TokenBucket,
)
from repro.validate import ValidationError, validate_index
from repro.keys import KEY32, KEY64, KeySpec, key_spec
from repro.memsim.mainmem import MemorySystem, PageConfig
from repro.platform.configs import (
    MachineConfig,
    machine_m1,
    machine_m2,
    machine_modern,
)
from repro.platform.costmodel import BucketCosts, CpuCostModel, CpuQueryProfile
from repro.workloads.generators import generate_dataset

__version__ = "1.0.0"

__all__ = [
    "HBPlusTree",
    "ImplicitHBPlusTree",
    "BatchingEngine",
    "BatchStats",
    "BucketPlan",
    "SortedDelta",
    "measure_sorted_delta",
    "plan_bucket",
    "OverlappedEngine",
    "OverlapStats",
    "ResilientHBPlusTree",
    "ResilienceConfig",
    "ResilienceStats",
    "GpuUnavailable",
    "FaultPlan",
    "FaultInjector",
    "FaultKind",
    "LoadBalancer",
    "HybridFramework",
    "HybridPlan",
    "LeafStoredTreeAdapter",
    "ImplicitHBAdapter",
    "RegularHBAdapter",
    "CssTreeAdapter",
    "CssTree",
    "GpuAssistedUpdater",
    "save_index",
    "load_index",
    "build_index",
    "SnapshotManager",
    "SnapshotCorrupt",
    "RestoreError",
    "bulk_load",
    "warm_restart",
    "BucketStrategy",
    "PipelineSimulator",
    "AsyncBatchUpdater",
    "SyncUpdater",
    "ConcurrentQueryEngine",
    "OptimisticMixedEngine",
    "GappedCpuBPlusTree",
    "GapStats",
    "ImplicitCpuBPlusTree",
    "RegularCpuBPlusTree",
    "FastTree",
    "NodeSearchAlgorithm",
    "KeySpec",
    "KEY64",
    "KEY32",
    "key_spec",
    "MemorySystem",
    "PageConfig",
    "MachineConfig",
    "machine_m1",
    "machine_m2",
    "machine_modern",
    "AdmissionPolicy",
    "HashRouter",
    "IndexService",
    "QuotaConfig",
    "QuotaExceeded",
    "RangeRouter",
    "ServiceConfig",
    "Shard",
    "ShardOverloaded",
    "TenantQuotas",
    "TokenBucket",
    "validate_index",
    "ValidationError",
    "BucketCosts",
    "CpuCostModel",
    "CpuQueryProfile",
    "generate_dataset",
    "__version__",
]
