"""The GPU device facade: memory + launch interface + occupancy."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.gpusim.memory import DeviceMemory
from repro.gpusim.simt import GpuKernelStats, KernelLaunch
from repro.obs import NULL_OBS
from repro.platform.configs import GpuSpec


class GpuDevice:
    """One simulated discrete GPU built from a :class:`GpuSpec`.

    An optional :class:`repro.faults.FaultInjector` screens every
    kernel launch: a launch fault or hang raises before (launch fault)
    or instead of (hang: the watchdog kills the kernel, its work is
    lost) delivering results.
    """

    def __init__(self, spec: GpuSpec, injector: Optional[object] = None):
        self.spec = spec
        self.memory = DeviceMemory(
            spec.device_mem_bytes, transaction_sizes=spec.transaction_sizes
        )
        #: kernel launches performed (each pays ``kernel_init_ns``)
        self.kernel_launches = 0
        self.stats = GpuKernelStats()
        #: optional :class:`repro.faults.FaultInjector`
        self.injector = injector
        #: :class:`repro.obs.Observability`; the shared disabled bundle
        #: unless threaded in via ``HBPlusTree.attach_obs``
        self.obs = NULL_OBS

    def begin_launch(self) -> None:
        """Screen + count one kernel launch (vectorised kernels call
        this directly; the SIMT path goes through :meth:`launch`).

        Raises the injector's :class:`~repro.faults.KernelLaunchFault`
        or :class:`~repro.faults.KernelHang` when a fault fires; the
        launch counter still advances — the launch was attempted.
        """
        self.kernel_launches += 1
        self.obs.count("live.gpu.kernel_launches")
        if self.injector is not None:
            self.injector.on_kernel_launch()

    def launch(
        self,
        kernel_fn: Callable,
        grid_dim: int,
        block_dim: Tuple[int, int],
        *args,
        shared_decls: Optional[Dict[str, tuple]] = None,
    ) -> GpuKernelStats:
        """Run a kernel on the SIMT interpreter and accumulate stats."""
        launch = KernelLaunch(
            self.memory,
            kernel_fn,
            grid_dim,
            block_dim,
            warp_size=self.spec.warp_size,
            shared_decls=shared_decls,
            shared_banks=self.spec.shared_mem_banks,
            fault_hook=self.begin_launch,
        )
        with self.obs.span(
            "gpu.kernel", category="gpu",
            kernel=getattr(kernel_fn, "__name__", "kernel"),
            grid_dim=grid_dim,
        ):
            stats = launch.run(*args)
        self.stats.merge(stats)
        return stats

    def concurrent_queries(self, threads_per_query: int) -> int:
        """Paper section 5.3: ``GPU_Threads / T`` concurrent queries."""
        if threads_per_query <= 0:
            raise ValueError("threads_per_query must be positive")
        return self.spec.max_resident_threads // threads_per_query

    def reset_counters(self) -> None:
        self.memory.counters.reset()
        self.kernel_launches = 0
        self.stats = GpuKernelStats()
