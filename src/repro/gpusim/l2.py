"""Analytic GPU L2 cache model (ablation support).

The GTX 780 carries a 1.5 MB L2 between the SMs and device memory; the
top levels of a mirrored I-segment are small enough to live there, so
their transactions cost L2 bandwidth instead of DRAM bandwidth.  The
base cost model conservatively ignores this (every transaction pays
DRAM); this module quantifies what the simplification leaves on the
table, for the L2 ablation benchmark.

Analytic because it needs no per-access state: with uniform random
queries, level ``i`` of the breadth-first I-segment is accessed once
per query, so residency follows from sizes alone — top-down greedy
occupancy is both optimal and what LRU converges to for this pattern.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def level_hit_rates(level_bytes: Sequence[int], l2_bytes: int
                    ) -> List[float]:
    """Fraction of each level's accesses served by a ``l2_bytes`` L2.

    Levels are root first; earlier (smaller, hotter) levels occupy the
    cache before later ones.
    """
    if l2_bytes < 0:
        raise ValueError("L2 capacity cannot be negative")
    remaining = float(l2_bytes)
    rates: List[float] = []
    for size in level_bytes:
        if size <= 0:
            rates.append(1.0)
            continue
        resident = min(float(size), remaining)
        rates.append(resident / size)
        remaining -= resident
    return rates


def effective_dram_transactions(
    transactions_per_level: Sequence[float],
    level_bytes: Sequence[int],
    l2_bytes: int,
) -> Tuple[float, float]:
    """(DRAM transactions, L2-served transactions) per query.

    ``transactions_per_level`` are the per-query transaction counts the
    coalescer measured for each level.
    """
    if len(transactions_per_level) != len(level_bytes):
        raise ValueError("per-level inputs must align")
    rates = level_hit_rates(level_bytes, l2_bytes)
    dram = sum(t * (1.0 - r) for t, r in zip(transactions_per_level, rates))
    served = sum(t * r for t, r in zip(transactions_per_level, rates))
    return dram, served


def l2_speedup_estimate(
    transactions_per_level: Sequence[float],
    level_bytes: Sequence[int],
    l2_bytes: int,
    l2_bandwidth_ratio: float = 4.0,
) -> float:
    """Kernel-time speedup from modeling the L2 (>= 1.0).

    ``l2_bandwidth_ratio`` is L2 bandwidth over effective DRAM
    bandwidth; transactions served from L2 cost ``1/ratio`` as much.
    """
    if l2_bandwidth_ratio <= 0:
        raise ValueError("bandwidth ratio must be positive")
    total = sum(transactions_per_level)
    if total <= 0:
        return 1.0
    dram, served = effective_dram_transactions(
        transactions_per_level, level_bytes, l2_bytes
    )
    with_l2 = dram + served / l2_bandwidth_ratio
    return total / with_l2 if with_l2 > 0 else float("inf")
