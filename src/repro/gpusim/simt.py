"""A literal SIMT interpreter.

Kernels are Python *generator functions*: they receive a
:class:`ThreadCtx` plus the launch arguments, and ``yield`` one
instruction tuple per simulated operation:

===============================  =============================================
``("gld", buffer, index)``       global load of element ``index``; the loaded
                                 value is sent back into the generator
``("gst", buffer, index, v)``    global store
``("shst", name, index, v)``     shared-memory store
``("shld", name, index)``        shared-memory load (value sent back)
``("sync",)``                    ``__syncthreads()`` block-wide barrier
===============================  =============================================

The interpreter executes threads warp by warp in lock step.  Per round
it gathers the pending instruction of every runnable thread of a warp:

* global accesses to one buffer coalesce into 32/64/128-byte
  transactions through :meth:`DeviceMemory.warp_access`;
* mixed instruction kinds (or different target buffers) within a warp
  are *divergence* — each group is serialized and counted;
* shared accesses are checked for bank conflicts
  (``(byte_address / 4) % banks``);
* a barrier parks the thread until every live thread of the block has
  reached one.

This is slow and is meant for correctness: the benchmarks use the
vectorised twin of each kernel, which the tests verify produces
identical results and identical transaction counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.gpusim.memory import DeviceBuffer, DeviceMemory


@dataclass
class GpuKernelStats:
    """Execution statistics of one kernel launch."""

    blocks: int = 0
    threads: int = 0
    #: warp-instruction slots issued (proxy for dynamic instruction count)
    warp_instructions: int = 0
    global_transactions: int = 0
    shared_accesses: int = 0
    bank_conflicts: int = 0
    barriers: int = 0
    #: rounds in which a warp's threads did not execute one common op
    divergent_rounds: int = 0

    def merge(self, other: "GpuKernelStats") -> None:
        self.blocks += other.blocks
        self.threads += other.threads
        self.warp_instructions += other.warp_instructions
        self.global_transactions += other.global_transactions
        self.shared_accesses += other.shared_accesses
        self.bank_conflicts += other.bank_conflicts
        self.barriers += other.barriers
        self.divergent_rounds += other.divergent_rounds


class SharedMemory:
    """Per-block ``__shared__`` storage with bank-conflict accounting."""

    def __init__(self, banks: int = 32):
        self.banks = banks
        self._arrays: Dict[str, np.ndarray] = {}

    def declare(self, name: str, shape, dtype=np.int64) -> None:
        self._arrays[name] = np.zeros(shape, dtype=dtype)

    def load(self, name: str, index: int):
        return self._arrays[name].reshape(-1)[index]

    def store(self, name: str, index: int, value) -> None:
        self._arrays[name].reshape(-1)[index] = value

    def bank_of(self, name: str, index: int) -> int:
        itemsize = self._arrays[name].dtype.itemsize
        return (index * itemsize // 4) % self.banks

    def conflict_degree(self, accesses: Iterable[Tuple[str, int]]) -> int:
        """Extra cycles caused by bank conflicts for one warp round.

        Accesses to the same word broadcast; distinct words in the same
        bank serialize.  Returns ``max(words per bank) - 1``.
        """
        per_bank: Dict[int, set] = {}
        for name, index in accesses:
            bank = self.bank_of(name, index)
            per_bank.setdefault(bank, set()).add((name, index))
        if not per_bank:
            return 0
        return max(len(words) for words in per_bank.values()) - 1


@dataclass
class ThreadCtx:
    """What a kernel thread knows about itself (CUDA's built-ins)."""

    thread_idx: Tuple[int, int]
    block_idx: int
    block_dim: Tuple[int, int]
    grid_dim: int
    shared: SharedMemory

    @property
    def linear_tid(self) -> int:
        return self.thread_idx[1] * self.block_dim[0] + self.thread_idx[0]

    @property
    def global_query_index(self) -> int:
        """Convention used by the search kernels: one query per team
        (= one ``threadIdx.y`` slice of the block)."""
        return self.block_idx * self.block_dim[1] + self.thread_idx[1]


class _Thread:
    __slots__ = ("gen", "ctx", "pending", "alive", "at_sync", "send_value")

    def __init__(self, gen, ctx: ThreadCtx):
        self.gen = gen
        self.ctx = ctx
        self.pending = None
        self.alive = True
        self.at_sync = False
        self.send_value = None

    def advance(self, value=None) -> None:
        """Feed ``value`` into the generator and fetch the next op."""
        try:
            self.pending = self.gen.send(value)
        except StopIteration:
            self.alive = False
            self.pending = None


class KernelLaunch:
    """Configures and executes one kernel over a grid of blocks."""

    def __init__(
        self,
        device_memory: DeviceMemory,
        kernel_fn: Callable,
        grid_dim: int,
        block_dim: Tuple[int, int],
        warp_size: int = 32,
        shared_decls: Optional[Dict[str, tuple]] = None,
        shared_banks: int = 32,
        fault_hook: Optional[Callable[[], None]] = None,
    ):
        if grid_dim <= 0 or block_dim[0] <= 0 or block_dim[1] <= 0:
            raise ValueError("grid and block dimensions must be positive")
        self.memory = device_memory
        self.kernel_fn = kernel_fn
        self.grid_dim = grid_dim
        self.block_dim = block_dim
        self.warp_size = warp_size
        self.shared_decls = shared_decls or {}
        self.shared_banks = shared_banks
        #: invoked once before execution; may raise an injected
        #: launch fault / hang (see :mod:`repro.faults`)
        self.fault_hook = fault_hook

    def run(self, *args) -> GpuKernelStats:
        """Execute the kernel; returns the accumulated statistics."""
        if self.fault_hook is not None:
            self.fault_hook()
        stats = GpuKernelStats()
        for block in range(self.grid_dim):
            block_stats = self._run_block(block, args)
            stats.merge(block_stats)
        stats.blocks = self.grid_dim
        return stats

    # ------------------------------------------------------------------

    def _run_block(self, block: int, args) -> GpuKernelStats:
        stats = GpuKernelStats()
        shared = SharedMemory(self.shared_banks)
        for name, (shape, dtype) in self.shared_decls.items():
            shared.declare(name, shape, dtype)
        threads: List[_Thread] = []
        bx, by = self.block_dim
        for y in range(by):
            for x in range(bx):
                ctx = ThreadCtx(
                    thread_idx=(x, y),
                    block_idx=block,
                    block_dim=self.block_dim,
                    grid_dim=self.grid_dim,
                    shared=shared,
                )
                gen = self.kernel_fn(ctx, *args)
                threads.append(_Thread(gen, ctx))
        stats.threads += len(threads)
        for t in threads:
            t.advance(None)

        warps = [
            threads[i: i + self.warp_size]
            for i in range(0, len(threads), self.warp_size)
        ]
        while True:
            alive = [t for t in threads if t.alive]
            if not alive:
                break
            runnable = [t for t in alive if not t.at_sync]
            if not runnable:
                # barrier release: every live thread reached __syncthreads
                stats.barriers += 1
                for t in alive:
                    t.at_sync = False
                    t.advance(None)
                continue
            progressed = False
            for warp in warps:
                ready = [t for t in warp if t.alive and not t.at_sync]
                if not ready:
                    continue
                progressed = True
                self._step_warp(ready, warp, stats)
            if not progressed:
                raise RuntimeError(
                    "SIMT deadlock: threads blocked but no barrier release"
                )
        return stats

    def _step_warp(self, ready: List[_Thread], warp: List[_Thread],
                   stats: GpuKernelStats) -> None:
        """Issue one instruction round for a warp."""
        groups: Dict[tuple, List[_Thread]] = {}
        for t in ready:
            op = t.pending
            kind = op[0]
            if kind == "gld" or kind == "gst":
                key = (kind, id(op[1]))
            else:
                key = (kind,)
            groups.setdefault(key, []).append(t)
        alive_in_warp = [t for t in warp if t.alive]
        if len(groups) > 1 or len(ready) != len(alive_in_warp):
            stats.divergent_rounds += 1
        for key, members in groups.items():
            kind = key[0]
            stats.warp_instructions += 1
            if kind == "sync":
                for t in members:
                    t.at_sync = True
                continue
            if kind == "gld":
                buf: DeviceBuffer = members[0].pending[1]
                itemsize = buf.array.dtype.itemsize
                ranges = [
                    (t.pending[2] * itemsize, itemsize) for t in members
                ]
                stats.global_transactions += self.memory.warp_access(ranges)
                flat = buf.array.reshape(-1)
                values = [flat[t.pending[2]] for t in members]
                for t, v in zip(members, values):
                    t.advance(v)
                continue
            if kind == "gst":
                buf = members[0].pending[1]
                itemsize = buf.array.dtype.itemsize
                ranges = [
                    (t.pending[2] * itemsize, itemsize) for t in members
                ]
                stats.global_transactions += self.memory.warp_access(ranges)
                flat = buf.array.reshape(-1)
                for t in members:
                    flat[t.pending[2]] = t.pending[3]
                for t in members:
                    t.advance(None)
                continue
            if kind in ("shld", "shst"):
                shared = members[0].ctx.shared
                accesses = [(t.pending[1], t.pending[2]) for t in members]
                stats.shared_accesses += len(members)
                stats.bank_conflicts += shared.conflict_degree(accesses)
                if kind == "shst":
                    for t in members:
                        shared.store(t.pending[1], t.pending[2], t.pending[3])
                    for t in members:
                        t.advance(None)
                else:
                    values = [
                        shared.load(t.pending[1], t.pending[2]) for t in members
                    ]
                    for t, v in zip(members, values):
                        t.advance(v)
                continue
            raise ValueError(f"unknown kernel instruction kind: {kind!r}")
