"""GPU device memory with coalesced-transaction accounting.

"Unlike main memory, the GPU memory architecture does not have a fixed
unit of transfer.  As a warp executes an instruction accessing GPU
memory, the GPU translates the access into one or more aligned data
transfers of size 32, 64 or 128 bytes" (paper section 5.2).  The
coalescer here implements exactly that: the byte ranges touched by a
warp's lanes in one instruction are covered greedily by aligned 32/64/
128-byte segments, and each segment is one transaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np


@dataclass
class DeviceBuffer:
    """A named allocation in device memory."""

    name: str
    array: np.ndarray

    @property
    def nbytes(self) -> int:
        return self.array.nbytes


@dataclass
class MemoryCounters:
    """Transaction statistics for one device."""

    transactions_32: int = 0
    transactions_64: int = 0
    transactions_128: int = 0
    bytes_moved: int = 0
    warp_accesses: int = 0

    @property
    def transactions(self) -> int:
        return self.transactions_32 + self.transactions_64 + self.transactions_128

    def reset(self) -> None:
        self.transactions_32 = 0
        self.transactions_64 = 0
        self.transactions_128 = 0
        self.bytes_moved = 0
        self.warp_accesses = 0


def coalesce(ranges: Iterable[Tuple[int, int]],
             sizes: Tuple[int, ...] = (32, 64, 128)) -> List[Tuple[int, int]]:
    """Cover byte ranges ``(start, length)`` with aligned transactions.

    Returns a list of ``(aligned_start, size)`` transactions.  The
    algorithm mirrors the hardware: touched 32-byte sectors are
    gathered, adjacent sectors merge into 64/128-byte transactions when
    alignment allows.
    """
    min_size = min(sizes)
    max_size = max(sizes)
    sectors = set()
    for start, length in ranges:
        if length <= 0:
            raise ValueError("access length must be positive")
        first = start // min_size
        last = (start + length - 1) // min_size
        sectors.update(range(first, last + 1))
    if not sectors:
        return []
    transactions: List[Tuple[int, int]] = []
    remaining = sorted(sectors)
    covered = set()
    for sector in remaining:
        if sector in covered:
            continue
        # choose the largest aligned transaction that covers this sector
        # and at least one other pending sector, else the smallest
        best = None
        for size in sorted(sizes, reverse=True):
            span = size // min_size
            base = sector // span * span
            members = {s for s in range(base, base + span) if s in sectors}
            pending = members - covered
            if size == min_size or len(pending) * min_size * 2 > size:
                # worth issuing: at least half the transaction is useful
                best = (base * min_size, size, pending)
                break
        if best is None:
            base = sector // 1 * 1
            best = (base * min_size, min_size, {sector})
        start, size, pending = best
        transactions.append((start, size))
        covered.update(
            range(start // min_size, (start + size) // min_size)
        )
    return transactions


class DeviceMemory:
    """All buffers resident on one GPU plus its transaction counters."""

    def __init__(self, capacity_bytes: int,
                 transaction_sizes: Tuple[int, ...] = (32, 64, 128)):
        if capacity_bytes <= 0:
            raise ValueError("device memory capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.transaction_sizes = transaction_sizes
        self._buffers: Dict[str, DeviceBuffer] = {}
        self.counters = MemoryCounters()

    @property
    def used_bytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def alloc(self, name: str, shape, dtype) -> DeviceBuffer:
        """Allocate a zeroed buffer; raises MemoryError when over capacity."""
        if name in self._buffers:
            raise ValueError(f"device buffer {name!r} already allocated")
        array = np.zeros(shape, dtype=dtype)
        if array.nbytes > self.free_bytes:
            raise MemoryError(
                f"device memory exhausted: need {array.nbytes} bytes, "
                f"{self.free_bytes} free of {self.capacity_bytes}"
            )
        buf = DeviceBuffer(name=name, array=array)
        self._buffers[name] = buf
        return buf

    def upload(self, name: str, host_array: np.ndarray) -> DeviceBuffer:
        """Allocate (or replace) a buffer with a copy of host data."""
        if name in self._buffers:
            old = self._buffers.pop(name)
            del old
        if host_array.nbytes > self.free_bytes:
            raise MemoryError(
                f"device memory exhausted: need {host_array.nbytes} bytes, "
                f"{self.free_bytes} free of {self.capacity_bytes}"
            )
        buf = DeviceBuffer(name=name, array=host_array.copy())
        self._buffers[name] = buf
        return buf

    def free(self, name: str) -> None:
        if name not in self._buffers:
            raise KeyError(f"device buffer {name!r} not allocated")
        del self._buffers[name]

    def get(self, name: str) -> DeviceBuffer:
        return self._buffers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def warp_access(self, ranges: Iterable[Tuple[int, int]]) -> int:
        """Record one warp-wide global memory instruction.

        ``ranges`` are the per-lane ``(byte_offset, length)`` accesses
        (within one buffer).  Returns the number of transactions issued.
        """
        txns = coalesce(ranges, self.transaction_sizes)
        for _start, size in txns:
            if size == 32:
                self.counters.transactions_32 += 1
            elif size == 64:
                self.counters.transactions_64 += 1
            else:
                self.counters.transactions_128 += 1
            self.counters.bytes_moved += size
        self.counters.warp_accesses += 1
        return len(txns)
