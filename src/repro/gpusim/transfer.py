"""The CPU <-> GPU interconnect.

Transfers follow the paper's cost model (section 5.4):

    ``T = T_init + size / Bandwidth``

with a fixed initialization latency per transfer — the term that makes
many small synchronizing transfers lose to one big asynchronous one in
the update experiments (Fig 13-14).

A :class:`~repro.faults.FaultInjector` may be attached to the link;
every transfer then consults it first.  A failed or timed-out transfer
leaves the device buffer untouched, still burns the modeled wire time
(the data travelled before the abort), and is counted separately in
:class:`TransferStats` so retries are visible in the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gpusim.memory import DeviceBuffer, DeviceMemory
from repro.obs import NULL_OBS
from repro.platform.configs import PcieSpec


@dataclass
class TransferStats:
    """Accumulated link activity."""

    transfers: int = 0
    bytes_to_device: int = 0
    bytes_to_host: int = 0
    total_time_ns: float = 0.0
    #: transfers aborted by an injected fault or timeout; their wire
    #: time is included in ``total_time_ns`` but no bytes are counted
    failed_transfers: int = 0

    def reset(self) -> None:
        self.transfers = 0
        self.bytes_to_device = 0
        self.bytes_to_host = 0
        self.total_time_ns = 0.0
        self.failed_transfers = 0


class PcieLink:
    """Moves data between host numpy arrays and device buffers."""

    def __init__(self, spec: PcieSpec, injector: Optional[object] = None):
        self.spec = spec
        self.stats = TransferStats()
        #: optional :class:`repro.faults.FaultInjector`
        self.injector = injector
        #: :class:`repro.obs.Observability`; the shared disabled bundle
        #: unless threaded in via ``HBPlusTree.attach_obs``
        self.obs = NULL_OBS

    def time_ns(self, nbytes: int) -> float:
        """Cost of one transfer of ``nbytes`` (either direction)."""
        if nbytes <= 0:
            raise ValueError("transfer size must be positive")
        return self.spec.transfer_ns(nbytes)

    def _check_fault(self, nbytes: int) -> None:
        """Consult the injector; on a fault, account the wasted wire
        time and re-raise without touching device state."""
        if self.injector is None:
            return
        try:
            self.injector.on_transfer(nbytes)
        except Exception:
            self.stats.failed_transfers += 1
            self.stats.total_time_ns += self.time_ns(nbytes)
            raise

    def to_device(
        self, memory: DeviceMemory, name: str, host_array: np.ndarray
    ) -> float:
        """Upload ``host_array`` into buffer ``name``; returns time (ns)."""
        t = self.time_ns(host_array.nbytes)  # validates the size first
        with self.obs.span("pcie.h2d", category="pcie", buffer=name,
                           bytes=host_array.nbytes, modeled_ns=t):
            self._check_fault(host_array.nbytes)
            memory.upload(name, host_array)
        self.stats.transfers += 1
        self.stats.bytes_to_device += host_array.nbytes
        self.stats.total_time_ns += t
        self.obs.count("live.pcie.bytes_to_device", host_array.nbytes)
        return t

    def update_device(
        self,
        memory: DeviceMemory,
        name: str,
        host_array: np.ndarray,
        offset_elems: int = 0,
    ) -> float:
        """Overwrite part of an existing buffer (node synchronization).

        Used by the synchronized update method (section 5.6), where each
        modified inner node is pushed to GPU memory individually.
        """
        buf = memory.get(name)
        flat = buf.array.reshape(-1)
        src = host_array.reshape(-1)
        if src.dtype != flat.dtype:
            raise ValueError(
                f"partial update dtype mismatch: host {src.dtype} vs "
                f"device {flat.dtype}"
            )
        if offset_elems < 0:
            raise ValueError("partial update offset cannot be negative")
        if offset_elems + src.size > flat.size:
            raise ValueError("partial update exceeds device buffer bounds")
        t = self.time_ns(src.nbytes)  # rejects zero-size uploads
        with self.obs.span("pcie.h2d_update", category="pcie", buffer=name,
                           bytes=src.nbytes, modeled_ns=t):
            self._check_fault(src.nbytes)
            flat[offset_elems: offset_elems + src.size] = src
        self.stats.transfers += 1
        self.stats.bytes_to_device += src.nbytes
        self.stats.total_time_ns += t
        self.obs.count("live.pcie.bytes_to_device", src.nbytes)
        return t

    def to_host(self, buffer: DeviceBuffer) -> "tuple[np.ndarray, float]":
        """Download a buffer; returns (array copy, time ns)."""
        t = self.time_ns(buffer.nbytes)
        with self.obs.span("pcie.d2h", category="pcie",
                           bytes=buffer.nbytes, modeled_ns=t):
            self._check_fault(buffer.nbytes)
            copy = buffer.array.copy()
        self.stats.transfers += 1
        self.stats.bytes_to_host += buffer.nbytes
        self.stats.total_time_ns += t
        self.obs.count("live.pcie.bytes_to_host", buffer.nbytes)
        return copy, t
