"""The CPU <-> GPU interconnect.

Transfers follow the paper's cost model (section 5.4):

    ``T = T_init + size / Bandwidth``

with a fixed initialization latency per transfer — the term that makes
many small synchronizing transfers lose to one big asynchronous one in
the update experiments (Fig 13-14).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.gpusim.memory import DeviceBuffer, DeviceMemory
from repro.platform.configs import PcieSpec


@dataclass
class TransferStats:
    """Accumulated link activity."""

    transfers: int = 0
    bytes_to_device: int = 0
    bytes_to_host: int = 0
    total_time_ns: float = 0.0

    def reset(self) -> None:
        self.transfers = 0
        self.bytes_to_device = 0
        self.bytes_to_host = 0
        self.total_time_ns = 0.0


class PcieLink:
    """Moves data between host numpy arrays and device buffers."""

    def __init__(self, spec: PcieSpec):
        self.spec = spec
        self.stats = TransferStats()

    def time_ns(self, nbytes: int) -> float:
        """Cost of one transfer of ``nbytes`` (either direction)."""
        if nbytes < 0:
            raise ValueError("transfer size cannot be negative")
        return self.spec.transfer_ns(nbytes)

    def to_device(
        self, memory: DeviceMemory, name: str, host_array: np.ndarray
    ) -> float:
        """Upload ``host_array`` into buffer ``name``; returns time (ns)."""
        memory.upload(name, host_array)
        t = self.time_ns(host_array.nbytes)
        self.stats.transfers += 1
        self.stats.bytes_to_device += host_array.nbytes
        self.stats.total_time_ns += t
        return t

    def update_device(
        self,
        memory: DeviceMemory,
        name: str,
        host_array: np.ndarray,
        offset_elems: int = 0,
    ) -> float:
        """Overwrite part of an existing buffer (node synchronization).

        Used by the synchronized update method (section 5.6), where each
        modified inner node is pushed to GPU memory individually.
        """
        buf = memory.get(name)
        flat = buf.array.reshape(-1)
        src = host_array.reshape(-1)
        if offset_elems + src.size > flat.size:
            raise ValueError("partial update exceeds device buffer bounds")
        flat[offset_elems: offset_elems + src.size] = src
        t = self.time_ns(src.nbytes)
        self.stats.transfers += 1
        self.stats.bytes_to_device += src.nbytes
        self.stats.total_time_ns += t
        return t

    def to_host(self, buffer: DeviceBuffer) -> "tuple[np.ndarray, float]":
        """Download a buffer; returns (array copy, time ns)."""
        t = self.time_ns(buffer.nbytes)
        self.stats.transfers += 1
        self.stats.bytes_to_host += buffer.nbytes
        self.stats.total_time_ns += t
        return buffer.array.copy(), t
