"""Simulated CUDA-style GPU.

The paper's GPU side is bandwidth bound and transaction-count driven
(section 5.2-5.3, appendix C-D).  This package provides:

* :mod:`repro.gpusim.memory` — device memory with 32/64/128-byte
  coalesced transaction accounting,
* :mod:`repro.gpusim.transfer` — the PCIe link (``T_init + size/BW``),
* :mod:`repro.gpusim.simt` — a literal SIMT interpreter: warps in
  lock-step, ``__shared__`` memory with bank-conflict detection,
  ``__syncthreads`` barriers and divergence accounting,
* :mod:`repro.gpusim.kernels` — the inner-node search kernels
  (paper Snippet 3 and the regular-tree 3-step variant), each with a
  vectorised twin used by the benchmarks and validated against the
  interpreter in the tests,
* :mod:`repro.gpusim.device` — the device facade tying it together.
"""

from repro.gpusim.device import GpuDevice
from repro.gpusim.memory import DeviceBuffer, DeviceMemory
from repro.gpusim.simt import GpuKernelStats, KernelLaunch, SharedMemory, ThreadCtx
from repro.gpusim.transfer import PcieLink, TransferStats

__all__ = [
    "GpuDevice",
    "DeviceBuffer",
    "DeviceMemory",
    "GpuKernelStats",
    "KernelLaunch",
    "SharedMemory",
    "ThreadCtx",
    "PcieLink",
    "TransferStats",
]
