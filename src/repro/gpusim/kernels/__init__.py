"""GPU search kernels: literal SIMT generators plus vectorised twins."""

from repro.gpusim.kernels.frontier_search import (
    FRONTIER,
    KERNELS,
    PER_QUERY,
    frontier_search_kernel,
    frontier_search_vectorized,
    launch_frontier_search,
    validate_kernel,
    validate_level_geometry,
)
from repro.gpusim.kernels.implicit_search import (
    implicit_search_kernel,
    implicit_search_vectorized,
    launch_implicit_search,
)
from repro.gpusim.kernels.regular_search import (
    launch_regular_search,
    regular_search_kernel,
    regular_search_vectorized,
)

__all__ = [
    "FRONTIER",
    "KERNELS",
    "PER_QUERY",
    "frontier_search_kernel",
    "frontier_search_vectorized",
    "launch_frontier_search",
    "validate_kernel",
    "validate_level_geometry",
    "implicit_search_kernel",
    "implicit_search_vectorized",
    "launch_implicit_search",
    "regular_search_kernel",
    "regular_search_vectorized",
    "launch_regular_search",
]
