"""GPU inner-node search for the implicit HB+-tree.

:func:`implicit_search_kernel` is a line-for-line port of the paper's
appendix Snippet 3 to the SIMT interpreter: ``F_I`` threads per query,
per-thread key comparison, neighbour-flag reduction in shared memory,
``__syncthreads`` barriers between phases.

:func:`implicit_search_vectorized` is its numpy twin used by the
benchmarks: identical results and identical coalesced-transaction
counts (asserted by the test suite), several orders of magnitude
faster to simulate.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.gpusim.device import GpuDevice
from repro.gpusim.kernels.coalesce import warp_distinct as _warp_distinct
from repro.gpusim.kernels.frontier_search import validate_level_geometry
from repro.gpusim.memory import DeviceBuffer


def implicit_search_kernel(ctx, iseg, level_offsets, depth, fanout,
                           queries, results):
    """Paper Snippet 3: one team of ``fanout`` threads per query."""
    x, team = ctx.thread_idx
    q_idx = ctx.global_query_index
    flag_base = team * (fanout + 1)
    team_query = yield ("gld", queries, q_idx)
    yield ("shst", "flag", flag_base + x, 0)
    node_index = 0  # element offset of the current node within its level
    yield ("sync",)
    for i in range(depth):
        self_key = yield ("gld", iseg, level_offsets[i] + node_index + x)
        yield ("shst", "flag", flag_base + x + 1, 0)
        self_flag = 0
        if team_query <= self_key:
            yield ("shst", "flag", flag_base + x + 1, 1)
            self_flag = 1
        yield ("sync",)
        prev = yield ("shld", "flag", flag_base + x)
        if self_flag == 1 and prev == 0:
            yield ("shst", "result", team, x)
        yield ("sync",)
        result = yield ("shld", "result", team)
        node_index = (node_index + int(result)) * fanout
    if x == 0:
        yield ("gst", results, q_idx, node_index // fanout)


def launch_implicit_search(
    device: GpuDevice,
    iseg: DeviceBuffer,
    level_offsets: Sequence[int],
    depth: int,
    fanout: int,
    queries: np.ndarray,
):
    """Run the literal kernel over all ``queries``.

    Returns ``(leaf_indices, stats)``.  Queries are padded to fill the
    last block (padding teams search for key 0, as a real launcher
    padding its input buffer would).  Geometry is validated up front —
    a mismatched ``level_offsets``/``depth``/``fanout`` raises
    ``ValueError`` instead of silently misindexing the I-segment.
    """
    validate_level_geometry(
        level_offsets, None, depth, fanout, iseg.array.size
    )
    teams_per_block = max(1, device.spec.warp_size // fanout) * 4
    n = len(queries)
    padded = teams_per_block * -(-n // teams_per_block)
    qbuf = device.memory.upload(
        "_queries_literal", np.resize(np.asarray(queries), padded)
    )
    if n < padded:
        qbuf.array[n:] = 0
    rbuf = device.memory.upload(
        "_results_literal", np.zeros(padded, dtype=np.int64)
    )
    grid = padded // teams_per_block
    shared = {
        "flag": ((teams_per_block * (fanout + 1),), np.int8),
        "result": ((teams_per_block,), np.int64),
    }
    stats = device.launch(
        implicit_search_kernel,
        grid,
        (fanout, teams_per_block),
        iseg,
        list(level_offsets),
        depth,
        fanout,
        qbuf,
        rbuf,
        shared_decls=shared,
    )
    out = rbuf.array[:n].copy()
    device.memory.free("_queries_literal")
    device.memory.free("_results_literal")
    return out, stats


def implicit_search_vectorized(
    iseg: np.ndarray,
    level_offsets: Sequence[int],
    level_sizes: Sequence[int],
    depth: int,
    fanout: int,
    queries: np.ndarray,
    teams_per_warp: int = 4,
) -> Tuple[np.ndarray, int]:
    """Vectorised twin of Snippet 3.

    Returns ``(leaf_indices, global_transactions)`` where the
    transaction count reproduces the coalescing behaviour of the
    literal kernel: teams within a warp reading the *same* node line
    share one 64-byte transaction (which is what happens near the root).
    """
    q = np.asarray(queries)
    node = np.zeros(len(q), dtype=np.int64)
    transactions = 0
    for i in range(depth):
        view = iseg[
            level_offsets[i]: level_offsets[i] + level_sizes[i]
        ].reshape(-1, fanout)
        keys = view[node]
        # one 64-byte line per distinct node within each warp
        transactions += _warp_distinct(node, teams_per_warp)
        k = np.sum(keys < q[:, None], axis=1).astype(np.int64)
        node = node * fanout + k
    # query loads: one coalesced read of the query buffer per warp team
    # group (charged by the bucket pipeline, not here)
    return node, transactions


def implicit_search_from(
    iseg: np.ndarray,
    level_offsets: Sequence[int],
    level_sizes: Sequence[int],
    depth: int,
    fanout: int,
    queries: np.ndarray,
    start_levels: np.ndarray,
    start_nodes: np.ndarray,
) -> np.ndarray:
    """Resume the inner-node descent from per-query (level, node) pairs.

    Used by the load-balanced search (section 5.5): the CPU walked the
    top ``D`` (or ``D+1``) levels, the GPU continues from there.
    """
    node, _txns = implicit_search_from_counted(
        iseg, level_offsets, level_sizes, depth, fanout, queries,
        start_levels, start_nodes,
    )
    return node


def implicit_search_from_counted(
    iseg: np.ndarray,
    level_offsets: Sequence[int],
    level_sizes: Sequence[int],
    depth: int,
    fanout: int,
    queries: np.ndarray,
    start_levels: np.ndarray,
    start_nodes: np.ndarray,
    teams_per_warp: int = 4,
) -> Tuple[np.ndarray, int]:
    """:func:`implicit_search_from` plus the coalesced-transaction count.

    Transactions follow the same model as
    :func:`implicit_search_vectorized` — one 64-byte line per distinct
    node among the teams of a warp — charged only for the levels a
    query actually walks on the GPU.  With every ``start_levels`` at 0
    the result (both outputs) is identical to the full vectorised
    descent, which is what lets the adaptive engines treat the
    unbalanced path as the (D=0, R=0) corner of the split space.
    """
    q = np.asarray(queries)
    node = np.asarray(start_nodes, dtype=np.int64).copy()
    start = np.asarray(start_levels, dtype=np.int64)
    transactions = 0
    for level in range(depth):
        active = start <= level
        if not np.any(active):
            continue
        view = iseg[
            level_offsets[level]: level_offsets[level] + level_sizes[level]
        ].reshape(-1, fanout)
        keys = view[node[active]]
        transactions += _warp_distinct(node[active], teams_per_warp)
        k = np.sum(keys < q[active, None], axis=1).astype(np.int64)
        node[active] = node[active] * fanout + k
    return node, transactions
