"""Warp-level memory-coalescing model shared by the kernel twins.

Both vectorised search kernels charge one 64-byte device-memory
transaction per *distinct* line requested by the teams of a warp —
the behaviour of the hardware coalescer the paper's section 5.3 relies
on.  The count is a pure function of the per-query line-id stream, so
sorted query batches (runs of equal ids inside each warp) are charged
fewer transactions than arrival-order batches: that is exactly the
coalescing win the batch execution engine (:mod:`repro.core.batching`)
exploits.

``warp_distinct`` is the single implementation; the previous per-kernel
copies sorted every warp's ids unconditionally, which is wasted work on
already-sorted streams — the dominant case once buckets are sorted.
"""

from __future__ import annotations

import numpy as np


def warp_distinct(values: np.ndarray, group: int,
                  assume_sorted: bool = False) -> int:
    """Count distinct values within each consecutive group of ``group``.

    ``group`` is the number of query teams sharing one warp; each
    distinct value inside a warp's window costs one transaction.  When
    the stream is globally non-decreasing (``assume_sorted``, or
    detected with a single vectorised scan) the per-warp sort is
    skipped — every window of a sorted stream is already sorted.  The
    returned count is identical either way.
    """
    n = len(values)
    if n == 0:
        return 0
    if not assume_sorted:
        assume_sorted = bool(n < 2 or np.all(values[1:] >= values[:-1]))
    total = 0
    full = n // group * group
    if full:
        v = values[:full].reshape(-1, group)
        s = v if assume_sorted else np.sort(v, axis=1)
        total += int(np.sum(s[:, 1:] != s[:, :-1])) + v.shape[0]
    tail = values[full:]
    if len(tail) > 1:
        t = tail if assume_sorted else np.sort(tail)
        total += int(np.sum(t[1:] != t[:-1])) + 1
    elif len(tail):
        total += 1
    return total
