"""Level-wise frontier traversal for the implicit HB+-tree.

The per-query kernel (:mod:`repro.gpusim.kernels.implicit_search`,
paper Snippet 3) descends one query per thread team, root to leaf —
so concurrent queries of one bucket scatter across the whole I-segment
every step, and only *warp-local* line sharing is coalesced away.  The
FPGA level-wise batch-search result (arXiv:2604.21117) and the BS-tree
sorted-batch layouts (arXiv:2505.01180) point at the alternative this
module implements: process the entire **sorted** bucket one tree level
at a time as a *frontier* of (query-range, node) pairs.

Because the bucket the engines hand the kernel is sorted and distinct
(:class:`repro.core.batching.BucketPlan`), queries that sit in the same
inner node at some level are **adjacent** — the frontier is a sequence
of runs, and each level's loads collapse to one contiguous sweep over
that level's distinct nodes.  The per-level transaction bill is the
number of frontier entries, counted by the same
:func:`~repro.gpusim.kernels.coalesce.warp_distinct` dedup the sorted
bucket engine introduced — with the *whole block* as the dedup window
instead of one warp.  Near the root that is 1 transaction for the
bucket where the per-query kernel pays one per warp window; at the
bottom the two models meet (every query its own node).

Two implementations, verified equivalent by the test suite:

* :func:`frontier_search_kernel` — the faithful SIMT-interpreter
  version: one cooperative block, per level each run's first team
  (found with a shared-memory max-scan) loads the node's key line into
  a shared tile, every team of the run reads the tile, and the child
  pick is the per-query kernel's Snippet-3 neighbour-flag reduction —
  bit-identical child indices by construction.
* :func:`frontier_search_vectorized` — the numpy twin: run-compressed
  key gathers, block-window ``warp_distinct`` accounting, identical
  results for *any* query order (unsorted input simply yields more
  runs, never different answers).

:func:`frontier_search_from_counted` is the (D, R)-split twin: it
resumes per-query from the nodes the CPU walked to, exactly like
:func:`~repro.gpusim.kernels.implicit_search.implicit_search_from_counted`,
so the adaptive engines can pick the frontier kernel at any split
point.

:func:`validate_level_geometry` guards every kernel-launch boundary:
a mismatched ``level_offsets``/``depth``/``fanout`` combination raises
a clear ``ValueError`` instead of silently misindexing the I-segment.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.gpusim.device import GpuDevice
from repro.gpusim.kernels.coalesce import warp_distinct as _warp_distinct
from repro.gpusim.memory import DeviceBuffer
from repro.gpusim.simt import GpuKernelStats

#: the per-query Snippet-3 kernel (the default everywhere)
PER_QUERY = "per_query"
#: the level-wise frontier kernel of this module
FRONTIER = "frontier"
#: every GPU search kernel the trees / engines / balancers select from
KERNELS = (PER_QUERY, FRONTIER)


def validate_kernel(kernel: str) -> str:
    """Reject unknown kernel names with a clear error."""
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown GPU search kernel {kernel!r}; expected one of {KERNELS}"
        )
    return kernel


def validate_level_geometry(
    level_offsets: Sequence[int],
    level_sizes: Optional[Sequence[int]],
    depth: int,
    fanout: int,
    total_elements: int,
) -> None:
    """Check I-segment level geometry at a kernel-launch boundary.

    The implicit kernels index ``iseg[level_offsets[i] + node*fanout +
    x]`` with no bounds checks (the catch-all sentinels keep a
    *consistent* layout in bounds) — so an inconsistent geometry does
    not crash, it silently reads the wrong level.  This raises
    ``ValueError`` instead.  ``level_sizes`` may be ``None``; sizes are
    then derived from consecutive offsets and ``total_elements``.
    Cost is O(depth) — negligible next to any launch.
    """
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    if fanout < 2:
        raise ValueError(f"fanout must be >= 2, got {fanout}")
    if depth == 0:
        return
    offsets = [int(o) for o in level_offsets]
    if len(offsets) < depth:
        raise ValueError(
            f"level_offsets names {len(offsets)} levels but depth is {depth}"
        )
    if offsets[0] != 0:
        raise ValueError(
            f"the root level must start at element 0, got offset {offsets[0]}"
        )
    if level_sizes is not None:
        sizes = [int(s) for s in level_sizes]
        if len(sizes) < depth:
            raise ValueError(
                f"level_sizes names {len(sizes)} levels but depth is {depth}"
            )
    else:
        sizes = [offsets[i + 1] - offsets[i] for i in range(depth - 1)]
        sizes.append(int(total_elements) - offsets[depth - 1])
    prev_nodes = None
    for i in range(depth):
        size = sizes[i]
        if size <= 0 or size % fanout:
            raise ValueError(
                f"level {i} holds {size} elements — not a positive "
                f"multiple of fanout {fanout}"
            )
        if i + 1 < depth and offsets[i] + size != offsets[i + 1]:
            raise ValueError(
                f"level {i} spans [{offsets[i]}, {offsets[i] + size}) but "
                f"level {i + 1} starts at {offsets[i + 1]} — levels must "
                f"tile the I-segment contiguously"
            )
        nodes = size // fanout
        if prev_nodes is not None and nodes > prev_nodes * fanout:
            raise ValueError(
                f"level {i} has {nodes} nodes but level {i - 1}'s "
                f"{prev_nodes} nodes address at most {prev_nodes * fanout}"
            )
        prev_nodes = nodes
    end = offsets[depth - 1] + sizes[depth - 1]
    if end > total_elements:
        raise ValueError(
            f"levels end at element {end} but the I-segment holds "
            f"{total_elements} elements"
        )


def _run_starts(node: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first entry of each frontier run."""
    starts = np.empty(len(node), dtype=bool)
    starts[0] = True
    np.not_equal(node[1:], node[:-1], out=starts[1:])
    return starts


def frontier_search_vectorized(
    iseg: np.ndarray,
    level_offsets: Sequence[int],
    level_sizes: Sequence[int],
    depth: int,
    fanout: int,
    queries: np.ndarray,
    block_queries: Optional[int] = None,
) -> Tuple[np.ndarray, int]:
    """Vectorised frontier descent; ``(leaf_indices, transactions)``.

    Per level the frontier (the per-query node-id stream) is
    run-compressed: each run's key line is gathered once and broadcast
    to the run's queries, and the level is charged one 64-byte
    transaction per distinct node within each ``block_queries`` window
    (default: the whole bucket — one cooperative block, matching
    :func:`launch_frontier_search`).  The child pick is the same
    ``count(keys < q)`` the per-query twin computes, so leaf indices
    are bit-identical to
    :func:`~repro.gpusim.kernels.implicit_search.implicit_search_vectorized`
    for any input — sorted input is only *cheaper*, never different.
    """
    q = np.asarray(queries)
    n = len(q)
    node = np.zeros(n, dtype=np.int64)
    if n == 0 or depth == 0:
        return node, 0
    validate_level_geometry(
        level_offsets, level_sizes, depth, fanout, iseg.size
    )
    group = int(block_queries) if block_queries else n
    if group < 1:
        raise ValueError(f"block_queries must be >= 1, got {block_queries}")
    transactions = 0
    for i in range(depth):
        view = iseg[
            level_offsets[i]: level_offsets[i] + level_sizes[i]
        ].reshape(-1, fanout)
        starts = _run_starts(node)
        run_id = np.cumsum(starts) - 1
        keys = view[node[starts]][run_id]
        # one 64-byte line per distinct node within each block window
        transactions += _warp_distinct(node, group)
        k = np.sum(keys < q[:, None], axis=1).astype(np.int64)
        node = node * fanout + k
    return node, transactions


def frontier_search_from_counted(
    iseg: np.ndarray,
    level_offsets: Sequence[int],
    level_sizes: Sequence[int],
    depth: int,
    fanout: int,
    queries: np.ndarray,
    start_levels: np.ndarray,
    start_nodes: np.ndarray,
    block_queries: Optional[int] = None,
) -> Tuple[np.ndarray, int]:
    """Frontier descent resumed from per-query (level, node) pairs.

    The (D, R)-split twin of :func:`frontier_search_vectorized`,
    mirroring
    :func:`~repro.gpusim.kernels.implicit_search.implicit_search_from_counted`:
    only queries whose ``start_levels`` reach a level participate in
    its frontier.  With every start level at 0 both outputs equal the
    full frontier descent.
    """
    q = np.asarray(queries)
    node = np.asarray(start_nodes, dtype=np.int64).copy()
    start = np.asarray(start_levels, dtype=np.int64)
    n = len(q)
    if n == 0 or depth == 0:
        return node, 0
    validate_level_geometry(
        level_offsets, level_sizes, depth, fanout, iseg.size
    )
    group = int(block_queries) if block_queries else n
    if group < 1:
        raise ValueError(f"block_queries must be >= 1, got {block_queries}")
    transactions = 0
    for level in range(depth):
        active = start <= level
        if not np.any(active):
            continue
        view = iseg[
            level_offsets[level]: level_offsets[level] + level_sizes[level]
        ].reshape(-1, fanout)
        sub = node[active]
        starts = _run_starts(sub)
        run_id = np.cumsum(starts) - 1
        keys = view[sub[starts]][run_id]
        transactions += _warp_distinct(sub, group)
        k = np.sum(keys < q[active, None], axis=1).astype(np.int64)
        node[active] = sub * fanout + k
    return node, transactions


def frontier_search_kernel(ctx, iseg, level_offsets, depth, fanout,
                           queries, results, teams):
    """Literal level-wise frontier kernel (one cooperative block).

    One team of ``fanout`` threads per query, all teams in one block so
    the frontier can be deduplicated block-wide in shared memory.  Per
    level, five phases:

    1. lane 0 of each team publishes its node id to the shared frontier;
    2. each team checks its left neighbour — the first team of a run of
       equal node ids is the run's *representative*;
    3. an inclusive max-scan (Hillis-Steele) over the representative
       indices gives every team its run's owner;
    4. the owner team alone loads the node's key line from global
       memory into a shared tile (one coalesced line per frontier run
       — the dedup the transaction model charges for); every team of
       the run reads the tile;
    5. the Snippet-3 neighbour-flag reduction picks the child — the
       very same phase as the per-query kernel, so child indices (and
       therefore leaf indices) are bit-identical.

    Every ``sync`` is unconditional and the scan bound ``teams`` is a
    launch constant, so all threads execute identical barrier
    sequences regardless of data.  Correct for any query order —
    sortedness only increases run lengths (fewer global loads).
    """
    x, team = ctx.thread_idx
    q_idx = ctx.global_query_index
    flag_base = team * (fanout + 1)
    query = yield ("gld", queries, q_idx)
    yield ("shst", "flag", flag_base + x, 0)
    node = 0
    yield ("sync",)
    for i in range(depth):
        # phase 1: publish this team's frontier entry
        if x == 0:
            yield ("shst", "nodes", team, node)
        yield ("sync",)
        # phase 2: run representative = first team of a run
        left = yield ("shld", "nodes", max(team - 1, 0))
        is_rep = team == 0 or int(left) != node
        yield ("shst", "scan", team, team if is_rep else -1)
        yield ("sync",)
        # phase 3: inclusive max-scan -> owner = nearest rep at or left
        d = 1
        while d < teams:
            mine = yield ("shld", "scan", team)
            other = yield ("shld", "scan", max(team - d, 0))
            if team < d:
                other = -1
            yield ("sync",)
            yield ("shst", "scan", team, max(int(mine), int(other)))
            yield ("sync",)
            d *= 2
        owner = int((yield ("shld", "scan", team)))
        # phase 4: the owner loads the key line once for the whole run
        if team == owner:
            key = yield ("gld", iseg, level_offsets[i] + node * fanout + x)
            yield ("shst", "tile", team * fanout + x, key)
        yield ("sync",)
        self_key = yield ("shld", "tile", owner * fanout + x)
        # phase 5: Snippet-3 neighbour-flag child pick (per-query twin)
        yield ("shst", "flag", flag_base + x + 1, 0)
        self_flag = 0
        if query <= self_key:
            yield ("shst", "flag", flag_base + x + 1, 1)
            self_flag = 1
        yield ("sync",)
        prev = yield ("shld", "flag", flag_base + x)
        if self_flag == 1 and prev == 0:
            yield ("shst", "result", team, x)
        yield ("sync",)
        result = yield ("shld", "result", team)
        node = node * fanout + int(result)
    if x == 0:
        yield ("gst", results, q_idx, node)


def launch_frontier_search(
    device: GpuDevice,
    iseg: DeviceBuffer,
    level_offsets: Sequence[int],
    depth: int,
    fanout: int,
    queries: np.ndarray,
    level_sizes: Optional[Sequence[int]] = None,
):
    """Run the literal frontier kernel over all ``queries``.

    Returns ``(leaf_indices, stats)``.  The whole bucket runs as one
    cooperative block (block-wide barriers *are* the level
    synchronization; a hardware port would use cooperative groups or
    one grid launch per level), so no padding is needed.  Geometry is
    validated up front — a mismatched launch raises ``ValueError``
    before any simulated memory access.
    """
    validate_level_geometry(
        level_offsets, level_sizes, depth, fanout, iseg.array.size
    )
    n = len(queries)
    if n == 0:
        return np.zeros(0, dtype=np.int64), GpuKernelStats()
    qbuf = device.memory.upload(
        "_queries_frontier", np.asarray(queries)
    )
    rbuf = device.memory.upload(
        "_results_frontier", np.zeros(n, dtype=np.int64)
    )
    shared = {
        "nodes": ((n,), np.int64),
        "scan": ((n,), np.int64),
        "tile": ((n * fanout,), iseg.array.dtype),
        "flag": ((n * (fanout + 1),), np.int8),
        "result": ((n,), np.int64),
    }
    stats = device.launch(
        frontier_search_kernel,
        1,
        (fanout, n),
        iseg,
        list(level_offsets),
        depth,
        fanout,
        qbuf,
        rbuf,
        n,
        shared_decls=shared,
    )
    out = rbuf.array.copy()
    device.memory.free("_queries_frontier")
    device.memory.free("_results_frontier")
    return out, stats
