"""GPU inner-node search for the regular HB+-tree.

"Searching an inner node in the regular HB+-tree ... requires three
memory accesses instead of one and involves three steps" (section 5.3):

1. parallel search of the node's *index line* to pick the key line,
2. parallel search of that key line to pick the child slot,
3. one extra transfer to fetch the child reference.

The I-segment mirror is packed per node as ``index line | keys | refs``
(``1 + 2*K`` cache lines, exactly the Fig 2(c) structure), upper-pool
nodes first, last-level nodes after them.  At the last level the search
result *is* the big-leaf cache-line index (leaves share the last-level
node's pool index), so step 3 is skipped and the kernel returns
``node * F_I + line``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.gpusim.device import GpuDevice
from repro.gpusim.kernels.coalesce import warp_distinct as _warp_distinct
from repro.gpusim.memory import DeviceBuffer


def _team_reduce(flag_base, team, x, matched):
    """Neighbour-flag reduction (shared sub-generator, Snippet 3 style).

    Each thread publishes whether its key matched; the thread whose
    left neighbour did not match owns the answer.  Returns the reduced
    index to every thread of the team.
    """
    yield ("shst", "flag", flag_base + x + 1, 0)
    yield ("sync",)
    if matched:
        yield ("shst", "flag", flag_base + x + 1, 1)
    yield ("sync",)
    prev = yield ("shld", "flag", flag_base + x)
    if matched and prev == 0:
        yield ("shst", "result", team, x)
    yield ("sync",)
    res = yield ("shld", "result", team)
    return int(res)


def regular_search_kernel(ctx, iseg, stride, kpl, fanout, height, root,
                          last_base, queries, results):
    """Three-step descent; one team of ``kpl`` threads per query."""
    x, team = ctx.thread_idx
    q_idx = ctx.global_query_index
    flag_base = team * (kpl + 1)
    query = yield ("gld", queries, q_idx)
    yield ("shst", "flag", flag_base + x, 0)
    yield ("sync",)
    node = root
    answer = 0
    for level in range(height - 1, -1, -1):
        slot_base = (node + (last_base if level == 0 else 0)) * stride
        # step 1: index line
        ikey = yield ("gld", iseg, slot_base + x)
        g = yield from _team_reduce(flag_base, team, x, query <= ikey)
        g = min(g, kpl - 1)
        # step 2: the selected key line
        kkey = yield ("gld", iseg, slot_base + kpl + g * kpl + x)
        k = yield from _team_reduce(flag_base, team, x, query <= kkey)
        k = min(k, kpl - 1)
        child_slot = g * kpl + k
        if level == 0:
            answer = node * fanout + child_slot
            break
        # step 3: fetch the child reference (single-lane load)
        if x == 0:
            ref = yield ("gld", iseg, slot_base + kpl + fanout + child_slot)
            yield ("shst", "result", team, int(ref))
        yield ("sync",)
        node = int((yield ("shld", "result", team)))
    if x == 0:
        yield ("gst", results, q_idx, answer)


def launch_regular_search(
    device: GpuDevice,
    iseg: DeviceBuffer,
    stride: int,
    kpl: int,
    fanout: int,
    height: int,
    root: int,
    last_base: int,
    queries: np.ndarray,
):
    """Run the literal kernel; returns ``(leaf_line_codes, stats)``.

    Each result encodes ``last_level_node * F_I + leaf_line``.
    """
    teams_per_block = max(1, device.spec.warp_size // kpl) * 4
    n = len(queries)
    padded = teams_per_block * -(-n // teams_per_block)
    qbuf = device.memory.upload(
        "_queries_literal_reg", np.resize(np.asarray(queries), padded)
    )
    if n < padded:
        qbuf.array[n:] = 0
    rbuf = device.memory.upload(
        "_results_literal_reg", np.zeros(padded, dtype=np.int64)
    )
    grid = padded // teams_per_block
    shared = {
        "flag": ((teams_per_block * (kpl + 1),), np.int8),
        "result": ((teams_per_block,), np.int64),
    }
    stats = device.launch(
        regular_search_kernel,
        grid,
        (kpl, teams_per_block),
        iseg,
        stride,
        kpl,
        fanout,
        height,
        root,
        last_base,
        qbuf,
        rbuf,
        shared_decls=shared,
    )
    out = rbuf.array[:n].copy()
    device.memory.free("_queries_literal_reg")
    device.memory.free("_results_literal_reg")
    return out, stats


def regular_search_vectorized(
    iseg: np.ndarray,
    stride: int,
    kpl: int,
    fanout: int,
    height: int,
    root: int,
    last_base: int,
    queries: np.ndarray,
    teams_per_warp: int = 4,
    frontier_block: "int | None" = None,
) -> Tuple[np.ndarray, int]:
    """Vectorised twin; returns ``(leaf_line_codes, transactions)``.

    ``frontier_block`` switches the transaction accounting to the
    level-wise frontier model: every line kind is deduplicated across a
    window of that many queries (the cooperative block — normally the
    whole bucket) instead of one warp's teams, the regular-layout
    analogue of
    :func:`repro.gpusim.kernels.frontier_search.frontier_search_vectorized`.
    Codes are identical either way — only the coalescing window moves.
    """
    q = np.asarray(queries)
    dedup = int(frontier_block) if frontier_block else teams_per_warp
    if dedup < 1:
        raise ValueError(f"dedup window must be >= 1, got {dedup}")
    nodes_view = iseg.reshape(-1, stride)
    keys_view = nodes_view[:, kpl: kpl + fanout]
    refs_view = nodes_view[:, kpl + fanout:]
    node = np.full(len(q), root, dtype=np.int64)
    transactions = 0
    for level in range(height - 1, -1, -1):
        offset = last_base if level == 0 else 0
        keys = keys_view[node + offset]
        slot = np.sum(keys < q[:, None], axis=1).astype(np.int64)
        slot = np.minimum(slot, fanout - 1)
        # index line: one 64-byte transaction per distinct node per window
        transactions += _warp_distinct(node, dedup)
        # key line: one per distinct (node, group)
        group = slot // kpl
        transactions += _warp_distinct(node * kpl + group, dedup)
        if level == 0:
            return node * fanout + slot, transactions
        # reference: one (32-byte) transaction per distinct (node, slot)
        transactions += _warp_distinct(node * fanout + slot, dedup)
        node = refs_view[node + offset, slot].astype(np.int64)
    raise AssertionError("unreachable: height >= 1 always returns")
