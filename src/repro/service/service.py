"""The keyspace-partitioned multi-tenant index service.

:class:`IndexService` fronts N :class:`~repro.service.shard.Shard`\\ s
behind a :mod:`~repro.service.router` table.  Every request batch is
quota-charged (per-tenant token bucket), scattered to the owning
shards, executed under each shard's admission window, and gathered
back in arrival order — bit-identical to one unsharded tree over the
merged keyspace, because every key is owned by exactly one shard and
the per-shard engines are themselves bit-identical under batching.

Topology changes are online.  ``split_shard`` snapshots the hot shard
(best effort — an injected storage fault costs the snapshot, never the
split), partitions its contents at a traffic-aware cut, bulk-loads two
child shards (controllers warm-started from the parent's committed
split), and swaps the (router, shards) table atomically: a concurrent
reader sees either the old table or the new one, never a mix.
``merge_shards`` is the reverse.  Updates serialize against topology
changes through the service write lock; reads drain through the
parent's quiesce window.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pipeline import nearest_rank_index
from repro.faults.plan import FaultPlan
from repro.obs import NULL_OBS
from repro.platform.configs import MachineConfig
from repro.service.admission import AdmissionPolicy
from repro.service.quota import QuotaConfig, TenantQuotas
from repro.service.router import (
    HashRouter,
    RangeRouter,
    group_by_shard,
)
from repro.service.shard import Shard


@dataclass
class ServiceConfig:
    """Declarative shape of an :class:`IndexService`."""

    n_shards: int = 4
    #: "range" (scan-local, splittable) or "hash" (skew-proof)
    router: str = "range"
    kind: str = "hb-regular"
    key_bits: int = 64
    bucket_size: Optional[int] = None
    #: per-shard adaptive controllers (independent drift)
    adaptive: bool = False
    #: GPU fault drill: per-shard derived injector namespaces
    fault_plan: Optional[FaultPlan] = None
    queue_capacity: int = 4096
    admission: AdmissionPolicy = AdmissionPolicy.BLOCK
    queue_timeout_s: Optional[float] = None
    quota: QuotaConfig = field(default_factory=QuotaConfig)
    #: snapshot directory for split/merge durability (None = in-memory
    #: rebuilds only)
    snapshot_dir: Optional[str] = None
    machine: Optional[MachineConfig] = None
    #: rebalance thresholds: a shard serving more than ``hot_share`` of
    #: recent traffic splits; two adjacent shards together under
    #: ``cold_share`` merge
    hot_share: float = 0.5
    cold_share: float = 0.1
    min_rebalance_ops: int = 1024
    max_shards: int = 16


class LatencyRecorder:
    """Service-side batch latency histogram (wall clock, ns).

    Percentiles use the ceil-based nearest-rank
    (:func:`repro.core.pipeline.nearest_rank_index`) — the same fixed
    method the pipeline model reports, so a service p99 and a pipeline
    p99 mean the same statistic.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._lat_ns: List[int] = []
        self._ops = 0
        self._busy_ns = 0

    def record(self, ns: int, ops: int) -> None:
        with self._lock:
            self._lat_ns.append(int(ns))
            self._ops += ops
            self._busy_ns += int(ns)

    def percentile_ns(self, p: float) -> float:
        with self._lock:
            if not self._lat_ns:
                return 0.0
            lats = sorted(self._lat_ns)
            return float(lats[nearest_rank_index(p, len(lats))])

    def summary(self) -> Dict[str, float]:
        with self._lock:
            lats = sorted(self._lat_ns)
            ops, busy = self._ops, self._busy_ns
        if not lats:
            return {"batches": 0, "ops": 0, "p50_ns": 0.0, "p95_ns": 0.0,
                    "p99_ns": 0.0, "throughput_ops_s": 0.0,
                    "percentile_method": "ceil_nearest_rank"}
        return {
            "batches": len(lats),
            "ops": ops,
            "p50_ns": float(lats[nearest_rank_index(50, len(lats))]),
            "p95_ns": float(lats[nearest_rank_index(95, len(lats))]),
            "p99_ns": float(lats[nearest_rank_index(99, len(lats))]),
            "throughput_ops_s": ops / (busy / 1e9) if busy else 0.0,
            "percentile_method": "ceil_nearest_rank",
        }


class IndexService:
    """N exclusive shards behind one router, served scatter/gather."""

    def __init__(self, router, shards: List[Shard],
                 config: ServiceConfig, quotas: TenantQuotas,
                 obs=None, snapshot_manager=None):
        if router.n_shards != len(shards):
            raise ValueError(
                f"router covers {router.n_shards} shards, got "
                f"{len(shards)}"
            )
        self.config = config
        self.quotas = quotas
        self.obs = obs if obs is not None else NULL_OBS
        self.snapshots = snapshot_manager
        #: the atomically-swapped topology: readers grab the tuple once
        #: per request and never observe a half-applied change
        self._table: Tuple[object, List[Shard]] = (router, list(shards))
        #: serializes updates against split/merge
        self._write_lock = threading.RLock()
        self._next_sid = max((s.sid for s in shards), default=-1) + 1
        self.latency = LatencyRecorder()
        self.splits = 0
        self.merges = 0
        self.snapshot_failures = 0
        #: per-position op counts at the last rebalance decision
        self._rebalance_base: Dict[int, int] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, keys, values, config: Optional[ServiceConfig] = None,
              obs=None, snapshot_manager=None) -> "IndexService":
        """Partition ``(keys, values)`` and stand the service up."""
        config = config or ServiceConfig()
        keys = np.asarray(keys)
        values = np.asarray(values)
        if config.router == "range":
            router = RangeRouter.from_keys(keys, config.n_shards)
        elif config.router == "hash":
            router = HashRouter(config.n_shards)
        else:
            raise ValueError(f"unknown router kind: {config.router!r}")
        sids = router.shard_of(keys)
        groups = group_by_shard(sids, router.n_shards)
        shards = [
            cls._make_shard(pos, keys[g], values[g], config, obs)
            for pos, g in enumerate(groups)
        ]
        quotas = config.quota.build()
        return cls(router, shards, config, quotas, obs=obs,
                   snapshot_manager=snapshot_manager)

    @staticmethod
    def _make_shard(sid: int, keys, values, config: ServiceConfig,
                    obs, warm_split=None) -> Shard:
        return Shard(
            sid, keys, values,
            kind=config.kind,
            machine=config.machine,
            key_bits=config.key_bits,
            bucket_size=config.bucket_size,
            adaptive=config.adaptive,
            warm_split=warm_split,
            fault_plan=config.fault_plan,
            queue_capacity=config.queue_capacity,
            policy=config.admission,
            queue_timeout_s=config.queue_timeout_s,
            obs=obs,
        )

    # -- topology accessors ---------------------------------------------

    @property
    def router(self):
        return self._table[0]

    @property
    def shards(self) -> List[Shard]:
        return self._table[1]

    @property
    def n_shards(self) -> int:
        return self._table[0].n_shards

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    def advance(self, seconds: float) -> None:
        """Deterministic quota refill (manual clock)."""
        self.quotas.advance(seconds)

    # -- serving --------------------------------------------------------

    def _spec(self):
        return self.shards[0].tree.spec

    def lookup_batch(self, queries: Sequence[int],
                     tenant: str = "default") -> np.ndarray:
        """Scatter/gather point lookups; results in arrival order."""
        router, shards = self._table
        q = self._spec().coerce(queries)
        self.quotas.charge(tenant, len(q))
        t0 = time.perf_counter_ns()
        with self.obs.span("service.lookup", tenant=tenant,
                           queries=len(q), epoch=router.epoch):
            groups = group_by_shard(router.shard_of(q), router.n_shards)
            out: Optional[np.ndarray] = None
            for pos, g in enumerate(groups):
                if len(g) == 0:
                    continue
                res = shards[pos].lookup_batch(q[g])
                if out is None:
                    out = np.empty(len(q), dtype=res.dtype)
                out[g] = res
        if out is None:
            out = np.empty(0, dtype=self._spec().dtype)
        self.latency.record(time.perf_counter_ns() - t0, len(q))
        self.obs.count("live.service.lookups", len(q), tenant=tenant)
        return out

    def run_scans(self, los: Sequence[int], his: Sequence[int],
                  tenant: str = "default") -> list:
        """Scatter/gather range scans; per-scan rows in key order.

        Range routing clips each scan to the owning shards' spans and
        stitches the per-shard rows back in shard (= key) order; hash
        routing broadcasts and merge-sorts, since a hashed keyspace
        gives a scan no locality to exploit.
        """
        router, shards = self._table
        lo_arr = self._spec().coerce(los)
        hi_arr = self._spec().coerce(his)
        if len(lo_arr) != len(hi_arr):
            raise ValueError("run_scans needs matching lo/hi arrays")
        self.quotas.charge(tenant, len(lo_arr))
        t0 = time.perf_counter_ns()
        with self.obs.span("service.scan", tenant=tenant,
                           scans=len(lo_arr), epoch=router.epoch):
            parts: List[List[list]] = [[] for _ in range(len(lo_arr))]
            for pos in range(router.n_shards):
                idx, plos, phis = [], [], []
                for i in range(len(lo_arr)):
                    first, last = router.shard_span(int(lo_arr[i]),
                                                    int(hi_arr[i]))
                    if not first <= pos <= last:
                        continue
                    lo, hi = int(lo_arr[i]), int(hi_arr[i])
                    if isinstance(router, RangeRouter):
                        slo, shi = router.shard_bounds(pos)
                        lo, hi = max(lo, slo), min(hi, shi)
                    idx.append(i)
                    plos.append(lo)
                    phis.append(hi)
                if not idx:
                    continue
                rows = shards[pos].run_scans(plos, phis)
                for i, r in zip(idx, rows):
                    parts[i].append(r)
            if isinstance(router, RangeRouter):
                # shard order == key order: concatenate
                out = [sum(p, []) for p in parts]
            else:
                # broadcast: merge disjoint per-shard runs by key
                out = [sorted((row for p in parts_i for row in p))
                       for parts_i in parts]
        self.latency.record(time.perf_counter_ns() - t0, len(lo_arr))
        self.obs.count("live.service.scans", len(lo_arr), tenant=tenant)
        return out

    def apply_updates(self, keys: Sequence[int], values: Sequence[int],
                      deletes: Sequence[int] = (),
                      tenant: str = "default") -> None:
        """Scatter an update batch; within-shard arrival order is
        preserved, so repeated keys land exactly as unsharded."""
        spec = self._spec()
        k = spec.coerce(keys)
        v = np.asarray(values, dtype=spec.dtype)
        d = spec.coerce(deletes)
        if len(k) != len(v):
            raise ValueError("keys and values must have equal length")
        self.quotas.charge(tenant, len(k) + len(d))
        t0 = time.perf_counter_ns()
        with self._write_lock:
            router, shards = self._table
            with self.obs.span("service.update", tenant=tenant,
                               ops=len(k) + len(d), epoch=router.epoch):
                kg = group_by_shard(router.shard_of(k), router.n_shards)
                dg = group_by_shard(router.shard_of(d), router.n_shards)
                for pos in range(router.n_shards):
                    if len(kg[pos]) == 0 and len(dg[pos]) == 0:
                        continue
                    shards[pos].apply_updates(k[kg[pos]], v[kg[pos]],
                                              d[dg[pos]])
        self.latency.record(time.perf_counter_ns() - t0,
                            len(k) + len(d))
        self.obs.count("live.service.update_ops", len(k) + len(d),
                       tenant=tenant)

    # -- online topology changes ----------------------------------------

    def split_shard(self, pos: int,
                    cut: Optional[int] = None) -> Tuple[int, int]:
        """Split the shard at position ``pos`` online.

        Protocol: quiesce the shard → best-effort snapshot (a storage
        fault is contained: counted, split proceeds from the live
        contents) → partition at ``cut`` (default: the shard's
        traffic-aware suggestion) → bulk-load two children with
        warm-started controllers → swap the table atomically.
        Returns the two child positions ``(pos, pos + 1)``.
        """
        if not isinstance(self.router, RangeRouter):
            raise ValueError("only a range-routed service can split")
        with self._write_lock:
            router, shards = self._table
            parent = shards[pos]
            with self.obs.span("service.split", pos=pos,
                               sid=parent.sid):
                with parent.quiesce():
                    if self.snapshots is not None:
                        if parent.snapshot_to(self.snapshots) is None:
                            self.snapshot_failures += 1
                            self.obs.count(
                                "live.service.snapshot_failures")
                    keys, values = parent.contents()
                if cut is None:
                    cut = parent.suggest_cut()
                if cut is None:
                    raise ValueError(
                        f"shard at position {pos} is too small to split"
                    )
                new_router = router.split(pos, cut)  # validates cut
                left = keys < np.asarray(cut, dtype=keys.dtype)
                warm = (parent.controller.split()
                        if parent.controller else None)
                child_l = self._make_shard(
                    self._next_sid, keys[left], values[left],
                    self.config, parent.obs if parent.obs is not NULL_OBS
                    else None, warm_split=warm,
                )
                child_r = self._make_shard(
                    self._next_sid + 1, keys[~left], values[~left],
                    self.config, parent.obs if parent.obs is not NULL_OBS
                    else None, warm_split=warm,
                )
                self._next_sid += 2
                new_shards = (shards[:pos] + [child_l, child_r]
                              + shards[pos + 1:])
                self._table = (new_router, new_shards)
                self.splits += 1
                self._rebalance_base = {}
                self.obs.emit("service_split", pos=pos, cut=int(cut),
                              epoch=new_router.epoch,
                              left=len(child_l), right=len(child_r))
        return pos, pos + 1

    def merge_shards(self, pos: int) -> int:
        """Merge the shards at positions ``pos`` and ``pos + 1``."""
        if not isinstance(self.router, RangeRouter):
            raise ValueError("only a range-routed service can merge")
        with self._write_lock:
            router, shards = self._table
            left, right = shards[pos], shards[pos + 1]
            with self.obs.span("service.merge", pos=pos,
                               sids=(left.sid, right.sid)):
                with left.quiesce(), right.quiesce():
                    lk, lv = left.contents()
                    rk, rv = right.contents()
                # adjacent ranges: left keys all precede right keys
                keys = np.concatenate([lk, rk])
                values = np.concatenate([lv, rv])
                warm = (left.controller.split()
                        if left.controller else None)
                child = self._make_shard(
                    self._next_sid, keys, values, self.config,
                    left.obs if left.obs is not NULL_OBS else None,
                    warm_split=warm,
                )
                self._next_sid += 1
                new_router = router.merge(pos)
                new_shards = shards[:pos] + [child] + shards[pos + 2:]
                self._table = (new_router, new_shards)
                self.merges += 1
                self._rebalance_base = {}
                self.obs.emit("service_merge", pos=pos,
                              epoch=new_router.epoch, n=len(child))
        return pos

    def maybe_rebalance(self) -> Optional[str]:
        """One step of drift-driven topology maintenance.

        Looks at each shard's share of the traffic served since the
        last topology change: a shard over ``hot_share`` splits (at
        its traffic-aware cut); an adjacent pair together under
        ``cold_share`` merges.  Returns a description of the action
        taken, or None.
        """
        if not isinstance(self.router, RangeRouter):
            return None
        shards = self.shards
        served = [s.served_ops - self._rebalance_base.get(i, 0)
                  for i, s in enumerate(shards)]
        total = sum(served)
        if total < self.config.min_rebalance_ops:
            return None
        shares = [s / total for s in served]
        hot = int(np.argmax(shares))
        if (shares[hot] > self.config.hot_share
                and len(shards) < self.config.max_shards
                and shards[hot].suggest_cut() is not None):
            self.split_shard(hot)
            return f"split position {hot} (share {shares[hot]:.2f})"
        if len(shards) > 1:
            pair_shares = [shares[i] + shares[i + 1]
                           for i in range(len(shares) - 1)]
            cold = int(np.argmin(pair_shares))
            if pair_shares[cold] < self.config.cold_share:
                self.merge_shards(cold)
                return (f"merged positions {cold},{cold + 1} "
                        f"(share {pair_shares[cold]:.2f})")
        self._rebalance_base = {i: s.served_ops
                                for i, s in enumerate(shards)}
        return None

    # -- accounting -----------------------------------------------------

    def contents(self):
        """(keys, values) of the whole service, in key order."""
        router, shards = self._table
        parts = [s.contents() for s in shards]
        keys = np.concatenate([p[0] for p in parts])
        values = np.concatenate([p[1] for p in parts])
        if not isinstance(router, RangeRouter):
            order = np.argsort(keys, kind="stable")
            keys, values = keys[order], values[order]
        return keys, values

    def stats(self) -> Dict[str, object]:
        router, shards = self._table
        return {
            "router": {"kind": router.kind, "epoch": router.epoch,
                       "n_shards": router.n_shards},
            "n_keys": sum(len(s) for s in shards),
            "splits": self.splits,
            "merges": self.merges,
            "snapshot_failures": self.snapshot_failures,
            "latency": self.latency.summary(),
            "shards": [dict(position=i, **s.stats().snapshot())
                       for i, s in enumerate(shards)],
            "tenants": {
                t: dataclasses.asdict(st)
                for t, st in self.quotas.stats().items()
            },
        }

    def __repr__(self) -> str:
        router, shards = self._table
        return (f"IndexService(shards={len(shards)}, "
                f"router={router.kind!r}, n={len(self)}, "
                f"epoch={router.epoch})")
