"""One shard of the multi-tenant index service.

A :class:`Shard` is a vertical slice of the whole stack, owned
exclusively: its own :class:`~repro.core.hbtree.HBPlusTree` (or
implicit tree) over its own simulated GPU device, its own
:class:`~repro.core.batching.BatchingEngine`, its own
:class:`~repro.core.adaptive.AdaptiveController` (so the (D, R) split
drifts with *this* shard's traffic, independently of its siblings),
its own :class:`~repro.faults.FaultInjector` namespace (a per-shard
derived seed: shard 3's fault schedule never changes when shard 2
takes an extra batch), and its own bounded admission window.

Fault-drilled shards (``fault_plan`` given) must be ``hb-regular``
and are served through :class:`~repro.core.resilience.ResilientHBPlusTree`
— lookups and scans stay correct under injected GPU faults, which is
what lets the service promise bit-identity even during a fault drill.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.adaptive import AdaptiveController
from repro.core.batching import BatchingEngine
from repro.core.resilience import ResilientHBPlusTree
from repro.core.update import SyncUpdater
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.io import _contents
from repro.lifecycle.bulkload import bulk_load
from repro.obs import NULL_OBS
from repro.platform.configs import MachineConfig, machine_m1
from repro.service.admission import AdmissionPolicy, ShardQueue

#: mixes the shard id into the service fault seed so every shard draws
#: from a disjoint CRN stream (same idea as the injector's per-site
#: streams, one level up)
_SHARD_SEED_SALT = 0x9E3779B97F4A7C15


def shard_fault_plan(plan: FaultPlan, sid: int) -> FaultPlan:
    """The service plan re-seeded for one shard's private namespace."""
    derived = (plan.seed ^ ((sid + 1) * _SHARD_SEED_SALT)) & 0x7FFFFFFF
    return dataclasses.replace(plan, seed=derived)


@dataclass
class ShardStats:
    """One shard's lifetime serving accounting."""

    sid: int
    n_keys: int
    lookups: int
    scans: int
    update_ops: int
    batches: int
    admission: Dict[str, int]
    faults: int

    def snapshot(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


class Shard:
    """An exclusively-owned keyspace slice with its own full stack."""

    def __init__(
        self,
        sid: int,
        keys: Sequence[int],
        values: Sequence[int],
        *,
        kind: str = "hb-regular",
        machine: Optional[MachineConfig] = None,
        key_bits: int = 64,
        bucket_size: Optional[int] = None,
        adaptive: bool = False,
        warm_split=None,
        fault_plan: Optional[FaultPlan] = None,
        queue_capacity: int = 4096,
        policy: AdmissionPolicy = AdmissionPolicy.BLOCK,
        queue_timeout_s: Optional[float] = None,
        obs=None,
    ):
        self.sid = int(sid)
        self.kind = kind
        self.machine = machine or machine_m1()
        self.key_bits = key_bits
        self.obs = obs if obs is not None else NULL_OBS
        self.tree = bulk_load(kind, keys, values, key_bits=key_bits,
                              machine=self.machine)
        if obs is not None and hasattr(self.tree, "attach_obs"):
            self.tree.attach_obs(obs)

        self.injector: Optional[FaultInjector] = None
        if fault_plan is not None:
            if kind != "hb-regular":
                raise ValueError(
                    "fault drills need hb-regular shards (the implicit "
                    "tree has no injector hook)"
                )
            self.injector = FaultInjector(shard_fault_plan(fault_plan,
                                                           self.sid))

        # adaptivity: the implicit tree's (D, R) controller rides the
        # engine; the regular tree's {hybrid, cpu-only} mode controller
        # rides the resilient wrapper.  Either way the controller is
        # private to this shard and drifts with this shard's traffic.
        self.controller: Optional[AdaptiveController] = None
        engine_balancer = None
        resilient_adaptive = None
        wants_resilient = self.injector is not None
        if adaptive:
            if warm_split is not None:
                self.controller = AdaptiveController.warm_start(
                    self.tree, warm_split, bucket_size=bucket_size,
                    obs=obs,
                )
            else:
                self.controller = AdaptiveController.for_tree(
                    self.tree, bucket_size=bucket_size, obs=obs,
                )
            if getattr(self.tree, "supports_split_descent", False):
                engine_balancer = self.controller
            else:
                resilient_adaptive = self.controller
                wants_resilient = True

        self.engine = BatchingEngine(self.tree, bucket_size=bucket_size,
                                     balancer=engine_balancer)
        self.resilient: Optional[ResilientHBPlusTree] = None
        if wants_resilient:
            self.resilient = ResilientHBPlusTree(
                self.tree, injector=self.injector, obs=obs,
                adaptive=resilient_adaptive,
            )

        self.queue = ShardQueue(self.sid, queue_capacity, policy,
                                timeout_s=queue_timeout_s)
        self._count_lock = threading.Lock()
        self._lookups = 0
        self._scans = 0
        self._update_ops = 0
        self._batches = 0

    # -- serving --------------------------------------------------------

    def _count(self, lookups: int = 0, scans: int = 0,
               update_ops: int = 0) -> None:
        with self._count_lock:
            self._lookups += lookups
            self._scans += scans
            self._update_ops += update_ops
            self._batches += 1

    def lookup_batch(self, queries: Sequence[int]) -> np.ndarray:
        """Serve one scattered lookup sub-batch (admission included)."""
        with self.queue.admit(len(queries)):
            with self.obs.span("shard.lookup", sid=self.sid,
                               queries=len(queries)):
                if self.resilient is not None:
                    out = self.resilient.lookup_batch(queries)
                else:
                    out = self.engine.lookup_batch(queries)
        self._count(lookups=len(queries))
        return out

    def run_scans(self, los: Sequence[int], his: Sequence[int]) -> list:
        """Serve one scattered scan sub-batch; per-scan ``(key, value)``
        rows in key order."""
        with self.queue.admit(len(los)):
            with self.obs.span("shard.scan", sid=self.sid,
                               scans=len(los)):
                if self.resilient is not None:
                    out = self.resilient.run_scans(los, his)
                else:
                    out = self.engine.run_scans(los, his)
        self._count(scans=len(los))
        return out

    def apply_updates(self, keys: Sequence[int], values: Sequence[int],
                      deletes: Sequence[int] = ()) -> None:
        """Absorb this shard's slice of an update batch."""
        ops = len(keys) + len(deletes)
        with self.queue.admit(ops):
            with self.obs.span("shard.update", sid=self.sid, ops=ops):
                if self.kind == "hb-implicit":
                    self.tree.merge_rebuild(keys, values, deletes)
                elif self.resilient is not None:
                    self.resilient.apply_updates(keys, values, deletes,
                                                 method="sync")
                else:
                    SyncUpdater(self.tree).apply(keys, values, deletes)
        self._count(update_ops=ops)

    # -- lifecycle ------------------------------------------------------

    def contents(self):
        """(keys, values) this shard stores, in key order."""
        return _contents(self.tree)

    def __len__(self) -> int:
        return len(self.tree)

    def quiesce(self):
        """Park new batches and drain in-flight ones (engine lock)."""
        return self.engine.quiesce()

    def snapshot_to(self, manager):
        """Snapshot this shard's tree (quiesced) into ``manager``."""
        split = self.controller.split() if self.controller else None
        return manager.save_engine(self.engine, split=split)

    def suggest_cut(self) -> Optional[int]:
        """A split point for this shard: the median of the traffic the
        controller last sampled (hot-spot aware), else the median
        stored key.  None when the shard is too small to split."""
        keys, _ = self.contents()
        if len(keys) < 2:
            return None
        lo = int(keys[0])
        sample = getattr(self.controller, "_last_sample", None)
        if sample is not None and len(sample) >= 2:
            cut = int(np.median(np.asarray(sample)))
            if cut > lo and np.any(keys >= cut) and np.any(keys < cut):
                return cut
        cut = int(keys[len(keys) // 2])
        if cut <= lo:
            above = keys[keys > lo]
            if len(above) == 0:
                return None
            cut = int(above[0])
        return cut

    # -- accounting -----------------------------------------------------

    @property
    def served_ops(self) -> int:
        with self._count_lock:
            return self._lookups + self._scans + self._update_ops

    def stats(self) -> ShardStats:
        faults = 0
        if self.injector is not None:
            faults = self.injector.stats.total_faults
        with self._count_lock:
            return ShardStats(
                sid=self.sid,
                n_keys=len(self.tree),
                lookups=self._lookups,
                scans=self._scans,
                update_ops=self._update_ops,
                batches=self._batches,
                admission=self.queue.stats.snapshot(),
                faults=faults,
            )

    def __repr__(self) -> str:
        return (f"Shard(sid={self.sid}, kind={self.kind!r}, "
                f"n={len(self.tree)}, served={self.served_ops})")
