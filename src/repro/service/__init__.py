"""The keyspace-partitioned multi-tenant index service.

One :class:`IndexService` fronts N exclusive :class:`Shard`\\ s behind
a :class:`RangeRouter` or :class:`HashRouter`: batches are
quota-charged per tenant, scattered to the owning shards, served under
each shard's bounded admission window, and gathered back in arrival
order — bit-identical to a single unsharded tree over the merged
keyspace.  Range-routed services split and merge shards online,
driven by the per-shard traffic each adaptive controller samples.
"""

from repro.service.admission import (
    AdmissionPolicy,
    AdmissionStats,
    ShardOverloaded,
    ShardQueue,
)
from repro.service.quota import (
    QuotaConfig,
    QuotaExceeded,
    TenantQuotas,
    TokenBucket,
)
from repro.service.router import HashRouter, RangeRouter, group_by_shard
from repro.service.service import (
    IndexService,
    LatencyRecorder,
    ServiceConfig,
)
from repro.service.shard import Shard, ShardStats, shard_fault_plan

__all__ = [
    "AdmissionPolicy",
    "AdmissionStats",
    "HashRouter",
    "IndexService",
    "LatencyRecorder",
    "QuotaConfig",
    "QuotaExceeded",
    "RangeRouter",
    "ServiceConfig",
    "Shard",
    "ShardOverloaded",
    "ShardQueue",
    "ShardStats",
    "TenantQuotas",
    "TokenBucket",
    "group_by_shard",
    "shard_fault_plan",
]
