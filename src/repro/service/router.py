"""Keyspace partitioning: the shard routing tables.

Two partitioning schemes, one interface:

* :class:`RangeRouter` — ``cuts`` of n-1 boundary keys split the
  domain into n contiguous ranges; shard ``i`` owns
  ``[cuts[i-1], cuts[i])``.  Range scans touch only the shards whose
  ranges intersect the scan span, and online split/merge is an O(1)
  table edit (insert/remove one cut) — the scheme the service's
  split/merge protocol requires.
* :class:`HashRouter` — a splitmix64 finalizer over the key modulo n
  (GRAB-ANNS-style bucketed routing).  Perfectly load-levelling under
  any key skew, but scans must broadcast to every shard and the shard
  count is fixed for the router's lifetime.

Routers are **immutable**: :meth:`RangeRouter.split` /
:meth:`RangeRouter.merge` return a *new* router with a bumped
``epoch``.  The service swaps the (router, shards) table atomically
under quiesce, so a request observes either the old table or the new
one, never a mix.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def group_by_shard(shard_ids: np.ndarray, n_shards: int) -> List[np.ndarray]:
    """Per-shard index arrays (positions into the scattered batch).

    ``np.concatenate([batch[g] for g in groups])`` is the scattered
    batch; scattering back through the same index arrays restores
    arrival order exactly (the gather step of scatter/gather).
    """
    ids = np.asarray(shard_ids)
    return [np.flatnonzero(ids == s) for s in range(n_shards)]


class RangeRouter:
    """n-1 ascending cut keys -> n contiguous key ranges."""

    kind = "range"

    def __init__(self, cuts: Sequence[int], dtype=np.uint64,
                 epoch: int = 0):
        self.cuts = np.asarray(list(cuts), dtype=dtype)
        if len(self.cuts) > 1 and not np.all(self.cuts[:-1] < self.cuts[1:]):
            raise ValueError("range cuts must be strictly ascending")
        self.epoch = int(epoch)

    @property
    def n_shards(self) -> int:
        return len(self.cuts) + 1

    @classmethod
    def from_keys(cls, keys: np.ndarray, n_shards: int,
                  epoch: int = 0) -> "RangeRouter":
        """Equi-depth cuts from a key sample: each shard starts with
        ~len(keys)/n of the sampled keys."""
        if n_shards < 1:
            raise ValueError("need at least one shard")
        keys = np.asarray(keys)
        if n_shards == 1:
            return cls((), dtype=keys.dtype, epoch=epoch)
        if len(keys) < n_shards:
            raise ValueError(
                f"cannot cut {len(keys)} keys into {n_shards} ranges"
            )
        sk = np.unique(keys)
        pos = (np.arange(1, n_shards) * len(sk)) // n_shards
        cuts = np.unique(sk[pos])
        return cls(cuts, dtype=keys.dtype, epoch=epoch)

    def shard_of(self, keys: np.ndarray) -> np.ndarray:
        """Owning shard of every key (vectorised)."""
        return np.searchsorted(self.cuts, np.asarray(keys), side="right")

    def shard_span(self, lo: int, hi: int) -> Tuple[int, int]:
        """Inclusive shard range a scan ``[lo, hi]`` intersects."""
        first = int(np.searchsorted(self.cuts, lo, side="right"))
        last = int(np.searchsorted(self.cuts, hi, side="right"))
        return first, last

    def shard_bounds(self, sid: int) -> Tuple[int, int]:
        """Inclusive key bounds shard ``sid`` owns (clamped to the
        dtype's domain)."""
        info = np.iinfo(self.cuts.dtype)
        lo = int(self.cuts[sid - 1]) if sid > 0 else int(info.min)
        hi = (int(self.cuts[sid]) - 1 if sid < len(self.cuts)
              else int(info.max))
        return lo, hi

    def split(self, sid: int, cut: int) -> "RangeRouter":
        """A new router with shard ``sid`` split at ``cut`` (the first
        key of the new right half)."""
        lo, hi = self.shard_bounds(sid)
        if not lo < cut <= hi:
            raise ValueError(
                f"cut {cut} outside shard {sid}'s splittable range "
                f"({lo}, {hi}]"
            )
        cuts = np.insert(self.cuts, sid, np.asarray(cut, self.cuts.dtype))
        return RangeRouter(cuts, dtype=self.cuts.dtype,
                           epoch=self.epoch + 1)

    def merge(self, sid: int) -> "RangeRouter":
        """A new router with shards ``sid`` and ``sid + 1`` merged."""
        if not 0 <= sid < len(self.cuts):
            raise ValueError(
                f"no right neighbour to merge shard {sid} with"
            )
        cuts = np.delete(self.cuts, sid)
        return RangeRouter(cuts, dtype=self.cuts.dtype,
                           epoch=self.epoch + 1)

    def __repr__(self) -> str:
        return (f"RangeRouter(shards={self.n_shards}, "
                f"epoch={self.epoch})")


def _splitmix64(keys: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer: a cheap, well-mixed 64-bit hash."""
    k = np.asarray(keys).astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        k ^= k >> np.uint64(30)
        k *= np.uint64(0xBF58476D1CE4E5B9)
        k ^= k >> np.uint64(27)
        k *= np.uint64(0x94D049BB133111EB)
        k ^= k >> np.uint64(31)
    return k


class HashRouter:
    """splitmix64(key) mod n — skew-proof, scan-broadcasting."""

    kind = "hash"

    def __init__(self, n_shards: int, epoch: int = 0):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self._n = int(n_shards)
        self.epoch = int(epoch)

    @property
    def n_shards(self) -> int:
        return self._n

    def shard_of(self, keys: np.ndarray) -> np.ndarray:
        return (_splitmix64(keys) % np.uint64(self._n)).astype(np.int64)

    def shard_span(self, lo: int, hi: int) -> Tuple[int, int]:
        """Hash placement is order-free: every scan touches all
        shards."""
        return 0, self._n - 1

    def __repr__(self) -> str:
        return f"HashRouter(shards={self._n}, epoch={self.epoch})"
