"""Per-shard bounded admission windows (backpressure for the service).

Each shard admits at most ``capacity_ops`` operations in flight at a
time.  A batch that does not fit waits (``BLOCK`` — backpressure
propagates to the submitter) or is rejected immediately with zero side
effects (``SHED`` — load shedding).  Admission is all-or-nothing per
batch, FIFO-fair under ``BLOCK`` (a waiting batch parks on the shared
condition; wakeups re-check in arrival order of notification).

This models the service-side request queue of a real deployment: the
depth of the window is the queue, and the high-watermark / shed / wait
counters in :class:`AdmissionStats` are the signals an operator (or
the service's own rebalancer) watches for a hot shard.
"""

from __future__ import annotations

import enum
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional


class AdmissionPolicy(enum.Enum):
    """What happens to a batch that does not fit the window."""

    BLOCK = "block"
    SHED = "shed"


class ShardOverloaded(RuntimeError):
    """A ``SHED``-policy shard rejected a batch (queue full), or a
    ``BLOCK``-policy wait exceeded its timeout."""

    def __init__(self, shard: int, requested: int, depth: int,
                 capacity: int):
        super().__init__(
            f"shard {shard}: batch of {requested} ops rejected "
            f"({depth}/{capacity} ops already queued)"
        )
        self.shard = shard
        self.requested = requested
        self.depth = depth
        self.capacity = capacity


@dataclass
class AdmissionStats:
    """One shard queue's lifetime accounting."""

    submitted_batches: int = 0
    admitted_batches: int = 0
    shed_batches: int = 0
    shed_ops: int = 0
    #: times an admission had to park and wait for space (BLOCK)
    blocked_waits: int = 0
    #: highest in-flight op count observed
    max_depth: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "submitted_batches": self.submitted_batches,
            "admitted_batches": self.admitted_batches,
            "shed_batches": self.shed_batches,
            "shed_ops": self.shed_ops,
            "blocked_waits": self.blocked_waits,
            "max_depth": self.max_depth,
        }


class ShardQueue:
    """A bounded in-flight window with block/shed admission.

    Use as a context manager around the shard work::

        with queue.admit(n_ops):
            engine.lookup_batch(...)

    Oversized batches (``ops > capacity_ops``) are admitted alone —
    they wait for an empty window and then occupy it exclusively;
    refusing them outright would make the capacity a hard batch-size
    limit rather than a backpressure bound.
    """

    def __init__(self, shard: int, capacity_ops: int,
                 policy: AdmissionPolicy = AdmissionPolicy.BLOCK,
                 timeout_s: Optional[float] = None):
        if capacity_ops < 1:
            raise ValueError("capacity_ops must be >= 1")
        self.shard = shard
        self.capacity_ops = int(capacity_ops)
        self.policy = AdmissionPolicy(policy)
        self.timeout_s = timeout_s
        self.stats = AdmissionStats()
        self._depth = 0
        self._cond = threading.Condition()

    @property
    def depth(self) -> int:
        """Ops currently in flight on this shard."""
        with self._cond:
            return self._depth

    def _fits(self, ops: int) -> bool:
        if ops > self.capacity_ops:
            # oversized batch: admitted alone, into an empty window
            return self._depth == 0
        return self._depth + ops <= self.capacity_ops

    def acquire(self, ops: int) -> None:
        if ops < 0:
            raise ValueError("ops must be >= 0")
        with self._cond:
            self.stats.submitted_batches += 1
            if not self._fits(ops):
                if self.policy is AdmissionPolicy.SHED:
                    self.stats.shed_batches += 1
                    self.stats.shed_ops += ops
                    raise ShardOverloaded(
                        self.shard, ops, self._depth, self.capacity_ops
                    )
                self.stats.blocked_waits += 1
                if not self._cond.wait_for(
                    lambda: self._fits(ops), timeout=self.timeout_s
                ):
                    self.stats.shed_batches += 1
                    self.stats.shed_ops += ops
                    raise ShardOverloaded(
                        self.shard, ops, self._depth, self.capacity_ops
                    )
            self._depth += ops
            self.stats.admitted_batches += 1
            self.stats.max_depth = max(self.stats.max_depth, self._depth)

    def release(self, ops: int) -> None:
        with self._cond:
            self._depth -= ops
            if self._depth < 0:
                raise RuntimeError(
                    f"shard {self.shard}: released more ops than admitted"
                )
            self._cond.notify_all()

    @contextmanager
    def admit(self, ops: int):
        self.acquire(ops)
        try:
            yield self
        finally:
            self.release(ops)
