"""Per-tenant token-bucket quotas for the sharded index service.

A tenant's bucket holds up to ``capacity`` tokens; every admitted
operation (one lookup key, one scan, one upsert/delete) spends one.
Refill is continuous at ``refill_per_s`` against an injectable clock —
the default clock is *manual* (:meth:`TokenBucket.advance`), so tests
and benchmarks replay deterministically; pass ``clock=time.monotonic``
for wall-clock refill in a live deployment.

Admission is all-or-nothing per batch: a batch of ``n`` ops is either
fully admitted (``n`` tokens spent atomically under the bucket lock —
no double-spend between concurrent submitters) or fully rejected with
zero spend.  The invariant the property tests pin: however many
threads submit, total admitted ops never exceed
``capacity + refill_per_s * elapsed``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional


class QuotaExceeded(RuntimeError):
    """A tenant's batch did not fit its remaining quota."""

    def __init__(self, tenant: str, requested: int, available: float):
        super().__init__(
            f"tenant {tenant!r}: batch of {requested} ops exceeds the "
            f"{available:.0f} tokens available"
        )
        self.tenant = tenant
        self.requested = requested
        self.available = available


class TokenBucket:
    """A thread-safe token bucket with an injectable (or manual) clock.

    ``capacity`` bounds the burst; ``refill_per_s`` the sustained rate.
    With no ``clock`` the bucket refills only via :meth:`advance` —
    fully deterministic, the mode every test and gate uses.
    """

    def __init__(self, capacity: float, refill_per_s: float = 0.0,
                 clock: Optional[Callable[[], float]] = None):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if refill_per_s < 0:
            raise ValueError("refill_per_s must be >= 0")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._tokens = float(capacity)
        self._last = clock() if clock is not None else 0.0
        self._lock = threading.Lock()
        #: lifetime accounting (under the same lock as the balance)
        self.admitted_ops = 0
        self.rejected_ops = 0

    def _refill_locked(self) -> None:
        if self._clock is None or self.refill_per_s == 0.0:
            return
        now = self._clock()
        self._credit_locked((now - self._last) * self.refill_per_s)
        self._last = now

    def _credit_locked(self, tokens: float) -> None:
        if tokens > 0:
            self._tokens = min(self.capacity, self._tokens + tokens)

    def advance(self, seconds: float) -> None:
        """Manually credit ``seconds`` of refill (deterministic mode)."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        with self._lock:
            self._credit_locked(seconds * self.refill_per_s)

    @property
    def available(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens

    def try_acquire(self, n: int) -> bool:
        """Atomically spend ``n`` tokens, or spend nothing.

        The check and the spend happen under one lock acquisition, so
        two concurrent submitters can never both spend the same
        tokens.
        """
        if n < 0:
            raise ValueError("cannot acquire a negative token count")
        with self._lock:
            self._refill_locked()
            if n <= self._tokens:
                self._tokens -= n
                self.admitted_ops += n
                return True
            self.rejected_ops += n
            return False


@dataclass
class TenantQuotaStats:
    """One tenant's lifetime admission accounting."""

    tenant: str
    capacity: float
    refill_per_s: float
    available: float
    admitted_ops: int
    rejected_ops: int


class TenantQuotas:
    """The service's tenant -> token-bucket map.

    Tenants without a configured quota are unlimited (admitted with no
    accounting) unless a ``default_capacity`` is given, in which case
    an unknown tenant lazily gets its own bucket at the default shape.
    A capacity of 0 is a valid configuration: that tenant is always
    rejected (modulo refill).
    """

    def __init__(self, default_capacity: Optional[float] = None,
                 default_refill_per_s: float = 0.0,
                 clock: Optional[Callable[[], float]] = None):
        self._buckets: Dict[str, TokenBucket] = {}
        self._default_capacity = default_capacity
        self._default_refill = default_refill_per_s
        self._clock = clock
        self._lock = threading.Lock()

    def set_quota(self, tenant: str, capacity: float,
                  refill_per_s: float = 0.0) -> TokenBucket:
        bucket = TokenBucket(capacity, refill_per_s, clock=self._clock)
        with self._lock:
            self._buckets[tenant] = bucket
        return bucket

    def bucket(self, tenant: str) -> Optional[TokenBucket]:
        """The tenant's bucket; lazily created at the default shape
        when one is configured, None for unlimited tenants."""
        with self._lock:
            b = self._buckets.get(tenant)
            if b is None and self._default_capacity is not None:
                b = TokenBucket(self._default_capacity,
                                self._default_refill, clock=self._clock)
                self._buckets[tenant] = b
            return b

    def try_charge(self, tenant: str, n: int) -> bool:
        bucket = self.bucket(tenant)
        if bucket is None:
            return True
        return bucket.try_acquire(n)

    def charge(self, tenant: str, n: int) -> None:
        """Admit-or-raise: the raising twin of :meth:`try_charge`."""
        bucket = self.bucket(tenant)
        if bucket is None:
            return
        if not bucket.try_acquire(n):
            raise QuotaExceeded(tenant, n, bucket.available)

    def advance(self, seconds: float) -> None:
        """Credit every configured bucket (deterministic refill)."""
        with self._lock:
            buckets = list(self._buckets.values())
        for bucket in buckets:
            bucket.advance(seconds)

    def stats(self) -> Dict[str, TenantQuotaStats]:
        with self._lock:
            items = list(self._buckets.items())
        return {
            tenant: TenantQuotaStats(
                tenant=tenant,
                capacity=b.capacity,
                refill_per_s=b.refill_per_s,
                available=b.available,
                admitted_ops=b.admitted_ops,
                rejected_ops=b.rejected_ops,
            )
            for tenant, b in items
        }


@dataclass
class QuotaConfig:
    """Declarative quota setup for :class:`repro.service.IndexService`.

    ``tenants`` maps tenant name -> (capacity, refill_per_s).  Omitted
    tenants fall back to ``default_capacity`` (None = unlimited).
    """

    default_capacity: Optional[float] = None
    default_refill_per_s: float = 0.0
    tenants: Dict[str, tuple] = field(default_factory=dict)

    def build(self, clock: Optional[Callable[[], float]] = None
              ) -> TenantQuotas:
        quotas = TenantQuotas(self.default_capacity,
                              self.default_refill_per_s, clock=clock)
        for tenant, shape in self.tenants.items():
            capacity, refill = (shape if isinstance(shape, tuple)
                                else (shape, 0.0))
            quotas.set_quota(tenant, capacity, refill)
        return quotas
