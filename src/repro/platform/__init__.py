"""Machine descriptions and cost-model constants.

The paper evaluates on two machines:

* ``M1`` — Intel Xeon E5-2665 accelerated by an Nvidia Geforce GTX 780.
* ``M2`` — Intel Core i7-4800MQ accelerated by an Nvidia Geforce GTX 770M.

:func:`machine_m1` and :func:`machine_m2` return scaled simulation configs
for these machines (see DESIGN.md section 4 for the scaling rationale).
"""

from repro.platform.configs import (
    SCALE_FACTOR,
    CpuSpec,
    GpuSpec,
    MachineConfig,
    PcieSpec,
    machine_m1,
    machine_m2,
    machine_modern,
)

__all__ = [
    "SCALE_FACTOR",
    "CpuSpec",
    "GpuSpec",
    "PcieSpec",
    "MachineConfig",
    "machine_m1",
    "machine_m2",
    "machine_modern",
]
