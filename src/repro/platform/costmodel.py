"""Analytic cost model turning simulation counters into time.

Every throughput/latency number the benchmarks report flows through
here.  Inputs are *measured* per-query event counts (cache misses, TLB
misses, GPU transactions, PCIe bytes — produced by running real queries
through the instrumented structures) and the machine constants of
:mod:`repro.platform.configs`; outputs are the T1-T4 step times of the
paper's section 5.4 model and the derived throughput/latency figures.

Calibration notes (see EXPERIMENTS.md): ``max_memory_parallelism``,
``page_walk_ns_*`` and ``random_access_efficiency`` are fitted once,
globally, to the paper's headline ratios — never per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cpu.node_search import COMPUTE_CYCLES, NodeSearchAlgorithm
from repro.keys import KeySpec
from repro.platform.configs import CpuSpec, GpuSpec, MachineConfig

#: fixed per-query scheduling/dispatch overhead on the CPU (ns): loop
#: control, query load/result store, software-pipeline bookkeeping
CPU_QUERY_OVERHEAD_NS = 12.0

#: extra per-query work of the hybrid pipeline's CPU stage beyond the
#: leaf search itself: reading the intermediate leaf index array,
#: scattering results, bucket bookkeeping (streamed host accesses that
#: do not appear in the leaf cache profile)
HYBRID_STAGE_OVERHEAD_NS = 15.0

#: overlap efficiency of software pipelining when node search is the
#: branchy sequential scan: its data-dependent mispredictions flush the
#: out-of-order window and break the miss overlap the SIMD searches
#: keep intact (this is the SIMD variants' Fig 8 edge — branchless
#: search, not raw compare throughput)
SEQUENTIAL_OVERLAP_EFFICIENCY = 0.72


@dataclass(frozen=True)
class CpuQueryProfile:
    """Measured per-query averages for a CPU-side search stage."""

    #: cache lines touched
    lines: float
    #: cache lines missing the LLC
    misses: float
    #: TLB misses against small pages
    tlb_small: float
    #: TLB misses against huge pages
    tlb_huge: float
    #: node searches executed (inner + leaf)
    node_searches: float
    #: lines streamed in by the hardware prefetcher (cost bandwidth,
    #: not latency)
    prefetched: float = 0.0

    @staticmethod
    def from_counters(counters, node_searches_per_query: float
                      ) -> "CpuQueryProfile":
        """Build a profile from accumulated simulation counters."""
        q = max(1, counters.queries)
        return CpuQueryProfile(
            lines=counters.line_accesses / q,
            misses=counters.cache_misses / q,
            tlb_small=counters.tlb_misses_small / q,
            tlb_huge=counters.tlb_misses_huge / q,
            node_searches=node_searches_per_query,
            prefetched=getattr(counters, "prefetches", 0) / q,
        )


class CpuCostModel:
    """Per-query time and aggregate throughput of a CPU search stage."""

    def __init__(
        self,
        cpu: CpuSpec,
        algorithm: NodeSearchAlgorithm = NodeSearchAlgorithm.HIERARCHICAL_SIMD,
        pipeline_len: int = 16,
        threads: Optional[int] = None,
        cycles_per_node: Optional[float] = None,
    ):
        self.cpu = cpu
        self.algorithm = algorithm
        self.pipeline_len = pipeline_len
        self.threads = threads if threads is not None else cpu.threads
        #: override of the per-node-search compute cycles (used e.g. for
        #: FAST, whose in-line search is a 3-stage SIMD-blocked descent
        #: rather than one of our three node-search algorithms)
        self.cycles_per_node = cycles_per_node

    # -- components ----------------------------------------------------

    def compute_ns(self, profile: CpuQueryProfile) -> float:
        """Pure computation per query (node searches + dispatch)."""
        per_node = (
            self.cycles_per_node
            if self.cycles_per_node is not None
            else COMPUTE_CYCLES[self.algorithm]
        )
        cycles = per_node * profile.node_searches
        return cycles * self.cpu.cycle_ns + CPU_QUERY_OVERHEAD_NS

    def memory_ns(self, profile: CpuQueryProfile) -> float:
        """Exposed memory stall per query, after pipeline overlap.

        Overlap grows sub-linearly with the pipeline length (dependent
        address generation and line-fill buffers limit it) and saturates
        at the machine's effective MLP — giving Fig 20's shape: steady
        gains up to P=16, flat beyond.
        """
        mlp = max(1.0, min(float(self.cpu.max_memory_parallelism),
                           float(self.pipeline_len) ** 0.25))
        if (self.algorithm is NodeSearchAlgorithm.SEQUENTIAL
                and self.pipeline_len > 1 and self.cycles_per_node is None):
            mlp = max(1.0, mlp * SEQUENTIAL_OVERLAP_EFFICIENCY)
        stall = profile.misses * self.cpu.mem_latency_ns
        stall += profile.tlb_small * self.cpu.page_walk_cost_small_ns
        stall += profile.tlb_huge * self.cpu.page_walk_cost_huge_ns
        # LLC hits still cost a few cycles each; prefetched lines are
        # paced by memory bandwidth rather than latency
        hits = max(0.0, profile.lines - profile.misses)
        prefetch_ns = profile.prefetched * self.cpu.line_transfer_ns
        return stall / mlp + hits * 4.0 + prefetch_ns

    def query_ns(self, profile: CpuQueryProfile) -> float:
        """Per-query time of one thread.

        Without software pipelining (``pipeline_len == 1``) compute and
        memory serialize; with it, they overlap.
        """
        comp = self.compute_ns(profile)
        mem = self.memory_ns(profile)
        if self.pipeline_len == 1:
            return comp + mem
        return max(comp, mem)

    def bandwidth_cap_qps(self, profile: CpuQueryProfile) -> float:
        """Aggregate throughput ceiling from memory bandwidth."""
        bytes_per_query = (
            (profile.misses + profile.prefetched) * self.cpu.cache_line
        )
        if bytes_per_query <= 0:
            return float("inf")
        return self.cpu.mem_bandwidth_gbs * 1e9 / bytes_per_query

    # -- headline numbers ----------------------------------------------

    def throughput_qps(self, profile: CpuQueryProfile) -> float:
        per_thread = 1e9 / self.query_ns(profile)
        return min(self.threads * per_thread, self.bandwidth_cap_qps(profile))

    def latency_ns(self, profile: CpuQueryProfile) -> float:
        """Time until one query's result is available.

        ``pipeline_len`` queries are in flight per thread and finish
        together, which is the latency cost of software pipelining
        (Fig 20b).
        """
        return self.query_ns(profile) * self.pipeline_len

    def stage_time_ns(self, profile: CpuQueryProfile, queries: int) -> float:
        """Time for this CPU stage to process ``queries`` queries."""
        return queries * 1e9 / self.throughput_qps(profile)


class GpuCostModel:
    """Kernel time of the (bandwidth-bound) GPU search stage."""

    def __init__(self, gpu: GpuSpec, threads_per_query: int):
        self.gpu = gpu
        self.threads_per_query = threads_per_query

    def kernel_ns(self, transactions: int, queries: int,
                  levels: float) -> float:
        """Paper's T2: ``K_init + (M / SIMD_G) * P_GPU``.

        The per-query processing time is dominated by device-memory
        transactions; a latency-bound floor applies when occupancy
        cannot cover the per-level dependency chain.
        """
        bw_time = transactions * 64.0 / self.gpu.effective_bandwidth_gbs
        inflight = max(
            1, self.gpu.max_resident_threads // self.threads_per_query
        )
        waves = max(1.0, queries / inflight)
        latency_time = waves * levels * self.gpu.mem_latency_ns
        return self.gpu.kernel_init_ns + max(bw_time, latency_time)

    def throughput_cap_qps(self, transactions_per_query: float) -> float:
        bytes_per_query = transactions_per_query * 64.0
        if bytes_per_query <= 0:
            return float("inf")
        return self.gpu.effective_bandwidth_gbs * 1e9 / bytes_per_query


@dataclass
class BucketCosts:
    """The four step times of one bucket (paper section 5.4)."""

    t1: float  # host -> device query transfer
    t2: float  # GPU inner-node traversal
    t3: float  # device -> host intermediate-result transfer
    t4: float  # CPU leaf search

    @property
    def sequential(self) -> float:
        """Sequential bucket handling: T_S = sum(T_i)."""
        return self.t1 + self.t2 + self.t3 + self.t4

    @property
    def pipelined(self) -> float:
        """CPU-GPU pipelining: T_P = T1 + max(T2 + T3, T4)."""
        return self.t1 + max(self.t2 + self.t3, self.t4)

    @property
    def double_buffered(self) -> float:
        """Pipelining + double buffering: T_P = max(T2, T4).

        Valid when the transfers fit under the computation (the paper's
        assumption); enforced by falling back to the pipelined bound
        otherwise.
        """
        return max(self.t2, self.t4, self.t1 + self.t3)

    def latency_ns(self, strategy: str) -> float:
        """Average query latency per strategy (section 5.4)."""
        if strategy == "sequential":
            return self.sequential
        if strategy == "pipelined":
            return self.t1 + self.t2 + self.t3 + self.t4 / 2.0
        if strategy == "double_buffered":
            return 2.0 * self.t2 + self.t4 / 2.0 + self.t1 + self.t3
        raise ValueError(f"unknown bucket strategy: {strategy!r}")

    def throughput_qps(self, strategy: str, bucket_size: int) -> float:
        if strategy == "sequential":
            t = self.sequential
        elif strategy == "pipelined":
            t = self.pipelined
        elif strategy == "double_buffered":
            t = self.double_buffered
        else:
            raise ValueError(f"unknown bucket strategy: {strategy!r}")
        return bucket_size * 1e9 / t


def hybrid_bucket_costs(
    machine: MachineConfig,
    spec: KeySpec,
    bucket_size: int,
    gpu_transactions_per_query: float,
    gpu_levels: float,
    cpu_leaf_profile: CpuQueryProfile,
    cpu_model: Optional[CpuCostModel] = None,
    intermediate_bytes: Optional[int] = None,
    unique_fraction: float = 1.0,
) -> BucketCosts:
    """Assemble T1-T4 for one bucket of the hybrid search.

    ``gpu_transactions_per_query`` and ``cpu_leaf_profile`` come from
    instrumented runs; everything else is machine constants.

    ``unique_fraction`` prices the sorted/deduplicated pipeline: the
    batch engine collapses duplicate queries before stage 1, so every
    stage only processes ``bucket_size * unique_fraction`` effective
    queries (the scatter back to arrival order is a cheap gather,
    folded into the per-query stage overhead).
    """
    if not 0.0 < unique_fraction <= 1.0:
        raise ValueError("unique_fraction must be in (0, 1]")
    if cpu_model is None:
        cpu_model = CpuCostModel(machine.cpu)
    result_size = intermediate_bytes if intermediate_bytes else spec.size_bytes
    effective = max(1, int(round(bucket_size * unique_fraction)))
    t1 = machine.pcie.transfer_ns(effective * spec.size_bytes)
    gpu_model = GpuCostModel(machine.gpu, spec.gpu_threads_per_query)
    t2 = gpu_model.kernel_ns(
        int(gpu_transactions_per_query * effective), effective, gpu_levels
    )
    t3 = machine.pcie.transfer_ns(effective * result_size)
    t4 = cpu_model.stage_time_ns(cpu_leaf_profile, effective)
    t4 += bucket_size * HYBRID_STAGE_OVERHEAD_NS / cpu_model.threads
    return BucketCosts(t1=t1, t2=t2, t3=t3, t4=t4)
