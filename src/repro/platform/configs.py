"""Hardware descriptions for the simulated evaluation machines.

All time values are nanoseconds and all sizes bytes unless a unit is part
of the field name.  The specs carry the published characteristics of the
paper's two machines, scaled down by :data:`SCALE_FACTOR` where a quantity
is a *capacity* that must cross the same regime boundaries at our smaller
dataset sizes (LLC size, GPU memory, huge-page size).  Bandwidths and
latencies are kept at their real magnitudes so that absolute throughput
numbers land in the same order of magnitude the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Dataset scaling factor relative to the paper (paper: 8M..1B tuples,
#: simulation default: 128K..16M tuples).  Capacities in the machine
#: configs are divided by this factor.
SCALE_FACTOR = 64

GB = 1024**3
MB = 1024**2
KB = 1024

#: Width of a cache line / the GPU transaction granularity used by the
#: HB+-tree node layouts (bytes).
CACHE_LINE = 64


@dataclass(frozen=True)
class CpuSpec:
    """A multi-core CPU with a cache/TLB hierarchy.

    ``llc_bytes`` is the (scaled) last-level cache capacity, the quantity
    that determines where tree search turns from compute bound into memory
    bound (paper section 5.1).
    """

    name: str
    cores: int
    threads: int
    freq_ghz: float
    llc_bytes: int
    mem_bandwidth_gbs: float
    mem_latency_ns: float
    has_avx2: bool
    simd_width_bits: int = 256
    cache_line: int = CACHE_LINE
    #: data TLB entries for small (4 KB) pages
    tlb_entries_small: int = 64
    #: second-level TLB entries shared by small pages
    stlb_entries: int = 512
    #: TLB entries available for huge pages (the paper: "only four
    #: entries in the last level TLB for 1GB pages")
    tlb_entries_huge: int = 4
    small_page: int = 4 * KB
    #: scaled stand-in for a 1 GB page (1 GB / SCALE_FACTOR = 16 MB)
    huge_page: int = GB // SCALE_FACTOR
    #: memory accesses required for a page walk (Intel SDM: 5 levels for
    #: 4 KB pages, 3 for 1 GB pages)
    page_walk_accesses_small: int = 5
    page_walk_accesses_huge: int = 3
    #: effective average page-walk cost in ns.  Most walk accesses hit
    #: the paging-structure caches, so the cost is far below
    #: ``accesses * mem_latency``; the 5-vs-3 access asymmetry is kept
    #: (this asymmetry is why the all-huge-pages configuration wins in
    #: Fig 7(b) even where it misses more often).
    page_walk_ns_small: float = 26.0
    page_walk_ns_huge: float = 14.0
    #: effective memory-level parallelism of one thread's software
    #: pipeline (limited by line-fill buffers and dependent address
    #: generation; calibrated so P=16 software pipelining yields the
    #: paper's ~2.5x speedup, Fig 20)
    max_memory_parallelism: int = 2

    @property
    def page_walk_cost_small_ns(self) -> float:
        """Average cost of a 4 KB page walk."""
        return self.page_walk_ns_small

    @property
    def page_walk_cost_huge_ns(self) -> float:
        """Average cost of a huge-page walk (cheaper: fewer levels)."""
        return self.page_walk_ns_huge

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.freq_ghz

    @property
    def line_transfer_ns(self) -> float:
        """Time to stream one cache line at full memory bandwidth."""
        return self.cache_line / self.mem_bandwidth_gbs


@dataclass(frozen=True)
class GpuSpec:
    """A discrete CUDA-style GPU.

    The paper's search kernels are device-memory-bandwidth bound, so the
    decisive fields are ``mem_bandwidth_gbs`` and ``device_mem_bytes``
    (the capacity wall that motivates the hybrid design).
    """

    name: str
    sms: int
    cores: int
    freq_ghz: float
    device_mem_bytes: int
    mem_bandwidth_gbs: float
    mem_latency_ns: float
    warp_size: int = 32
    max_resident_threads: int = 2048 * 12
    #: kernel launch / scheduling overhead (K_init in the paper's model)
    kernel_init_ns: float = 8_000.0
    #: supported device-memory transaction sizes
    transaction_sizes: tuple = (32, 64, 128)
    shared_mem_banks: int = 32
    #: fraction of peak bandwidth achieved by dependent random 64-byte
    #: transactions (tree descent is the worst case for GDDR5: no
    #: locality, one address dependency per level)
    random_access_efficiency: float = 0.32

    @property
    def effective_bandwidth_gbs(self) -> float:
        """Sustained bandwidth for the tree-search access pattern."""
        return self.mem_bandwidth_gbs * self.random_access_efficiency

    @property
    def transaction_ns(self) -> float:
        """Time to service one 64-byte transaction at sustained rate."""
        return CACHE_LINE / self.effective_bandwidth_gbs


@dataclass(frozen=True)
class PcieSpec:
    """The CPU<->GPU interconnect (T_init + bytes/bandwidth model)."""

    name: str
    bandwidth_gbs: float
    #: per-transfer initialization latency (T_init in the paper's model)
    t_init_ns: float

    def transfer_ns(self, nbytes: int) -> float:
        """Paper section 5.4: ``T = T_init + size / Bandwidth``."""
        return self.t_init_ns + nbytes / self.bandwidth_gbs


@dataclass(frozen=True)
class MachineConfig:
    """A full evaluation platform: CPU + discrete GPU + interconnect."""

    name: str
    cpu: CpuSpec
    gpu: GpuSpec
    pcie: PcieSpec
    #: optimal software-pipeline length found in section 4.2
    software_pipeline_len: int = 16
    #: optimal bucket size found in section 6.3
    bucket_size: int = 16 * 1024

    def with_cpu(self, **kwargs) -> "MachineConfig":
        return replace(self, cpu=replace(self.cpu, **kwargs))

    def with_gpu(self, **kwargs) -> "MachineConfig":
        return replace(self, gpu=replace(self.gpu, **kwargs))


def machine_m1(scale: int = SCALE_FACTOR) -> MachineConfig:
    """The paper's first machine: Xeon E5-2665 + Geforce GTX 780.

    The Xeon E5-2665 (Sandy Bridge) supports AVX but *not* AVX2, which is
    why the paper runs the SIMD node-search comparison (Fig 8) on M2.
    """
    cpu = CpuSpec(
        name="Intel Xeon E5-2665",
        cores=8,
        threads=16,
        freq_ghz=2.4,
        # capacities scale by SCALE_FACTOR; the LLC scales by an extra
        # 8x because tree *depth* does not scale -- preserving the
        # misses-per-query regime (how many tree levels fit in cache)
        # requires a proportionally smaller cache at scaled tree sizes
        llc_bytes=20 * MB // (scale * 8),
        mem_bandwidth_gbs=51.2,
        mem_latency_ns=85.0,
        has_avx2=False,
        huge_page=GB // scale,
    )
    gpu = GpuSpec(
        name="Nvidia Geforce GTX 780",
        sms=12,
        cores=2304,
        freq_ghz=0.863,
        device_mem_bytes=3 * GB // scale,
        mem_bandwidth_gbs=288.4,
        mem_latency_ns=350.0,
        max_resident_threads=2048 * 12,
        kernel_init_ns=12_000.0,
    )
    pcie = PcieSpec(name="PCIe 3.0 x16", bandwidth_gbs=12.0, t_init_ns=9_000.0)
    return MachineConfig(name="M1", cpu=cpu, gpu=gpu, pcie=pcie)


def machine_modern(scale: int = SCALE_FACTOR) -> MachineConfig:
    """A contemporary extrapolation platform (not in the paper).

    Roughly an EPYC-class 32-core server with an A100-class accelerator
    on a PCIe 4.0 x16 link.  Used by the extrapolation benchmark to ask
    how the 2016 design's trade-offs shift on modern hardware: the GPU
    and link got faster *relative to* CPU memory, so the hybrid's edge
    widens and the CPU leaf stage becomes the clear bottleneck.
    """
    cpu = CpuSpec(
        name="32-core server CPU (extrapolation)",
        cores=32,
        threads=64,
        freq_ghz=3.0,
        llc_bytes=256 * MB // (scale * 8),
        mem_bandwidth_gbs=200.0,
        mem_latency_ns=90.0,
        has_avx2=True,
        huge_page=GB // scale,
    )
    gpu = GpuSpec(
        name="A100-class GPU (extrapolation)",
        sms=108,
        cores=6912,
        freq_ghz=1.41,
        device_mem_bytes=40 * GB // scale,
        mem_bandwidth_gbs=1555.0,
        mem_latency_ns=300.0,
        max_resident_threads=2048 * 108,
        kernel_init_ns=6_000.0,
        random_access_efficiency=0.35,
    )
    pcie = PcieSpec(name="PCIe 4.0 x16", bandwidth_gbs=25.0,
                    t_init_ns=5_000.0)
    return MachineConfig(name="MODERN", cpu=cpu, gpu=gpu, pcie=pcie)


def machine_m2(scale: int = SCALE_FACTOR) -> MachineConfig:
    """The paper's second machine: Core i7-4800MQ + Geforce GTX 770M.

    M2's GPU is comparatively weak, which is the setting where the load
    balancing scheme of section 5.5 pays off (Fig 18).
    """
    cpu = CpuSpec(
        name="Intel Core i7-4800MQ",
        cores=4,
        threads=8,
        freq_ghz=2.7,
        # see machine_m1 for the extra 8x on the LLC
        llc_bytes=6 * MB // (scale * 8),
        mem_bandwidth_gbs=25.6,
        mem_latency_ns=75.0,
        has_avx2=True,
        huge_page=GB // scale,
    )
    gpu = GpuSpec(
        name="Nvidia Geforce GTX 770M",
        sms=5,
        cores=960,
        freq_ghz=0.706,
        device_mem_bytes=3 * GB // scale,
        mem_bandwidth_gbs=96.0,
        mem_latency_ns=400.0,
        max_resident_threads=2048 * 5,
        kernel_init_ns=12_000.0,
        # mobile GDDR5 sustains a far smaller fraction of its peak for
        # dependent random transactions; this is what makes the plain
        # HB+-tree *lose* to the CPU tree on M2 (Fig 18) until the load
        # balancing scheme shifts work back to the CPU
        random_access_efficiency=0.13,
    )
    pcie = PcieSpec(name="PCIe 3.0 x8", bandwidth_gbs=6.0, t_init_ns=11_000.0)
    return MachineConfig(name="M2", cpu=cpu, gpu=gpu, pcie=pcie)
