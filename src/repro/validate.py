"""Self-validation utilities for every index structure.

``validate_index(tree)`` runs the deepest consistency checks available
for the structure and raises ``ValidationError`` with a description on
the first violation.  For hybrid trees this includes cross-checking the
GPU mirror against the CPU structure by replaying a sample of real
queries through the *literal* SIMT kernel.

Deployments call this after batch updates or reloads; the test suite
uses it as an oracle.
"""

from __future__ import annotations

import numpy as np

from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.cpu.css_tree import CssTree
from repro.cpu.fast_tree import FastTree


class ValidationError(AssertionError):
    """An index structure failed a consistency check."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValidationError(message)


def _validate_sorted_unique(keys: np.ndarray, what: str) -> None:
    if len(keys) > 1:
        _require(bool(np.all(keys[1:] > keys[:-1])),
                 f"{what}: keys not strictly increasing")


def validate_implicit(tree: ImplicitCpuBPlusTree) -> None:
    """Breadth-first layout invariants of the implicit B+-tree."""
    sentinel = tree.spec.max_value
    flat = tree.leaf_keys.reshape(-1)
    real = flat[flat != sentinel]
    _validate_sorted_unique(real, "implicit leaves")
    _require(len(real) == tree.num_tuples,
             "implicit: stored tuple count mismatch")
    # padding must be trailing within the flattened leaf array
    first_pad = np.argmax(flat == sentinel) if np.any(flat == sentinel) \
        else len(flat)
    _require(bool(np.all(flat[first_pad:] == sentinel)),
             "implicit: sentinel padding is not trailing")
    # every inner node's keys are non-decreasing
    for level, arr in enumerate(tree.inner_levels):
        diffs_ok = np.all(arr[:, 1:] >= arr[:, :-1])
        _require(bool(diffs_ok), f"implicit level {level}: keys unsorted")
    # routing: every stored key must be found
    sample = real[:: max(1, len(real) // 512)]
    out = tree.lookup_batch(sample)
    _require(bool(np.all(out != sentinel)),
             "implicit: a stored key fails lookup")


def validate_regular(tree: RegularCpuBPlusTree) -> None:
    """Full structural invariants of the regular B+-tree."""
    try:
        tree.check_invariants()
    except AssertionError as exc:
        raise ValidationError(f"regular tree: {exc}") from exc


def validate_css(tree: CssTree) -> None:
    _validate_sorted_unique(tree.sorted_keys, "css data")
    for level, arr in enumerate(tree.directory):
        _require(bool(np.all(arr[:, 1:] >= arr[:, :-1])),
                 f"css directory level {level}: keys unsorted")
    sample = tree.sorted_keys[:: max(1, len(tree.sorted_keys) // 512)]
    for key in sample.tolist():
        _require(tree.lookup(int(key), instrument=False) is not None,
                 f"css: stored key {key} fails lookup")


def validate_fast(tree: FastTree) -> None:
    _validate_sorted_unique(tree.sorted_keys, "fast data")
    sample = tree.sorted_keys[:: max(1, len(tree.sorted_keys) // 512)]
    for key in sample.tolist():
        _require(tree.lookup(int(key), instrument=False) is not None,
                 f"fast: stored key {key} fails lookup")


def validate_hybrid_implicit(tree: ImplicitHBPlusTree,
                             mirror_sample: int = 64) -> None:
    """CPU structure + GPU mirror consistency (literal kernel replay)."""
    validate_implicit(tree.cpu_tree)
    # the flat device image must equal the CPU inner levels
    flat = tree.iseg_buffer.array
    for level, (off, size) in enumerate(
        zip(tree.level_offsets, tree.level_sizes)
    ):
        cpu_level = tree.cpu_tree.inner_levels[level].reshape(-1)
        _require(bool(np.array_equal(flat[off: off + size], cpu_level)),
                 f"hybrid implicit: GPU mirror stale at level {level}")
    # literal SIMT kernel must agree with the CPU descent
    stored = tree.cpu_tree.leaf_keys.reshape(-1)
    stored = stored[stored != tree.spec.max_value]
    if len(stored):
        rng = np.random.default_rng(13)
        sample = rng.choice(stored, size=min(mirror_sample, len(stored)))
        literal = tree.gpu_search_bucket_literal(sample)
        cpu = np.asarray(
            [tree.cpu_tree._descend(int(k), instrument=False)
             for k in sample],
            dtype=np.int64,
        )
        _require(bool(np.array_equal(literal, cpu)),
                 "hybrid implicit: SIMT kernel disagrees with CPU descent")


def validate_hybrid_regular(tree: HBPlusTree,
                            mirror_sample: int = 64) -> None:
    validate_regular(tree.cpu_tree)
    stored = np.asarray([k for k, _v in tree.cpu_tree.items()],
                        dtype=tree.spec.dtype)
    if len(stored):
        rng = np.random.default_rng(13)
        sample = rng.choice(stored, size=min(mirror_sample, len(stored)))
        literal = tree.gpu_search_bucket_literal(sample)
        vector = tree.gpu_search_bucket(sample).codes
        _require(bool(np.array_equal(literal, vector)),
                 "hybrid regular: SIMT kernel disagrees with twin")
        out = tree.cpu_finish_bucket(sample, literal)
        _require(bool(np.all(out != tree.spec.max_value)),
                 "hybrid regular: a stored key fails the hybrid lookup")


_DISPATCH = [
    (ImplicitHBPlusTree, validate_hybrid_implicit),
    (HBPlusTree, validate_hybrid_regular),
    (ImplicitCpuBPlusTree, validate_implicit),
    (RegularCpuBPlusTree, validate_regular),
    (CssTree, validate_css),
    (FastTree, validate_fast),
]


def validate_index(tree) -> None:
    """Dispatch to the structure's deepest validator."""
    for cls, fn in _DISPATCH:
        if isinstance(tree, cls):
            fn(tree)
            return
    raise TypeError(f"no validator for {type(tree).__name__}")
