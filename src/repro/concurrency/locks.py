"""A lock table for the logical-thread scheduler.

Locks are identified by hashable resource ids (the updaters use
last-level inner-node ids).  The table tracks, per lock, who holds it
and until when — the scheduler is event driven, so a "held" lock is
simply a release timestamp in the future.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Hashable, Optional, Tuple


@dataclass
class LockStats:
    """Aggregate contention counters."""

    acquisitions: int = 0
    contended_acquisitions: int = 0
    total_wait_ns: float = 0.0

    @property
    def contention_rate(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return self.contended_acquisitions / self.acquisitions

    def reset(self) -> None:
        self.acquisitions = 0
        self.contended_acquisitions = 0
        self.total_wait_ns = 0.0

    def copy(self) -> "LockStats":
        """A detached snapshot; later acquisitions won't mutate it."""
        return replace(self)


class LockTable:
    """Event-time lock bookkeeping.

    ``acquire(resource, now, hold_ns)`` returns the time the lock is
    actually granted (``>= now``); the caller holds it for ``hold_ns``
    from that moment.
    """

    def __init__(self):
        # resource -> (held_until_ns, holder)
        self._held: Dict[Hashable, Tuple[float, Optional[int]]] = {}
        self.stats = LockStats()

    def acquire(self, resource: Hashable, now: float, hold_ns: float,
                holder: Optional[int] = None) -> float:
        """Grant the lock at the earliest possible time; returns it."""
        if hold_ns < 0:
            raise ValueError("hold time cannot be negative")
        held_until, _prev = self._held.get(resource, (0.0, None))
        granted = max(now, held_until)
        self.stats.acquisitions += 1
        if granted > now:
            self.stats.contended_acquisitions += 1
            self.stats.total_wait_ns += granted - now
        self._held[resource] = (granted + hold_ns, holder)
        return granted

    def available_at(self, resource: Hashable) -> float:
        """When the resource frees (0.0 if never held)."""
        return self._held.get(resource, (0.0, None))[0]

    def holder_of(self, resource: Hashable) -> Optional[int]:
        return self._held.get(resource, (0.0, None))[1]

    def reset(self) -> None:
        self._held.clear()
        self.stats = LockStats()
