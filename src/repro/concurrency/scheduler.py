"""Event-driven execution of operations over logical threads.

Each :class:`Operation` has an unlocked phase (e.g. the tree descent)
and an optional locked phase (the in-leaf modification under the
last-level node's lock).  Operations are dealt to the least-loaded
thread (work stealing approximation); a thread blocks when its
operation's lock is held.

The result is a faithful interleaving *timeline* — makespan, busy and
wait time per thread, lock contention — replacing the closed-form
thread-scaling formulas for workloads where contention matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence

from repro.concurrency.locks import LockStats, LockTable


@dataclass(frozen=True)
class Operation:
    """One schedulable unit of work."""

    #: time spent before any lock is needed (descent, key compare)
    work_ns: float
    #: resource to lock for the second phase (None = lock-free op)
    lock: Optional[Hashable] = None
    #: time spent holding the lock (leaf modification)
    locked_ns: float = 0.0
    #: free-form tag (e.g. "search"/"update") for reporting
    tag: str = "op"

    def __post_init__(self):
        if self.work_ns < 0 or self.locked_ns < 0:
            raise ValueError("operation durations cannot be negative")


@dataclass(frozen=True)
class OpSpan:
    """Placement of one operation on the simulated timeline.

    ``granted_ns`` is when the op's lock was granted (equal to
    ``start_ns + work_ns`` for lock-free operations) — so
    ``[granted_ns, end_ns)`` is the locked interval and
    ``[start_ns, end_ns)`` the whole op.
    """

    thread: int
    start_ns: float
    granted_ns: float
    end_ns: float


@dataclass
class ScheduleResult:
    """Outcome of one scheduler run."""

    makespan_ns: float
    thread_busy_ns: List[float]
    thread_wait_ns: List[float]
    lock_stats: LockStats
    operations: int
    per_tag_count: dict = field(default_factory=dict)
    #: one :class:`OpSpan` per operation, in submission order — only
    #: recorded when the run asked for it (``record_spans=True``)
    spans: Optional[List[OpSpan]] = None

    @property
    def threads(self) -> int:
        return len(self.thread_busy_ns)

    @property
    def throughput_ops(self) -> float:
        """Operations per second."""
        if self.makespan_ns <= 0:
            return float("inf")
        return self.operations * 1e9 / self.makespan_ns

    @property
    def utilization(self) -> float:
        """Fraction of thread-time spent working (not waiting/idle)."""
        total = self.makespan_ns * self.threads
        if total <= 0:
            return 1.0
        return sum(self.thread_busy_ns) / total

    @property
    def parallel_speedup(self) -> float:
        """Achieved speedup over a single thread doing all the work."""
        serial = sum(self.thread_busy_ns)
        if self.makespan_ns <= 0:
            return float(self.threads)
        return serial / self.makespan_ns


class ThreadScheduler:
    """Runs a list of operations over ``threads`` logical threads."""

    def __init__(self, threads: int):
        if threads < 1:
            raise ValueError("need at least one thread")
        self.threads = threads

    def run(
        self, operations: Sequence[Operation], record_spans: bool = False
    ) -> ScheduleResult:
        """Deal operations round-robin-by-availability and simulate.

        ``record_spans=True`` additionally records each operation's
        timeline placement — the optimistic mixed engine replays those
        spans to find search/writer overlaps on the same leaf.
        """
        locks = LockTable()
        clock = [0.0] * self.threads  # per-thread current time
        busy = [0.0] * self.threads
        wait = [0.0] * self.threads
        tags: dict = {}
        spans: Optional[List[OpSpan]] = [] if record_spans else None
        for op in operations:
            tags[op.tag] = tags.get(op.tag, 0) + 1
            # the next free thread picks up the next operation — this is
            # what a work queue does
            t = min(range(self.threads), key=clock.__getitem__)
            start = clock[t]
            now = start + op.work_ns
            busy[t] += op.work_ns
            granted = now
            if op.lock is not None:
                granted = locks.acquire(op.lock, now, op.locked_ns, holder=t)
                wait[t] += granted - now
                now = granted + op.locked_ns
                busy[t] += op.locked_ns
            clock[t] = now
            if spans is not None:
                spans.append(OpSpan(t, start, granted, now))
        makespan = max(clock) if operations else 0.0
        # detach the lock stats: the result must stay immutable even if
        # the caller keeps (or reuses) a reference to the lock table
        return ScheduleResult(
            makespan_ns=makespan,
            thread_busy_ns=busy,
            thread_wait_ns=wait,
            lock_stats=locks.stats.copy(),
            operations=len(operations),
            per_tag_count=tags,
            spans=spans,
        )
