"""Discrete-event simulation of logical CPU threads and locks.

The paper's update methods rely on multi-threaded execution with
per-node locks (section 5.6) and a mutex-guarded query thread pool
(appendix B.3).  This package provides the substrate to simulate that
faithfully instead of with closed-form formulas:

* :mod:`repro.concurrency.locks` — a lock table with contention
  accounting,
* :mod:`repro.concurrency.scheduler` — an event-driven scheduler that
  runs operation lists over N logical threads, blocking on held locks
  and reporting makespan, busy/wait time and contention.
"""

from repro.concurrency.locks import LockStats, LockTable
from repro.concurrency.scheduler import (
    Operation,
    OpSpan,
    ScheduleResult,
    ThreadScheduler,
)

__all__ = [
    "LockTable",
    "LockStats",
    "Operation",
    "OpSpan",
    "ThreadScheduler",
    "ScheduleResult",
]
