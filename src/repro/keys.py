"""Key/value type descriptions shared by all tree variants.

The paper develops 64-bit and 32-bit versions of every tree.  A cache
line (64 bytes) holds 8 64-bit or 16 32-bit variables, which determines
node fanouts throughout the designs (section 4.1 / 5.2):

==============================  =======  =======
quantity                         64-bit   32-bit
==============================  =======  =======
keys per cache line                    8       16
implicit CPU tree fanout               9       17
implicit HB+-tree fanout               8       16
regular tree fanout                   64      256
leaf pairs per cache line (P_L)        4        8
==============================  =======  =======

Keys are unsigned; the maximum representable value (``2**n - 1``) is
reserved as the padding sentinel — the paper sets "all empty keys of each
inner node to the maximum value" so node search needs no size field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class KeySpec:
    """Width-dependent constants for one key size."""

    bits: int
    dtype: type
    cache_line: int = 64

    @property
    def size_bytes(self) -> int:
        return self.bits // 8

    @property
    def max_value(self) -> int:
        """The sentinel: ``2**n - 1`` for an n-bit unsigned integer."""
        return (1 << self.bits) - 1

    @property
    def keys_per_line(self) -> int:
        return self.cache_line // self.size_bytes

    @property
    def leaf_pairs_per_line(self) -> int:
        """P_L: key-value pairs per cache line (paper section 4.1)."""
        return self.keys_per_line // 2

    @property
    def implicit_cpu_fanout(self) -> int:
        """Fanout of the CPU-optimized implicit tree: keys/line + 1."""
        return self.keys_per_line + 1

    @property
    def implicit_hybrid_fanout(self) -> int:
        """Fanout of the implicit HB+-tree (last key pinned to MAX)."""
        return self.keys_per_line

    @property
    def regular_fanout(self) -> int:
        """F_I of the regular trees: 64 (64-bit) or 256 (32-bit)."""
        return self.keys_per_line**2

    @property
    def gpu_threads_per_query(self) -> int:
        """T in section 5.3: 8 for 64-bit keys, 16 for 32-bit keys."""
        return self.keys_per_line

    def as_key_array(self, values) -> np.ndarray:
        return np.asarray(values, dtype=self.dtype)


KEY64 = KeySpec(bits=64, dtype=np.uint64)
KEY32 = KeySpec(bits=32, dtype=np.uint32)


def key_spec(bits: int) -> KeySpec:
    """Return the :class:`KeySpec` for 32 or 64 bit keys."""
    if bits == 64:
        return KEY64
    if bits == 32:
        return KEY32
    raise ValueError(f"unsupported key width: {bits} (expected 32 or 64)")
