"""Key/value type descriptions shared by all tree variants.

The paper develops 64-bit and 32-bit versions of every tree.  A cache
line (64 bytes) holds 8 64-bit or 16 32-bit variables, which determines
node fanouts throughout the designs (section 4.1 / 5.2):

==============================  =======  =======
quantity                         64-bit   32-bit
==============================  =======  =======
keys per cache line                    8       16
implicit CPU tree fanout               9       17
implicit HB+-tree fanout               8       16
regular tree fanout                   64      256
leaf pairs per cache line (P_L)        4        8
==============================  =======  =======

Keys are unsigned; the maximum representable value (``2**n - 1``) is
reserved as the padding sentinel — the paper sets "all empty keys of each
inner node to the maximum value" so node search needs no size field.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class KeySpec:
    """Width-dependent constants for one key size."""

    bits: int
    dtype: type
    cache_line: int = 64

    @property
    def size_bytes(self) -> int:
        return self.bits // 8

    @property
    def max_value(self) -> int:
        """The sentinel: ``2**n - 1`` for an n-bit unsigned integer."""
        return (1 << self.bits) - 1

    @property
    def keys_per_line(self) -> int:
        return self.cache_line // self.size_bytes

    @property
    def leaf_pairs_per_line(self) -> int:
        """P_L: key-value pairs per cache line (paper section 4.1)."""
        return self.keys_per_line // 2

    @property
    def implicit_cpu_fanout(self) -> int:
        """Fanout of the CPU-optimized implicit tree: keys/line + 1."""
        return self.keys_per_line + 1

    @property
    def implicit_hybrid_fanout(self) -> int:
        """Fanout of the implicit HB+-tree (last key pinned to MAX)."""
        return self.keys_per_line

    @property
    def regular_fanout(self) -> int:
        """F_I of the regular trees: 64 (64-bit) or 256 (32-bit)."""
        return self.keys_per_line**2

    @property
    def gpu_threads_per_query(self) -> int:
        """T in section 5.3: 8 for 64-bit keys, 16 for 32-bit keys."""
        return self.keys_per_line

    def as_key_array(self, values) -> np.ndarray:
        return np.asarray(values, dtype=self.dtype)

    def coerce(self, values) -> np.ndarray:
        """Coerce any integer sequence to the key dtype, checked, once.

        Accepts arrays of any integer dtype (and plain Python ints,
        which may exceed 64 bits) and returns an array of ``dtype``.
        Unlike a bare ``np.asarray(values, dtype=...)`` — which silently
        wraps negative or oversized values — out-of-range keys raise
        ``OverflowError`` and non-integer input raises ``TypeError``.
        Arrays already of the key dtype pass through without a copy.
        """
        arr = np.asarray(values)
        if arr.dtype == self.dtype:
            return arr
        if arr.dtype == np.bool_:
            # bool subclasses int, so operator.index(True) == 1 would
            # silently pass below — but a boolean is not a key; reject
            # scalars, lists and arrays of bool/np.bool_ alike
            raise TypeError(
                "keys must be integers, got booleans (bool is not a "
                "key type even though it subclasses int)"
            )
        if arr.dtype == object or (
            not isinstance(values, np.ndarray)
            and not np.issubdtype(arr.dtype, np.integer)
        ):
            # Python ints in [2**63, 2**64) make np.asarray fall back to
            # float64 — re-read the original values exactly.  operator
            # .index() rejects genuine floats with TypeError.
            obj = np.asarray(values, dtype=object)
            flat_obj = obj.reshape(-1)
            if any(isinstance(v, (bool, np.bool_)) for v in flat_obj):
                # mixed object lists like [2**63, True] reach this path;
                # operator.index would accept the bool — reject it
                raise TypeError(
                    "keys must be integers, got booleans (bool is not "
                    "a key type even though it subclasses int)"
                )
            try:
                flat = [operator.index(v) for v in flat_obj]
            except TypeError:
                raise TypeError(
                    f"keys must be integers, got dtype {arr.dtype!s}"
                ) from None
            bad = [v for v in flat if v < 0 or v > self.max_value]
            if bad:
                raise OverflowError(
                    f"key {bad[0]} outside [0, {self.max_value}] for "
                    f"{self.bits}-bit keys"
                )
            return np.asarray(flat, dtype=self.dtype).reshape(obj.shape)
        if not np.issubdtype(arr.dtype, np.integer):
            raise TypeError(
                f"keys must be integers, got dtype {arr.dtype!s}"
            )
        if arr.size:
            lo = int(arr.min())
            hi = int(arr.max())
            if lo < 0 or hi > self.max_value:
                raise OverflowError(
                    f"key {lo if lo < 0 else hi} outside "
                    f"[0, {self.max_value}] for {self.bits}-bit keys"
                )
        return arr.astype(self.dtype)


KEY64 = KeySpec(bits=64, dtype=np.uint64)
KEY32 = KeySpec(bits=32, dtype=np.uint32)


def key_spec(bits: int) -> KeySpec:
    """Return the :class:`KeySpec` for 32 or 64 bit keys."""
    if bits == 64:
        return KEY64
    if bits == 32:
        return KEY32
    raise ValueError(f"unsupported key width: {bits} (expected 32 or 64)")
