"""Fault kinds, the seeded plan, and the typed fault exceptions."""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields


class FaultKind(enum.Enum):
    """Everything the injector knows how to break."""

    TRANSFER_FAIL = "transfer_fail"
    TRANSFER_TIMEOUT = "transfer_timeout"
    KERNEL_FAIL = "kernel_fail"
    KERNEL_HANG = "kernel_hang"
    BITFLIP = "bitflip"
    SYNC_INTERRUPT = "sync_interrupt"
    TORN_WRITE = "torn_write"
    STORAGE_BITFLIP = "storage_bitflip"
    PARTIAL_READ = "partial_read"


class FaultError(RuntimeError):
    """Base class of every injected fault."""

    kind: FaultKind

    def __init__(self, kind: FaultKind, site: str, index: int):
        super().__init__(f"injected {kind.value} at {site}[{index}]")
        self.kind = kind
        self.site = site
        self.index = index


class TransferFault(FaultError):
    """A PCIe transfer aborted; the device buffer was not modified."""

    def __init__(self, site: str, index: int):
        super().__init__(FaultKind.TRANSFER_FAIL, site, index)


class TransferTimeout(FaultError):
    """A PCIe transfer stalled past the watchdog budget."""

    def __init__(self, site: str, index: int):
        super().__init__(FaultKind.TRANSFER_TIMEOUT, site, index)


class KernelLaunchFault(FaultError):
    """A kernel launch was rejected by the device."""

    def __init__(self, site: str, index: int):
        super().__init__(FaultKind.KERNEL_FAIL, site, index)


class KernelHang(FaultError):
    """A kernel hung and was killed by the watchdog; its work is lost."""

    def __init__(self, site: str, index: int):
        super().__init__(FaultKind.KERNEL_HANG, site, index)


class SyncInterrupted(FaultError):
    """An I-segment sync aborted, leaving the GPU mirror stale."""

    def __init__(self, site: str, index: int):
        super().__init__(FaultKind.SYNC_INTERRUPT, site, index)


class TornWrite(FaultError):
    """The process died mid-write: only a prefix of the bytes landed.

    ``fraction`` is the deterministically drawn share of the payload
    that reached the medium before the crash.
    """

    def __init__(self, site: str, index: int, fraction: float):
        super().__init__(FaultKind.TORN_WRITE, site, index)
        self.fraction = fraction


class PartialRead(FaultError):
    """A read returned fewer bytes than the file claims to hold.

    ``fraction`` is the share of the requested bytes actually read.
    """

    def __init__(self, site: str, index: int, fraction: float):
        super().__init__(FaultKind.PARTIAL_READ, site, index)
        self.fraction = fraction


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault, for replay verification and post-mortems."""

    kind: FaultKind
    site: str
    #: per-site operation index at which the fault fired
    index: int
    #: extra payload, e.g. flipped (element, bit) for BITFLIP
    detail: tuple = ()


@dataclass(frozen=True)
class FaultPlan:
    """Seeded per-kind fault rates (probability per operation).

    All rates are in ``[0, 1]``.  The plan is immutable; to change a
    rate, build a new plan.  ``FaultPlan.uniform(rate, seed)`` sets
    every GPU-side rate at once — the knob the fault-rate sweep turns.
    """

    seed: int = 0
    transfer_fail: float = 0.0
    transfer_timeout: float = 0.0
    kernel_fail: float = 0.0
    kernel_hang: float = 0.0
    bitflip: float = 0.0
    sync_interrupt: float = 0.0
    torn_write: float = 0.0
    storage_bitflip: float = 0.0
    partial_read: float = 0.0

    def __post_init__(self):
        for f in fields(self):
            if f.name == "seed":
                continue
            v = getattr(self, f.name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"fault rate {f.name}={v} outside [0, 1]")

    @staticmethod
    def uniform(rate: float, seed: int = 0) -> "FaultPlan":
        """Every fault kind fires with the same per-op probability."""
        return FaultPlan(
            seed=seed,
            transfer_fail=rate,
            transfer_timeout=rate,
            kernel_fail=rate,
            kernel_hang=rate,
            bitflip=rate,
            sync_interrupt=rate,
        )

    @staticmethod
    def storage(rate: float, seed: int = 0) -> "FaultPlan":
        """Every *storage* fault kind fires with the same per-op
        probability; GPU-side rates stay zero (the knob the lifecycle
        fault drill turns — see :mod:`repro.lifecycle`)."""
        return FaultPlan(
            seed=seed,
            torn_write=rate,
            storage_bitflip=rate,
            partial_read=rate,
        )

    @staticmethod
    def none(seed: int = 0) -> "FaultPlan":
        """A plan that never fires (useful as an explicit baseline)."""
        return FaultPlan(seed=seed)
