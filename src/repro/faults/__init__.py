"""Deterministic fault injection for the simulated CPU-GPU platform.

The paper assumes a perfectly reliable GPU, PCIe link and I-segment
mirror.  A production index cannot: transfers fail or time out, kernel
launches fail or hang, device memory bits flip, and an interrupted
I-segment sync leaves a stale mirror that would silently return wrong
results.  This package injects exactly those faults into the simulated
substrates (:mod:`repro.gpusim`) — deterministically, so every failure
scenario replays bit-for-bit from a seed.

* :class:`FaultPlan` — seeded per-site fault rates;
* :class:`FaultInjector` — draws counter-based decisions (site, op
  index) -> fault, logs every event, and raises the typed fault
  exceptions the hooks in :mod:`repro.gpusim.transfer`,
  :mod:`repro.gpusim.device` and :mod:`repro.core.hbtree` translate
  into failed operations;
* :mod:`repro.core.resilience` builds retry / repair / degradation on
  top.

Storage is unreliable too: snapshot writes tear mid-stream, bits rot
at rest, reads come back short.  The ``torn_write`` /
``storage_bitflip`` / ``partial_read`` kinds model exactly those, at
their own hook sites (``storage.write`` / ``storage.media`` /
``storage.read``), and :mod:`repro.lifecycle` recovers through them.

Determinism uses *common random numbers*: the decision for the N-th
operation at a site depends only on ``(seed, site, N)``, never on how
many draws other sites made — so the same plan replays identically, and
raising a rate strictly grows the fault set (which is what makes the
fault-rate sweep in ``benchmarks/bench_fault_resilience.py`` decay
monotonically).
"""

from repro.faults.plan import (
    FaultError,
    FaultEvent,
    FaultKind,
    FaultPlan,
    KernelHang,
    KernelLaunchFault,
    PartialRead,
    SyncInterrupted,
    TornWrite,
    TransferFault,
    TransferTimeout,
)
from repro.faults.injector import FaultInjector, FaultStats

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultEvent",
    "FaultError",
    "TransferFault",
    "TransferTimeout",
    "KernelLaunchFault",
    "KernelHang",
    "SyncInterrupted",
    "TornWrite",
    "PartialRead",
    "FaultInjector",
    "FaultStats",
]
