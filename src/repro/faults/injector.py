"""The injector: counter-based deterministic fault decisions.

Each hook site (``"transfer"``, ``"kernel"``, ``"mirror"``, ``"sync"``)
keeps its own operation counter.  The decision for the N-th operation
at a site derives every random draw from ``(plan.seed, site, N)``
through a counter-based RNG, so:

* replaying the same plan against the same operation sequence yields an
  *identical* fault schedule (the acceptance criterion),
* decisions at one site never perturb another site's stream,
* for a fixed ``(site, N)`` the underlying uniform draw is shared
  across plans with different rates — raising a rate can only add
  faults, never move them (common random numbers).
"""

from __future__ import annotations

import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.plan import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    KernelHang,
    KernelLaunchFault,
    PartialRead,
    SyncInterrupted,
    TornWrite,
    TransferFault,
    TransferTimeout,
)


def _site_id(site: str) -> int:
    """Stable 32-bit id of a site name (Python's hash() is salted)."""
    return zlib.crc32(site.encode("ascii"))


@dataclass
class FaultStats:
    """How often each fault kind fired (and how often it could have)."""

    transfer_ops: int = 0
    kernel_ops: int = 0
    mirror_ops: int = 0
    sync_ops: int = 0
    storage_write_ops: int = 0
    storage_media_ops: int = 0
    storage_read_ops: int = 0
    transfer_fails: int = 0
    transfer_timeouts: int = 0
    kernel_fails: int = 0
    kernel_hangs: int = 0
    bitflips: int = 0
    sync_interrupts: int = 0
    torn_writes: int = 0
    storage_bitflips: int = 0
    partial_reads: int = 0

    @property
    def total_faults(self) -> int:
        return (
            self.transfer_fails + self.transfer_timeouts + self.kernel_fails
            + self.kernel_hangs + self.bitflips + self.sync_interrupts
            + self.torn_writes + self.storage_bitflips + self.partial_reads
        )

    def snapshot(self) -> Dict[str, int]:
        return {
            "transfer_ops": self.transfer_ops,
            "kernel_ops": self.kernel_ops,
            "mirror_ops": self.mirror_ops,
            "sync_ops": self.sync_ops,
            "storage_write_ops": self.storage_write_ops,
            "storage_media_ops": self.storage_media_ops,
            "storage_read_ops": self.storage_read_ops,
            "transfer_fails": self.transfer_fails,
            "transfer_timeouts": self.transfer_timeouts,
            "kernel_fails": self.kernel_fails,
            "kernel_hangs": self.kernel_hangs,
            "bitflips": self.bitflips,
            "sync_interrupts": self.sync_interrupts,
            "torn_writes": self.torn_writes,
            "storage_bitflips": self.storage_bitflips,
            "partial_reads": self.partial_reads,
            "total_faults": self.total_faults,
        }


class FaultInjector:
    """Turns a :class:`FaultPlan` into fault decisions at hook sites.

    The injector is passive: the instrumented components
    (:class:`repro.gpusim.transfer.PcieLink`,
    :class:`repro.gpusim.device.GpuDevice`,
    :class:`repro.core.hbtree.HBPlusTree`) call its ``on_*`` hooks and
    translate raised :class:`~repro.faults.plan.FaultError` subclasses
    into failed operations.  ``active`` gates everything — a paused or
    disabled injector never fires (used while building a tree, during
    cost-model sampling, and to model "faults cleared" recovery).
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.active = True
        self.stats = FaultStats()
        self.events: List[FaultEvent] = []
        self._op_counts: Dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------

    def disable(self) -> None:
        """Stop injecting (models the fault condition clearing)."""
        self.active = False

    def enable(self) -> None:
        self.active = True

    @contextmanager
    def paused(self):
        """Temporarily suppress injection (planning, calibration)."""
        prev = self.active
        self.active = False
        try:
            yield self
        finally:
            self.active = prev

    # -- deterministic draws --------------------------------------------

    def _next_index(self, site: str) -> int:
        n = self._op_counts.get(site, 0)
        self._op_counts[site] = n + 1
        return n

    def _rng(self, site: str, index: int) -> np.random.Generator:
        return np.random.default_rng(
            [self.plan.seed & 0x7FFFFFFF, _site_id(site), index]
        )

    def _record(self, kind: FaultKind, site: str, index: int,
                detail: tuple = ()) -> None:
        self.events.append(FaultEvent(kind, site, index, detail))

    # -- hook sites -----------------------------------------------------

    def on_transfer(self, nbytes: int, site: str = "transfer") -> None:
        """Called by the PCIe link before moving ``nbytes``.

        Raises :class:`TransferFault` or :class:`TransferTimeout`.
        """
        if not self.active:
            return
        self.stats.transfer_ops += 1
        index = self._next_index(site)
        rng = self._rng(site, index)
        u_fail, u_timeout = rng.random(), rng.random()
        if u_fail < self.plan.transfer_fail:
            self.stats.transfer_fails += 1
            self._record(FaultKind.TRANSFER_FAIL, site, index, (nbytes,))
            raise TransferFault(site, index)
        if u_timeout < self.plan.transfer_timeout:
            self.stats.transfer_timeouts += 1
            self._record(FaultKind.TRANSFER_TIMEOUT, site, index, (nbytes,))
            raise TransferTimeout(site, index)

    def on_kernel_launch(self, site: str = "kernel") -> None:
        """Called before a kernel launch.

        Raises :class:`KernelLaunchFault` or :class:`KernelHang`.
        """
        if not self.active:
            return
        self.stats.kernel_ops += 1
        index = self._next_index(site)
        rng = self._rng(site, index)
        u_fail, u_hang = rng.random(), rng.random()
        if u_fail < self.plan.kernel_fail:
            self.stats.kernel_fails += 1
            self._record(FaultKind.KERNEL_FAIL, site, index)
            raise KernelLaunchFault(site, index)
        if u_hang < self.plan.kernel_hang:
            self.stats.kernel_hangs += 1
            self._record(FaultKind.KERNEL_HANG, site, index)
            raise KernelHang(site, index)

    def on_sync(self, site: str = "sync") -> None:
        """Called before an I-segment mirror sync.

        Raises :class:`SyncInterrupted`; the caller must leave the old
        mirror in place (stale) and flag it.
        """
        if not self.active:
            return
        self.stats.sync_ops += 1
        index = self._next_index(site)
        if self._rng(site, index).random() < self.plan.sync_interrupt:
            self.stats.sync_interrupts += 1
            self._record(FaultKind.SYNC_INTERRUPT, site, index)
            raise SyncInterrupted(site, index)

    def maybe_corrupt(self, array: np.ndarray,
                      site: str = "mirror") -> List[Tuple[int, int]]:
        """Possibly flip one bit of ``array`` in place (device memory).

        Returns the flipped ``(flat_element, bit)`` positions — empty
        when no corruption fired.  Only integer arrays are supported
        (the I-segment mirror is ``uint64``).
        """
        if not self.active or array.size == 0:
            return []
        self.stats.mirror_ops += 1
        index = self._next_index(site)
        rng = self._rng(site, index)
        if rng.random() >= self.plan.bitflip:
            return []
        flat = array.reshape(-1)
        elem = int(rng.integers(0, flat.size))
        bit = int(rng.integers(0, flat.dtype.itemsize * 8))
        flat[elem] = flat[elem] ^ flat.dtype.type(1 << bit)
        self.stats.bitflips += 1
        self._record(FaultKind.BITFLIP, site, index, (elem, bit))
        return [(elem, bit)]

    # -- storage hook sites (snapshot/restore lifecycle) ----------------

    def on_storage_write(self, nbytes: int,
                         site: str = "storage.write") -> None:
        """Called before an atomic snapshot write of ``nbytes``.

        Raises :class:`TornWrite` carrying the deterministically drawn
        fraction of the payload that reached the medium; the writer must
        persist exactly that prefix (to a temp file — never the target
        path) before propagating, so the crash is observable on disk.
        """
        if not self.active:
            return
        self.stats.storage_write_ops += 1
        index = self._next_index(site)
        rng = self._rng(site, index)
        u_torn, u_frac = rng.random(), rng.random()
        if u_torn < self.plan.torn_write:
            self.stats.torn_writes += 1
            fraction = float(u_frac)
            self._record(FaultKind.TORN_WRITE, site, index,
                         (nbytes, fraction))
            raise TornWrite(site, index, fraction)

    def corrupt_bytes(self, data: bytes,
                      site: str = "storage.media") -> Tuple[bytes, list]:
        """Possibly flip one bit of an at-rest payload.

        Models silent media corruption *after* the checksum was
        computed; returns ``(payload, flips)`` where ``flips`` lists
        the flipped ``(byte, bit)`` positions — empty when nothing
        fired.  The input is never mutated.
        """
        if not self.active or len(data) == 0:
            return data, []
        self.stats.storage_media_ops += 1
        index = self._next_index(site)
        rng = self._rng(site, index)
        if rng.random() >= self.plan.storage_bitflip:
            return data, []
        byte = int(rng.integers(0, len(data)))
        bit = int(rng.integers(0, 8))
        out = bytearray(data)
        out[byte] ^= 1 << bit
        self.stats.storage_bitflips += 1
        self._record(FaultKind.STORAGE_BITFLIP, site, index, (byte, bit))
        return bytes(out), [(byte, bit)]

    def on_storage_read(self, nbytes: int,
                        site: str = "storage.read") -> None:
        """Called after reading ``nbytes`` back from storage.

        Raises :class:`PartialRead` carrying the fraction actually
        read; the reader truncates its buffer to that prefix and lets
        envelope validation reject it (length/CRC mismatch).
        """
        if not self.active:
            return
        self.stats.storage_read_ops += 1
        index = self._next_index(site)
        rng = self._rng(site, index)
        u_partial, u_frac = rng.random(), rng.random()
        if u_partial < self.plan.partial_read:
            self.stats.partial_reads += 1
            fraction = float(u_frac)
            self._record(FaultKind.PARTIAL_READ, site, index,
                         (nbytes, fraction))
            raise PartialRead(site, index, fraction)

    # -- replay ---------------------------------------------------------

    def schedule(self) -> List[Tuple[str, str, int, tuple]]:
        """The fault schedule as plain tuples (stable across runs)."""
        return [
            (e.kind.value, e.site, e.index, tuple(e.detail))
            for e in self.events
        ]

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.plan.seed}, active={self.active}, "
            f"faults={self.stats.total_faults})"
        )
