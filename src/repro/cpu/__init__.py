"""CPU-optimized B+-trees (paper section 4) and their building blocks.

* :mod:`repro.cpu.simd` — AVX2 emulation used to port the paper's
  appendix snippets instruction-for-instruction.
* :mod:`repro.cpu.node_search` — sequential / linear-SIMD /
  hierarchical-SIMD node search (Fig 3, Snippets 1-2).
* :mod:`repro.cpu.btree_implicit` — the implicit (pointer-free,
  breadth-first array) B+-tree.
* :mod:`repro.cpu.btree_regular` — the regular (pointer-based) B+-tree
  with 17-cache-line inner nodes and 256-entry big leaves (Fig 2 c-d).
* :mod:`repro.cpu.gapped` — the gapped-leaf variant (BS-tree style):
  interleaved gaps make most inserts in-place writes.
* :mod:`repro.cpu.software_pipeline` — software pipelining of lookups
  (Algorithm 2, appendix B.2).
* :mod:`repro.cpu.fast_tree` — the FAST baseline (Kim et al., SIGMOD'10)
  used in Fig 9.
"""

from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.cpu.fast_tree import FastTree
from repro.cpu.gapped import GappedCpuBPlusTree, GapStats
from repro.cpu.node_search import (
    NodeSearchAlgorithm,
    hierarchical_simd_search,
    linear_simd_search,
    sequential_search,
)
from repro.cpu.software_pipeline import SoftwarePipeline

__all__ = [
    "ImplicitCpuBPlusTree",
    "RegularCpuBPlusTree",
    "GappedCpuBPlusTree",
    "GapStats",
    "FastTree",
    "NodeSearchAlgorithm",
    "sequential_search",
    "linear_simd_search",
    "hierarchical_simd_search",
    "SoftwarePipeline",
]
