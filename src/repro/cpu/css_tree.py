"""Cache Sensitive Search tree (CSS-tree, Rao & Ross VLDB'99).

The paper's related work (section 2) and the prototype "third tree" for
the generic hybrid framework of section 7's future work: a *directory*
of cache-line-sized nodes built over the sorted data array itself.
Unlike the B+-tree variants, leaves are not copied into leaf nodes —
the sorted key/value arrays **are** the leaf level ("leaf-stored"
in its purest form), which makes the CSS-tree the most space-efficient
static option.

Structure: the sorted keys are cut into runs of ``keys_per_line``
entries; directory level 0 holds the max key of each run, and further
directory levels stack with the same cache-line fanout, exactly like
the implicit B+-tree's inner levels.  Search descends the directory and
finishes with one binary probe inside the located run.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cpu.node_search import NodeSearchAlgorithm, get_search_function
from repro.keys import KeySpec, key_spec
from repro.memsim.allocator import Segment
from repro.memsim.mainmem import MemorySystem, PageConfig


class CssTree:
    """A static CSS-tree over sorted key/value arrays."""

    def __init__(
        self,
        keys: Sequence[int],
        values: Sequence[int],
        key_bits: int = 64,
        mem: Optional[MemorySystem] = None,
        page_config: PageConfig = PageConfig.HUGE_HUGE,
        algorithm: NodeSearchAlgorithm = NodeSearchAlgorithm.HIERARCHICAL_SIMD,
        segment_prefix: str = "css",
    ):
        self.spec: KeySpec = key_spec(key_bits)
        self.fanout = self.spec.keys_per_line
        self.algorithm = algorithm
        self.mem = mem
        self.page_config = page_config
        self._segment_prefix = segment_prefix
        self.i_segment: Optional[Segment] = None
        self.l_segment: Optional[Segment] = None
        self._build(keys, values)

    # ------------------------------------------------------------------

    def _build(self, keys, values) -> None:
        keys = np.asarray(keys, dtype=self.spec.dtype)
        values = np.asarray(values, dtype=self.spec.dtype)
        if keys.ndim != 1 or keys.shape != values.shape:
            raise ValueError("keys and values must be 1-D arrays of equal length")
        if len(keys) == 0:
            raise ValueError("cannot build a tree over zero tuples")
        if int(keys.max()) >= self.spec.max_value:
            raise ValueError("keys must be strictly below the sentinel value")
        order = np.argsort(keys, kind="stable")
        self.sorted_keys = keys[order]
        self.sorted_values = values[order]
        if len(keys) > 1 and np.any(
            self.sorted_keys[1:] == self.sorted_keys[:-1]
        ):
            raise ValueError("duplicate keys are not supported")
        self.num_tuples = len(keys)

        sentinel = self.spec.max_value
        run = self.fanout
        n_runs = math.ceil(self.num_tuples / run)
        # directory levels bottom-up; each entry is the max key covered
        child_max = self.sorted_keys[
            np.minimum(np.arange(1, n_runs + 1) * run - 1,
                       self.num_tuples - 1)
        ]
        self.directory: List[np.ndarray] = []
        n_children = n_runs
        while n_children > 1:
            n_nodes = math.ceil(n_children / self.fanout)
            level = np.full((n_nodes, self.fanout), sentinel,
                            dtype=self.spec.dtype)
            level.reshape(-1)[:n_children] = child_max
            # catch-all pin for the rightmost real child (probes beyond
            # the maximum key route down the rightmost path)
            level[n_nodes - 1,
                  (n_children - 1) - (n_nodes - 1) * self.fanout] = sentinel
            node_max = np.array(
                [child_max[min((i + 1) * self.fanout, n_children) - 1]
                 for i in range(n_nodes)],
                dtype=self.spec.dtype,
            )
            self.directory.append(level)
            child_max = node_max
            n_children = n_nodes
        self.directory.reverse()  # root first
        self.num_runs = n_runs
        self._allocate_segments()

    def _allocate_segments(self) -> None:
        if self.mem is None:
            return
        prefix = self._segment_prefix
        for name in (f"{prefix}.I", f"{prefix}.L"):
            if name in self.mem.allocator:
                self.mem.allocator.free(name)
        line = self.spec.cache_line
        self.i_segment = self.mem.allocate(
            f"{prefix}.I",
            max(1, self.num_directory_nodes) * line,
            self.page_config.inner_kind,
        )
        data_bytes = self.num_tuples * 2 * self.spec.size_bytes
        self.l_segment = self.mem.allocate(
            f"{prefix}.L", max(line, data_bytes), self.page_config.leaf_kind
        )

    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        return len(self.directory)

    @property
    def num_directory_nodes(self) -> int:
        return sum(lvl.shape[0] for lvl in self.directory)

    @property
    def i_segment_bytes(self) -> int:
        return max(1, self.num_directory_nodes) * self.spec.cache_line

    @property
    def directory_bytes(self) -> int:
        return self.num_directory_nodes * self.spec.cache_line

    def _level_line_offset(self, level: int) -> int:
        return sum(lvl.shape[0] for lvl in self.directory[:level])

    def _descend(self, key: int, instrument: bool) -> int:
        """Directory walk; returns the run index."""
        search = get_search_function(self.algorithm)
        counters = self.mem.counters if (instrument and self.mem) else None
        node = 0
        for level, level_keys in enumerate(self.directory):
            if instrument and self.mem is not None and self.i_segment is not None:
                self.mem.touch_line(
                    self.i_segment, self._level_line_offset(level) + node
                )
            k = search(level_keys[node], key, counters)
            next_size = (
                self.directory[level + 1].shape[0]
                if level + 1 < len(self.directory)
                else self.num_runs
            )
            node = min(node * self.fanout + k, next_size - 1)
        return node

    def lookup(self, key: int, instrument: bool = True) -> Optional[int]:
        """Point query: directory descent + one probe into the run."""
        key = int(key)
        run = self._descend(key, instrument)
        counters = self.mem.counters if (instrument and self.mem) else None
        lo = run * self.fanout
        hi = min(lo + self.fanout, self.num_tuples)
        if instrument and self.mem is not None and self.l_segment is not None:
            self.mem.touch(
                self.l_segment, lo * 2 * self.spec.size_bytes,
                (hi - lo) * 2 * self.spec.size_bytes,
            )
        pos = lo + int(np.searchsorted(self.sorted_keys[lo:hi],
                                       self.spec.dtype(key)))
        if counters is not None:
            counters.queries += 1
            counters.key_comparisons += hi - lo
        if pos < hi and int(self.sorted_keys[pos]) == key:
            return int(self.sorted_values[pos])
        return None

    def lookup_batch(self, queries: Sequence[int]) -> np.ndarray:
        """Vectorised lookups; the sentinel marks not-found."""
        q = np.asarray(queries, dtype=self.spec.dtype)
        pos = np.searchsorted(self.sorted_keys, q)
        pos_c = np.minimum(pos, self.num_tuples - 1)
        found = self.sorted_keys[pos_c] == q
        out = np.full(len(q), self.spec.max_value, dtype=self.spec.dtype)
        out[found] = self.sorted_values[pos_c[found]]
        return out

    def range_query(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Range scan directly over the sorted data array."""
        if lo > hi:
            return []
        start = int(np.searchsorted(self.sorted_keys,
                                    self.spec.dtype(lo)))
        end = int(np.searchsorted(self.sorted_keys, self.spec.dtype(hi),
                                  side="right"))
        if self.mem is not None and self.l_segment is not None and end > start:
            pair = 2 * self.spec.size_bytes
            self.mem.touch(self.l_segment, start * pair,
                           max(pair, (end - start) * pair))
        return list(zip(self.sorted_keys[start:end].tolist(),
                        self.sorted_values[start:end].tolist()))

    def __len__(self) -> int:
        return self.num_tuples

    def __repr__(self) -> str:
        return (
            f"CssTree(n={self.num_tuples}, height={self.height}, "
            f"runs={self.num_runs}, bits={self.spec.bits})"
        )

    def __contains__(self, key: int) -> bool:
        return self.lookup(key, instrument=False) is not None
