"""AVX2 emulation.

The paper's node-search inner loops (appendix A, Snippets 1 and 2) are
written with Intel intrinsics.  This module provides a faithful software
model of the handful of intrinsics they use so the snippets can be ported
line-for-line, including the movemask/popcount bit tricks.

Lanes are *unsigned* here: the trees use the full unsigned key domain
with ``2**n - 1`` as the padding sentinel, so the comparison the
algorithms need is unsigned greater-than.  (The hardware instruction is
signed; real implementations compensate by flipping the sign bit, an
equivalence covered by the test suite.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple


def popcount(x: int) -> int:
    """``__builtin_popcount``: number of one bits."""
    if x < 0:
        raise ValueError("popcount operates on non-negative masks")
    return bin(x).count("1")


@dataclass(frozen=True)
class VecReg:
    """A SIMD register holding fixed-width unsigned integer lanes.

    ``lanes`` are stored most-significant lane first, matching the
    ``_mm256_set_epi64x`` argument order in the snippets.
    """

    lanes: Tuple[int, ...]
    lane_bits: int

    def __post_init__(self):
        limit = 1 << self.lane_bits
        for lane in self.lanes:
            if not 0 <= lane < limit:
                raise ValueError(
                    f"lane value {lane} out of range for {self.lane_bits}-bit lanes"
                )

    @property
    def width_bits(self) -> int:
        return len(self.lanes) * self.lane_bits

    def __len__(self) -> int:
        return len(self.lanes)


def mm256_set1_epi64x(value: int) -> VecReg:
    """Broadcast one 64-bit value to all four lanes."""
    return VecReg(lanes=(value,) * 4, lane_bits=64)


def mm256_set_epi64x(e3: int, e2: int, e1: int, e0: int) -> VecReg:
    """Pack four 64-bit values (most significant lane first)."""
    return VecReg(lanes=(e3, e2, e1, e0), lane_bits=64)


def mm_set1_epi64x(value: int) -> VecReg:
    """Broadcast one 64-bit value to both lanes of a 128-bit register."""
    return VecReg(lanes=(value,) * 2, lane_bits=64)


def mm_set_epi64x(e1: int, e0: int) -> VecReg:
    """Pack two 64-bit values into a 128-bit register."""
    return VecReg(lanes=(e1, e0), lane_bits=64)


def mm256_set1_epi32(value: int) -> VecReg:
    """Broadcast one 32-bit value to all eight lanes."""
    return VecReg(lanes=(value,) * 8, lane_bits=32)


def mm256_set_epi32(*values: int) -> VecReg:
    """Pack eight 32-bit values (most significant lane first)."""
    if len(values) != 8:
        raise ValueError("mm256_set_epi32 requires exactly 8 values")
    return VecReg(lanes=tuple(values), lane_bits=32)


def cmpgt(a: VecReg, b: VecReg) -> VecReg:
    """Lane-wise unsigned ``a > b``; all-ones lanes where true.

    Models ``_mm256_cmpgt_epi64`` / ``_mm_cmpgt_epi64`` /
    ``_mm256_cmpgt_epi32`` (with the sign-flip correction applied).
    """
    if len(a) != len(b) or a.lane_bits != b.lane_bits:
        raise ValueError("cmpgt requires registers of identical shape")
    ones = (1 << a.lane_bits) - 1
    lanes = tuple(ones if x > y else 0 for x, y in zip(a.lanes, b.lanes))
    return VecReg(lanes=lanes, lane_bits=a.lane_bits)


def movemask_epi8(v: VecReg) -> int:
    """``_mm*_movemask_epi8``: one mask bit per *byte*, from the MSB.

    Bit ``i`` of the result is the top bit of byte ``i`` of the register,
    where byte 0 is the least significant byte (last lane, low byte).
    """
    mask = 0
    bit = 0
    for lane in reversed(v.lanes):  # least-significant lane first
        for byte_index in range(v.lane_bits // 8):
            byte = (lane >> (8 * byte_index)) & 0xFF
            if byte & 0x80:
                mask |= 1 << bit
            bit += 1
    return mask


def count_true_lanes(v: VecReg) -> int:
    """Number of all-ones lanes of a comparison result.

    This is what the snippets compute with the
    ``movemask & pattern; popcount`` sequence — provided directly for the
    vectorised fast paths.
    """
    ones = (1 << v.lane_bits) - 1
    return sum(1 for lane in v.lanes if lane == ones)


def load_lanes(values: Sequence[int], lane_bits: int) -> VecReg:
    """Load a little slice of memory into a register (lowest lane first)."""
    return VecReg(lanes=tuple(reversed(list(values))), lane_bits=lane_bits)
