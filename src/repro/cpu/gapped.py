"""The gapped-leaf variant of the regular CPU B+-tree (BS-tree style).

BS-tree's data-parallel node layout (PAPERS.md, arXiv:2505.01180) keeps
*interleaved gaps* inside every big leaf so that most inserts are
in-place writes into a pre-allocated gap — no half-leaf shift, no
structural modification, and (on the hybrid tree) no mirror
invalidation beyond the one last-level inner node whose routing line
changed.  This module ports the idea onto the paper's 256-pair big
leaves:

* A **gap** is a free slot that *duplicates the key and value of its
  nearest real entry to the right*, so the leaf array stays
  non-decreasing and every inherited read path — ``lookup``,
  ``lookup_batch``, ``descend_batch``, the GPU mirror's last-level
  routing keys — works unchanged and answers bit-identically to the
  compact layout.  Trailing free slots keep the sentinel (MAX) padding
  the kernels already skip; the invariant is that the rightmost slot
  of any equal-key run inside the extent is the real entry.
* **Insert** binary-searches the slot; if the slot itself is a gap the
  write is in place (zero shift).  Otherwise the run of real entries up
  to the nearest gap shifts by one — a few pairs on average at the
  build fill factor, against half a big leaf for the compact layout.
  Only when a leaf holds no gap at all does the insert fall back to
  the inherited split path, which re-spreads both halves with fresh
  interleaved gaps.
* **Delete** marks the run as gaps backfilled from the right neighbour
  (or truncates the extent at the tail) — again no shift.

The per-insert behaviour is accounted in :class:`GapStats` so the
mixed engine (:mod:`repro.core.mixed`) can price in-place writes,
short shifts and splits separately.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Tuple

import numpy as np

from repro.cpu.btree_regular import (
    _NIL,
    RegularCpuBPlusTree,
    _LeafPool,
    _multi_arange,
)


@dataclass
class GapStats:
    """Accumulated write-path behaviour of a gapped tree."""

    #: inserts resolved by writing straight into a gap (zero shift)
    gap_writes: int = 0
    #: inserts that shifted a short run toward the nearest gap
    shift_writes: int = 0
    #: total pairs moved by those short shifts
    shifted_pairs: int = 0
    #: deletes resolved by gap-marking (never shift)
    gap_deletes: int = 0
    #: leaf splits forced by gap exhaustion
    splits: int = 0
    #: whole-leaf rewrites by the batch scatter path
    leaf_rewrites: int = 0

    @property
    def in_place_fraction(self) -> float:
        total = self.gap_writes + self.shift_writes
        return self.gap_writes / total if total else 0.0

    def copy(self) -> "GapStats":
        return replace(self)

    def reset(self) -> None:
        self.gap_writes = 0
        self.shift_writes = 0
        self.shifted_pairs = 0
        self.gap_deletes = 0
        self.splits = 0
        self.leaf_rewrites = 0


class _GappedLeafPool(_LeafPool):
    """Big leaves with a per-slot gap mask and a live-pair counter."""

    def _grow_to(self, capacity: int) -> None:
        super()._grow_to(capacity)
        self.gap = np.zeros((capacity, self.capacity_pairs), dtype=bool)
        self.live = np.zeros(capacity, dtype=np.int64)

    def _grow(self) -> None:
        old = (self.gap, self.live)
        n = self.keys.shape[0]
        super()._grow()
        for new_arr, old_arr in zip((self.gap, self.live), old):
            new_arr[:n] = old_arr

    def allocate(self) -> int:
        leaf = super().allocate()
        self.gap[leaf] = False
        self.live[leaf] = 0
        return leaf


class GappedCpuBPlusTree(RegularCpuBPlusTree):
    """A :class:`RegularCpuBPlusTree` whose big leaves carry
    interleaved gaps at a configurable fill factor.

    ``fill`` (the inherited bulk-build knob) sets the slot occupancy:
    at ``fill=0.7`` roughly every third slot starts as a gap, spread
    evenly through the leaf rather than packed at the tail.  All read
    paths are inherited unchanged; only the write paths differ.
    """

    def __init__(self, *args, **kwargs):
        self.gap_stats = GapStats()
        super().__init__(*args, **kwargs)

    def _make_leaf_pool(self) -> _GappedLeafPool:
        return _GappedLeafPool(self.spec)

    # ------------------------------------------------------------------
    # occupancy / iteration

    def leaf_occupancy(self, nodes: np.ndarray) -> np.ndarray:
        """Live (real) pairs per leaf — gaps do not count."""
        return self.leaves.live[np.asarray(nodes, dtype=np.int64)]

    def gap_occupancy(self) -> float:
        """Fraction of in-extent slots holding real entries."""
        chain = self.leaf_chain()
        if len(chain) == 0:
            return 1.0
        extent = int(self.leaves.size[chain].sum())
        if extent == 0:
            return 1.0
        return float(self.leaves.live[chain].sum()) / extent

    def _leaf_pairs(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        size = int(self.leaves.size[node])
        real = ~self.leaves.gap[node, :size]
        return (
            self.leaves.keys[node, :size][real],
            self.leaves.values[node, :size][real],
        )

    def items(self) -> Iterator[Tuple[int, int]]:
        node = self._first_leaf
        while node != _NIL:
            size = int(self.leaves.size[node])
            for i in range(size):
                if not self.leaves.gap[node, i]:
                    yield int(self.leaves.keys[node, i]), int(
                        self.leaves.values[node, i]
                    )
            node = int(self.leaves.next[node])

    def stored_keys(self) -> np.ndarray:
        chain = self.leaf_chain()
        if len(chain) == 0 or self.num_tuples == 0:
            return np.zeros(0, dtype=self.spec.dtype)
        sizes = self.leaves.size[chain]
        mask = (
            np.arange(self.leaves.capacity_pairs) < sizes[:, None]
        ) & ~self.leaves.gap[chain]
        return self.leaves.keys[chain][mask]

    def _slot_is_live(self, node: int, slot: int) -> bool:
        return not self.leaves.gap[node, slot]

    def _gather_pairs(self, nodes: np.ndarray, a: np.ndarray,
                      b: np.ndarray,
                      results: List[Tuple[int, int]]) -> None:
        """Gap-mask-aware slot gather: only real pairs are emitted.

        The inherited :meth:`range_query` / :meth:`range_scan_from`
        chain walk touches gap slots' lines like the scalar walk does
        (a gap occupies the line whether or not it holds data); only
        the pair gather differs.
        """
        cap = self.leaves.capacity_pairs
        idx = _multi_arange(nodes * cap + a, b - a)
        idx = idx[~self.leaves.gap.reshape(-1)[idx]]
        k = self.leaves.keys.reshape(-1)[idx]
        v = self.leaves.values.reshape(-1)[idx]
        results.extend(zip(k.tolist(), v.tolist()))

    # ------------------------------------------------------------------
    # gapped write paths

    def _write_leaf_spread(
        self, node: int, keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Rewrite a leaf spreading ``m`` sorted pairs over the whole
        capacity with evenly interleaved gaps (vectorised).

        Each gap is backfilled with the key/value of the next real slot
        so the array stays non-decreasing; slots past the last real
        entry return to the sentinel padding.
        """
        lv = self.leaves
        cap = lv.capacity_pairs
        m = len(keys)
        if m > cap:
            raise ValueError("leaf overflow in _write_leaf_spread")
        if m == 0:
            lv.keys[node] = self.spec.max_value
            lv.values[node] = 0
            lv.gap[node] = False
            lv.size[node] = 0
            lv.live[node] = 0
            self._refresh_last_level_keys(node)
            return
        pos = (np.arange(m, dtype=np.int64) * cap) // m
        extent = int(pos[-1]) + 1
        row_k = np.full(extent, self.spec.max_value, dtype=self.spec.dtype)
        row_v = np.zeros(extent, dtype=self.spec.dtype)
        row_k[pos] = keys
        row_v[pos] = values
        # index of the next real slot at/after each slot (backward fill)
        nxt = np.full(extent, extent, dtype=np.int64)
        nxt[pos] = pos
        nxt = np.minimum.accumulate(nxt[::-1])[::-1]
        gaps = np.ones(extent, dtype=bool)
        gaps[pos] = False
        gidx = np.flatnonzero(gaps)
        row_k[gidx] = row_k[nxt[gidx]]
        row_v[gidx] = row_v[nxt[gidx]]
        lv.keys[node, :extent] = row_k
        lv.values[node, :extent] = row_v
        lv.keys[node, extent:] = self.spec.max_value
        lv.values[node, extent:] = 0
        lv.gap[node, :extent] = gaps
        lv.gap[node, extent:] = False
        lv.size[node] = extent
        lv.live[node] = m
        self._refresh_last_level_keys(node)

    def _write_leaf_pairs(
        self, node: int, keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Batch-path layout hook: re-spread with interleaved gaps."""
        self.gap_stats.leaf_rewrites += 1
        self._write_leaf_spread(node, keys, values)

    def _leaf_upsert(self, node: int, key: int, value: int):
        """Place ``key`` into the leaf; returns ``(placed, was_new)``.

        ``placed`` is False only on gap exhaustion (leaf completely
        full) — the caller splits and retries.
        """
        lv = self.leaves
        cap = lv.capacity_pairs
        size = int(lv.size[node])
        keys = lv.keys[node]
        tk = self.spec.dtype(key)
        pos = int(np.searchsorted(keys[:size], tk))
        if pos < size and int(keys[pos]) == key:
            # present: the run [pos, right) is gaps + one real entry at
            # the right end, all duplicating the same pair — overwrite
            # the value in the whole run to keep duplicates consistent
            right = int(np.searchsorted(keys[:size], tk, side="right"))
            lv.values[node, pos:right] = value
            lv.version[node] += 1
            return True, False
        gaps_row = lv.gap[node]
        # nearest free slot at/after pos: an interior gap, else the
        # first slot past the extent
        g = -1
        if pos < size:
            after = np.flatnonzero(gaps_row[pos:size])
            if len(after):
                g = pos + int(after[0])
            elif size < cap:
                g = size
        elif size < cap:
            g = pos
        if g >= 0:
            if g > pos:
                # short shift of the real run [pos, g) into the gap
                keys[pos + 1: g + 1] = keys[pos:g]
                lv.values[node, pos + 1: g + 1] = lv.values[node, pos:g]
                self.gap_stats.shift_writes += 1
                self.gap_stats.shifted_pairs += g - pos
            else:
                self.gap_stats.gap_writes += 1
            keys[pos] = tk
            lv.values[node, pos] = value
            gaps_row[g] = False
            lv.size[node] = max(size, g + 1)
            lv.live[node] += 1
            return True, True
        # no gap at/after pos: borrow the nearest gap on the left
        before = np.flatnonzero(gaps_row[:pos])
        if len(before):
            g0 = int(before[-1])
            keys[g0:pos - 1] = keys[g0 + 1: pos]
            lv.values[node, g0:pos - 1] = lv.values[node, g0 + 1: pos]
            keys[pos - 1] = tk
            lv.values[node, pos - 1] = value
            gaps_row[g0] = False
            lv.live[node] += 1
            self.gap_stats.shift_writes += 1
            self.gap_stats.shifted_pairs += pos - 1 - g0
            return True, True
        return False, False

    def insert(self, key: int, value: int) -> bool:
        key = int(key)
        if not 0 <= key < self.spec.max_value:
            raise ValueError("key outside the valid (non-sentinel) domain")
        node, _line, path = self._descend(key, instrument=False)
        placed, was_new = self._leaf_upsert(node, key, value)
        if not placed:
            # gap exhaustion: split (re-spreads both halves), retry
            self._split_leaf(node, path)
            node, _line, path = self._descend(key, instrument=False)
            placed, was_new = self._leaf_upsert(node, key, value)
            if not placed:  # pragma: no cover - halves always have gaps
                raise AssertionError("split left no gap for the insert")
        if was_new:
            self._refresh_last_level_keys(node)
            self._bubble_up_max(path, key)
            self.num_tuples += 1
        return was_new

    def _split_leaf(self, node: int, path: list) -> None:
        """Split a gap-exhausted leaf, re-spreading both halves."""
        self.gap_stats.splits += 1
        keys, values = self._leaf_pairs(node)
        half = len(keys) // 2
        new_node = self._new_last_level_node()
        self._write_leaf_spread(node, keys[:half], values[:half])
        self._write_leaf_spread(new_node, keys[half:], values[half:])
        lv = self.leaves
        nxt = int(lv.next[node])
        lv.next[node] = new_node
        lv.prev[new_node] = node
        lv.next[new_node] = nxt
        if nxt != _NIL:
            lv.prev[nxt] = new_node
        self.last.next[node] = new_node
        self.last.prev[new_node] = node
        self.last.next[new_node] = nxt
        split_key = int(keys[half - 1])
        self._insert_into_parent(0, node, split_key, new_node, path)

    def delete(self, key: int) -> bool:
        key = int(key)
        node, _line, path = self._descend(key, instrument=False)
        lv = self.leaves
        size = int(lv.size[node])
        tk = self.spec.dtype(key)
        keys = lv.keys[node]
        pos = int(np.searchsorted(keys[:size], tk))
        if pos >= size or int(keys[pos]) != key:
            return False
        right = int(np.searchsorted(keys[:size], tk, side="right"))
        if right < size:
            # interior run: backfill with the next slot's pair
            keys[pos:right] = keys[right]
            lv.values[node, pos:right] = lv.values[node, right]
            lv.gap[node, pos:right] = True
        else:
            # tail run: truncate the extent back to the last real pair
            keys[pos:size] = self.spec.max_value
            lv.values[node, pos:size] = 0
            lv.gap[node, pos:size] = False
            lv.size[node] = pos
        lv.live[node] -= 1
        self.gap_stats.gap_deletes += 1
        self.num_tuples -= 1
        self._refresh_last_level_keys(node)
        if int(lv.live[node]) == 0 and self.height > 1:
            lv.keys[node] = self.spec.max_value
            lv.values[node] = 0
            lv.gap[node] = False
            lv.size[node] = 0
            self._remove_empty_leaf(node, path)
        return True

    # ------------------------------------------------------------------
    # bulk build

    def bulk_build(self, keys, values, fill: float = 1.0) -> None:
        """Build with interleaved (not suffix) gaps at ``fill``."""
        super().bulk_build(keys, values, fill=fill)
        # re-spread every built leaf: the base packed each leaf's pairs
        # as a prefix; spreading interleaves the free slots instead
        for node in self.leaf_chain().tolist():
            k, v = (
                self.leaves.keys[node, : int(self.leaves.size[node])].copy(),
                self.leaves.values[node, : int(self.leaves.size[node])].copy(),
            )
            real = k != self.spec.dtype(self.spec.max_value)
            self._write_leaf_spread(int(node), k[real], v[real])

    # ------------------------------------------------------------------
    # invariants

    def check_invariants(self) -> None:
        """Gapped-layout invariants + the inherited routing checks."""
        count = 0
        prev_key = -1
        node = self._first_leaf
        while node != _NIL:
            size = int(self.leaves.size[node])
            keys = self.leaves.keys[node]
            gaps = self.leaves.gap[node]
            live = 0
            for i in range(size):
                k = int(keys[i])
                if gaps[i]:
                    assert i + 1 < size, "gap at the extent boundary"
                    assert k == int(keys[i + 1]), (
                        "gap does not duplicate its right neighbour"
                    )
                else:
                    assert k > prev_key, "real keys out of order"
                    prev_key = k
                    live += 1
                    count += 1
            assert live == int(self.leaves.live[node]), "live count drifted"
            assert size == 0 or not gaps[size - 1], (
                "extent must end on a real pair"
            )
            pad = keys[size:]
            assert np.all(pad == self.spec.max_value), "leaf padding damaged"
            assert not gaps[size:].any(), "gap mask leaked past the extent"
            node = int(self.leaves.next[node])
        assert count == self.num_tuples, (
            f"item count {count} != num_tuples {self.num_tuples}"
        )
        self._check_subtree(self.height - 1, self.root)

    def __repr__(self) -> str:
        return (
            f"GappedCpuBPlusTree(n={self.num_tuples}, "
            f"height={self.height}, leaves={self.leaves.count}, "
            f"occupancy={self.gap_occupancy():.2f}, bits={self.spec.bits})"
        )
