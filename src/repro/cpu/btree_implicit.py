"""The implicit (pointer-free) B+-tree, CPU-optimized variant.

Nodes are arranged breadth-first in flat arrays (paper section 3 /
Fig 2 a-b): every node occupies exactly one cache line, leaves hold
``P_L`` key-value pairs, inner nodes hold one full cache line of keys.
Child locations are computed, never stored, so the j-th child of the
i-th node at a level is node ``i * F_I + j`` of the next level.

Two fanout styles share this implementation:

* the CPU-optimized tree uses all ``keys_per_line`` keys as separators
  for ``keys_per_line + 1`` children (fanout 9 / 17),
* the implicit HB+-tree pins the last key to the maximum value and uses
  ``keys_per_line`` children (fanout 8 / 16) so the GPU kernel can use
  one thread per key without divergence (section 5.2).

Updates rebuild the whole tree — the linear-time price of implicitness
the paper accepts for its search-dominated workloads (section 5.6).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cpu.node_search import (
    NodeSearchAlgorithm,
    get_search_function,
    search_leaf_line,
)
from repro.keys import KeySpec, key_spec
from repro.memsim.allocator import Segment
from repro.memsim.mainmem import MemorySystem, PageConfig


class ImplicitCpuBPlusTree:
    """A breadth-first-array B+-tree over sorted key/value pairs.

    Parameters
    ----------
    keys, values:
        The tuples to index; sorted internally by key.  Keys must be
        unique and strictly below the key type's maximum value (the
        padding sentinel).
    key_bits:
        64 or 32.
    fanout:
        Children per inner node.  Defaults to the CPU-optimized fanout
        (``keys_per_line + 1``); the hybrid tree passes
        ``keys_per_line``.
    mem:
        Optional :class:`MemorySystem` — when given, instrumented
        lookups charge their node accesses to it.
    page_config:
        Where the I- and L-segments are placed (Fig 7 configurations).
    algorithm:
        Node-search algorithm used by instrumented scalar lookups.
    """

    def __init__(
        self,
        keys: Sequence[int],
        values: Sequence[int],
        key_bits: int = 64,
        fanout: Optional[int] = None,
        mem: Optional[MemorySystem] = None,
        page_config: PageConfig = PageConfig.HUGE_HUGE,
        algorithm: NodeSearchAlgorithm = NodeSearchAlgorithm.HIERARCHICAL_SIMD,
        segment_prefix: str = "implicit",
    ):
        self.spec: KeySpec = key_spec(key_bits)
        self.fanout = fanout if fanout is not None else self.spec.implicit_cpu_fanout
        if not 2 <= self.fanout <= self.spec.keys_per_line + 1:
            raise ValueError(
                f"fanout must be in [2, {self.spec.keys_per_line + 1}]"
            )
        self.algorithm = algorithm
        self.mem = mem
        self.page_config = page_config
        self._segment_prefix = segment_prefix
        self.i_segment: Optional[Segment] = None
        self.l_segment: Optional[Segment] = None
        self._build(keys, values)

    # ------------------------------------------------------------------
    # construction

    def _build(self, keys, values) -> None:
        # convert with an explicit dtype: plain np.asarray on a Python
        # list mixing values above int64's range promotes to float64
        # and silently loses precision beyond 2**53
        keys = np.asarray(keys, dtype=self.spec.dtype)
        values = np.asarray(values, dtype=self.spec.dtype)
        if keys.shape != values.shape or keys.ndim != 1:
            raise ValueError("keys and values must be 1-D arrays of equal length")
        if len(keys) == 0:
            raise ValueError("cannot build a tree over zero tuples")
        if int(keys.max()) >= self.spec.max_value:
            raise ValueError(
                "keys must be strictly below the maximum value "
                "(reserved as the padding sentinel)"
            )
        order = np.argsort(keys, kind="stable")
        keys, values = keys[order], values[order]
        if len(keys) > 1 and np.any(keys[1:] == keys[:-1]):
            raise ValueError("duplicate keys are not supported")

        self.num_tuples = len(keys)
        cap = self.spec.leaf_pairs_per_line
        n_leaves = math.ceil(len(keys) / cap)
        sentinel = self.spec.max_value
        leaf_keys = np.full((n_leaves, cap), sentinel, dtype=self.spec.dtype)
        leaf_vals = np.zeros((n_leaves, cap), dtype=self.spec.dtype)
        flat = leaf_keys.reshape(-1)
        flat[: len(keys)] = keys
        leaf_vals.reshape(-1)[: len(values)] = values
        self.leaf_keys = leaf_keys
        self.leaf_values = leaf_vals

        # max real key of each node at the level currently being covered
        child_max = keys[
            np.minimum(np.arange(1, n_leaves + 1) * cap - 1, len(keys) - 1)
        ]
        self.inner_levels: List[np.ndarray] = []
        n_children = n_leaves
        while n_children > 1:
            n_nodes = math.ceil(n_children / self.fanout)
            level = np.full(
                (n_nodes, self.spec.keys_per_line), sentinel, dtype=self.spec.dtype
            )
            # key j of node i = max key in the subtree of child i*F + j
            kpn = min(self.spec.keys_per_line, self.fanout)
            for j in range(kpn):
                child = np.arange(n_nodes) * self.fanout + j
                valid = child < n_children
                level[valid, j] = child_max[child[valid]]
            if self.fanout == self.spec.keys_per_line:
                # hybrid style (section 5.2): the last key is pinned to
                # the maximum value so every query sets at least one GPU
                # flag.  For the (possibly partially filled) rightmost
                # node the pin goes on its last *real* child, making the
                # rightmost real path a catch-all — overflow queries
                # never route into non-existent nodes.
                level[:, self.fanout - 1] = sentinel
                last_children = n_children - (n_nodes - 1) * self.fanout
                level[n_nodes - 1, last_children - 1] = sentinel
            self.inner_levels.append(level)
            node_max = np.empty(n_nodes, dtype=self.spec.dtype)
            for i in range(n_nodes):
                lo = i * self.fanout
                hi = min(lo + self.fanout, n_children)
                node_max[i] = child_max[lo:hi].max()
            child_max = node_max
            n_children = n_nodes
        self.inner_levels.reverse()  # root first
        self._allocate_segments()

    def _allocate_segments(self) -> None:
        if self.mem is None:
            return
        line = self.spec.cache_line
        prefix = self._segment_prefix
        for name in (f"{prefix}.I", f"{prefix}.L"):
            if name in self.mem.allocator:
                self.mem.allocator.free(name)
        inner_lines = max(1, sum(lvl.shape[0] for lvl in self.inner_levels))
        self.i_segment = self.mem.allocate(
            f"{prefix}.I", inner_lines * line, self.page_config.inner_kind
        )
        self.l_segment = self.mem.allocate(
            f"{prefix}.L", self.leaf_keys.shape[0] * line, self.page_config.leaf_kind
        )

    # ------------------------------------------------------------------
    # geometry

    @property
    def height(self) -> int:
        """H: number of inner levels above the leaves."""
        return len(self.inner_levels)

    @property
    def num_leaves(self) -> int:
        return self.leaf_keys.shape[0]

    @property
    def num_inner_nodes(self) -> int:
        return sum(lvl.shape[0] for lvl in self.inner_levels)

    @property
    def lines_per_query(self) -> int:
        """Cache lines touched per lookup: H + 1 (paper section 4.1)."""
        return self.height + 1

    @property
    def i_segment_bytes(self) -> int:
        return self.num_inner_nodes * self.spec.cache_line

    @property
    def l_segment_bytes(self) -> int:
        return self.num_leaves * self.spec.cache_line

    def _level_line_offset(self, level: int) -> int:
        """Line offset of a level inside the I-segment (root first)."""
        return sum(lvl.shape[0] for lvl in self.inner_levels[:level])

    # ------------------------------------------------------------------
    # search

    def _descend(self, key: int, instrument: bool) -> int:
        """Walk the inner levels; return the target leaf index."""
        search = get_search_function(self.algorithm)
        counters = self.mem.counters if (instrument and self.mem) else None
        node = 0
        for level, level_keys in enumerate(self.inner_levels):
            if instrument and self.mem is not None and self.i_segment is not None:
                self.mem.touch_line(self.i_segment, self._level_line_offset(level) + node)
            k = search(level_keys[node], key, counters)
            next_size = (
                self.inner_levels[level + 1].shape[0]
                if level + 1 < len(self.inner_levels)
                else self.num_leaves
            )
            node = min(node * self.fanout + k, next_size - 1)
        return node

    def lookup(self, key: int, instrument: bool = True) -> Optional[int]:
        """Point query; returns the value or None if the key is absent."""
        key = int(key)
        leaf = self._descend(key, instrument)
        counters = self.mem.counters if (instrument and self.mem) else None
        if instrument and self.mem is not None and self.l_segment is not None:
            self.mem.touch_line(self.l_segment, leaf)
        row = self.leaf_keys[leaf]
        pos = search_leaf_line(row, key, counters, self.algorithm)
        if counters is not None:
            counters.queries += 1
        if pos < row.shape[0] and int(row[pos]) == key:
            return int(self.leaf_values[leaf, pos])
        return None

    def lookup_batch(self, queries: Sequence[int]) -> np.ndarray:
        """Vectorised point lookups; absent keys yield the max value.

        Returns an array of values with ``spec.max_value`` marking
        not-found (the sentinel can never be a stored value's key).
        """
        q = np.asarray(queries, dtype=self.spec.dtype)
        node = np.zeros(len(q), dtype=np.int64)
        for level, level_keys in enumerate(self.inner_levels):
            keys = level_keys[node]
            k = np.sum(keys < q[:, None], axis=1).astype(np.int64)
            next_size = (
                self.inner_levels[level + 1].shape[0]
                if level + 1 < len(self.inner_levels)
                else self.num_leaves
            )
            node = np.minimum(node * self.fanout + k, next_size - 1)
        rows = self.leaf_keys[node]
        pos = np.sum(rows < q[:, None], axis=1)
        pos_c = np.minimum(pos, rows.shape[1] - 1)
        found = rows[np.arange(len(q)), pos_c] == q
        out = np.full(len(q), self.spec.max_value, dtype=self.spec.dtype)
        out[found] = self.leaf_values[node[found], pos_c[found]]
        return out

    def range_query_scalar(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Scalar reference walk of :meth:`range_query`.

        One Python iteration per visited slot — kept as the baseline
        the vectorised scan is checked (and benchmarked) against.
        """
        if lo > hi:
            return []
        leaf = self._descend(int(lo), instrument=True)
        counters = self.mem.counters if self.mem else None
        results: List[Tuple[int, int]] = []
        sentinel = self.spec.max_value
        while leaf < self.num_leaves:
            if self.mem is not None and self.l_segment is not None:
                self.mem.touch_line(self.l_segment, leaf)
            row = self.leaf_keys[leaf]
            for j in range(row.shape[0]):
                key = int(row[j])
                if key == sentinel or key > hi:
                    if counters is not None:
                        counters.queries += 1
                    return results
                if key >= lo:
                    results.append((key, int(self.leaf_values[leaf, j])))
            leaf += 1
        if counters is not None:
            counters.queries += 1
        return results

    def _scan_from_leaf(self, leaf: int, lo: int,
                        hi: int) -> List[Tuple[int, int]]:
        """Vectorised leaf scan shared by :meth:`range_query` and
        :meth:`range_scan_from`.

        The implicit build packs leaves densely (sentinels only pad the
        last leaf), so the flattened key array is a sorted prefix of
        length ``num_tuples`` and two global ``searchsorted`` calls
        bound the whole result.  The touched-leaf set is exactly the
        scalar walk's: every leaf from ``leaf`` through the leaf where
        the scalar probe terminates (first key ``> hi``, the sentinel,
        or running off the last leaf).
        """
        counters = self.mem.counters if self.mem else None
        cap = self.leaf_keys.shape[1]
        n = self.num_tuples
        flat_keys = self.leaf_keys.reshape(-1)[:n]
        lo_pos = int(np.searchsorted(flat_keys, self.spec.dtype(lo)))
        hi_pos = int(np.searchsorted(flat_keys, self.spec.dtype(hi),
                                     side="right"))
        if hi_pos < n:
            term_leaf = hi_pos // cap
        elif n < self.num_leaves * cap:
            term_leaf = n // cap  # the sentinel probe in the last leaf
        else:
            term_leaf = self.num_leaves - 1  # runs off the packed end
        term_leaf = max(term_leaf, leaf)
        if self.mem is not None and self.l_segment is not None:
            self.mem.touch_lines(
                self.l_segment,
                np.arange(leaf, term_leaf + 1, dtype=np.int64),
            )
        lo_pos = max(lo_pos, leaf * cap)
        k = flat_keys[lo_pos:hi_pos]
        v = self.leaf_values.reshape(-1)[lo_pos:hi_pos]
        results = list(zip(k.tolist(), v.tolist()))
        if counters is not None:
            counters.queries += 1
        return results

    def range_query(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """All (key, value) pairs with ``lo <= key <= hi``, in key order.

        Exploits the sequential leaf arrangement: after locating the
        first leaf, successor leaves are adjacent lines (section 4.1).
        Vectorised — identical results and identical modeled leaf-line
        counters to :meth:`range_query_scalar`.
        """
        if lo > hi:
            return []
        leaf = self._descend(int(lo), instrument=True)
        return self._scan_from_leaf(leaf, int(lo), int(hi))

    def range_scan_from(self, leaf: int, lo: int,
                        hi: int) -> List[Tuple[int, int]]:
        """Leaf scan starting at ``leaf`` (no CPU descent).

        The engine scan path locates the start leaf on the GPU and
        finishes here.  Tolerates a start leaf at-or-before the true
        one (earlier leaves contribute nothing).
        """
        if lo > hi:
            return []
        return self._scan_from_leaf(int(leaf), int(lo), int(hi))

    # ------------------------------------------------------------------
    # updates (rebuild — section 5.6)

    def rebuild(self, keys: Sequence[int], values: Sequence[int]) -> None:
        """Replace the indexed data; the whole tree is reconstructed."""
        self._build(keys, values)

    def merge_update(
        self,
        upsert_keys: Sequence[int] = (),
        upsert_values: Sequence[int] = (),
        deletes: Sequence[int] = (),
    ) -> None:
        """Apply a batch of upserts/deletes by linear merge + rebuild.

        The implicit layout cannot be updated in place, but a *sorted*
        batch merges into the existing sorted contents in O(n + m) —
        far cheaper than re-sorting everything, which is how a real
        deployment implements the paper's periodic batch rebuilds.
        """
        up_k = np.asarray(upsert_keys, dtype=self.spec.dtype)
        up_v = np.asarray(upsert_values, dtype=self.spec.dtype)
        del_k = np.asarray(deletes, dtype=self.spec.dtype)
        if up_k.shape != up_v.shape:
            raise ValueError("upsert keys and values must align")
        if len(up_k):
            order = np.argsort(up_k, kind="stable")
            up_k, up_v = up_k[order], up_v[order]
            if np.any(up_k[1:] == up_k[:-1]):
                raise ValueError("duplicate keys within the update batch")

        flat_keys = self.leaf_keys.reshape(-1)
        mask = flat_keys != self.spec.max_value
        old_k = flat_keys[mask]
        old_v = self.leaf_values.reshape(-1)[mask]
        drop = up_k
        if len(del_k):
            drop = np.union1d(drop, del_k) if len(drop) else np.sort(del_k)
        if len(drop):
            keep = ~np.isin(old_k, drop)
            old_k, old_v = old_k[keep], old_v[keep]
        if len(up_k):
            positions = np.searchsorted(old_k, up_k)
            merged_k = np.insert(old_k, positions, up_k)
            merged_v = np.insert(old_v, positions, up_v)
        else:
            merged_k, merged_v = old_k, old_v
        if len(merged_k) == 0:
            raise ValueError("merge would leave the tree empty")
        self._build(merged_k, merged_v)

    def items(self) -> List[Tuple[int, int]]:
        """All stored (key, value) pairs in key order."""
        sentinel = self.spec.max_value
        mask = self.leaf_keys.reshape(-1) != sentinel
        ks = self.leaf_keys.reshape(-1)[mask]
        vs = self.leaf_values.reshape(-1)[mask]
        return list(zip(ks.tolist(), vs.tolist()))

    def __len__(self) -> int:
        return self.num_tuples

    def __repr__(self) -> str:
        return (
            f"ImplicitCpuBPlusTree(n={self.num_tuples}, "
            f"height={self.height}, fanout={self.fanout}, "
            f"bits={self.spec.bits})"
        )

    def __contains__(self, key: int) -> bool:
        return self.lookup(key, instrument=False) is not None
