"""Node search: sequential, linear SIMD, and hierarchical SIMD.

Given one node's key array (one cache line: 8 64-bit or 16 32-bit keys,
padded with the maximum value) and a query, every algorithm returns

    ``k`` — the number of keys strictly less than the query,

which is both "the minimum i such that query <= node[i]" (the paper's
phrasing) and the child index to descend into.

The SIMD variants are ports of appendix Snippets 1 and 2 on top of the
:mod:`repro.cpu.simd` register model, including the
``movemask & pattern; popcount`` idiom.  Each algorithm records the
scalar comparisons and vector operations it executes into an optional
:class:`~repro.memsim.metrics.AccessCounters`, which is what the cost
model charges compute time for.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, Sequence

from repro.cpu import simd
from repro.memsim.metrics import AccessCounters


class NodeSearchAlgorithm(enum.Enum):
    """The three node-search strategies compared in Fig 8."""

    SEQUENTIAL = "sequential"
    LINEAR_SIMD = "linear"
    HIERARCHICAL_SIMD = "hierarchical"


def sequential_search(
    keys: Sequence[int], query: int, counters: Optional[AccessCounters] = None
) -> int:
    """Scan the node left to right until a key >= query is found."""
    k = 0
    comparisons = 0
    for key in keys:
        comparisons += 1
        if int(key) >= query:
            break
        k += 1
    if counters is not None:
        counters.key_comparisons += comparisons
    return k


def _linear_half_64(node: Sequence[int], vquery: simd.VecReg, lo: int) -> int:
    """One iteration of Snippet 1: compare four 64-bit keys to the query."""
    vec = simd.mm256_set_epi64x(
        int(node[lo + 3]), int(node[lo + 2]), int(node[lo + 1]), int(node[lo])
    )
    vcmp = simd.cmpgt(vquery, vec)
    cmp = simd.movemask_epi8(vcmp)
    cmp &= 0x10101010
    return simd.popcount(cmp)


def linear_simd_search(
    keys: Sequence[int], query: int, counters: Optional[AccessCounters] = None
) -> int:
    """Snippet 1: split the line into halves, count smaller keys in each.

    Control-dependency free (safe for out-of-order execution): both
    halves are always compared.
    """
    n = len(keys)
    if n == 8:  # 64-bit keys: 2 x 4 lanes
        vquery = simd.mm256_set1_epi64x(query)
        k = _linear_half_64(keys, vquery, 0)
        k += _linear_half_64(keys, vquery, 4)
        ops = 8  # 2x (set, cmp, movemask, popcount)
    elif n == 16:  # 32-bit keys: 2 x 8 lanes
        vquery = simd.mm256_set1_epi32(query)
        k = 0
        for lo in (0, 8):
            vec = simd.mm256_set_epi32(*[int(keys[lo + 7 - i]) for i in range(8)])
            vcmp = simd.cmpgt(vquery, vec)
            k += simd.count_true_lanes(vcmp)
        ops = 8
    else:
        raise ValueError(f"linear SIMD search expects 8 or 16 keys, got {n}")
    if counters is not None:
        counters.simd_ops += ops
        counters.key_comparisons += n
    return k


def hierarchical_simd_search(
    keys: Sequence[int], query: int, counters: Optional[AccessCounters] = None
) -> int:
    """Snippet 2: probe boundary keys first, then one small interval.

    Loads fewer keys into registers than the linear variant at the price
    of a control dependency between the two comparison stages.
    """
    n = len(keys)
    if n == 8:  # 64-bit: boundaries node[2], node[5]; parts of width 2
        vquery = simd.mm_set1_epi64x(query)
        vec = simd.mm_set_epi64x(int(keys[2]), int(keys[5]))
        vcmp = simd.cmpgt(vquery, vec)
        cmp = simd.movemask_epi8(vcmp)
        cmp &= 0x00001010
        k = simd.popcount(cmp) * 3
        vec = simd.mm_set_epi64x(int(keys[k]), int(keys[k + 1]))
        vcmp = simd.cmpgt(vquery, vec)
        cmp = simd.movemask_epi8(vcmp)
        cmp &= 0x00001010
        k += simd.popcount(cmp)
        ops = 6
        compared = 4
    elif n == 16:  # 32-bit: boundaries at odd indexes, then one scalar probe
        vquery = simd.mm256_set1_epi32(query)
        vec = simd.mm256_set_epi32(*[int(keys[15 - 2 * i]) for i in range(8)])
        vcmp = simd.cmpgt(vquery, vec)
        c = simd.count_true_lanes(vcmp)
        if c == 8:
            k = 16
            compared = 8
        else:
            k = 2 * c + (1 if int(keys[2 * c]) < query else 0)
            compared = 9
        ops = 3
    else:
        raise ValueError(f"hierarchical SIMD search expects 8 or 16 keys, got {n}")
    if counters is not None:
        counters.simd_ops += ops
        counters.key_comparisons += compared
    return k


def search_leaf_line(
    keys: Sequence[int],
    query: int,
    counters: Optional[AccessCounters] = None,
    algorithm: NodeSearchAlgorithm = NodeSearchAlgorithm.LINEAR_SIMD,
) -> int:
    """Search the key half of a leaf cache line (P_L keys).

    A leaf line holds only ``keys_per_line / 2`` keys (the other half is
    values), so a single 256-bit comparison covers it; the SEQUENTIAL
    algorithm falls back to a scalar scan.
    """
    if algorithm is NodeSearchAlgorithm.SEQUENTIAL:
        return sequential_search(keys, query, counters)
    n = len(keys)
    k = sum(1 for key in keys if int(key) < query)
    if counters is not None:
        counters.key_comparisons += n
        # one vector load+compare per 256-bit worth of keys, plus the
        # movemask/popcount pair
        counters.simd_ops += 2 * max(1, n * 8 // 32) + 2
    return k


_DISPATCH: dict = {
    NodeSearchAlgorithm.SEQUENTIAL: sequential_search,
    NodeSearchAlgorithm.LINEAR_SIMD: linear_simd_search,
    NodeSearchAlgorithm.HIERARCHICAL_SIMD: hierarchical_simd_search,
}


def get_search_function(
    algorithm: NodeSearchAlgorithm,
) -> Callable[..., int]:
    """Resolve an algorithm enum to its search function."""
    return _DISPATCH[algorithm]


#: estimated CPU cycles of pure compute per node search, used by the
#: analytic cost model (memory time is modeled separately).  Sequential
#: search pays data-dependent branches; hierarchical SIMD loads less than
#: linear SIMD and is slightly faster (Fig 8).
COMPUTE_CYCLES = {
    NodeSearchAlgorithm.SEQUENTIAL: 22.0,
    NodeSearchAlgorithm.LINEAR_SIMD: 10.0,
    NodeSearchAlgorithm.HIERARCHICAL_SIMD: 9.0,
}
