"""Software pipelining of tree lookups (paper Algorithm 2, appendix B.2).

Each CPU thread resolves a batch of ``P`` queries *concurrently*: instead
of waiting for a child node's cache line, the thread issues a prefetch
and switches to the next query in the batch.  The paper found ``P = 16``
optimal (Fig 20): throughput saturates there (2.5x over ``P = 1``) while
latency keeps growing (6x at ``P = 16``).

This module executes the interleaving literally against an implicit
tree — level-step by level-step across the whole batch, exactly the loop
structure of Algorithm 2 — so that the memory system sees the true
interleaved access order, and reports the overlap statistics the cost
model converts into time.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import List, Optional, Sequence

from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.node_search import get_search_function, search_leaf_line


@dataclass
class PipelineStats:
    """Execution statistics of one software-pipelined batch run."""

    queries: int = 0
    level_steps: int = 0
    #: cache misses that had at least one other in-flight query to
    #: overlap with (their latency is hidden by the pipeline)
    overlapped_misses: int = 0
    #: cache misses with nothing to overlap (exposed latency)
    exposed_misses: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def copy(self) -> "PipelineStats":
        """A detached snapshot; mutating the live stats won't touch it."""
        return replace(self)


class SoftwarePipeline:
    """Runs point lookups through Algorithm 2 on an implicit tree.

    ``stats`` accumulates across :meth:`run` calls by design (a
    pipeline serves a stream); callers comparing runs should either
    :meth:`reset_stats` between them or detach a snapshot with
    :meth:`take_stats` — the accumulation is explicit, not a side
    effect of a lazily-created attribute.
    """

    def __init__(self, tree: ImplicitCpuBPlusTree, pipeline_len: int = 16):
        if pipeline_len < 1:
            raise ValueError("pipeline length must be >= 1")
        self.tree = tree
        self.pipeline_len = pipeline_len
        self._stats = PipelineStats()

    def run(self, queries: Sequence[int]) -> List[Optional[int]]:
        """Resolve ``queries``; results match ``tree.lookup`` exactly."""
        results: List[Optional[int]] = []
        for start in range(0, len(queries), self.pipeline_len):
            batch = [int(q) for q in queries[start: start + self.pipeline_len]]
            results.extend(self._run_batch(batch))
        return results

    def _run_batch(self, keys: List[int]) -> List[Optional[int]]:
        tree = self.tree
        mem = tree.mem
        counters = mem.counters if mem is not None else None
        search = get_search_function(tree.algorithm)
        p = len(keys)
        node = [0] * p
        # Algorithm 2 lines 3-6: one tree level per outer step, all
        # in-flight queries advanced before the first one is revisited
        for level, level_keys in enumerate(tree.inner_levels):
            offset = tree._level_line_offset(level)
            next_size = (
                tree.inner_levels[level + 1].shape[0]
                if level + 1 < len(tree.inner_levels)
                else tree.num_leaves
            )
            misses_this_step = 0
            for i in range(p):
                if mem is not None and tree.i_segment is not None:
                    misses_this_step += mem.touch_line(
                        tree.i_segment, offset + node[i]
                    )
                k = search(level_keys[node[i]], keys[i], counters)
                node[i] = min(node[i] * tree.fanout + k, next_size - 1)
            self._account_overlap(misses_this_step)
        # Algorithm 2 lines 7-8: leaf search
        results: List[Optional[int]] = []
        misses_this_step = 0
        for i in range(p):
            if mem is not None and tree.l_segment is not None:
                misses_this_step += mem.touch_line(tree.l_segment, node[i])
            row = tree.leaf_keys[node[i]]
            pos = search_leaf_line(row, keys[i], counters, tree.algorithm)
            if pos < row.shape[0] and int(row[pos]) == keys[i]:
                results.append(int(tree.leaf_values[node[i], pos]))
            else:
                results.append(None)
            if counters is not None:
                counters.queries += 1
        self._account_overlap(misses_this_step)
        self.stats.queries += p
        self.stats.level_steps += tree.height + 1
        return results

    def _account_overlap(self, misses: int) -> None:
        if misses <= 0:
            return
        if misses > 1 or self.pipeline_len > 1:
            # with P queries in flight, all but one miss per step overlap
            self.stats.overlapped_misses += misses - (1 if misses else 0)
            self.stats.exposed_misses += 1 if misses else 0
        else:
            self.stats.exposed_misses += misses

    @property
    def stats(self) -> PipelineStats:
        return self._stats

    def reset_stats(self) -> None:
        self._stats.reset()

    def take_stats(self) -> PipelineStats:
        """Detach a snapshot of the accumulated stats and reset the
        live object — the safe way to compare repeated runs."""
        snap = self._stats.copy()
        self._stats.reset()
        return snap

    def effective_memory_parallelism(self, max_mlp: int = 10) -> int:
        """In-flight misses the pipeline can overlap, capped by the LFBs."""
        return max(1, min(self.pipeline_len, max_mlp))
