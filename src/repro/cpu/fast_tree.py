"""FAST (Fast Architecture Sensitive Tree) baseline.

FAST (Kim et al., SIGMOD 2010) is the comparison point of the paper's
Fig 9: an *implicit binary search tree* whose nodes are laid out with
hierarchical blocking — SIMD blocks inside cache-line blocks inside page
blocks — so a query touches one cache line per ``d_L`` binary levels
instead of one per level.

This implementation is functional (real lookups over the indexed pairs)
and instrumented: each visited cache-line block is charged to the memory
system, so the benchmark's throughput derives from the same machinery as
the B+-trees.  The key structural difference the paper exploits — FAST's
cache-line fanout of ``2**d_L`` versus the B+-tree's ``keys_per_line + 1``
— emerges directly from the layout.

Layout notes: with 64-bit keys a 64-byte line holds a complete binary
subtree of depth 3 (7 keys, 1 slot padding); with 32-bit keys depth 4
(15 keys, 1 slot padding).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.keys import KeySpec, key_spec
from repro.memsim.allocator import Segment
from repro.memsim.mainmem import MemorySystem, PageConfig


class FastTree:
    """An implicit, cache-line-blocked binary search tree.

    The index tree is a complete binary tree over the sorted keys
    (internal nodes replicate keys, values live in a separate sorted
    leaf array — the "rearranged tuples" of the FAST paper).
    """

    #: compute cycles per visited cache-line block: FAST's in-line
    #: search is a 3-stage SIMD-blocked binary descent (dependent
    #: stages), costlier than our one-shot node search but cheaper than
    #: a scalar scan.  Calibrated once against the paper's Fig 9 ratio.
    COMPUTE_CYCLES_PER_LINE = 13.5

    def __init__(
        self,
        keys: Sequence[int],
        values: Sequence[int],
        key_bits: int = 64,
        mem: Optional[MemorySystem] = None,
        page_config: PageConfig = PageConfig.HUGE_HUGE,
        segment_prefix: str = "fast",
    ):
        self.spec: KeySpec = key_spec(key_bits)
        self.mem = mem
        self.page_config = page_config
        self._segment_prefix = segment_prefix
        self.i_segment: Optional[Segment] = None
        self.l_segment: Optional[Segment] = None
        # depth of a cache-line block: 3 for 64-bit keys, 4 for 32-bit
        self.line_depth = int(math.log2(self.spec.keys_per_line))
        self._build(keys, values)

    # ------------------------------------------------------------------

    def _build(self, keys, values) -> None:
        # explicit dtype: see ImplicitCpuBPlusTree._build
        keys = np.asarray(keys, dtype=self.spec.dtype)
        values = np.asarray(values, dtype=self.spec.dtype)
        if keys.ndim != 1 or keys.shape != values.shape:
            raise ValueError("keys and values must be 1-D arrays of equal length")
        if len(keys) == 0:
            raise ValueError("cannot build a tree over zero tuples")
        if int(keys.max()) >= self.spec.max_value:
            raise ValueError("keys must be strictly below the sentinel value")
        order = np.argsort(keys, kind="stable")
        self.sorted_keys = keys[order]
        self.sorted_values = values[order]
        if len(keys) > 1 and np.any(self.sorted_keys[1:] == self.sorted_keys[:-1]):
            raise ValueError("duplicate keys are not supported")
        self.num_tuples = len(keys)
        # complete binary tree depth over the tuples
        self.depth = max(1, math.ceil(math.log2(self.num_tuples + 1)))
        self._allocate_segments()

    def _allocate_segments(self) -> None:
        if self.mem is None:
            return
        prefix = self._segment_prefix
        for name in (f"{prefix}.I", f"{prefix}.L"):
            if name in self.mem.allocator:
                self.mem.allocator.free(name)
        self.i_segment = self.mem.allocate(
            f"{prefix}.I",
            max(1, self.index_lines) * self.spec.cache_line,
            self.page_config.inner_kind,
        )
        leaf_lines = math.ceil(
            self.num_tuples * 2 * self.spec.size_bytes / self.spec.cache_line
        )
        self.l_segment = self.mem.allocate(
            f"{prefix}.L", max(1, leaf_lines) * self.spec.cache_line,
            self.page_config.leaf_kind,
        )

    @property
    def index_lines(self) -> int:
        """Cache lines of the blocked index structure."""
        # one line per cache-line block; blocks tile the binary tree in
        # groups of `line_depth` levels
        blocks = 0
        nodes_at_block_root = 1
        level = 0
        while level < self.depth:
            blocks += nodes_at_block_root
            nodes_at_block_root *= 2 ** self.line_depth
            level += self.line_depth
        return blocks

    @property
    def lines_per_query(self) -> int:
        """Cache-line blocks visited per lookup (plus one leaf line)."""
        return math.ceil(self.depth / self.line_depth) + 1

    # ------------------------------------------------------------------

    def _block_line_index(self, level: int, path_bits: int) -> int:
        """Line index of the cache-line block containing a visited node.

        ``path_bits`` is the left/right decision history from the root;
        blocks are laid out breadth-first over block-roots.
        """
        block_level = level // self.line_depth
        # line offset of the first block at this block level
        offset = 0
        width = 1
        for _ in range(block_level):
            offset += width
            width *= 2 ** self.line_depth
        block_index = path_bits >> (level - block_level * self.line_depth)
        return offset + block_index

    def lookup(self, key: int, instrument: bool = True) -> Optional[int]:
        """Point query via blocked binary search over the index tree."""
        key = int(key)
        counters = self.mem.counters if (instrument and self.mem) else None
        lo, hi = 0, self.num_tuples  # search window over sorted keys
        path_bits = 0
        touched_line = -1
        for level in range(self.depth):
            if instrument and self.mem is not None and self.i_segment is not None:
                line = self._block_line_index(level, path_bits)
                if line != touched_line:
                    self.mem.touch_line(self.i_segment, line)
                    touched_line = line
            mid = (lo + hi) // 2
            if mid >= self.num_tuples:
                go_right = False
            else:
                go_right = key > int(self.sorted_keys[mid])
            if counters is not None:
                counters.key_comparisons += 1
                counters.simd_ops += 1 if level % 2 == 0 else 0
            if go_right:
                lo = mid + 1
            else:
                hi = mid
            path_bits = (path_bits << 1) | (1 if go_right else 0)
            if lo >= hi:
                break
        pos = lo
        if instrument and self.mem is not None and self.l_segment is not None:
            pair_bytes = 2 * self.spec.size_bytes
            self.mem.touch(
                self.l_segment,
                min(pos, self.num_tuples - 1) * pair_bytes,
                pair_bytes,
            )
        if counters is not None:
            counters.queries += 1
        if pos < self.num_tuples and int(self.sorted_keys[pos]) == key:
            return int(self.sorted_values[pos])
        return None

    def lookup_batch(self, queries: Sequence[int]) -> np.ndarray:
        """Vectorised lookups; the sentinel value marks not-found."""
        q = np.asarray(queries, dtype=self.spec.dtype)
        pos = np.searchsorted(self.sorted_keys, q)
        pos_c = np.minimum(pos, self.num_tuples - 1)
        found = self.sorted_keys[pos_c] == q
        out = np.full(len(q), self.spec.max_value, dtype=self.spec.dtype)
        out[found] = self.sorted_values[pos_c[found]]
        return out

    def __len__(self) -> int:
        return self.num_tuples

    def __repr__(self) -> str:
        return (
            f"FastTree(n={self.num_tuples}, depth={self.depth}, "
            f"bits={self.spec.bits})"
        )

    def __contains__(self, key: int) -> bool:
        return self.lookup(key, instrument=False) is not None
