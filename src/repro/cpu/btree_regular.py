"""The regular (pointer-based) CPU-optimized B+-tree.

Node structures follow Fig 2 (c)-(d) and section 4.1:

* an **inner node** spans ``1 + 2*K`` cache lines (17 for 64-bit keys):
  one *index line* whose entry ``s`` is the maximum key of key-line
  ``s`` (``I_s = K_{8s}``), ``K`` key lines and ``K`` reference lines,
  giving fanout ``F_I = K*K`` (64 for 64-bit, 256 for 32-bit).  Node
  search touches exactly three of these lines: index line, one key
  line, one reference line.
* **node fragmentation**: bookkeeping (size, parent, siblings) lives in
  a second fragment allocated from a parallel pool sharing the node's
  index, so lookups never drag bookkeeping into the cache.
* a **big leaf** packs ``F_I`` cache-line leaves (4 pairs each for
  64-bit) plus one info line, for a capacity of 256 key-value pairs.
  Every last-level inner node is paired with exactly one big leaf *at
  the same pool index*, so the inner-node search result directly
  addresses the cache line inside the leaf.

Empty key slots hold the maximum representable value, so node search
needs no size field (section 4.1).

Updates: full insert/delete support with big-leaf and inner-node splits.
Underfull nodes after deletion are collapsed only when empty (lazy
deletion) — the paper's batch-update workloads are insert/modify
dominated and never rebalance eagerly either (section 5.6 resolves >99%
of updates inside a big leaf).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cpu.node_search import (
    NodeSearchAlgorithm,
    get_search_function,
    search_leaf_line,
)
from repro.keys import KeySpec, key_spec
from repro.memsim.allocator import Segment
from repro.memsim.mainmem import MemorySystem, PageConfig

_NIL = -1


def _multi_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """The concatenation of ``arange(s, s + c)`` per (start, count),
    without a Python-level loop."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        counts.cumsum() - counts, counts
    )
    return np.repeat(np.asarray(starts, dtype=np.int64), counts) + offsets


class _InnerPool:
    """A growable pool of inner nodes, fragmented into two structures.

    Fragment A: ``keys`` + ``refs`` + derived ``index_line`` (the 17
    cache lines).  Fragment B: ``size``/``parent``/``next``/``prev``.
    Both fragments share the node index.
    """

    def __init__(self, spec: KeySpec, capacity: int = 16):
        self.spec = spec
        self.fanout = spec.regular_fanout
        self._grow_to(capacity)
        self.count = 0
        self._free: List[int] = []

    def _grow_to(self, capacity: int) -> None:
        sentinel = self.spec.max_value
        kpl = self.spec.keys_per_line
        self.keys = np.full((capacity, self.fanout), sentinel, dtype=self.spec.dtype)
        self.index_line = np.full((capacity, kpl), sentinel, dtype=self.spec.dtype)
        self.refs = np.full((capacity, self.fanout), _NIL, dtype=np.int64)
        self.size = np.zeros(capacity, dtype=np.int64)
        self.parent = np.full(capacity, _NIL, dtype=np.int64)
        self.next = np.full(capacity, _NIL, dtype=np.int64)
        self.prev = np.full(capacity, _NIL, dtype=np.int64)
        self.version = np.zeros(capacity, dtype=np.int64)

    def _grow(self) -> None:
        old = (self.keys, self.index_line, self.refs, self.size, self.parent,
               self.next, self.prev, self.version)
        n = self.keys.shape[0]
        self._grow_to(2 * n)
        for new_arr, old_arr in zip(
            (self.keys, self.index_line, self.refs, self.size, self.parent,
             self.next, self.prev, self.version),
            old,
        ):
            new_arr[:n] = old_arr

    def allocate(self) -> int:
        if self._free:
            node = self._free.pop()
        else:
            if self.count >= self.keys.shape[0]:
                self._grow()
            node = self.count
            self.count += 1
        sentinel = self.spec.max_value
        self.keys[node] = sentinel
        self.index_line[node] = sentinel
        self.refs[node] = _NIL
        self.size[node] = 0
        self.parent[node] = _NIL
        self.next[node] = _NIL
        self.prev[node] = _NIL
        return node

    def free(self, node: int) -> None:
        self._free.append(node)

    def refresh_index(self, node: int) -> None:
        """Recompute the index line: I_s = max key of key-line s.

        Every key/ref mutation ends in a ``refresh_index``, so the call
        doubles as the node's write barrier: it bumps the node's
        monotonically-increasing version stamp (FB+-tree-style).  The
        stamp never resets — not even across ``free``/``allocate`` — so
        optimistic readers can not be fooled by slot reuse (ABA).
        """
        kpl = self.spec.keys_per_line
        self.index_line[node] = self.keys[node].reshape(kpl, kpl)[:, -1]
        self.version[node] += 1


class _LeafPool:
    """Big leaves: ``F_I`` packed cache-line leaves + one info line.

    Indexes are shared with the last-level inner pool: big leaf ``i``
    belongs to last-level inner node ``i``.
    """

    def __init__(self, spec: KeySpec, capacity: int = 16):
        self.spec = spec
        self.capacity_pairs = spec.regular_fanout * spec.leaf_pairs_per_line
        self._grow_to(capacity)
        self.count = 0
        self._free: List[int] = []

    def _grow_to(self, capacity: int) -> None:
        sentinel = self.spec.max_value
        self.keys = np.full(
            (capacity, self.capacity_pairs), sentinel, dtype=self.spec.dtype
        )
        self.values = np.zeros((capacity, self.capacity_pairs), dtype=self.spec.dtype)
        self.size = np.zeros(capacity, dtype=np.int64)
        self.next = np.full(capacity, _NIL, dtype=np.int64)
        self.prev = np.full(capacity, _NIL, dtype=np.int64)
        #: monotonically-increasing per-leaf write stamp (never reset,
        #: mirroring :class:`_InnerPool`); bumped on every content write
        self.version = np.zeros(capacity, dtype=np.int64)

    def _grow(self) -> None:
        old = (self.keys, self.values, self.size, self.next, self.prev,
               self.version)
        n = self.keys.shape[0]
        self._grow_to(2 * n)
        for new_arr, old_arr in zip(
            (self.keys, self.values, self.size, self.next, self.prev,
             self.version), old
        ):
            new_arr[:n] = old_arr

    def allocate(self) -> int:
        if self._free:
            leaf = self._free.pop()
        else:
            if self.count >= self.keys.shape[0]:
                self._grow()
            leaf = self.count
            self.count += 1
        self.keys[leaf] = self.spec.max_value
        self.values[leaf] = 0
        self.size[leaf] = 0
        self.next[leaf] = _NIL
        self.prev[leaf] = _NIL
        return leaf

    def free(self, leaf: int) -> None:
        self._free.append(leaf)

    @property
    def lines_per_leaf(self) -> int:
        """Cache lines per big leaf including the info line."""
        return self.spec.regular_fanout + 1


class RegularCpuBPlusTree:
    """A fully dynamic B+-tree with the paper's cache-blocked layout.

    ``height`` counts inner levels; it is at least 1 because the
    last-level inner node (paired with its big leaf) always exists.
    """

    def __init__(
        self,
        keys: Sequence[int] = (),
        values: Sequence[int] = (),
        key_bits: int = 64,
        mem: Optional[MemorySystem] = None,
        page_config: PageConfig = PageConfig.HUGE_SMALL,
        algorithm: NodeSearchAlgorithm = NodeSearchAlgorithm.HIERARCHICAL_SIMD,
        segment_prefix: str = "regular",
        fill: float = 1.0,
    ):
        self.spec = key_spec(key_bits)
        self.fanout = self.spec.regular_fanout
        self.algorithm = algorithm
        self.mem = mem
        self.page_config = page_config
        self._segment_prefix = segment_prefix
        self.i_segment: Optional[Segment] = None
        self.l_segment: Optional[Segment] = None
        self.upper = _InnerPool(self.spec)
        self.last = _InnerPool(self.spec)
        self.leaves = self._make_leaf_pool()
        self.num_tuples = 0
        # an empty tree still has one (empty) last-level inner + big leaf
        self.root = self._new_last_level_node()
        self.height = 1
        self._first_leaf = self.root
        if len(keys):
            self.bulk_build(keys, values, fill=fill)

    # ------------------------------------------------------------------
    # allocation helpers

    def _make_leaf_pool(self) -> _LeafPool:
        """Leaf-pool factory; the gapped subclass swaps in its pool."""
        return _LeafPool(self.spec)

    def _new_last_level_node(self) -> int:
        node = self.last.allocate()
        leaf = self.leaves.allocate()
        if node != leaf:
            raise AssertionError(
                "last-level inner pool and leaf pool indexes diverged"
            )
        return node

    def _pool(self, level: int) -> _InnerPool:
        """Pool for a level; level 0 is the last (leaf-adjacent) level."""
        return self.last if level == 0 else self.upper

    # ------------------------------------------------------------------
    # geometry / instrumentation

    @property
    def lines_per_inner(self) -> int:
        return 1 + 2 * self.spec.keys_per_line

    @property
    def i_segment_bytes(self) -> int:
        nodes = self.upper.count + self.last.count
        return nodes * self.lines_per_inner * self.spec.cache_line

    @property
    def l_segment_bytes(self) -> int:
        return self.leaves.count * self.leaves.lines_per_leaf * self.spec.cache_line

    def _ensure_segments(self) -> None:
        """(Re)allocate simulation segments sized for current pools."""
        if self.mem is None:
            return
        prefix = self._segment_prefix
        need_i = max(self.spec.cache_line, self.i_segment_bytes)
        need_l = max(self.spec.cache_line, self.l_segment_bytes)
        if self.i_segment is None or self.i_segment.size < need_i:
            if f"{prefix}.I" in self.mem.allocator:
                self.mem.allocator.free(f"{prefix}.I")
            self.i_segment = self.mem.allocate(
                f"{prefix}.I", 2 * need_i, self.page_config.inner_kind
            )
        if self.l_segment is None or self.l_segment.size < need_l:
            if f"{prefix}.L" in self.mem.allocator:
                self.mem.allocator.free(f"{prefix}.L")
            self.l_segment = self.mem.allocate(
                f"{prefix}.L", 2 * need_l, self.page_config.leaf_kind
            )

    def _touch_inner(self, level: int, node: int, group: int) -> None:
        """Charge the three cache lines a node search reads."""
        if self.mem is None:
            return
        self._ensure_segments()
        kpl = self.spec.keys_per_line
        # upper-pool nodes first in the I-segment, then last-level nodes
        base = node + (self.upper.count if level == 0 else 0)
        line0 = base * self.lines_per_inner
        self.mem.touch_line(self.i_segment, line0)  # index line
        self.mem.touch_line(self.i_segment, line0 + 1 + group)  # key line
        self.mem.touch_line(self.i_segment, line0 + 1 + kpl + group)  # ref line

    def _touch_leaf_line(self, leaf: int, line: int) -> None:
        if self.mem is None:
            return
        self._ensure_segments()
        self.mem.touch_line(
            self.l_segment, leaf * self.leaves.lines_per_leaf + line
        )

    def _touch_leaf_lines(self, leaves: np.ndarray, lines: np.ndarray) -> None:
        """Batched :meth:`_touch_leaf_line`; identical counter effects."""
        if self.mem is None:
            return
        self._ensure_segments()
        indices = (
            np.asarray(leaves, dtype=np.int64) * self.leaves.lines_per_leaf
            + np.asarray(lines, dtype=np.int64)
        )
        self.mem.touch_lines(self.l_segment, indices)

    # ------------------------------------------------------------------
    # node search (3 cache lines: index, key line, ref line)

    def _search_inner(self, pool: _InnerPool, node: int, key: int,
                      counters=None) -> int:
        """Return the child slot for ``key`` (clamped to node size)."""
        search = get_search_function(self.algorithm)
        kpl = self.spec.keys_per_line
        group = search(pool.index_line[node], key, counters)
        group = min(group, kpl - 1)
        line = pool.keys[node].reshape(kpl, kpl)[group]
        local = search(line, key, counters)
        local = min(local, kpl - 1)
        slot = group * kpl + local
        return min(slot, max(int(pool.size[node]) - 1, 0))

    # ------------------------------------------------------------------
    # lookup

    def _descend(self, key: int, instrument: bool) -> Tuple[int, int, list]:
        """Walk to the last-level node; returns (node, leaf_line, path).

        ``path`` is [(level, node, slot), ...] from the root down,
        recorded for key-maintenance on insert.
        """
        counters = self.mem.counters if (instrument and self.mem) else None
        node = self.root
        path = []
        for level in range(self.height - 1, 0, -1):
            slot = self._search_inner(self.upper, node, key, counters)
            if instrument:
                self._touch_inner(level, node, slot // self.spec.keys_per_line)
            path.append((level, node, slot))
            node = int(self.upper.refs[node, slot])
        slot = self._search_inner(self.last, node, key, counters)
        if instrument:
            self._touch_inner(0, node, slot // self.spec.keys_per_line)
        path.append((0, node, slot))
        return node, slot, path

    def lookup(self, key: int, instrument: bool = True) -> Optional[int]:
        """Point query; returns the value or None."""
        key = int(key)
        node, line, _ = self._descend(key, instrument)
        counters = self.mem.counters if (instrument and self.mem) else None
        if instrument:
            self._touch_leaf_line(node, line)
        p = self.spec.leaf_pairs_per_line
        row = self.leaves.keys[node, line * p: (line + 1) * p]
        pos = search_leaf_line(row, key, counters, self.algorithm)
        if counters is not None:
            counters.queries += 1
        if pos < p and int(row[pos]) == key:
            return int(self.leaves.values[node, line * p + pos])
        return None

    def lookup_batch(self, queries: Sequence[int]) -> np.ndarray:
        """Vectorised point lookups; the sentinel marks not-found."""
        q = np.asarray(queries, dtype=self.spec.dtype)
        node = np.full(len(q), self.root, dtype=np.int64)
        for _level in range(self.height - 1, 0, -1):
            keys = self.upper.keys[node]
            slot = np.sum(keys < q[:, None], axis=1)
            slot = np.minimum(slot, np.maximum(self.upper.size[node] - 1, 0))
            node = self.upper.refs[node, slot]
        keys = self.last.keys[node]
        line = np.sum(keys < q[:, None], axis=1)
        line = np.minimum(line, np.maximum(self.last.size[node] - 1, 0))
        p = self.spec.leaf_pairs_per_line
        base = line * p
        rows = self.leaves.keys[node[:, None], base[:, None] + np.arange(p)]
        pos = np.sum(rows < q[:, None], axis=1)
        pos_c = np.minimum(pos, p - 1)
        found = rows[np.arange(len(q)), pos_c] == q
        out = np.full(len(q), self.spec.max_value, dtype=self.spec.dtype)
        idx = np.arange(len(q))[found]
        out[found] = self.leaves.values[node[idx], base[idx] + pos_c[idx]]
        return out

    def descend_batch(self, queries: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised inner descent; returns ``(last_node, leaf_line)``.

        The uninstrumented batch twin of :meth:`_descend` — used by the
        batch updater to classify a whole update group at once.
        """
        q = np.asarray(queries, dtype=self.spec.dtype)
        node = np.full(len(q), self.root, dtype=np.int64)
        for _level in range(self.height - 1, 0, -1):
            keys = self.upper.keys[node]
            slot = np.sum(keys < q[:, None], axis=1)
            slot = np.minimum(slot, np.maximum(self.upper.size[node] - 1, 0))
            node = self.upper.refs[node, slot]
        keys = self.last.keys[node]
        line = np.sum(keys < q[:, None], axis=1)
        line = np.minimum(line, np.maximum(self.last.size[node] - 1, 0))
        return node, line.astype(np.int64)

    def leaf_chain(self) -> np.ndarray:
        """Big-leaf pool indexes in leaf-chain (key) order."""
        chain: List[int] = []
        node = self._first_leaf
        while node != _NIL:
            chain.append(node)
            node = int(self.leaves.next[node])
        return np.asarray(chain, dtype=np.int64)

    def stored_keys(self) -> np.ndarray:
        """All stored keys in key order (vectorised :meth:`items` twin).

        Gathers per-leaf key prefixes with one mask instead of a Python
        loop per tuple; freed pool slots (which keep stale keys) are
        excluded by walking the leaf chain.
        """
        chain = self.leaf_chain()
        if len(chain) == 0 or self.num_tuples == 0:
            return np.zeros(0, dtype=self.spec.dtype)
        sizes = self.leaves.size[chain]
        mask = np.arange(self.leaves.capacity_pairs) < sizes[:, None]
        return self.leaves.keys[chain][mask]

    def range_query_scalar(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Scalar reference walk of :meth:`range_query`.

        One Python iteration per visited slot — kept as the baseline
        the vectorised scan is checked (and benchmarked) against, the
        same way ``pack_i_segment_scalar`` anchors the packing path.
        """
        if lo > hi or self.num_tuples == 0:
            return []
        node, line, _ = self._descend(int(lo), instrument=True)
        counters = self.mem.counters if self.mem else None
        p = self.spec.leaf_pairs_per_line
        start = int(
            np.searchsorted(self.leaves.keys[node, : self.leaves.size[node]],
                            self.spec.dtype(lo))
        )
        results: List[Tuple[int, int]] = []
        touched_line = -1
        while node != _NIL:
            size = int(self.leaves.size[node])
            while start < size:
                cur_line = start // p
                if cur_line != touched_line:
                    self._touch_leaf_line(node, cur_line)
                    touched_line = cur_line
                key = int(self.leaves.keys[node, start])
                if key > hi:
                    if counters is not None:
                        counters.queries += 1
                    return results
                if self._slot_is_live(node, start):
                    results.append(
                        (key, int(self.leaves.values[node, start]))
                    )
                start += 1
            node = int(self.leaves.next[node])
            start = 0
            touched_line = -1
        if counters is not None:
            counters.queries += 1
        return results

    def range_scan_from_scalar(self, node: int, lo: int,
                               hi: int) -> List[Tuple[int, int]]:
        """Scalar reference walk of :meth:`range_scan_from`.

        One Python iteration per visited slot, starting at big leaf
        ``node`` with no descent — the baseline the vectorised
        leaf-chain scan is benchmarked against stage-for-stage.  Like
        the vectorised twin it tolerates a start leaf at-or-before
        the true one: it keeps seeking ``lo`` leaf by leaf until a
        leaf holds a key at-or-after it.
        """
        if lo > hi or self.num_tuples == 0:
            return []
        node = int(node)
        counters = self.mem.counters if self.mem else None
        p = self.spec.leaf_pairs_per_line
        lo_t = self.spec.dtype(lo)
        results: List[Tuple[int, int]] = []
        seeking = True
        while node != _NIL:
            size = int(self.leaves.size[node])
            if size:
                if seeking:
                    start = int(np.searchsorted(
                        self.leaves.keys[node, :size], lo_t
                    ))
                else:
                    start = 0
                if start < size:
                    seeking = False
                    touched_line = -1
                    while start < size:
                        cur_line = start // p
                        if cur_line != touched_line:
                            self._touch_leaf_line(node, cur_line)
                            touched_line = cur_line
                        key = int(self.leaves.keys[node, start])
                        if key > hi:
                            if counters is not None:
                                counters.queries += 1
                            return results
                        if self._slot_is_live(node, start):
                            results.append(
                                (key, int(self.leaves.values[node, start]))
                            )
                        start += 1
            node = int(self.leaves.next[node])
        if counters is not None:
            counters.queries += 1
        return results

    def _slot_is_live(self, node: int, slot: int) -> bool:
        """Whether leaf slot holds a real pair (gapped pool overrides)."""
        return True

    def _gather_pairs(self, nodes: np.ndarray, a: np.ndarray,
                      b: np.ndarray,
                      results: List[Tuple[int, int]]) -> None:
        """Append the pairs in slots ``[a_i, b_i)`` of each leaf, in
        chain order (the gapped pool overrides to mask gap slots)."""
        cap = self.leaves.capacity_pairs
        idx = _multi_arange(nodes * cap + a, b - a)
        k = self.leaves.keys.reshape(-1)[idx]
        v = self.leaves.values.reshape(-1)[idx]
        results.extend(zip(k.tolist(), v.tolist()))

    def _scan_chain(self, node: int, lo: int, hi: int,
                    instrument: bool = True) -> List[Tuple[int, int]]:
        """Vectorised leaf-chain scan from leaf ``node``.

        The per-leaf loop does scalar bookkeeping only — a
        ``searchsorted`` runs solely in the first contributing leaf
        (chain keys are globally non-decreasing, so every later leaf
        starts at slot 0) and in the terminating leaf (detected by one
        last-key comparison).  The touched-line stream and the result
        gather are each issued as one batched call at scan end, in the
        exact order the scalar walk produces them: identical results,
        identical modeled counters.
        """
        counters = self.mem.counters if (instrument and self.mem) else None
        p = self.spec.leaf_pairs_per_line
        lo_t = self.spec.dtype(lo)
        hi_t = self.spec.dtype(hi)
        leaf_keys = self.leaves.keys
        leaf_size = self.leaves.size
        leaf_next = self.leaves.next
        seg_node: List[int] = []
        seg_a: List[int] = []
        seg_b: List[int] = []
        line_node: List[int] = []
        line_a: List[int] = []
        line_b: List[int] = []
        seeking = True
        while node != _NIL:
            size = int(leaf_size[node])
            if size:
                if seeking:
                    start = int(
                        np.searchsorted(leaf_keys[node, :size], lo_t)
                    )
                else:
                    start = 0
                if start < size:
                    seeking = False
                    if leaf_keys[node, size - 1] <= hi_t:
                        # whole remainder of the leaf qualifies
                        stop = size - start
                        terminates = False
                    else:
                        stop = int(np.searchsorted(
                            leaf_keys[node, start:size], hi_t,
                            side="right",
                        ))
                        terminates = True
                    last_slot = start + stop if terminates else size - 1
                    line_node.append(node)
                    line_a.append(start // p)
                    line_b.append(last_slot // p + 1)
                    if stop:
                        seg_node.append(node)
                        seg_a.append(start)
                        seg_b.append(start + stop)
                    if terminates:
                        break
            node = int(leaf_next[node])
        if instrument and line_node:
            la = np.asarray(line_a, dtype=np.int64)
            cnt = np.asarray(line_b, dtype=np.int64) - la
            self._touch_leaf_lines(
                np.repeat(np.asarray(line_node, dtype=np.int64), cnt),
                _multi_arange(la, cnt),
            )
        results: List[Tuple[int, int]] = []
        if seg_node:
            self._gather_pairs(
                np.asarray(seg_node, dtype=np.int64),
                np.asarray(seg_a, dtype=np.int64),
                np.asarray(seg_b, dtype=np.int64),
                results,
            )
        if counters is not None:
            counters.queries += 1
        return results

    def range_query(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """All (key, value) pairs with ``lo <= key <= hi`` in order.

        Vectorised: identical results and identical modeled leaf-line
        counters to :meth:`range_query_scalar`.
        """
        if lo > hi or self.num_tuples == 0:
            return []
        node, _line, _ = self._descend(int(lo), instrument=True)
        return self._scan_chain(node, int(lo), int(hi))

    def range_scan_from(self, node: int, lo: int,
                        hi: int) -> List[Tuple[int, int]]:
        """Leaf-chain scan starting at big leaf ``node`` (no descent).

        The engine scan path locates the start leaf on the GPU and
        finishes here.  Tolerates a start leaf at-or-before the true
        one: leaves whose keys all precede ``lo`` contribute nothing
        and the walk moves on.
        """
        if lo > hi or self.num_tuples == 0:
            return []
        return self._scan_chain(int(node), int(lo), int(hi))

    # ------------------------------------------------------------------
    # key maintenance

    def _line_max_keys(self, leaf: int) -> np.ndarray:
        """Per-cache-line max keys of a big leaf (MAX beyond its size)."""
        p = self.spec.leaf_pairs_per_line
        return self.leaves.keys[leaf].reshape(self.fanout, p)[:, -1]

    def leaf_occupancy(self, nodes: np.ndarray) -> np.ndarray:
        """Stored pairs per big leaf (vectorised).

        For the compact layout this is the leaf ``size``; the gapped
        subclass overrides it with the live-pair count so split
        projection counts real entries, not interleaved gaps.
        """
        return self.leaves.size[np.asarray(nodes, dtype=np.int64)]

    def _refresh_last_level_keys(self, node: int) -> None:
        """Re-derive a last-level inner's keys from its big leaf."""
        self.leaves.version[node] += 1
        p = self.spec.leaf_pairs_per_line
        size = int(self.leaves.size[node])
        lines = (size + p - 1) // p
        keys = np.full(self.fanout, self.spec.max_value, dtype=self.spec.dtype)
        if lines:
            reshaped = self.leaves.keys[node].reshape(self.fanout, p)
            keys[:lines] = reshaped[:lines, -1]
            last_in = size - 1
            keys[lines - 1] = self.leaves.keys[node, last_in]
        self.last.keys[node] = keys
        self.last.size[node] = max(lines, 1)
        self.last.refresh_index(node)

    def _node_max(self, level: int, node: int) -> int:
        """Actual maximum key stored beneath a node."""
        if level == 0:
            size = int(self.leaves.size[node])
            if size == 0:
                return 0
            return int(self.leaves.keys[node, size - 1])
        size = int(self.upper.size[node])
        child = int(self.upper.refs[node, size - 1])
        return self._node_max(level - 1, child)

    def _set_parent_key(self, level: int, node: int, slot: int, key: int) -> None:
        pool = self._pool(level)
        pool.keys[node, slot] = key
        pool.refresh_index(node)

    # ------------------------------------------------------------------
    # insert

    def insert(self, key: int, value: int) -> bool:
        """Insert or overwrite; returns True if the key was new."""
        key = int(key)
        if not 0 <= key < self.spec.max_value:
            raise ValueError("key outside the valid (non-sentinel) domain")
        node, _line, path = self._descend(key, instrument=False)
        leaf_keys = self.leaves.keys[node]
        size = int(self.leaves.size[node])
        # NB: searchsorted needs the scalar in the array's dtype — a
        # plain Python int above 2**53 would be compared as float64 and
        # land in the wrong slot
        typed_key = self.spec.dtype(key)
        pos = int(np.searchsorted(leaf_keys[:size], typed_key))
        if pos < size and int(leaf_keys[pos]) == key:
            self.leaves.values[node, pos] = value
            self.leaves.version[node] += 1
            return False
        if size >= self.leaves.capacity_pairs:
            self._split_leaf(node, path)
            # re-descend: the split may have moved the target range
            node, _line, path = self._descend(key, instrument=False)
            leaf_keys = self.leaves.keys[node]
            size = int(self.leaves.size[node])
            pos = int(np.searchsorted(leaf_keys[:size], typed_key))
        leaf_keys[pos + 1: size + 1] = leaf_keys[pos:size]
        self.leaves.values[node, pos + 1: size + 1] = self.leaves.values[
            node, pos:size
        ]
        leaf_keys[pos] = key
        self.leaves.values[node, pos] = value
        self.leaves.size[node] = size + 1
        self._refresh_last_level_keys(node)
        self._bubble_up_max(path, key)
        self.num_tuples += 1
        return True

    def _bubble_up_max(self, path: list, key: int) -> None:
        """Raise routing keys along the descend path to cover ``key``."""
        for level, node, slot in reversed(path[:-1]):
            if int(self.upper.keys[node, slot]) < key:
                self._set_parent_key(level, node, slot, key)

    def _raise_parent_keys(self, node: int, new_max: int) -> None:
        """Raise ancestor routing keys to cover ``new_max``.

        Path-free twin of :meth:`_bubble_up_max` for the batch insert
        path: walks the parent fragment upward from a last-level node,
        locating the child slot the way ``_remove_child`` does.
        """
        child = node
        level = 0
        while True:
            parent = int(self._pool(level).parent[child])
            if parent == _NIL:
                return
            psize = int(self.upper.size[parent])
            for s in range(psize):
                if int(self.upper.refs[parent, s]) == child:
                    if int(self.upper.keys[parent, s]) < new_max:
                        self._set_parent_key(level + 1, parent, s, new_max)
                    break
            child = parent
            level += 1

    def _write_leaf_pairs(
        self, node: int, keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Overwrite a big leaf with sorted pairs (compact layout).

        The layout hook of the batch insert path: writes the pairs as a
        packed prefix with sentinel padding — exactly the state a
        sequence of single inserts leaves behind.  The gapped subclass
        re-spreads the pairs with interleaved gaps instead.
        """
        m = len(keys)
        if m > self.leaves.capacity_pairs:
            raise ValueError("leaf overflow in _write_leaf_pairs")
        self.leaves.keys[node, :m] = keys
        self.leaves.values[node, :m] = values
        self.leaves.keys[node, m:] = self.spec.max_value
        self.leaves.values[node, m:] = 0
        self.leaves.size[node] = m
        self._refresh_last_level_keys(node)

    def _leaf_pairs(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of one leaf's stored (keys, values), gaps excluded."""
        size = int(self.leaves.size[node])
        return (
            self.leaves.keys[node, :size].copy(),
            self.leaves.values[node, :size].copy(),
        )

    def insert_batch(
        self,
        keys: Sequence[int],
        values: Sequence[int],
        nodes: Optional[np.ndarray] = None,
    ) -> int:
        """Vectorised upsert batch; returns the number of *new* keys.

        Groups the batch by target big leaf (one :meth:`descend_batch`)
        and rewrites each touched leaf once with the merged pairs — a
        scatter of grouped per-leaf inserts instead of a per-op descend
        + shift.  Duplicate keys collapse to the last value, matching
        sequential insert semantics.  A leaf whose merged occupancy
        would exceed capacity falls back to per-op :meth:`insert` for
        its group (the split path); everything else never splits, so
        the final tree state is identical to the sequential loop.

        ``nodes`` may carry precomputed descent targets (from a caller
        that already classified the batch); they must come from this
        tree with no structural change in between.
        """
        bk = np.asarray(keys, dtype=self.spec.dtype)
        bv = np.asarray(values, dtype=self.spec.dtype)
        if len(bk) == 0:
            return 0
        if len(bk) and int(bk.max()) >= self.spec.max_value:
            raise ValueError("key outside the valid (non-sentinel) domain")
        # last value wins per duplicate key (sequential semantics)
        _u, last_idx = np.unique(bk[::-1], return_index=True)
        keep = np.sort(len(bk) - 1 - last_idx)
        bk, bv = bk[keep], bv[keep]
        if nodes is None:
            nodes, _lines = self.descend_batch(bk)
        else:
            nodes = np.asarray(nodes, dtype=np.int64)[keep]
        order = np.argsort(nodes, kind="stable")
        bk, bv, nodes = bk[order], bv[order], nodes[order]
        runs = np.r_[0, np.flatnonzero(nodes[1:] != nodes[:-1]) + 1, len(nodes)]
        new_total = 0
        cap = self.leaves.capacity_pairs
        for i in range(len(runs) - 1):
            lo, hi = int(runs[i]), int(runs[i + 1])
            node = int(nodes[lo])
            gk, gv = bk[lo:hi], bv[lo:hi]
            ek, ev = self._leaf_pairs(node)
            # merge: existing keys hit by the group are overwritten
            hit = np.isin(ek, gk, assume_unique=True)
            n_new = len(gk) - int(np.count_nonzero(hit))
            if len(ek) - int(np.count_nonzero(hit)) + len(gk) > cap:
                # the group would overflow the leaf: sequential path
                # (splits, re-descents) for exactly this group
                for k, v in zip(gk.tolist(), gv.tolist()):
                    new_total += int(self.insert(int(k), int(v)))
                continue
            mk = np.concatenate([ek[~hit], gk])
            mv = np.concatenate([ev[~hit], gv])
            o = np.argsort(mk, kind="stable")
            self._write_leaf_pairs(node, mk[o], mv[o])
            if n_new:
                self._raise_parent_keys(node, int(mk[o][-1]))
            self.num_tuples += n_new
            new_total += n_new
        return new_total

    def _split_leaf(self, node: int, path: list) -> None:
        """Split a full big leaf (and its last-level inner) in half."""
        new_node = self._new_last_level_node()
        cap = self.leaves.capacity_pairs
        half = cap // 2
        self.leaves.keys[new_node, : cap - half] = self.leaves.keys[node, half:]
        self.leaves.values[new_node, : cap - half] = self.leaves.values[node, half:]
        self.leaves.keys[node, half:] = self.spec.max_value
        self.leaves.values[node, half:] = 0
        self.leaves.size[new_node] = cap - half
        self.leaves.size[node] = half
        # leaf chain
        nxt = int(self.leaves.next[node])
        self.leaves.next[node] = new_node
        self.leaves.prev[new_node] = node
        self.leaves.next[new_node] = nxt
        if nxt != _NIL:
            self.leaves.prev[nxt] = new_node
        self.last.next[node] = new_node
        self.last.prev[new_node] = node
        self.last.next[new_node] = nxt
        self._refresh_last_level_keys(node)
        self._refresh_last_level_keys(new_node)
        split_key = int(self.leaves.keys[node, half - 1])
        self._insert_into_parent(0, node, split_key, new_node, path)

    def _insert_into_parent(
        self, level: int, left: int, split_key: int, right: int, path: list
    ) -> None:
        """Link ``right`` as the sibling after ``left`` at ``level+1``."""
        parent_entry = None
        for entry in path:
            if entry[0] == level + 1 and (
                int(self.upper.refs[entry[1], entry[2]]) == left
            ):
                parent_entry = entry
                break
        if parent_entry is None and level + 1 > self.height - 1:
            # splitting the root: grow the tree by one level
            new_root = self.upper.allocate()
            self.upper.size[new_root] = 2
            self.upper.refs[new_root, 0] = left
            self.upper.refs[new_root, 1] = right
            self.upper.keys[new_root, 0] = split_key
            right_max = self._node_max(level, right)
            self.upper.keys[new_root, 1] = right_max
            self.upper.refresh_index(new_root)
            self._pool(level).parent[left] = new_root
            self._pool(level).parent[right] = new_root
            self.root = new_root
            self.height += 1
            return
        if parent_entry is None:
            # path did not record the parent (can happen after cascades):
            # find it via the parent fragment
            parent = int(self._pool(level).parent[left])
            psize = int(self.upper.size[parent])
            slot = None
            for s in range(psize):
                if int(self.upper.refs[parent, s]) == left:
                    slot = s
                    break
            if slot is None:
                raise AssertionError("parent fragment does not reference child")
            parent_entry = (level + 1, parent, slot)
        _plevel, parent, slot = parent_entry
        psize = int(self.upper.size[parent])
        if psize >= self.fanout:
            self._split_upper(level + 1, parent, path)
            # parent changed; retry through the fragment pointers
            self._insert_into_parent(level, left, split_key, right, [])
            return
        # shift keys/refs right of slot
        self.upper.keys[parent, slot + 2: psize + 1] = self.upper.keys[
            parent, slot + 1: psize
        ]
        self.upper.refs[parent, slot + 2: psize + 1] = self.upper.refs[
            parent, slot + 1: psize
        ]
        # the pre-split routing key bounded the whole node, which is now
        # exactly the upper bound of the right half
        right_max = int(self.upper.keys[parent, slot])
        self.upper.keys[parent, slot] = split_key
        self.upper.keys[parent, slot + 1] = right_max
        self.upper.refs[parent, slot + 1] = right
        self.upper.size[parent] = psize + 1
        self.upper.refresh_index(parent)
        self._pool(level).parent[right] = parent

    def _split_upper(self, level: int, node: int, path: list) -> None:
        """Split a full upper inner node in half."""
        new_node = self.upper.allocate()
        half = self.fanout // 2
        rest = self.fanout - half
        self.upper.keys[new_node, :rest] = self.upper.keys[node, half:]
        self.upper.refs[new_node, :rest] = self.upper.refs[node, half:]
        self.upper.keys[node, half:] = self.spec.max_value
        self.upper.refs[node, half:] = _NIL
        self.upper.size[new_node] = rest
        self.upper.size[node] = half
        self.upper.refresh_index(node)
        self.upper.refresh_index(new_node)
        child_pool = self._pool(level - 1)
        for s in range(rest):
            child_pool.parent[int(self.upper.refs[new_node, s])] = new_node
        # sibling chain
        nxt = int(self.upper.next[node])
        self.upper.next[node] = new_node
        self.upper.prev[new_node] = node
        self.upper.next[new_node] = nxt
        if nxt != _NIL:
            self.upper.prev[nxt] = new_node
        split_key = int(self.upper.keys[node, half - 1])
        if node == self.root:
            new_root = self.upper.allocate()
            self.upper.size[new_root] = 2
            self.upper.refs[new_root, 0] = node
            self.upper.refs[new_root, 1] = new_node
            self.upper.keys[new_root, 0] = split_key
            self.upper.keys[new_root, 1] = int(self.upper.keys[new_node, rest - 1])
            self.upper.refresh_index(new_root)
            self.upper.parent[node] = new_root
            self.upper.parent[new_node] = new_root
            self.root = new_root
            self.height += 1
        else:
            self._insert_into_parent(level, node, split_key, new_node, path)

    # ------------------------------------------------------------------
    # delete

    def delete(self, key: int) -> bool:
        """Remove a key; returns True if it was present."""
        key = int(key)
        node, _line, path = self._descend(key, instrument=False)
        size = int(self.leaves.size[node])
        pos = int(np.searchsorted(self.leaves.keys[node, :size],
                                  self.spec.dtype(key)))
        if pos >= size or int(self.leaves.keys[node, pos]) != key:
            return False
        self.leaves.keys[node, pos: size - 1] = self.leaves.keys[node, pos + 1: size]
        self.leaves.values[node, pos: size - 1] = self.leaves.values[
            node, pos + 1: size
        ]
        self.leaves.keys[node, size - 1] = self.spec.max_value
        self.leaves.values[node, size - 1] = 0
        self.leaves.size[node] = size - 1
        self._refresh_last_level_keys(node)
        self.num_tuples -= 1
        if size - 1 == 0 and self.height > 1:
            self._remove_empty_leaf(node, path)
        return True

    def _remove_empty_leaf(self, node: int, path: list) -> None:
        """Unlink an empty big leaf (lazy deletion's only collapse)."""
        prev, nxt = int(self.leaves.prev[node]), int(self.leaves.next[node])
        if prev == _NIL and nxt == _NIL:
            # the only leaf: keep it as the (empty) tree skeleton
            return
        if prev != _NIL:
            self.leaves.next[prev] = nxt
            self.last.next[prev] = nxt
        else:
            self._first_leaf = nxt
        if nxt != _NIL:
            self.leaves.prev[nxt] = prev
            self.last.prev[nxt] = prev
        self._remove_child(1, int(self.last.parent[node]), node)
        self.leaves.free(node)
        self.last.free(node)

    def _remove_child(self, level: int, parent: int, child: int) -> None:
        if parent == _NIL:
            return
        psize = int(self.upper.size[parent])
        slot = None
        for s in range(psize):
            if int(self.upper.refs[parent, s]) == child:
                slot = s
                break
        if slot is None:
            return
        self.upper.keys[parent, slot: psize - 1] = self.upper.keys[
            parent, slot + 1: psize
        ]
        self.upper.refs[parent, slot: psize - 1] = self.upper.refs[
            parent, slot + 1: psize
        ]
        self.upper.keys[parent, psize - 1] = self.spec.max_value
        self.upper.refs[parent, psize - 1] = _NIL
        self.upper.size[parent] = psize - 1
        self.upper.refresh_index(parent)
        if psize - 1 == 0:
            grand = int(self.upper.parent[parent])
            self._remove_child(level + 1, grand, parent)
            self.upper.free(parent)
        elif parent == self.root and psize - 1 == 1 and self.height > 1:
            self._collapse_root()

    def _collapse_root(self) -> None:
        """Shrink the tree while the root has a single child."""
        while self.height > 1 and int(self.upper.size[self.root]) == 1:
            child = int(self.upper.refs[self.root, 0])
            self.upper.free(self.root)
            self.root = child
            self.height -= 1
            pool = self.last if self.height == 1 else self.upper
            pool.parent[child] = _NIL

    # ------------------------------------------------------------------
    # bulk build

    def bulk_build(self, keys: Sequence[int], values: Sequence[int],
                   fill: float = 1.0) -> None:
        """Rebuild the tree from scratch over sorted (key, value) pairs.

        ``fill`` controls big-leaf occupancy (1.0 = packed full); update
        benchmarks build at ~0.7 so inserts find room, as a tree grown
        by random insertion would.  Inner levels are stacked bottom-up —
        the standard bulk-loading approach.
        """
        # explicit dtype: mixed-magnitude Python ints would otherwise
        # promote to float64 and lose precision beyond 2**53
        keys = np.asarray(keys, dtype=self.spec.dtype)
        values = np.asarray(values, dtype=self.spec.dtype)
        if keys.ndim != 1 or keys.shape != values.shape:
            raise ValueError("keys and values must be 1-D arrays of equal length")
        if len(keys) == 0:
            raise ValueError("cannot bulk build from zero tuples")
        if int(keys.max()) >= self.spec.max_value:
            raise ValueError("keys must be strictly below the sentinel value")
        order = np.argsort(keys, kind="stable")
        keys, values = keys[order], values[order]
        if len(keys) > 1 and np.any(keys[1:] == keys[:-1]):
            raise ValueError("duplicate keys are not supported")

        if not 0.05 <= fill <= 1.0:
            raise ValueError("fill factor must be in [0.05, 1.0]")
        self.upper = _InnerPool(self.spec)
        self.last = _InnerPool(self.spec)
        self.leaves = self._make_leaf_pool()
        self.num_tuples = len(keys)

        cap = max(1, int(self.leaves.capacity_pairs * fill))
        n_leaves = (len(keys) + cap - 1) // cap
        prev = _NIL
        level_nodes: List[int] = []
        level_maxes: List[int] = []
        for i in range(n_leaves):
            node = self._new_last_level_node()
            lo, hi = i * cap, min((i + 1) * cap, len(keys))
            self.leaves.keys[node, : hi - lo] = keys[lo:hi]
            self.leaves.values[node, : hi - lo] = values[lo:hi]
            self.leaves.size[node] = hi - lo
            self.leaves.prev[node] = prev
            if prev != _NIL:
                self.leaves.next[prev] = node
                self.last.next[prev] = node
                self.last.prev[node] = prev
            prev = node
            self._refresh_last_level_keys(node)
            level_nodes.append(node)
            level_maxes.append(int(keys[hi - 1]))
        self._first_leaf = level_nodes[0]

        level = 0
        pool_below = self.last
        while len(level_nodes) > 1:
            next_nodes: List[int] = []
            next_maxes: List[int] = []
            prev = _NIL
            for i in range(0, len(level_nodes), self.fanout):
                children = level_nodes[i: i + self.fanout]
                maxes = level_maxes[i: i + self.fanout]
                node = self.upper.allocate()
                self.upper.size[node] = len(children)
                for s, (c, m) in enumerate(zip(children, maxes)):
                    self.upper.refs[node, s] = c
                    self.upper.keys[node, s] = m
                    pool_below.parent[c] = node
                self.upper.refresh_index(node)
                self.upper.prev[node] = prev
                if prev != _NIL:
                    self.upper.next[prev] = node
                prev = node
                next_nodes.append(node)
                next_maxes.append(maxes[-1])
            level_nodes, level_maxes = next_nodes, next_maxes
            pool_below = self.upper
            level += 1
        self.root = level_nodes[0]
        self.height = level + 1
        self.i_segment = None
        self.l_segment = None
        self._ensure_segments()

    # ------------------------------------------------------------------
    # iteration / invariants

    def items(self) -> Iterator[Tuple[int, int]]:
        """Yield all (key, value) pairs in key order via the leaf chain."""
        node = self._first_leaf
        while node != _NIL:
            size = int(self.leaves.size[node])
            for i in range(size):
                yield int(self.leaves.keys[node, i]), int(
                    self.leaves.values[node, i]
                )
            node = int(self.leaves.next[node])

    def __len__(self) -> int:
        return self.num_tuples

    def __contains__(self, key: int) -> bool:
        return self.lookup(key, instrument=False) is not None

    def __repr__(self) -> str:
        return (
            f"RegularCpuBPlusTree(n={self.num_tuples}, "
            f"height={self.height}, leaves={self.leaves.count}, "
            f"bits={self.spec.bits})"
        )

    def check_invariants(self) -> None:
        """Verify structural invariants; raises AssertionError on damage.

        Checked: leaf chain is globally sorted, every leaf's keys are
        sorted, parent routing keys bound child maxima, sizes match the
        sentinel padding, and item count equals ``num_tuples``.
        """
        count = 0
        prev_key = -1
        node = self._first_leaf
        while node != _NIL:
            size = int(self.leaves.size[node])
            for i in range(size):
                k = int(self.leaves.keys[node, i])
                assert k > prev_key, "leaf chain out of order"
                prev_key = k
                count += 1
            pad = self.leaves.keys[node, size:]
            assert np.all(pad == self.spec.max_value), "leaf padding damaged"
            node = int(self.leaves.next[node])
        assert count == self.num_tuples, (
            f"item count {count} != num_tuples {self.num_tuples}"
        )
        self._check_subtree(self.height - 1, self.root)

    def _check_subtree(self, level: int, node: int) -> int:
        """Recursively validate routing keys; returns the subtree max."""
        if level == 0:
            size = int(self.leaves.size[node])
            if size == 0:
                return 0
            return int(self.leaves.keys[node, size - 1])
        size = int(self.upper.size[node])
        assert size >= 1, "empty upper node left in tree"
        prev_bound = -1
        sub_max = 0
        for s in range(size):
            child = int(self.upper.refs[node, s])
            bound = int(self.upper.keys[node, s])
            assert bound > prev_bound, "routing keys out of order"
            child_max = self._check_subtree(level - 1, child)
            assert child_max <= bound, "routing key below child max"
            assert int(self._pool(level - 1).parent[child]) == node, (
                "parent pointer broken"
            )
            prev_bound = bound
            sub_max = child_max
        return sub_max
