"""Bridges from the existing per-module stats objects into a registry.

The simulator already accounts everything — but in scattered shapes:
``BatchStats`` / ``OverlapStats`` on the engines, ``ResilienceStats``
on the resilient tree, ``TransferStats`` on the PCIe link,
``AccessCounters`` in the memory system, ``GpuKernelStats`` +
``kernel_launches`` on the device, ``MirrorSyncStats`` per sync batch,
``PipelineStats`` / ``LockStats`` in the CPU layers.  These exporters
flatten any of them into one :class:`~repro.obs.metrics.MetricsRegistry`
under a common naming scheme, with labeled dimensions, so a benchmark
(or an operator) reads one ``snapshot()`` instead of seven objects.

All exporters are *pull*-style and side-effect-free on the source
objects: call them whenever a consistent cut is wanted.  Values land as
gauges (they are snapshots of externally-owned accumulators, not
registry-owned counts).

Naming convention: these snapshot gauges own the canonical names
(``gpu.kernel_launches``, ``pcie.bytes_to_device``, ...).  Push-style
counters recorded live by instrumented components use a ``live.``
prefix (``live.gpu.kernel_launches``) so the two never collide in the
registry, which rejects same-name registrations of different kinds.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from repro.obs.metrics import MetricsRegistry


def stats_dict(obj: Any) -> Dict[str, Any]:
    """A plain-dict view of any stats object.

    Prefers the object's own ``snapshot()``; falls back to dataclass
    fields.  Nested dicts are kept (``publish`` flattens them).
    """
    snap = getattr(obj, "snapshot", None)
    if callable(snap):
        return snap()
    if dataclasses.is_dataclass(obj):
        return dataclasses.asdict(obj)
    raise TypeError(f"cannot snapshot {type(obj).__name__}")


def _flatten(prefix: str, mapping: Dict[str, Any], out: Dict[str, float]) -> None:
    for name, value in mapping.items():
        key = f"{prefix}.{name}" if prefix else str(name)
        if isinstance(value, dict):
            _flatten(key, value, out)
        elif isinstance(value, bool):
            out[key] = int(value)
        elif isinstance(value, (int, float)):
            out[key] = value
        # non-numeric payloads (strings, arrays) are not metric material


def publish(metrics: MetricsRegistry, prefix: str, obj: Any,
            **labels) -> None:
    """Flatten one stats object into gauges under ``prefix.*``."""
    flat: Dict[str, float] = {}
    _flatten(prefix, stats_dict(obj), flat)
    for name, value in flat.items():
        metrics.gauge(name, **labels).set(value)


def publish_device(metrics: MetricsRegistry, device, **labels) -> None:
    """GPU device: launch counter, memory counters, kernel stats."""
    metrics.gauge("gpu.kernel_launches", **labels).set(device.kernel_launches)
    publish(metrics, "gpu.mem", device.memory.counters, **labels)
    publish(metrics, "gpu.kernel", device.stats, **labels)


def publish_link(metrics: MetricsRegistry, link, **labels) -> None:
    """PCIe link: the :class:`~repro.gpusim.transfer.TransferStats`."""
    publish(metrics, "pcie", link.stats, **labels)


def publish_memory(metrics: MetricsRegistry, mem, **labels) -> None:
    """CPU memory system: the :class:`AccessCounters` snapshot."""
    publish(metrics, "mem", mem.counters, **labels)


def publish_tree(metrics: MetricsRegistry, tree, **labels) -> None:
    """Everything a hybrid tree owns: device, link, host memory."""
    publish_device(metrics, tree.device, **labels)
    publish_link(metrics, tree.link, **labels)
    publish_memory(metrics, tree.mem, **labels)


def publish_engine(metrics: MetricsRegistry, engine,
                   engine_label: str, **labels) -> None:
    """A batch/overlap engine's stats under an ``engine=`` label."""
    publish(metrics, "engine", engine.stats, engine=engine_label, **labels)
    # properties are not dataclass fields; export the scan shape ones
    mean_len = getattr(engine.stats, "mean_scan_length", None)
    if mean_len is not None:
        metrics.gauge(
            "engine.mean_scan_length", engine=engine_label, **labels
        ).set(mean_len)


def publish_resilience(metrics: MetricsRegistry, resilient,
                       **labels) -> None:
    """A :class:`ResilientHBPlusTree`: stats + breaker state."""
    publish(metrics, "resilience", resilient.stats, **labels)
    state = "degraded" if resilient.degraded else "hybrid"
    metrics.gauge("resilience.degraded", state=state, **labels).set(
        int(resilient.degraded)
    )


def publish_adaptive(metrics: MetricsRegistry, controller,
                     **labels) -> None:
    """An :class:`~repro.core.adaptive.AdaptiveController`: window /
    rebalance counters plus the split currently in force."""
    publish(metrics, "adaptive", controller.stats, **labels)
    metrics.gauge("adaptive.cpu_only", **labels).set(
        int(controller.cpu_only)
    )
    stats = controller.stats
    if getattr(stats, "queries", 0) and getattr(stats, "scans", 0):
        metrics.gauge("adaptive.scan_share", **labels).set(
            stats.scans / stats.queries
        )


def publish_lifecycle(metrics: MetricsRegistry, manager,
                      **labels) -> None:
    """A :class:`repro.lifecycle.SnapshotManager`: snapshot/restore
    counters plus the number of snapshots currently on disk."""
    publish(metrics, "lifecycle", manager.stats, **labels)
    metrics.gauge("lifecycle.on_disk", **labels).set(
        len(manager.snapshots())
    )


def publish_mixed(metrics: MetricsRegistry, result,
                  **labels) -> None:
    """An :class:`~repro.core.mixed.OptimisticRunResult` (or plain
    :class:`~repro.core.mixed.MixedRunResult`): retry counters, the
    dirty-node mirror sync accounting, and gap write-path behaviour."""
    metrics.gauge("mixed.throughput_ops", **labels).set(
        result.throughput_ops
    )
    metrics.gauge("mixed.total_ns", **labels).set(result.total_ns)
    metrics.gauge("mixed.operations", **labels).set(
        result.schedule.operations
    )
    for name in ("retries", "retry_ns", "dirty_nodes", "sync_transfers",
                 "sync_bytes", "sync_faults", "gap_writes",
                 "shift_writes", "splits"):
        value = getattr(result, name, None)
        if value is not None:
            metrics.gauge(f"mixed.{name}", **labels).set(value)
    rebuilt = getattr(result, "mirror_rebuilt", None)
    if rebuilt is not None:
        metrics.gauge("mixed.mirror_rebuilt", **labels).set(int(rebuilt))


def publish_gap_occupancy(metrics: MetricsRegistry, tree,
                          **labels) -> None:
    """A gapped tree's current slot occupancy + cumulative GapStats."""
    cpu_tree = getattr(tree, "cpu_tree", tree)
    occupancy = getattr(cpu_tree, "gap_occupancy", None)
    if occupancy is not None:
        metrics.gauge("tree.gap_occupancy", **labels).set(occupancy())
    gap_stats = getattr(cpu_tree, "gap_stats", None)
    if gap_stats is not None:
        publish(metrics, "tree.gaps", gap_stats, **labels)
        metrics.gauge("tree.gaps.in_place_fraction", **labels).set(
            gap_stats.in_place_fraction
        )


def publish_service(metrics: MetricsRegistry, service,
                    **labels) -> None:
    """An :class:`repro.service.IndexService`: per-shard serving and
    admission gauges, per-tenant quota gauges, service latency."""
    stats = service.stats()
    metrics.gauge("service.shards", **labels).set(
        stats["router"]["n_shards"]
    )
    metrics.gauge("service.epoch", **labels).set(
        stats["router"]["epoch"]
    )
    metrics.gauge("service.splits", **labels).set(stats["splits"])
    metrics.gauge("service.merges", **labels).set(stats["merges"])
    metrics.gauge("service.snapshot_failures", **labels).set(
        stats["snapshot_failures"]
    )
    for name, value in stats["latency"].items():
        if isinstance(value, (int, float)):
            metrics.gauge(f"service.latency.{name}", **labels).set(value)
    for row in stats["shards"]:
        shard_labels = dict(labels, shard=str(row["position"]))
        for field in ("n_keys", "lookups", "scans", "update_ops",
                      "batches", "faults"):
            metrics.gauge(f"service.shard.{field}",
                          **shard_labels).set(row[field])
        for field, value in row["admission"].items():
            metrics.gauge(f"service.shard.admission.{field}",
                          **shard_labels).set(value)
    for tenant, row in stats["tenants"].items():
        tenant_labels = dict(labels, tenant=tenant)
        for field in ("capacity", "available", "admitted_ops",
                      "rejected_ops"):
            metrics.gauge(f"service.tenant.{field}",
                          **tenant_labels).set(row[field])


def collect_all(metrics: MetricsRegistry, tree=None, engine=None,
                engine_label: str = "batch", resilient=None,
                adaptive=None, lifecycle=None, mixed=None,
                service=None, **labels) -> Dict[str, Any]:
    """One-call convenience: publish whatever is given, return the
    registry snapshot."""
    if tree is not None:
        publish_tree(metrics, tree, **labels)
        publish_gap_occupancy(metrics, tree, **labels)
    if engine is not None:
        publish_engine(metrics, engine, engine_label, **labels)
    if resilient is not None:
        publish_resilience(metrics, resilient, **labels)
    if adaptive is not None:
        publish_adaptive(metrics, adaptive, **labels)
    if lifecycle is not None:
        publish_lifecycle(metrics, lifecycle, **labels)
    if mixed is not None:
        publish_mixed(metrics, mixed, **labels)
    if service is not None:
        publish_service(metrics, service, **labels)
    return metrics.snapshot()
