"""Named counters/gauges/histograms with labeled dimensions.

Today's accounting is scattered over per-module stats dataclasses
(``BatchStats``, ``OverlapStats``, ``ResilienceStats``,
``MirrorSyncStats``, ``TransferStats``, ``AccessCounters``, ...).
:class:`MetricsRegistry` is the unifying surface: every instrument is
addressed by a name plus a label set (``engine="overlap"``,
``bucket=3``, ``state="degraded"``), created on first use, and exported
through one ``snapshot()`` / ``reset()`` API.  The exporters in
:mod:`repro.obs.export` bridge the existing stats objects into a
registry without the components having to know about each other.

Thread safety: instrument creation and every mutation take the
registry's lock — observability runs at bucket granularity, so a lock
per update is far off any hot path.  A disabled registry hands out a
shared no-op instrument, keeping the disabled cost to one branch.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _series_name(name: str, key: LabelKey) -> str:
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class _Instrument:
    """Base: a named series addressed by (name, labels)."""

    kind = "instrument"

    def __init__(self, name: str, key: LabelKey, lock: threading.Lock):
        self.name = name
        self.labels = dict(key)
        self._key = key
        self._lock = lock

    @property
    def series(self) -> str:
        return _series_name(self.name, self._key)


class Counter(_Instrument):
    """Monotone event count; ``inc`` only."""

    kind = "counter"

    def __init__(self, name: str, key: LabelKey, lock: threading.Lock):
        super().__init__(name, key, lock)
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase; use a gauge")
        with self._lock:
            self.value += n

    def _reset(self) -> None:
        self.value = 0

    def _export(self):
        return self.value


class Gauge(_Instrument):
    """Last-written value (set/add)."""

    kind = "gauge"

    def __init__(self, name: str, key: LabelKey, lock: threading.Lock):
        super().__init__(name, key, lock)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta

    def _reset(self) -> None:
        self.value = 0.0

    def _export(self):
        return self.value


class Histogram(_Instrument):
    """Streaming summary of observed values (count/sum/min/max/mean).

    Deliberately reservoir-free: bounded memory no matter how many
    observations, which is what lets it sit on per-bucket paths.
    """

    kind = "histogram"

    def __init__(self, name: str, key: LabelKey, lock: threading.Lock):
        super().__init__(name, key, lock)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            self.count += 1
            self.sum += v
            if self.min is None or v < self.min:
                self.min = v
            if self.max is None or v > self.max:
                self.max = v

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.sum / self.count

    def _reset(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def _export(self):
        return {
            "count": self.count, "sum": self.sum, "mean": self.mean,
            "min": self.min, "max": self.max,
        }


class _NullInstrument:
    """Accepts every instrument method as a no-op (disabled registry)."""

    __slots__ = ()
    value = 0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Get-or-create registry of labeled instruments.

    The same ``(name, labels)`` pair always returns the same instrument
    object; distinct label values create distinct series (classic label
    cardinality — keep label values low-cardinality: engine names,
    fault states, strategy names, not raw keys).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, str, LabelKey], Any] = {}

    # -- instrument accessors ------------------------------------------

    def _get(self, cls, name: str, labels: Dict[str, Any]):
        if not self.enabled:
            return _NULL_INSTRUMENT
        key = _label_key(labels)
        slot = (cls.kind, name, key)
        with self._lock:
            inst = self._series.get(slot)
            if inst is None:
                for kind, other, okey in self._series:
                    if other == name and kind != cls.kind:
                        raise TypeError(
                            f"metric {name!r} already registered as {kind}"
                        )
                inst = self._series[slot] = cls(name, key, self._lock)
            return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- bulk API -------------------------------------------------------

    def instruments(self) -> Iterable[_Instrument]:
        with self._lock:
            return list(self._series.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    def snapshot(self) -> Dict[str, Any]:
        """Detached ``{series-name: value}`` dict, sorted by series.

        Counters/gauges export their value, histograms a summary dict.
        Mutating the registry afterwards never changes a snapshot.
        """
        return {
            inst.series: inst._export()
            for inst in sorted(self.instruments(), key=lambda i: i.series)
        }

    def reset(self) -> None:
        """Zero every instrument in place (registrations survive, so
        instrument objects held by components stay live)."""
        for inst in self.instruments():
            inst._reset()


#: the shared disabled registry (hands out no-op instruments)
NULL_REGISTRY = MetricsRegistry(enabled=False)
