"""Trace-event schema validation (CI gate for exported traces).

A trace that Perfetto silently mis-renders is worse than no trace, so
CI validates every exported artifact: events parse, carry the required
fields, and every ``B`` has its matching ``E`` in LIFO order on the
same thread — no orphan ``E`` events, no spans left open, no
end-before-begin timestamps.

Usable as a library (:func:`validate_events`) or a CLI::

    python -m repro.obs.validate BENCH_pr4.trace.json
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Sequence

#: phases the exporter may legitimately emit
KNOWN_PHASES = {"B", "E", "X", "M", "C", "i", "I"}


def validate_events(events: Sequence[Dict[str, Any]]) -> List[str]:
    """Return a list of schema violations (empty = valid).

    Checks, per the Chrome trace-event format:

    * every event is a dict with a known ``ph``;
    * ``B``/``E``/``X``/``C``/``i`` events carry numeric ``ts`` and
      integer ``pid``/``tid``; ``B``/``X``/``C`` carry a ``name``;
    * per ``(pid, tid)`` track, ``B``/``E`` pairs nest strictly (LIFO,
      matching names): an ``E`` with no open ``B`` is an orphan, a
      ``B`` still open at end-of-stream is unclosed;
    * an ``E`` never precedes its ``B`` (``ts`` monotone within the
      pair) and ``X`` durations are non-negative.
    """
    errors: List[str] = []
    stacks: Dict[tuple, List[tuple]] = {}
    for i, event in enumerate(events):
        where = f"event {i}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue  # metadata: no timestamp requirements
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
            continue
        if not isinstance(event.get("pid"), int) \
                or not isinstance(event.get("tid"), int):
            errors.append(f"{where}: missing integer pid/tid")
            continue
        name = event.get("name")
        if ph in ("B", "X", "C") and not isinstance(name, str):
            errors.append(f"{where}: {ph} event without a name")
            continue
        track = (event["pid"], event["tid"])
        if ph == "B":
            stacks.setdefault(track, []).append((name, ts, i))
        elif ph == "E":
            stack = stacks.get(track)
            if not stack:
                errors.append(
                    f"{where}: orphan E ({name!r}) on track {track} "
                    f"with no open span"
                )
                continue
            open_name, open_ts, open_i = stack.pop()
            if isinstance(name, str) and name != open_name:
                errors.append(
                    f"{where}: E ({name!r}) closes mismatched span "
                    f"{open_name!r} opened at event {open_i}"
                )
            if ts < open_ts:
                errors.append(
                    f"{where}: span {open_name!r} ends at {ts} before "
                    f"its begin at {open_ts}"
                )
        elif ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event with bad dur {dur!r}")
    for track, stack in stacks.items():
        for name, _ts, i in stack:
            errors.append(
                f"unclosed span {name!r} on track {track} "
                f"(B at event {i} has no E)"
            )
    return errors


def extract_events(payload: Any) -> List[Dict[str, Any]]:
    """Accept both the object form (``{"traceEvents": [...]}``) and the
    bare JSON-array form of the trace-event format."""
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("object form lacks a traceEvents array")
        return events
    if isinstance(payload, list):
        return payload
    raise ValueError(f"not a trace payload: {type(payload).__name__}")


def validate_trace_file(path: str) -> List[str]:
    """Parse + validate one trace file; returns the violation list."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        return [f"{path}: unreadable trace: {err}"]
    try:
        events = extract_events(payload)
    except ValueError as err:
        return [f"{path}: {err}"]
    return [f"{path}: {e}" for e in validate_events(events)]


def summarize(path: str) -> Dict[str, Any]:
    """Counts shown by the CLI (events, spans, named tracks)."""
    with open(path) as fh:
        events = extract_events(json.load(fh))
    names = sorted({
        e["args"]["name"] for e in events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    })
    return {
        "events": len(events),
        "spans": sum(1 for e in events if e.get("ph") == "E"),
        "threads": names,
    }


def main(argv=None) -> int:
    args = sys.argv[1:] if argv is None else list(argv)
    if not args:
        print("usage: python -m repro.obs.validate TRACE.json ...",
              file=sys.stderr)
        return 2
    failed = False
    for path in args:
        errors = validate_trace_file(path)
        if errors:
            failed = True
            for error in errors:
                print(f"FAIL: {error}", file=sys.stderr)
        else:
            s = summarize(path)
            print(
                f"{path}: OK — {s['events']} events, {s['spans']} spans, "
                f"tracks: {', '.join(s['threads']) or '(unnamed)'}"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
