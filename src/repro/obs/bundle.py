"""The ``Observability`` bundle components actually hold.

One object carries all three surfaces — :class:`~repro.obs.trace.Tracer`,
:class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.hooks.HookSet` — plus thin convenience wrappers so a
call site is a single short line (``obs.span(...)``, ``obs.count(...)``,
``obs.emit(...)``).  Every instrumented component defaults to the shared
:data:`NULL_OBS`, whose tracer and registry are disabled and whose hook
set is frozen: the disabled cost at a call site is one attribute load
and one branch.

Attachment mirrors the fault injector's pattern:
``HBPlusTree.attach_obs(obs)`` threads the bundle through the PCIe
link, the GPU device and the tree itself; engines constructed without
an explicit ``obs`` follow their tree's bundle dynamically.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.hooks import HookSet
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


class Observability:
    """Tracer + metrics + hooks, enabled or disabled as one unit."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        hooks: Optional[HookSet] = None,
        enabled: bool = True,
    ):
        self.enabled = enabled
        self.tracer = tracer if tracer is not None else Tracer(enabled=enabled)
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(enabled=enabled)
        )
        self.hooks = hooks if hooks is not None else HookSet(frozen=not enabled)

    # -- convenience wrappers (each one branch when disabled) ----------

    def span(self, name: str, category: str = "repro", **args):
        return self.tracer.span(name, category, **args)

    def instant(self, name: str, category: str = "repro", **args) -> None:
        self.tracer.instant(name, category, **args)

    def count(self, name: str, n: int = 1, **labels) -> None:
        if self.metrics.enabled:
            self.metrics.counter(name, **labels).inc(n)

    def gauge(self, name: str, value: float, **labels) -> None:
        if self.metrics.enabled:
            self.metrics.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        if self.metrics.enabled:
            self.metrics.histogram(name, **labels).observe(value)

    def emit(self, event: str, **payload) -> None:
        self.hooks.emit(event, **payload)

    def reset(self) -> None:
        """Drop trace events and zero every metric (hooks stay
        subscribed — subscriptions are configuration, not state)."""
        self.tracer.reset()
        self.metrics.reset()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Observability({state}, events={len(self.tracer.events)}, "
            f"series={len(self.metrics)})"
        )


#: the shared disabled bundle; never subscribe/record on it
NULL_OBS = Observability(enabled=False)
