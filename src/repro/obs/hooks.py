"""Profiling hooks: subscribe to pipeline events without coupling.

Benchmarks, the resilience layer and ad-hoc experiments often want a
callback at well-known points of the execution — bucket boundaries,
fault absorption, degradation — without the engines importing them.
:class:`HookSet` is a tiny synchronous pub-sub for that.

Well-known events (components document which they emit):

======================  ====================================================
``bucket_start``        dispatcher accepted a bucket (serial, in order)
``bucket_end``          a bucket's results landed in the output array
                        (threaded engines emit this from a worker thread,
                        in completion order — handlers must be thread-safe)
``fault``               the resilience layer absorbed one injected fault
``degrade``             the circuit breaker opened (``reason`` labels why)
``recover``             a probe brought the GPU back
``probe``               a recovery probe ran (``ok`` carries the outcome)
``rebalance``           the adaptive controller applied a (D, R) split
                        (``depth``/``ratio``/``gain``/``reason``;
                        ``moved`` is False when a forced re-apply landed
                        on the split already in force)
======================  ====================================================

Handlers run synchronously on the emitting thread; exceptions propagate
to the emitter (observability bugs should be loud in tests, and a
handler that must never throw can guard itself).  Emission with no
subscribers is one dict lookup — cheap enough for per-bucket sites.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List

Handler = Callable[..., Any]


class HookSet:
    """Named synchronous event hooks.

    ``frozen=True`` builds an immutable, permanently-empty hook set —
    used for the shared :data:`repro.obs.NULL_OBS` so nobody can
    accidentally subscribe every component in the process at once.
    """

    def __init__(self, frozen: bool = False):
        self._frozen = frozen
        self._lock = threading.Lock()
        self._handlers: Dict[str, List[Handler]] = {}

    def subscribe(self, event: str, handler: Handler) -> Callable[[], None]:
        """Register ``handler`` for ``event``; returns an unsubscriber."""
        if self._frozen:
            raise RuntimeError(
                "this HookSet is frozen (subscribing on the shared "
                "NULL_OBS would leak into every component); create an "
                "enabled Observability instead"
            )
        with self._lock:
            self._handlers.setdefault(event, []).append(handler)

        def unsubscribe() -> None:
            with self._lock:
                handlers = self._handlers.get(event, [])
                if handler in handlers:
                    handlers.remove(handler)

        return unsubscribe

    def on(self, event: str) -> Callable[[Handler], Handler]:
        """Decorator form of :meth:`subscribe`."""

        def deco(fn: Handler) -> Handler:
            self.subscribe(event, fn)
            return fn

        return deco

    def emit(self, event: str, **payload) -> None:
        """Call every subscriber of ``event`` in subscription order."""
        handlers = self._handlers.get(event)
        if not handlers:
            return
        with self._lock:
            handlers = list(handlers)
        for handler in handlers:
            handler(**payload)

    def has(self, event: str) -> bool:
        return bool(self._handlers.get(event))

    def clear(self) -> None:
        if self._frozen:
            return
        with self._lock:
            self._handlers.clear()
