"""``repro.obs`` — tracing, metrics and profiling hooks (DESIGN.md §10).

The observability layer the evaluation rests on: hierarchical span
tracing with Chrome trace-event / Perfetto export
(:class:`~repro.obs.trace.Tracer`), a unified metrics registry with
labeled counters/gauges/histograms
(:class:`~repro.obs.metrics.MetricsRegistry`), synchronous profiling
hooks (:class:`~repro.obs.hooks.HookSet`), exporters that fold every
existing stats object into one snapshot (:mod:`repro.obs.export`), and
a trace-schema validator used by CI (:mod:`repro.obs.validate`).

The one object components hold is the
:class:`~repro.obs.bundle.Observability` bundle; everything defaults to
the shared disabled :data:`NULL_OBS`.  Guarantee: enabling observability
never changes results or modeled counters — only wall-clock-derived
fields may differ (property-tested in ``tests/test_obs.py``).
"""

from repro.obs.bundle import NULL_OBS, Observability
from repro.obs.export import (
    collect_all,
    publish,
    publish_adaptive,
    publish_device,
    publish_engine,
    publish_gap_occupancy,
    publish_lifecycle,
    publish_link,
    publish_mixed,
    publish_memory,
    publish_resilience,
    publish_service,
    publish_tree,
    stats_dict,
)
from repro.obs.hooks import HookSet
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.trace import NULL_SPAN, NULL_TRACER, Tracer
from repro.obs.validate import validate_events, validate_trace_file

__all__ = [
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "HookSet",
    "MetricsRegistry",
    "Observability",
    "Tracer",
    "collect_all",
    "publish",
    "publish_adaptive",
    "publish_device",
    "publish_engine",
    "publish_gap_occupancy",
    "publish_lifecycle",
    "publish_link",
    "publish_mixed",
    "publish_memory",
    "publish_resilience",
    "publish_service",
    "publish_tree",
    "stats_dict",
    "validate_events",
    "validate_trace_file",
]
