"""Hierarchical span tracing with Chrome trace-event export.

The paper's overlap argument (section 5.4, Figs 5-6) is a claim about
*timelines*: bucket ``i``'s CPU leaf stage runs while bucket ``i+1``
descends on the GPU.  :class:`Tracer` records exactly those timelines
from the real threaded engine — hierarchical spans with thread identity
— and exports them in the Chrome trace-event JSON format, so a run can
be dropped into Perfetto (https://ui.perfetto.dev) and inspected span
by span: dispatcher screening, GPU descents, PCIe transfers and CPU
leaf chunks each on their own thread track.

Design constraints (DESIGN.md §10):

* **zero overhead when disabled** — a disabled tracer's :meth:`span`
  returns a shared no-op context manager without allocating; every
  component defaults to the shared :data:`NULL_TRACER` via
  :data:`repro.obs.NULL_OBS`;
* **never changes results or modeled counters** — the tracer only
  *observes* wall time; nothing in the simulation reads it (the
  bit-identity property is tested in ``tests/test_obs.py``);
* **thread-safe** — spans may open and close on any thread; each
  thread keeps its own nesting stack (thread-local), the shared event
  list is appended under a lock, and threads are auto-named from
  ``threading.current_thread().name`` so worker tracks are labeled.

Timestamps are ``perf_counter_ns`` relative to the tracer's creation,
exported in microseconds (the trace-event unit).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional


class _NullSpan:
    """Shared no-op context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """One live span: emits ``B`` on enter and the matching ``E`` on exit."""

    __slots__ = ("tracer", "name", "category", "args")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 args: Optional[Dict[str, Any]]):
        self.tracer = tracer
        self.name = name
        self.category = category
        self.args = args

    def __enter__(self) -> "_Span":
        self.tracer._begin(self.name, self.category, self.args)
        return self

    def __exit__(self, *exc) -> bool:
        self.tracer._end(self.name)
        return False


class Tracer:
    """Records hierarchical spans and exports Chrome trace-event JSON.

    ``enabled=False`` makes every recording method a no-op;
    :meth:`span` then returns the shared :data:`NULL_SPAN` so hot paths
    pay one attribute check and nothing else.

    ``clock`` is injectable for deterministic tests (it must return
    monotonically non-decreasing nanoseconds).
    """

    def __init__(self, enabled: bool = True,
                 clock: Callable[[], int] = time.perf_counter_ns):
        self.enabled = enabled
        self._clock = clock
        self._epoch = clock()
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._events: List[Dict[str, Any]] = []
        #: thread idents already announced via an ``M`` metadata event
        self._seen_threads: Dict[int, str] = {}

    # -- internals ------------------------------------------------------

    def _ts(self) -> float:
        """Microseconds since the tracer epoch (trace-event unit)."""
        return (self._clock() - self._epoch) / 1_000.0

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _tid(self) -> int:
        return threading.get_ident()

    def _announce_thread(self, tid: int) -> List[Dict[str, Any]]:
        """Metadata event naming this thread's track, once per thread."""
        name = threading.current_thread().name
        if self._seen_threads.get(tid) == name:
            return []
        self._seen_threads[tid] = name
        return [{
            "ph": "M", "name": "thread_name", "pid": self._pid, "tid": tid,
            "args": {"name": name},
        }]

    def _append(self, event: Dict[str, Any]) -> None:
        tid = event["tid"]
        with self._lock:
            self._events.extend(self._announce_thread(tid))
            self._events.append(event)

    def _begin(self, name: str, category: str,
               args: Optional[Dict[str, Any]]) -> None:
        if not self.enabled:
            return
        self._stack().append(name)
        event: Dict[str, Any] = {
            "ph": "B", "name": name, "cat": category,
            "ts": self._ts(), "pid": self._pid, "tid": self._tid(),
        }
        if args:
            event["args"] = args
        self._append(event)

    def _end(self, name: str) -> None:
        if not self.enabled:
            return
        stack = self._stack()
        if not stack or stack[-1] != name:
            raise RuntimeError(
                f"span {name!r} closed out of order "
                f"(open stack: {stack!r})"
            )
        stack.pop()
        self._append({
            "ph": "E", "name": name, "cat": "repro",
            "ts": self._ts(), "pid": self._pid, "tid": self._tid(),
        })

    # -- recording API --------------------------------------------------

    def span(self, name: str, category: str = "repro", **args):
        """Context manager recording one ``B``/``E`` span pair.

        Keyword arguments become the span's ``args`` payload (shown in
        the Perfetto detail panel).  Disabled tracers return the shared
        no-op span.
        """
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, category, args or None)

    def instant(self, name: str, category: str = "repro", **args) -> None:
        """A zero-duration marker (``i`` phase), e.g. a fault event."""
        if not self.enabled:
            return
        event: Dict[str, Any] = {
            "ph": "i", "s": "t", "name": name, "cat": category,
            "ts": self._ts(), "pid": self._pid, "tid": self._tid(),
        }
        if args:
            event["args"] = args
        self._append(event)

    def counter(self, name: str, value: float,
                category: str = "repro") -> None:
        """A ``C`` counter sample (renders as a counter track)."""
        if not self.enabled:
            return
        self._append({
            "ph": "C", "name": name, "cat": category,
            "ts": self._ts(), "pid": self._pid, "tid": self._tid(),
            "args": {"value": value},
        })

    def depth(self) -> int:
        """Current span nesting depth on the calling thread."""
        return len(self._stack())

    # -- export ---------------------------------------------------------

    @property
    def events(self) -> List[Dict[str, Any]]:
        """A detached copy of every recorded event."""
        with self._lock:
            return [dict(e) for e in self._events]

    def span_count(self) -> int:
        """Completed spans recorded so far (``E`` events)."""
        with self._lock:
            return sum(1 for e in self._events if e["ph"] == "E")

    def thread_names(self) -> Dict[int, str]:
        """Thread ident -> announced track name."""
        with self._lock:
            return dict(self._seen_threads)

    def export(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON payload (Perfetto-loadable)."""
        return {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs", "clock": "perf_counter_ns"},
        }

    def write(self, path) -> None:
        """Serialise :meth:`export` to ``path`` as JSON."""
        with open(path, "w") as fh:
            json.dump(self.export(), fh, indent=1)
            fh.write("\n")

    def reset(self) -> None:
        """Drop all recorded events (open spans on live threads keep
        their nesting stacks; reset between runs, not mid-span)."""
        with self._lock:
            self._events.clear()
            self._seen_threads.clear()


#: the shared disabled tracer every component defaults to
NULL_TRACER = Tracer(enabled=False)
