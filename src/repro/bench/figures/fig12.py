"""Fig 12 — impact of skewed query distributions (section 6.3).

Query keys drawn from Uniform / Normal / Gamma / Zipf over the key
domain, results normalized to Uniform.  Expected shape: Normal and
Gamma within ~1.1x of Uniform; Zipf up to ~2.2x faster — skew
concentrates accesses on a small part of the tree, so the CPU leaf
stage hits the LLC and warps coalesce on the GPU.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures.common import dataset_and_queries, fresh_mem, paper_n
from repro.bench.harness import ExperimentTable
from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.pipeline import BucketStrategy, strategy_throughput_qps
from repro.platform.configs import MachineConfig, machine_m1
from repro.workloads.generators import generate_skewed_queries

DISTS = ["uniform", "normal", "gamma", "zipf"]


def run(machine: Optional[MachineConfig] = None, full: bool = False,
        key_bits: int = 64, n: int = 1 << 19) -> ExperimentTable:
    machine = machine or machine_m1()
    if full:
        n = 1 << 21
    table = ExperimentTable(
        "fig12", f"query-skew impact (n={paper_n(n)} paper-scale)"
    )
    keys, values, _q = dataset_and_queries(n, key_bits)
    bucket = machine.bucket_size
    for tree_kind in ("implicit", "regular"):
        if tree_kind == "implicit":
            tree = ImplicitHBPlusTree(
                keys, values, machine=machine, key_bits=key_bits,
                mem=fresh_mem(machine),
            )
        else:
            tree = HBPlusTree(
                keys, values, machine=machine, key_bits=key_bits,
                mem=fresh_mem(machine),
            )
        base = None
        for dist in DISTS:
            sample = generate_skewed_queries(
                dist, 2048, key_bits=key_bits, seed=31
            )
            tree.mem.flush()
            costs = tree.bucket_costs(bucket, sample=sample)
            qps = strategy_throughput_qps(
                costs, BucketStrategy.DOUBLE_BUFFERED, bucket
            )
            if dist == "uniform":
                base = qps
            table.add(
                tree=tree_kind,
                distribution=dist,
                mqps=round(qps / 1e6, 2),
                vs_uniform=round(qps / base, 2),
            )
    table.note(
        "paper: all distributions within 1.1x of uniform except Zipf, "
        "which gains up to 2.2x from cache hits on the hot tree region"
    )
    return table
