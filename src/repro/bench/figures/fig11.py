"""Fig 11 — bucket size sweep (section 6.3).

Throughput (a) and latency (b) of the double-buffered HB+-tree for
bucket sizes 8K-64K.  Expected shape: throughput grows with bucket
size for the implicit tree (overheads amortize) and saturates from 16K
for the regular tree; latency keeps growing (~1.7x at 32K, ~2.7x at
64K versus 16K), which is why the paper settles on M = 16K.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures.common import dataset_and_queries, fresh_mem, paper_n
from repro.bench.harness import ExperimentTable
from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.pipeline import (
    BucketStrategy,
    strategy_latency_ns,
    strategy_throughput_qps,
)
from repro.platform.configs import MachineConfig, machine_m1

BUCKET_SIZES = [8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024]


def run(machine: Optional[MachineConfig] = None, full: bool = False,
        key_bits: int = 64, n: int = 1 << 19) -> ExperimentTable:
    machine = machine or machine_m1()
    if full:
        n = 1 << 21
    table = ExperimentTable(
        "fig11", f"bucket size sweep (n={paper_n(n)} paper-scale)"
    )
    keys, values, _queries = dataset_and_queries(n, key_bits)
    for tree_kind in ("implicit", "regular"):
        if tree_kind == "implicit":
            tree = ImplicitHBPlusTree(
                keys, values, machine=machine, key_bits=key_bits,
                mem=fresh_mem(machine),
            )
        else:
            tree = HBPlusTree(
                keys, values, machine=machine, key_bits=key_bits,
                mem=fresh_mem(machine),
            )
        base_latency = None
        for bucket in BUCKET_SIZES:
            costs = tree.bucket_costs(bucket)
            qps = strategy_throughput_qps(
                costs, BucketStrategy.DOUBLE_BUFFERED, bucket
            )
            lat = strategy_latency_ns(
                costs, BucketStrategy.DOUBLE_BUFFERED, bucket
            )
            if bucket == 16 * 1024:
                base_latency = lat
            table.add(
                tree=tree_kind,
                bucket=bucket,
                mqps=round(qps / 1e6, 2),
                latency_us=round(lat / 1e3, 1),
            )
        for row in table.rows:
            if row["tree"] == tree_kind and base_latency:
                row["latency_vs_16k"] = round(
                    row["latency_us"] * 1e3 / base_latency, 2
                )
    table.note(
        "paper: throughput grows with bucket size (implicit), flat from "
        "16K (regular); latency 1.7x at 32K and 2.7x at 64K -> M=16K chosen"
    )
    return table
