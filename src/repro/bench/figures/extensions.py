"""Experiments beyond the paper's figures.

* ``ext_gpu_update`` — GPU-assisted vs CPU-asynchronous batch updates
  (section 7 future work #1),
* ``ext_framework`` — the generic framework's mode decisions for three
  structures on both machines (future work #2),
* ``modern_hw`` — the 2016 design re-costed on a 2020s-class server,
* ``ablation_l2`` — what ignoring the GPU's L2 costs the kernel-time
  model.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures.common import (
    dataset_and_queries,
    fresh_mem,
    paper_n,
)
from repro.bench.harness import ExperimentTable
from repro.bench.profiling import cpu_tree_performance
from repro.core.framework import (
    CssTreeAdapter,
    HybridFramework,
    ImplicitHBAdapter,
    RegularHBAdapter,
)
from repro.core.gpu_update import GpuAssistedUpdater
from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.pipeline import BucketStrategy, strategy_throughput_qps
from repro.core.update import AsyncBatchUpdater
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.css_tree import CssTree
from repro.gpusim.l2 import l2_speedup_estimate
from repro.memsim.mainmem import MemorySystem
from repro.platform.configs import (
    SCALE_FACTOR,
    MachineConfig,
    machine_m1,
    machine_m2,
    machine_modern,
)
from repro.workloads.queries import make_insert_batch


def run_gpu_update(machine: Optional[MachineConfig] = None,
                   full: bool = False, n: int = 1 << 17) -> ExperimentTable:
    """GPU-assisted updates vs the CPU asynchronous method."""
    machine = machine or machine_m1()
    if full:
        n = 1 << 19
    table = ExperimentTable(
        "ext_gpu_update",
        f"GPU-assisted vs CPU async batch updates (tree {paper_n(n)})",
    )
    keys, values, _q = dataset_and_queries(n)
    batches = (512, 2048, 8192) if not full else (512, 2048, 8192, 16384)
    for batch in batches:
        upd_keys, upd_vals = make_insert_batch(keys, batch, 64, seed=batch)
        t = HBPlusTree(keys, values, machine=machine, fill=0.7)
        gpu = GpuAssistedUpdater(t).apply(upd_keys, upd_vals)
        t = HBPlusTree(keys, values, machine=machine, fill=0.7)
        cpu = AsyncBatchUpdater(t).apply(upd_keys, upd_vals)
        table.add(
            batch=batch,
            paper_batch=batch * SCALE_FACTOR,
            gpu_ms=round(gpu.total_ns / 1e6, 3),
            cpu_async_ms=round(cpu.total_ns / 1e6, 3),
            speedup=round(cpu.total_ns / gpu.total_ns, 2),
            redescended_pct=round(100 * gpu.deferred_fraction, 2),
        )
    table.note(
        "future work #1: offloading the per-update descent to the GPU "
        "pays increasingly with batch size"
    )
    return table


def run_framework(machine: Optional[MachineConfig] = None,
                  full: bool = False, n: int = 1 << 16) -> ExperimentTable:
    """The generic framework's planning decisions per structure/machine."""
    if full:
        n = 1 << 18
    table = ExperimentTable(
        "ext_framework",
        f"generic hybrid framework decisions (n={paper_n(n)})",
    )
    keys, values, queries = dataset_and_queries(n)
    machines = [machine] if machine else [machine_m1(), machine_m2()]
    for mach in machines:
        adapters = [
            ImplicitHBAdapter(
                ImplicitHBPlusTree(keys, values, machine=mach)
            ),
            RegularHBAdapter(HBPlusTree(keys, values, machine=mach)),
            CssTreeAdapter(
                CssTree(keys, values, mem=MemorySystem.from_spec(mach.cpu)),
                mach,
            ),
        ]
        for adapter in adapters:
            framework = HybridFramework(adapter, mach, sample=queries)
            plan = framework.plan()
            table.add(
                machine=mach.name,
                structure=adapter.name,
                mode=plan.mode,
                depth_D=plan.depth,
                ratio_R=round(plan.ratio, 3),
                bucket=plan.bucket_size,
                predicted_mqps=round(plan.predicted_qps / 1e6, 1),
                cpu_only_mqps=round(
                    plan.alternatives["cpu-only"] / 1e6, 1
                ),
            )
    table.note(
        "future work #2: the framework picks plain hybrid on the strong "
        "GPU (M1) and balanced/cpu-only on the weak one (M2)"
    )
    return table


def run_modern_hw(machine: Optional[MachineConfig] = None,
                  full: bool = False, n: int = 1 << 18) -> ExperimentTable:
    """The fixed 2016 design re-costed on a modern server."""
    table = ExperimentTable(
        "modern_hw", "HB+-tree design on 2013 vs 2020s hardware"
    )
    keys, values, queries = dataset_and_queries(n)
    for mach in (machine_m1(), machine_modern()):
        cpu_tree = ImplicitCpuBPlusTree(keys, values, mem=fresh_mem(mach))
        cpu_qps, _l, _p = cpu_tree_performance(cpu_tree, mach, queries)
        hb = ImplicitHBPlusTree(keys, values, machine=mach,
                                mem=fresh_mem(mach))
        costs = hb.bucket_costs(mach.bucket_size, sample=queries)
        hb_qps = strategy_throughput_qps(
            costs, BucketStrategy.DOUBLE_BUFFERED, mach.bucket_size
        )
        table.add(
            machine=mach.name,
            cpu_mqps=round(cpu_qps / 1e6, 1),
            hb_mqps=round(hb_qps / 1e6, 1),
            hybrid_advantage=round(hb_qps / cpu_qps, 2),
            t2_us=round(costs.t2 / 1e3, 1),
            t4_us=round(costs.t4 / 1e3, 1),
            bottleneck="gpu" if costs.t2 > costs.t4 else "cpu-leaf",
        )
    table.note(
        "both platforms are leaf-stage bound; the hybrid advantage is "
        "preserved on modern hardware while absolute throughput grows ~4x"
    )
    return table


#: GTX 780 L2 capacity, scaled like the other capacities
L2_BYTES = int(1.5 * 1024**2) // SCALE_FACTOR


def run_l2(machine: Optional[MachineConfig] = None,
           full: bool = False) -> ExperimentTable:
    """Kernel-time bias from the cost model's missing GPU L2."""
    machine = machine or machine_m1()
    table = ExperimentTable(
        "ablation_l2", "GPU L2 modeling: kernel-time bias per tree size"
    )
    sizes = [1 << 14, 1 << 16, 1 << 18] if not full else [
        1 << 14, 1 << 16, 1 << 18, 1 << 20
    ]
    for n in sizes:
        keys, values, queries = dataset_and_queries(n)
        tree = ImplicitHBPlusTree(keys, values, machine=machine,
                                  mem=fresh_mem(machine))
        result = tree.gpu_search_bucket(queries)
        per_level = result.transactions_per_query / max(1, tree.gpu_depth)
        tx = [per_level] * tree.gpu_depth
        level_bytes = [s * 8 for s in tree.level_sizes]
        speedup = l2_speedup_estimate(tx, level_bytes, L2_BYTES)
        table.add(
            n=n,
            paper_n=paper_n(n),
            iseg_kib=round(tree.i_segment_bytes / 1024, 1),
            l2_kib=round(L2_BYTES / 1024, 1),
            t2_speedup_if_modeled=round(speedup, 2),
        )
    table.note(
        "ignoring the L2 under-estimates T2 most for small trees; the "
        "headline large-tree results are the least affected"
    )
    return table
