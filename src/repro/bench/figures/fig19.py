"""Fig 19 (appendix B.1) — HB+-tree lookup using only the CPU.

The HB+-tree's I-segment also lives in CPU memory, so it can be
searched CPU-only.  The implicit HB+-tree's fanout is 8 instead of 9
(one key sacrificed for the GPU thread hierarchy), making it slightly
deeper and hence slower than the CPU-optimized implicit tree; the
regular versions share identical node structures and perform the same.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures.common import (
    dataset_and_queries,
    fresh_mem,
    paper_n,
    sweep_sizes,
)
from repro.bench.harness import ExperimentTable
from repro.bench.profiling import cpu_tree_performance
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.keys import key_spec
from repro.platform.configs import MachineConfig, machine_m1


def run(machine: Optional[MachineConfig] = None, full: bool = False,
        key_bits: int = 64) -> ExperimentTable:
    machine = machine or machine_m1()
    spec = key_spec(key_bits)
    table = ExperimentTable("fig19", "HB+-tree lookup using the CPU only")
    for n in sweep_sizes(full):
        keys, values, queries = dataset_and_queries(n, key_bits)
        variants = [
            ("cpu-implicit-f9", ImplicitCpuBPlusTree(
                keys, values, key_bits=key_bits, mem=fresh_mem(machine),
                fanout=spec.implicit_cpu_fanout,
            )),
            ("hb-implicit-f8", ImplicitCpuBPlusTree(
                keys, values, key_bits=key_bits, mem=fresh_mem(machine),
                fanout=spec.implicit_hybrid_fanout,
            )),
            ("regular", RegularCpuBPlusTree(
                keys, values, key_bits=key_bits, mem=fresh_mem(machine),
            )),
        ]
        for label, tree in variants:
            qps, _lat, profile = cpu_tree_performance(tree, machine, queries)
            table.add(
                n=n,
                paper_n=paper_n(n),
                tree=label,
                height=tree.height,
                mqps=round(qps / 1e6, 2),
            )
    table.note(
        "paper: CPU-optimized implicit (fanout 9) beats the hybrid's "
        "fanout-8 layout; regular versions are identical by construction"
    )
    return table
