"""Fig 18 — load balancing on a CPU-strong machine (section 6.5, M2).

M2's GPU is weak relative to its CPU: the plain HB+-tree is ~25%
*slower* than the CPU-optimized tree (the transfer+GPU path costs more
than it saves).  The load balancing scheme of section 5.5 moves the top
``D`` levels (plus an ``R`` fraction of level ``D``) back to the CPU,
recovering ~65% throughput and beating the CPU tree by up to 32%
(implicit) / 65% (regular, whose CPU version is slower).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures.common import (
    dataset_and_queries,
    fresh_mem,
    paper_n,
    sweep_sizes,
)
from repro.bench.harness import ExperimentTable, geometric_mean
from repro.bench.profiling import cpu_tree_performance
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.load_balance import LoadBalancer
from repro.core.pipeline import BucketStrategy, strategy_throughput_qps
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.platform.configs import MachineConfig, machine_m2


def run(machine: Optional[MachineConfig] = None, full: bool = False,
        key_bits: int = 64) -> ExperimentTable:
    machine = machine or machine_m2()
    table = ExperimentTable("fig18", "load balancing on M2")
    bucket = machine.bucket_size
    gains = []
    for n in sweep_sizes(full):
        keys, values, queries = dataset_and_queries(n, key_bits)
        cpu_tree = ImplicitCpuBPlusTree(
            keys, values, key_bits=key_bits, mem=fresh_mem(machine)
        )
        cpu_qps, _l, _p = cpu_tree_performance(cpu_tree, machine, queries)

        hb = ImplicitHBPlusTree(
            keys, values, machine=machine, key_bits=key_bits,
            mem=fresh_mem(machine),
        )
        plain_costs = hb.bucket_costs(bucket, sample=queries)
        plain_qps = strategy_throughput_qps(
            plain_costs, BucketStrategy.DOUBLE_BUFFERED, bucket
        )
        balancer = LoadBalancer(hb, bucket_size=bucket)
        discovery = balancer.discover()
        lb_costs = balancer.bucket_costs(bucket)
        # the load-balanced variant uses three in-flight buckets
        lb_qps = strategy_throughput_qps(
            lb_costs, BucketStrategy.DOUBLE_BUFFERED, bucket, n_buckets=96
        )
        gains.append(lb_qps / plain_qps)
        table.add(
            n=n,
            paper_n=paper_n(n),
            cpu_mqps=round(cpu_qps / 1e6, 2),
            hb_plain_mqps=round(plain_qps / 1e6, 2),
            hb_balanced_mqps=round(lb_qps / 1e6, 2),
            depth_D=discovery.depth,
            ratio_R=round(discovery.ratio, 3),
            plain_vs_cpu=round(plain_qps / cpu_qps, 2),
            balanced_vs_cpu=round(lb_qps / cpu_qps, 2),
        )
    table.note(
        f"geomean balanced/plain gain: {geometric_mean(gains):.2f} "
        "(paper: +65% avg; plain HB+ ~25% below the CPU tree on M2)"
    )
    return table
