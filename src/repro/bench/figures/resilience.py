"""Fault-resilience experiments (beyond the paper; DESIGN.md §7).

* ``fault_resilience`` — sweep the uniform fault rate 0%..100% and
  measure end-to-end modeled throughput of the resilient HB+-tree,
  verifying every answer against the ground truth.  Graceful
  degradation means the curve decays (weakly) monotonically to the
  CPU-only floor, with zero wrong answers at every rate.
* ``fault_recovery`` — drive the tree into degradation at 100% faults,
  clear the faults, and show throughput returning to the hybrid level.

Both experiments are fully deterministic: the fault schedule derives
from ``(plan seed, site, op index)``, so re-running reproduces every
number exactly.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.bench.figures.common import dataset_and_queries, paper_n
from repro.bench.harness import ExperimentTable, stats_row
from repro.core.hbtree import HBPlusTree
from repro.core.resilience import ResilienceConfig, ResilientHBPlusTree
from repro.faults import FaultInjector, FaultPlan
from repro.platform.configs import MachineConfig, machine_m1

#: fault rates of the sweep (each category of FaultPlan.uniform)
QUICK_RATES = (0.0, 0.05, 0.25, 0.5, 1.0)
FULL_RATES = (0.0, 0.02, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0)

#: tolerance of the monotone-decay check: rates near the degraded
#: floor are allowed to differ by transient (pre-trip) costs
MONOTONE_TOLERANCE = 1.03


def _resilient_tree(
    keys: np.ndarray,
    values: np.ndarray,
    machine: MachineConfig,
    rate: float,
    seed: int,
) -> Tuple[ResilientHBPlusTree, FaultInjector]:
    tree = HBPlusTree(keys, values, machine=machine)
    injector = FaultInjector(FaultPlan.uniform(rate, seed=seed))
    return ResilientHBPlusTree(tree, injector=injector), injector


def _serve_and_check(
    r: ResilientHBPlusTree,
    keys: np.ndarray,
    lut: dict,
    batches: int,
    batch_size: int,
    rng: np.random.Generator,
) -> int:
    """Serve ``batches`` batches; return the number of wrong answers."""
    wrong = 0
    for _ in range(batches):
        q = rng.choice(keys, size=batch_size)
        out = r.lookup_batch(q)
        expected = np.asarray([lut[int(k)] for k in q], dtype=out.dtype)
        wrong += int(np.count_nonzero(out != expected))
    return wrong


def run_fault_resilience(
    machine: Optional[MachineConfig] = None,
    full: bool = False,
    n: int = 1 << 14,
    seed: int = 42,
) -> ExperimentTable:
    """Throughput vs injected fault rate, correctness verified."""
    machine = machine or machine_m1()
    if full:
        n = 1 << 15
    rates = FULL_RATES if full else QUICK_RATES
    # enough batches that the floor, not the pre-degradation transient,
    # dominates the high-rate averages
    batches = 32 if full else 24
    table = ExperimentTable(
        "fault_resilience",
        f"modeled throughput vs uniform fault rate (tree {paper_n(n)})",
    )
    keys, values, _q = dataset_and_queries(n, seed=seed)
    lut = {int(k): int(v) for k, v in zip(keys, values)}
    for rate in rates:
        r, injector = _resilient_tree(keys, values, machine, rate, seed)
        rng = np.random.default_rng(7)
        wrong = _serve_and_check(
            r, keys, lut, batches, r.bucket_size, rng
        )
        s = r.stats
        table.add(
            rate=rate,
            mqps=round(s.throughput_qps() / 1e6, 2),
            wrong_answers=wrong,
            mode="cpu-only" if r.degraded else "hybrid",
            penalty_pct=round(100.0 * s.penalty_ns / s.served_ns, 1),
            faults=injector.stats.total_faults,
            **stats_row(
                s.snapshot(),
                keys=(
                    "served_hybrid",
                    "served_cpu",
                    "transfer_retries",
                    "kernel_retries",
                    "checksum_failures",
                    "degradations",
                    "recoveries",
                ),
            ),
        )
    table.note(
        "deterministic schedule: same seed reproduces every cell; "
        "higher rates inject strict supersets of faults (common random "
        "numbers), so throughput decays monotonically to the CPU floor"
    )
    return table


def run_fault_recovery(
    machine: Optional[MachineConfig] = None,
    full: bool = False,
    n: int = 1 << 14,
    seed: int = 42,
) -> ExperimentTable:
    """Healthy -> faulty (degraded) -> faults cleared (recovered)."""
    machine = machine or machine_m1()
    if full:
        n = 1 << 15
    batches = 16 if full else 8
    table = ExperimentTable(
        "fault_recovery",
        f"degradation and recovery timeline (tree {paper_n(n)})",
    )
    keys, values, _q = dataset_and_queries(n, seed=seed)
    lut = {int(k): int(v) for k, v in zip(keys, values)}
    # recover quickly once faults clear: probe every 4 degraded batches
    config = ResilienceConfig(probe_interval=4)
    tree = HBPlusTree(keys, values, machine=machine)
    injector = FaultInjector(FaultPlan.none(seed=seed))
    r = ResilientHBPlusTree(tree, injector=injector, config=config)
    rng = np.random.default_rng(7)

    def phase(name: str, serve_batches: int) -> None:
        q0, t0 = r.stats.served_queries, r.stats.served_ns
        wrong = _serve_and_check(
            r, keys, lut, serve_batches, r.bucket_size, rng
        )
        dq, dt = r.stats.served_queries - q0, r.stats.served_ns - t0
        table.add(
            phase=name,
            mqps=round(dq * 1e9 / dt / 1e6, 2),
            wrong_answers=wrong,
            mode="cpu-only" if r.degraded else "hybrid",
            recoveries=r.stats.recoveries,
        )

    phase("healthy", batches)
    injector.plan = FaultPlan.uniform(1.0, seed=seed)
    phase("gpu faulty", batches)
    injector.plan = FaultPlan.none(seed=seed)
    # detection window: degraded service until a probe notices the
    # faults cleared (bounded; at most a few probe intervals)
    detect = 0
    detect_wrong = 0
    while r.degraded and detect < 4 * config.probe_interval:
        detect_wrong += _serve_and_check(r, keys, lut, 1, r.bucket_size, rng)
        detect += 1
    table.add(
        phase="recovering",
        mqps=None,
        wrong_answers=detect_wrong,
        mode="cpu-only" if r.degraded else "hybrid",
        recoveries=r.stats.recoveries,
        detection_batches=detect,
    )
    phase("recovered", batches)
    table.note(
        "after the faults clear, a recovery probe re-mirrors the "
        "I-segment and throughput returns to the hybrid level"
    )
    return table
