"""Fig 20 (appendix B.2) — software pipelining length sweep.

Lookup throughput (a) and latency (b) for pipeline lengths 1-32.
Expected shape: throughput improves up to ~2.5x and saturates at
P = 16 (line-fill buffers exhausted); latency grows with P (~6x at 16).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures.common import dataset_and_queries, fresh_mem, paper_n
from repro.bench.harness import ExperimentTable
from repro.bench.profiling import cpu_tree_performance
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.platform.configs import MachineConfig, machine_m1

LENGTHS = [1, 2, 4, 8, 16, 32]


def run(machine: Optional[MachineConfig] = None, full: bool = False,
        key_bits: int = 64, n: int = 1 << 19) -> ExperimentTable:
    machine = machine or machine_m1()
    if full:
        n = 1 << 21
    table = ExperimentTable(
        "fig20", f"software pipeline length sweep (n={paper_n(n)})"
    )
    keys, values, queries = dataset_and_queries(n, key_bits)
    tree = ImplicitCpuBPlusTree(
        keys, values, key_bits=key_bits, mem=fresh_mem(machine)
    )
    base_qps = base_lat = None
    for p in LENGTHS:
        qps, lat, _profile = cpu_tree_performance(
            tree, machine, queries, pipeline_len=p
        )
        if p == 1:
            base_qps, base_lat = qps, lat
        table.add(
            pipeline_len=p,
            mqps=round(qps / 1e6, 2),
            latency_us=round(lat / 1e3, 3),
            speedup=round(qps / base_qps, 2),
            latency_factor=round(lat / base_lat, 2),
        )
    table.note(
        "paper: throughput saturates at P=16 (~2.5x over P=1); latency "
        "~6x at P=16"
    )
    return table
