"""Fig 14 — update method crossover over batch size (section 6.3).

On a 64M-tuple tree (scaled: 1M) the total batch-update time of the
synchronized and asynchronous methods crosses: synchronized wins for
small batches (it avoids the full I-segment transfer), asynchronous
wins for large ones (the one big transfer amortizes).  Paper crossover:
between 64K and 128K queries; scaled by 64 that is between 1K and 2K.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures.common import dataset_and_queries, fresh_mem, paper_n
from repro.bench.harness import ExperimentTable
from repro.core.hbtree import HBPlusTree
from repro.core.update import AsyncBatchUpdater, SyncUpdater
from repro.platform.configs import SCALE_FACTOR, MachineConfig, machine_m1
from repro.workloads.queries import make_insert_batch

BATCHES = [128, 256, 512, 1024, 2048, 4096]


def run(machine: Optional[MachineConfig] = None, full: bool = False,
        key_bits: int = 64, n: int = 1 << 20) -> ExperimentTable:
    machine = machine or machine_m1()
    if not full:
        n = 1 << 18  # quick mode: smaller tree, same qualitative shape
    table = ExperimentTable(
        "fig14",
        f"sync vs async update time over batch size (tree {paper_n(n)})",
    )
    keys, values, _q = dataset_and_queries(n, key_bits)
    batches = BATCHES if full else BATCHES[:5]
    for batch in batches:
        upd_keys, upd_vals = make_insert_batch(keys, batch, key_bits)
        tree = HBPlusTree(
            keys, values, machine=machine, key_bits=key_bits,
            mem=fresh_mem(machine), fill=0.7,
        )
        sync_stats = SyncUpdater(tree).apply(upd_keys, upd_vals)
        tree = HBPlusTree(
            keys, values, machine=machine, key_bits=key_bits,
            mem=fresh_mem(machine), fill=0.7,
        )
        async_stats = AsyncBatchUpdater(tree).apply(
            upd_keys, upd_vals, transfer=True
        )
        table.add(
            batch=batch,
            paper_batch=batch * SCALE_FACTOR,
            sync_ms=round(sync_stats.total_ns / 1e6, 3),
            async_ms=round(async_stats.total_ns / 1e6, 3),
            winner="sync" if sync_stats.total_ns < async_stats.total_ns
            else "async",
        )
    table.note(
        "paper: sync faster up to 64K-query batches, async faster from "
        "128K (scaled: crossover expected between 1K and 2K)"
    )
    return table
