"""One module per paper figure; ``REGISTRY`` maps ids to run functions."""

from repro.bench.figures import (
    ablations,
    extensions,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
    fig21,
)

REGISTRY = {
    "fig07": fig07.run,
    "fig08": fig08.run,
    "fig09": fig09.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
    "fig19": fig19.run,
    "fig20": fig20.run,
    "fig21": fig21.run,
    "ablation_txn_size": ablations.run_txn_size,
    "ablation_node_index": ablations.run_node_index,
    "ablation_buffers": ablations.run_buffers,
    "ablation_l2": extensions.run_l2,
    "ext_gpu_update": extensions.run_gpu_update,
    "ext_framework": extensions.run_framework,
    "modern_hw": extensions.run_modern_hw,
}

__all__ = ["REGISTRY"]
