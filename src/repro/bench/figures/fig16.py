"""Fig 16 — the headline result: HB+-tree vs CPU-optimized B+-tree.

(a) search throughput with 64-bit keys,
(b) search throughput with 32-bit keys,
(c) search latency with 64-bit keys.

Expected shape: the implicit HB+-tree is nearly flat across tree sizes
(CPU-leaf-stage bound) peaking around 240 MQPS; the regular HB+-tree
declines slowly; both CPU trees decline markedly as the tree outgrows
the LLC.  Average hybrid advantage: 2.4x (64-bit) / 2.1x (32-bit);
hybrid latency ~67x the CPU tree's (more queries must be in flight).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures.common import (
    dataset_and_queries,
    fresh_mem,
    paper_n,
    sweep_sizes,
)
from repro.bench.harness import ExperimentTable, geometric_mean
from repro.bench.profiling import cpu_tree_performance
from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.pipeline import (
    BucketStrategy,
    strategy_latency_ns,
    strategy_throughput_qps,
)
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.platform.configs import MachineConfig, machine_m1


def run(machine: Optional[MachineConfig] = None, full: bool = False,
        key_bits: int = 64) -> ExperimentTable:
    machine = machine or machine_m1()
    table = ExperimentTable(
        "fig16",
        f"HB+-tree vs CPU-optimized B+-tree ({key_bits}-bit keys)",
    )
    bucket = machine.bucket_size
    ratios_impl, ratios_reg = [], []
    for n in sweep_sizes(full):
        keys, values, queries = dataset_and_queries(n, key_bits)

        cpu_impl = ImplicitCpuBPlusTree(
            keys, values, key_bits=key_bits, mem=fresh_mem(machine)
        )
        qps_ci, lat_ci, _ = cpu_tree_performance(cpu_impl, machine, queries)
        cpu_reg = RegularCpuBPlusTree(
            keys, values, key_bits=key_bits, mem=fresh_mem(machine)
        )
        qps_cr, lat_cr, _ = cpu_tree_performance(cpu_reg, machine, queries)

        hb_impl = ImplicitHBPlusTree(
            keys, values, machine=machine, key_bits=key_bits,
            mem=fresh_mem(machine),
        )
        costs_i = hb_impl.bucket_costs(bucket, sample=queries)
        qps_hi = strategy_throughput_qps(
            costs_i, BucketStrategy.DOUBLE_BUFFERED, bucket
        )
        lat_hi = strategy_latency_ns(
            costs_i, BucketStrategy.DOUBLE_BUFFERED, bucket
        )

        hb_reg = HBPlusTree(
            keys, values, machine=machine, key_bits=key_bits,
            mem=fresh_mem(machine),
        )
        costs_r = hb_reg.bucket_costs(bucket, sample=queries)
        qps_hr = strategy_throughput_qps(
            costs_r, BucketStrategy.DOUBLE_BUFFERED, bucket
        )
        lat_hr = strategy_latency_ns(
            costs_r, BucketStrategy.DOUBLE_BUFFERED, bucket
        )

        ratios_impl.append(qps_hi / qps_ci)
        ratios_reg.append(qps_hr / qps_cr)
        for label, qps, lat in (
            ("cpu-implicit", qps_ci, lat_ci),
            ("cpu-regular", qps_cr, lat_cr),
            ("hb-implicit", qps_hi, lat_hi),
            ("hb-regular", qps_hr, lat_hr),
        ):
            table.add(
                n=n,
                paper_n=paper_n(n),
                tree=label,
                mqps=round(qps / 1e6, 2),
                latency_us=round(lat / 1e3, 2),
            )
    table.note(
        f"geomean hybrid/CPU ratio: implicit {geometric_mean(ratios_impl):.2f}, "
        f"regular {geometric_mean(ratios_reg):.2f} "
        "(paper: 2.4x avg for 64-bit, up to 2.9x; latency ~67x higher)"
    )
    return table
