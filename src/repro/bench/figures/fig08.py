"""Fig 8 — software pipelining and SIMD node-search comparison (M2).

Four configurations of the implicit CPU-optimized tree: sequential
search without software pipelining, and sequential / linear-SIMD /
hierarchical-SIMD search with software pipelining.  The paper runs
this on M2 because M1's Xeon lacks AVX2.

Expected shape: software pipelining improves throughput by ~108-152%;
hierarchical SIMD is the fastest node search, slightly ahead of linear;
the SIMD advantage shrinks as trees grow memory bound.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures.common import (
    dataset_and_queries,
    fresh_mem,
    paper_n,
    sweep_sizes,
)
from repro.bench.harness import ExperimentTable
from repro.bench.profiling import cpu_tree_performance
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.node_search import NodeSearchAlgorithm
from repro.platform.configs import MachineConfig, machine_m2

VARIANTS = [
    ("sequential-noswp", NodeSearchAlgorithm.SEQUENTIAL, 1),
    ("sequential", NodeSearchAlgorithm.SEQUENTIAL, None),
    ("linear-simd", NodeSearchAlgorithm.LINEAR_SIMD, None),
    ("hierarchical-simd", NodeSearchAlgorithm.HIERARCHICAL_SIMD, None),
]


def run(machine: Optional[MachineConfig] = None, full: bool = False,
        key_bits: int = 64) -> ExperimentTable:
    machine = machine or machine_m2()
    if not machine.cpu.has_avx2:
        raise ValueError("the SIMD search comparison requires an AVX2 CPU")
    table = ExperimentTable(
        "fig08", "software pipelining and node-search algorithms (M2)"
    )
    for n in sweep_sizes(full):
        keys, values, queries = dataset_and_queries(n, key_bits)
        base_qps = None
        for label, algorithm, pipeline in VARIANTS:
            mem = fresh_mem(machine)
            tree = ImplicitCpuBPlusTree(
                keys, values, key_bits=key_bits, mem=mem, algorithm=algorithm
            )
            qps, latency, _profile = cpu_tree_performance(
                tree, machine, queries,
                algorithm=algorithm, pipeline_len=pipeline,
            )
            if label == "sequential-noswp":
                base_qps = qps
            table.add(
                n=n,
                paper_n=paper_n(n),
                variant=label,
                mqps=round(qps / 1e6, 2),
                latency_us=round(latency / 1e3, 3),
                vs_noswp=round(qps / base_qps, 2) if base_qps else 1.0,
            )
    table.note(
        "paper: software pipelining improves throughput 108-152% and "
        "raises latency ~6x; hierarchical SIMD slightly beats linear"
    )
    return table
