"""Fig 13 — regular HB+-tree update methods (section 6.3).

(a) throughput of single-threaded async, multi-threaded async and
    synchronized updates across tree sizes (async shown without the
    I-segment transfer, as in the paper);
(b) the I-segment synchronization (full transfer) time per tree size.

Expected shape: multi-threaded async ~3x the single-threaded version;
the synchronized method lands between them, bounded by transfer
latency rather than cores; transfer time grows linearly with the tree.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures.common import dataset_and_queries, fresh_mem, paper_n
from repro.bench.harness import ExperimentTable
from repro.core.hbtree import HBPlusTree
from repro.core.update import AsyncBatchUpdater, SyncUpdater
from repro.platform.configs import MachineConfig, machine_m1
from repro.workloads.queries import make_insert_batch

#: update batch per tree size (paper uses 16K groups; scaled by 64)
BATCH = 2048


def run(machine: Optional[MachineConfig] = None, full: bool = False,
        key_bits: int = 64) -> ExperimentTable:
    machine = machine or machine_m1()
    sizes = [1 << 15, 1 << 16, 1 << 17] if not full else [
        1 << 15, 1 << 16, 1 << 17, 1 << 18, 1 << 19
    ]
    table = ExperimentTable(
        "fig13", "regular HB+-tree update methods and I-segment sync time"
    )
    for n in sizes:
        keys, values, _q = dataset_and_queries(n, key_bits)
        upd_keys, upd_vals = make_insert_batch(keys, BATCH, key_bits)

        def build():
            return HBPlusTree(
                keys, values, machine=machine, key_bits=key_bits,
                mem=fresh_mem(machine), fill=0.7,
            )

        tree = build()
        stats_s1 = AsyncBatchUpdater(tree, threads=1).apply(
            upd_keys, upd_vals, transfer=False
        )
        tree = build()
        stats_mt = AsyncBatchUpdater(tree).apply(
            upd_keys, upd_vals, transfer=False
        )
        i_seg_transfer_ns = tree.mirror_i_segment()
        tree = build()
        stats_sync = SyncUpdater(tree).apply(upd_keys, upd_vals)

        table.add(
            n=n, paper_n=paper_n(n), method="async-1t",
            muqps=round(stats_s1.throughput_qps(False) / 1e6, 3),
            deferred_pct=round(100 * stats_s1.deferred_fraction, 2),
        )
        table.add(
            n=n, paper_n=paper_n(n), method="async-mt",
            muqps=round(stats_mt.throughput_qps(False) / 1e6, 3),
            deferred_pct=round(100 * stats_mt.deferred_fraction, 2),
        )
        table.add(
            n=n, paper_n=paper_n(n), method="sync",
            muqps=round(stats_sync.throughput_qps(True) / 1e6, 3),
            deferred_pct=0.0,
        )
        table.add(
            n=n, paper_n=paper_n(n), method="iseg-transfer",
            transfer_us=round(i_seg_transfer_ns / 1e3, 1),
        )
    table.note(
        "paper: multi-threaded async = 3x single-threaded; >99% of "
        "updates resolve without node split/merge; transfer grows with n"
    )
    return table
