"""Fig 10 — bucket handling strategies (section 6.3).

Sequential / pipelined / double-buffered scheduling for both HB+-tree
versions on M1.  Expected shape: pipelining helps the implicit tree
(~+56%) more than the regular (~+20%); double buffering lifts both to
~+110% over sequential.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures.common import dataset_and_queries, fresh_mem, paper_n
from repro.bench.harness import ExperimentTable
from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.pipeline import BucketStrategy, strategy_throughput_qps
from repro.platform.configs import MachineConfig, machine_m1

STRATEGIES = [
    BucketStrategy.SEQUENTIAL,
    BucketStrategy.PIPELINED,
    BucketStrategy.DOUBLE_BUFFERED,
]


def run(machine: Optional[MachineConfig] = None, full: bool = False,
        key_bits: int = 64, n: int = 1 << 19) -> ExperimentTable:
    machine = machine or machine_m1()
    if full:
        n = 1 << 21
    table = ExperimentTable(
        "fig10", f"bucket handling strategies (n={paper_n(n)} paper-scale)"
    )
    keys, values, _queries = dataset_and_queries(n, key_bits)
    bucket = machine.bucket_size
    for tree_kind in ("implicit", "regular"):
        if tree_kind == "implicit":
            tree = ImplicitHBPlusTree(
                keys, values, machine=machine, key_bits=key_bits,
                mem=fresh_mem(machine),
            )
        else:
            tree = HBPlusTree(
                keys, values, machine=machine, key_bits=key_bits,
                mem=fresh_mem(machine),
            )
        costs = tree.bucket_costs(bucket)
        base = None
        for strategy in STRATEGIES:
            qps = strategy_throughput_qps(costs, strategy, bucket)
            if strategy is BucketStrategy.SEQUENTIAL:
                base = qps
            table.add(
                tree=tree_kind,
                strategy=strategy.value,
                mqps=round(qps / 1e6, 2),
                vs_sequential=round(qps / base, 2),
            )
    table.note(
        "paper: pipelining +56% (implicit) / +20% (regular); "
        "double buffering +110% over sequential"
    )
    return table
