"""Ablation benches for the design choices DESIGN.md calls out.

* GPU transaction size 32/64/128 bytes (section 5.2 chose 64),
* the regular inner node's index cache line (vs flat key scan),
* double-buffer depth (2 vs 3 in-flight buckets, section 5.5).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bench.figures.common import dataset_and_queries, fresh_mem
from repro.bench.harness import ExperimentTable
from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.pipeline import (
    BucketStrategy,
    PipelineSimulator,
)
from repro.platform.configs import MachineConfig, machine_m1


def run_txn_size(machine: Optional[MachineConfig] = None, full: bool = False,
                 key_bits: int = 64, n: int = 1 << 18) -> ExperimentTable:
    """What if nodes spanned 32 or 128 bytes instead of one cache line?

    A 32-byte node halves the fanout (deeper tree, more transactions);
    a 128-byte node doubles per-level traffic for one fewer level.
    The 64-byte choice minimizes total bytes moved.
    """
    machine = machine or machine_m1()
    table = ExperimentTable(
        "ablation_txn_size", "GPU transaction size for inner nodes"
    )
    keys, values, queries = dataset_and_queries(n, key_bits)
    tree = ImplicitHBPlusTree(
        keys, values, machine=machine, key_bits=key_bits,
        mem=fresh_mem(machine),
    )
    result = tree.gpu_search_bucket(np.asarray(queries, dtype=tree.spec.dtype))
    depth = tree.gpu_depth
    per_query_64 = result.transactions_per_query
    n_leaves = tree.cpu_tree.num_leaves
    for txn_bytes, fanout in ((32, 4), (64, 8), (128, 16)):
        import math
        d = max(1, math.ceil(math.log(max(n_leaves, 2), fanout)))
        bytes_per_query = d * txn_bytes
        table.add(
            txn_bytes=txn_bytes,
            fanout=fanout,
            levels=d,
            bytes_per_query=bytes_per_query,
            relative_traffic=round(
                bytes_per_query / (per_query_64 / depth * depth * 64), 2
            ),
        )
    table.note("64-byte transactions minimize bytes/query (section 5.2)")
    return table


def run_node_index(machine: Optional[MachineConfig] = None,
                   full: bool = False, key_bits: int = 64,
                   n: int = 1 << 18) -> ExperimentTable:
    """The regular inner node's index line vs scanning all key lines.

    With the index line a node search touches 3 cache lines; without it
    the search would binary-scan up to ``K`` key lines (expected
    ``K/2 + 1``), multiplying memory traffic.
    """
    machine = machine or machine_m1()
    table = ExperimentTable(
        "ablation_node_index", "regular node: index line vs flat scan"
    )
    keys, values, queries = dataset_and_queries(n, key_bits)
    tree = HBPlusTree(
        keys, values, machine=machine, key_bits=key_bits,
        mem=fresh_mem(machine),
    )
    kpl = tree.spec.keys_per_line
    h = tree.cpu_tree.height
    with_index = 3 * h + 1
    # without the index line: binary search over K key lines touches
    # ~log2(K)+1 lines, plus the ref line
    import math
    without_index = (math.ceil(math.log2(kpl)) + 1 + 1) * h + 1
    table.add(
        layout="indexed (paper)",
        lines_per_query=with_index,
        relative=1.0,
    )
    table.add(
        layout="flat-scan",
        lines_per_query=without_index,
        relative=round(without_index / with_index, 2),
    )
    table.note(
        "the index cache line keeps a regular-node search at 3 lines "
        "(section 4.1)"
    )
    return table


def run_buffers(machine: Optional[MachineConfig] = None, full: bool = False,
                key_bits: int = 64, n: int = 1 << 18) -> ExperimentTable:
    """Double-buffer depth: 2 vs 3 in-flight buckets (section 5.5)."""
    machine = machine or machine_m1()
    table = ExperimentTable(
        "ablation_buffers", "in-flight bucket count (2 vs 3)"
    )
    keys, values, _q = dataset_and_queries(n, key_bits)
    tree = ImplicitHBPlusTree(
        keys, values, machine=machine, key_bits=key_bits,
        mem=fresh_mem(machine),
    )
    costs = tree.bucket_costs(machine.bucket_size)
    for buffers in (1, 2, 3):
        sim = PipelineSimulator(
            costs, BucketStrategy.DOUBLE_BUFFERED, machine.bucket_size,
            buffers=buffers,
        )
        run_result = sim.run(64)
        table.add(
            buffers=buffers,
            mqps=round(
                machine.bucket_size * 1e3 / run_result.steady_state_bucket_ns,
                2,
            ),
            mean_latency_us=round(run_result.mean_latency_ns / 1e3, 1),
        )
    table.note(
        "paper: 2 buffers for CPU-bound systems (lower latency), 3 for "
        "the load-balanced variant (hides GPU scheduling)"
    )
    return table
