"""Fig 9 — FAST versus the implicit CPU-optimized B+-tree.

The paper's CPU baseline sanity check: their implicit B+-tree reaches
1.3x FAST's throughput on average, attributed to the higher node
fanout (9-ary per cache line versus FAST's 8-ary binary blocking) and
cheaper in-line SIMD search.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures.common import (
    dataset_and_queries,
    fresh_mem,
    paper_n,
    sweep_sizes,
)
from repro.bench.harness import ExperimentTable, geometric_mean
from repro.bench.profiling import cpu_tree_performance
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.fast_tree import FastTree
from repro.cpu.node_search import NodeSearchAlgorithm
from repro.platform.configs import MachineConfig, machine_m1


def run(machine: Optional[MachineConfig] = None, full: bool = False,
        key_bits: int = 64) -> ExperimentTable:
    machine = machine or machine_m1()
    table = ExperimentTable("fig09", "FAST vs implicit CPU-optimized B+-tree")
    ratios = []
    for n in sweep_sizes(full):
        keys, values, queries = dataset_and_queries(n, key_bits)
        mem = fresh_mem(machine)
        btree = ImplicitCpuBPlusTree(keys, values, key_bits=key_bits, mem=mem)
        btree_qps, _l, _p = cpu_tree_performance(btree, machine, queries)
        mem = fresh_mem(machine)
        fast = FastTree(keys, values, key_bits=key_bits, mem=mem)
        # FAST's in-line search is a 3-stage dependent binary descent;
        # its per-line compute is modeled by the sequential cost class
        fast_qps, _l, _p = cpu_tree_performance(
            fast, machine, queries, algorithm=NodeSearchAlgorithm.SEQUENTIAL
        )
        ratio = btree_qps / fast_qps
        ratios.append(ratio)
        table.add(
            n=n,
            paper_n=paper_n(n),
            fast_mqps=round(fast_qps / 1e6, 2),
            btree_mqps=round(btree_qps / 1e6, 2),
            btree_over_fast=round(ratio, 2),
        )
    table.note(
        f"geometric-mean B+-tree/FAST ratio: {geometric_mean(ratios):.2f} "
        "(paper: 1.3x on average)"
    )
    return table
