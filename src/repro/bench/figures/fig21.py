"""Fig 21 (appendix B.3) — concurrent search/update query execution.

Mixed buckets with an increasing update fraction run through the
update-capable CPU query threads of the regular HB+-tree, comparing the
synchronous and asynchronous I-segment maintenance methods.  Unlike the
other figures this one uses the discrete-event thread scheduler
(:mod:`repro.concurrency`): every operation really executes, and lock
contention on hot leaves emerges from the actual access pattern.

Expected shape: throughput decreases as the update ratio grows; the
synchronous method degrades faster (its per-node pushes cannot
amortize); even the 100%-search point is below the dedicated lookup
numbers because of mutex/synchronization overhead in the query threads.

The post-paper ``opt_mops`` column runs the same mixes through the
gapped-leaf :class:`~repro.core.OptimisticMixedEngine` (DESIGN.md §14):
latch-free reads keep the 100%-search point at dedicated-lookup cost,
and in-place gap writes + ranged dirty-node mirror sync flatten the
update-ratio decay relative to both paper methods.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bench.figures.common import dataset_and_queries, fresh_mem, paper_n
from repro.bench.harness import ExperimentTable
from repro.core.hbtree import HBPlusTree
from repro.core.mixed import ConcurrentQueryEngine, OptimisticMixedEngine
from repro.platform.configs import MachineConfig, machine_m1
from repro.workloads.queries import make_update_mix

RATIOS = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0]


def run(machine: Optional[MachineConfig] = None, full: bool = False,
        key_bits: int = 64, n: int = 1 << 16) -> ExperimentTable:
    machine = machine or machine_m1()
    if full:
        n = 1 << 19
    table = ExperimentTable(
        "fig21", f"concurrent search/update execution (n={paper_n(n)})"
    )
    keys, values, _q = dataset_and_queries(n, key_bits)
    ops = 4096 if full else 2048
    for ratio in RATIOS:
        mix = make_update_mix(keys, ops, ratio, key_bits)
        tree_a = HBPlusTree(keys, values, machine=machine,
                            key_bits=key_bits, mem=fresh_mem(machine),
                            fill=0.7)
        res_a = ConcurrentQueryEngine(tree_a).run(mix, "async")
        tree_s = HBPlusTree(keys, values, machine=machine,
                            key_bits=key_bits, mem=fresh_mem(machine),
                            fill=0.7)
        res_s = ConcurrentQueryEngine(tree_s).run(mix, "sync")
        tree_o = HBPlusTree(keys, values, machine=machine,
                            key_bits=key_bits, mem=fresh_mem(machine),
                            fill=0.7, gapped=True)
        res_o = OptimisticMixedEngine(tree_o).run(mix)
        if len(mix.search_keys):
            assert np.all(
                res_a.search_results != tree_a.spec.max_value
            ), "searches must find their keys"
            assert np.array_equal(
                res_o.search_results, res_a.search_results
            ), "optimistic engine must answer identically"
        table.add(
            update_pct=int(ratio * 100),
            async_mops=round(res_a.throughput_ops / 1e6, 2),
            sync_mops=round(res_s.throughput_ops / 1e6, 2),
            opt_mops=round(res_o.throughput_ops / 1e6, 2),
            opt_retries=int(res_o.retries),
            lock_contention=round(
                res_a.schedule.lock_stats.contention_rate, 3
            ),
        )
    table.note(
        "paper: sync throughput falls faster with the update ratio "
        "(transfer-init bound); 100%-search is below dedicated lookup "
        "throughput due to locking overhead; the optimistic engine "
        "(post-paper) holds it at plain lookup cost"
    )
    return table
