"""Fig 15 — implicit HB+-tree update cost breakdown (section 6.3).

Updating the implicit tree means rebuilding both segments in main
memory and re-uploading the I-segment.  The figure splits the cost into
L-segment rebuild, I-segment rebuild and I-segment transfer; the paper
finds the transfer adds only 3-7% on top of reconstruction.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures.common import (
    dataset_and_queries,
    fresh_mem,
    paper_n,
    sweep_sizes,
)
from repro.bench.harness import ExperimentTable
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.platform.configs import MachineConfig, machine_m1
from repro.workloads.generators import generate_dataset


def run(machine: Optional[MachineConfig] = None, full: bool = False,
        key_bits: int = 64) -> ExperimentTable:
    machine = machine or machine_m1()
    table = ExperimentTable(
        "fig15", "implicit HB+-tree rebuild phases and transfer share"
    )
    for n in sweep_sizes(full):
        keys, values, _q = dataset_and_queries(n, key_bits)
        tree = ImplicitHBPlusTree(
            keys, values, machine=machine, key_bits=key_bits,
            mem=fresh_mem(machine),
        )
        new_keys, new_values = generate_dataset(n, key_bits=key_bits, seed=99)
        times = tree.rebuild(new_keys, new_values)
        table.add(
            n=n,
            paper_n=paper_n(n),
            l_rebuild_us=round(times.l_segment_ns / 1e3, 1),
            i_rebuild_us=round(times.i_segment_ns / 1e3, 1),
            transfer_us=round(times.transfer_ns / 1e3, 1),
            transfer_pct=round(100 * times.transfer_fraction, 2),
        )
    table.note(
        "paper: I-segment transfer is 3-7% of the tree reconstruction cost"
    )
    return table
