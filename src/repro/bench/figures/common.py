"""Shared plumbing for the figure benchmarks."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.memsim.mainmem import MemorySystem
from repro.platform.configs import SCALE_FACTOR, MachineConfig
from repro.workloads.generators import generate_dataset
from repro.workloads.queries import make_point_queries

#: default dataset sizes of the sweeps.  The paper sweeps 8M (2^23) to
#: 1B (2^30); divided by SCALE_FACTOR=64 that is 2^17..2^24.  The quick
#: default covers the low half; ``full=True`` extends toward the top.
QUICK_SIZES: List[int] = [1 << 16, 1 << 17, 1 << 18, 1 << 19]
FULL_SIZES: List[int] = [1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20, 1 << 21]

#: how many sample queries instrumented profiles use
PROFILE_QUERIES = 2048


def sweep_sizes(full: bool = False) -> List[int]:
    return FULL_SIZES if full else QUICK_SIZES


def paper_n(n: int) -> str:
    """Label a scaled dataset size with its paper-scale equivalent."""
    equivalent = n * SCALE_FACTOR
    if equivalent >= 1 << 30:
        return f"{equivalent / (1 << 30):.0f}G"
    if equivalent >= 1 << 20:
        return f"{equivalent / (1 << 20):.0f}M"
    return f"{equivalent / (1 << 10):.0f}K"


def dataset_and_queries(
    n: int, key_bits: int = 64, n_queries: int = PROFILE_QUERIES,
    seed: int = 42,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(keys, values, query stream) for one experiment point."""
    keys, values = generate_dataset(n, key_bits=key_bits, seed=seed)
    queries = make_point_queries(keys, n_queries, seed=seed + 1)
    return keys, values, queries


def fresh_mem(machine: MachineConfig) -> MemorySystem:
    return MemorySystem.from_spec(machine.cpu)
