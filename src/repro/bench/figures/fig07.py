"""Fig 7 — memory page configuration (section 6.2).

(a) average TLB misses per query for three page configurations, single
    threaded;
(b) multi-threaded search throughput under the same configurations.

Expected shape: without huge pages misses grow with the tree;
huge-I/small-L is bounded by one miss per query; all-huge has zero
misses while the tree fits the huge-page TLB reach and the *cheapest*
misses beyond it (3-level walks), so it stays fastest overall.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures.common import (
    dataset_and_queries,
    fresh_mem,
    paper_n,
    sweep_sizes,
)
from repro.bench.harness import ExperimentTable
from repro.bench.profiling import cpu_tree_performance
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.memsim.mainmem import PageConfig
from repro.platform.configs import MachineConfig, machine_m1

CONFIG_LABELS = {
    PageConfig.SMALL_SMALL: "small/small",
    PageConfig.HUGE_SMALL: "huge/small",
    PageConfig.HUGE_HUGE: "huge/huge",
}


def run(machine: Optional[MachineConfig] = None, full: bool = False,
        key_bits: int = 64) -> ExperimentTable:
    machine = machine or machine_m1()
    table = ExperimentTable(
        "fig07",
        "TLB misses per query and throughput vs memory page configuration",
    )
    for n in sweep_sizes(full):
        keys, values, queries = dataset_and_queries(n, key_bits)
        for tree_kind in ("implicit", "regular"):
            for config, label in CONFIG_LABELS.items():
                mem = fresh_mem(machine)
                if tree_kind == "implicit":
                    tree = ImplicitCpuBPlusTree(
                        keys, values, key_bits=key_bits, mem=mem,
                        page_config=config,
                    )
                else:
                    tree = RegularCpuBPlusTree(
                        keys, values, key_bits=key_bits, mem=mem,
                        page_config=config,
                    )
                qps, _lat, profile = cpu_tree_performance(
                    tree, machine, queries
                )
                table.add(
                    n=n,
                    paper_n=paper_n(n),
                    tree=tree_kind,
                    config=label,
                    tlb_misses_per_query=round(
                        profile.tlb_small + profile.tlb_huge, 3
                    ),
                    mqps=round(qps / 1e6, 2),
                )
    table.note(
        "paper: config small/small misses grow with tree size; huge/small "
        "bounded by 1 miss/query; huge/huge fastest overall (Fig 7b)"
    )
    return table
