"""Fig 17 — range query throughput (section 6.4).

Range queries matching 1-32 keys on a 128M-tuple dataset (scaled: 2M).
Expected shape: as matches grow, leaf scanning dominates, implicit and
regular versions converge, and the HB+-tree's advantage over the CPU
tree shrinks from >80% (up to 8 matches) to ~22% (32 matches).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bench.figures.common import dataset_and_queries, fresh_mem, paper_n
from repro.bench.harness import ExperimentTable
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.pipeline import BucketStrategy, strategy_throughput_qps
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.platform.configs import MachineConfig, machine_m1
from repro.platform.costmodel import (
    CpuCostModel,
    CpuQueryProfile,
    hybrid_bucket_costs,
)
from repro.workloads.queries import make_range_queries

MATCHES = [1, 2, 4, 8, 16, 32]


def _cpu_range_profile(tree: ImplicitCpuBPlusTree, ranges) -> CpuQueryProfile:
    """Instrumented range execution -> per-query memory profile."""
    tree.mem.reset_counters()
    extra_lines = 0.0
    for lo, hi in ranges:
        tree.range_query(lo, hi)
    counters = tree.mem.counters
    counters.queries = len(ranges)
    lines = counters.line_accesses / len(ranges)
    return CpuQueryProfile.from_counters(
        counters, node_searches_per_query=lines
    )


def _leaf_scan_profile(
    tree: ImplicitCpuBPlusTree, ranges
) -> CpuQueryProfile:
    """Profile of only the leaf-scanning stage (the HB+ CPU share)."""
    mem = tree.mem
    starts = [tree._descend(lo, instrument=False) for lo, _hi in ranges]
    mem.reset_counters()
    pairs = tree.spec.leaf_pairs_per_line
    for (lo, hi), leaf in zip(ranges, starts):
        # scan forward until the range upper bound passes
        while leaf < tree.num_leaves:
            mem.touch_line(tree.l_segment, leaf)
            row_last = int(tree.leaf_keys[leaf, pairs - 1])
            if row_last >= hi or row_last == tree.spec.max_value:
                break
            leaf += 1
    counters = mem.counters
    counters.queries = len(ranges)
    lines = counters.line_accesses / len(ranges)
    return CpuQueryProfile.from_counters(counters, node_searches_per_query=lines)


def run(machine: Optional[MachineConfig] = None, full: bool = False,
        key_bits: int = 64, n: int = 1 << 21) -> ExperimentTable:
    machine = machine or machine_m1()
    if not full:
        n = 1 << 18
    table = ExperimentTable(
        "fig17", f"range query throughput (n={paper_n(n)} paper-scale)"
    )
    keys, values, _q = dataset_and_queries(n, key_bits)
    bucket = machine.bucket_size
    cpu_tree = ImplicitCpuBPlusTree(
        keys, values, key_bits=key_bits, mem=fresh_mem(machine)
    )
    hb_tree = ImplicitHBPlusTree(
        keys, values, machine=machine, key_bits=key_bits,
        mem=fresh_mem(machine),
    )
    model = CpuCostModel(machine.cpu)
    for matches in MATCHES:
        ranges = make_range_queries(keys, 512, matches)
        cpu_tree.mem.flush()
        profile = _cpu_range_profile(cpu_tree, ranges)
        # warm pass then measure
        profile = _cpu_range_profile(cpu_tree, ranges)
        cpu_qps = model.throughput_qps(profile)

        hb_tree.mem.flush()
        leaf_profile = _leaf_scan_profile(hb_tree.cpu_tree, ranges)
        leaf_profile = _leaf_scan_profile(hb_tree.cpu_tree, ranges)
        sample = np.asarray([lo for lo, _ in ranges], dtype=hb_tree.spec.dtype)
        gpu_result = hb_tree.gpu_search_bucket(sample)
        costs = hybrid_bucket_costs(
            machine,
            hb_tree.spec,
            bucket,
            gpu_transactions_per_query=gpu_result.transactions_per_query,
            gpu_levels=float(hb_tree.gpu_depth),
            cpu_leaf_profile=leaf_profile,
        )
        hb_qps = strategy_throughput_qps(
            costs, BucketStrategy.DOUBLE_BUFFERED, bucket
        )
        table.add(
            matches=matches,
            cpu_mqps=round(cpu_qps / 1e6, 2),
            hb_mqps=round(hb_qps / 1e6, 2),
            hb_advantage_pct=round(100 * (hb_qps / cpu_qps - 1), 1),
        )
    table.note(
        "paper: HB+ >80% faster up to 8 matches, advantage falls to 22% "
        "at 32 matches as leaf scanning dominates"
    )
    return table
