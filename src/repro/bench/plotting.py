"""Terminal plotting for experiment tables (no plotting dependencies).

The paper's figures are line/bar charts; the benchmarks print tables.
These helpers render an :class:`ExperimentTable` as ASCII charts so a
``run_all`` session can eyeball the *shapes* directly:

* :func:`bar_chart` — one bar per row of a (label, value) projection,
* :func:`series_chart` — multi-series line-ish chart over an x column
  (one glyph per series), used for the size sweeps.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.harness import ExperimentTable

GLYPHS = "ox+*#@%&"


def bar_chart(
    table: ExperimentTable,
    label_col: str,
    value_col: str,
    width: int = 50,
    **filters,
) -> str:
    """Horizontal bars for the selected rows."""
    rows = table.select(**filters) if filters else table.rows
    rows = [r for r in rows if value_col in r and r[value_col] is not None]
    if not rows:
        return "(no data)"
    values = [float(r[value_col]) for r in rows]
    peak = max(values) or 1.0
    label_w = max(len(str(r[label_col])) for r in rows)
    lines = [f"{value_col} by {label_col}"]
    for row, value in zip(rows, values):
        bar = "#" * max(1, round(value / peak * width))
        lines.append(
            f"{str(row[label_col]).rjust(label_w)} | "
            f"{bar} {value:g}"
        )
    return "\n".join(lines)


def series_chart(
    table: ExperimentTable,
    x_col: str,
    y_col: str,
    series_col: Optional[str] = None,
    width: int = 60,
    height: int = 16,
) -> str:
    """A scatter chart of y over x, one glyph per series value."""
    rows = [r for r in table.rows
            if r.get(x_col) is not None and r.get(y_col) is not None]
    if not rows:
        return "(no data)"
    xs = sorted({float(r[x_col]) for r in rows})
    series = (
        sorted({str(r[series_col]) for r in rows}) if series_col else [""]
    )
    ys = [float(r[y_col]) for r in rows]
    y_max = max(ys) or 1.0
    y_min = min(0.0, min(ys))
    grid = [[" "] * width for _ in range(height)]

    def x_pos(x: float) -> int:
        if len(xs) == 1:
            return width // 2
        return round((xs.index(x)) / (len(xs) - 1) * (width - 1))

    def y_pos(y: float) -> int:
        span = y_max - y_min or 1.0
        return (height - 1) - round((y - y_min) / span * (height - 1))

    for row in rows:
        s = str(row[series_col]) if series_col else ""
        glyph = GLYPHS[series.index(s) % len(GLYPHS)]
        grid[y_pos(float(row[y_col]))][x_pos(float(row[x_col]))] = glyph

    lines = [f"{y_col} over {x_col}"
             + (f" (series: {series_col})" if series_col else "")]
    lines.append(f"{y_max:>10.4g} +" + "".join(grid[0]))
    for rank in range(1, height):
        prefix = f"{y_min:>10.4g} +" if rank == height - 1 else " " * 11 + "|"
        lines.append(prefix + "".join(grid[rank]))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + f"{xs[0]:g} .. {xs[-1]:g}")
    if series_col:
        legend = "  ".join(
            f"{GLYPHS[i % len(GLYPHS)]}={name}"
            for i, name in enumerate(series)
        )
        lines.append(" " * 12 + legend)
    return "\n".join(lines)
