"""Benchmark of the level-wise frontier kernel + kernel selection.

Answers the two questions DESIGN.md §13 leaves to measurement:

1. **Does the frontier schedule actually save memory transactions?**
   On *uniform* traffic — where PR 2's sort+dedup barely helps because
   nearly every query in a bucket is distinct — the per-query kernel
   scatters concurrent queries across the whole I-segment each step,
   while the frontier kernel sweeps each level once.  The report
   measures modeled transactions/query through
   :class:`~repro.core.batching.BatchingEngine` with ``kernel=`` pinned
   each way, on the same tree and query stream; the gate requires the
   frontier to be *strictly* cheaper on uniform traffic at the paper's
   default geometry, and no worse than PR 2's 0.013 txns/query on the
   Zipf workload (where dedup already removed almost everything).

2. **Does discovery pick the cheaper kernel?**  The report runs
   Algorithm 1 with the kernel dimension open
   (:meth:`~repro.core.load_balance.SplitCostModel.discover`),
   cross-checks the committed (kernel, D, R) against an exhaustive
   per-kernel argmin, and replays the adaptive engine against the
   unbalanced reference — results must stay bit-identical whatever
   kernel the controller commits.

``run_frontier`` returns one JSON-serialisable dict; the CLI wrapper
(``benchmarks/bench_simt_kernels.py --frontier``) writes it to
``BENCH_pr7.json`` and turns :func:`gate_failures` into the exit code.
All gated quantities are modeled (transaction counts, Equation-4
costs), so the gate is host-independent.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

import numpy as np

from repro.core.adaptive import AdaptiveController
from repro.core.batching import BatchingEngine
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.load_balance import LoadBalancer
from repro.gpusim.kernels.frontier_search import (
    KERNELS,
    frontier_search_vectorized,
)
from repro.gpusim.kernels.implicit_search import implicit_search_vectorized
from repro.platform.configs import machine_m1
from repro.workloads.generators import generate_dataset, generate_skewed_queries
from repro.workloads.queries import make_point_queries

#: PR 2's measured Zipf floor (BENCH_pr2.json, full run): the sorted
#: batch engine's 0.013 modeled transactions/query — the frontier
#: kernel must not regress it
ZIPF_TXNS_PER_QUERY_FLOOR = 0.013


def _engine_run(keys, values, machine, queries, bucket: int,
                kernel: str) -> Dict[str, Any]:
    """One counted engine pass with ``kernel`` pinned; fresh tree so
    device counters are exclusively this run's."""
    tree = ImplicitHBPlusTree(keys, values, machine=machine)
    engine = BatchingEngine(tree, bucket_size=bucket, kernel=kernel)
    t0 = time.perf_counter_ns()
    out = engine.lookup_batch(queries)
    wall_ns = time.perf_counter_ns() - t0
    return {
        "kernel": kernel,
        "out": out,
        "transactions": int(engine.stats.transactions),
        "transactions_per_query": engine.stats.transactions_per_query,
        "kernel_launches": int(tree.device.kernel_launches),
        "wall_ns": float(wall_ns),
    }


def _workload_compare(keys, values, machine, queries, bucket: int,
                      label: str) -> Dict[str, Any]:
    """Both kernels over one workload: per-kernel counts + parity."""
    runs = {
        kern: _engine_run(keys, values, machine, queries, bucket, kern)
        for kern in KERNELS
    }
    per_query, frontier = runs["per_query"], runs["frontier"]
    row: Dict[str, Any] = {
        "workload": label,
        "queries": int(len(queries)),
        "bit_identical": bool(
            np.array_equal(per_query.pop("out"), frontier.pop("out"))
        ),
        "launches_identical": (
            per_query["kernel_launches"] == frontier["kernel_launches"]
        ),
        "per_query": per_query,
        "frontier": frontier,
        "transaction_reduction": (
            1.0 - frontier["transactions"] / per_query["transactions"]
            if per_query["transactions"] else 0.0
        ),
    }
    return row


def run_frontier(smoke: bool = False) -> Dict[str, Any]:
    """Frontier vs per-query kernel; returns the BENCH_pr7 payload."""
    if smoke:
        n_keys, n_queries, bucket = 1 << 15, 1 << 14, 1 << 12
    else:
        n_keys, n_queries, bucket = 1 << 20, 1 << 17, 1 << 14
    machine = machine_m1()
    keys, values = generate_dataset(n_keys, seed=1234)
    uniform = make_point_queries(keys, n_queries, seed=77)
    zipf = generate_skewed_queries("zipf", n_queries, seed=19)

    workloads = [
        _workload_compare(keys, values, machine, uniform, bucket, "uniform"),
        _workload_compare(keys, values, machine, zipf, bucket, "zipf"),
    ]

    # --- raw kernel sweep: one sorted-unique bucket, no engine ------------
    tree = ImplicitHBPlusTree(keys, values, machine=machine)
    probe = np.unique(uniform)[:bucket]
    args = (
        tree.iseg_buffer.array, tree.level_offsets, tree.level_sizes,
        tree.gpu_depth, tree.cpu_tree.fanout, probe,
    )
    t0 = time.perf_counter_ns()
    pq_leaf, pq_txns = implicit_search_vectorized(
        *args, teams_per_warp=tree.teams_per_warp
    )
    pq_wall = time.perf_counter_ns() - t0
    t0 = time.perf_counter_ns()
    fr_leaf, fr_txns = frontier_search_vectorized(*args)
    fr_wall = time.perf_counter_ns() - t0
    single_bucket = {
        "bucket_queries": int(len(probe)),
        "gpu_depth": int(tree.gpu_depth),
        "fanout": int(tree.cpu_tree.fanout),
        "bit_identical": bool(np.array_equal(pq_leaf, fr_leaf)),
        "per_query_transactions": int(pq_txns),
        "frontier_transactions": int(fr_txns),
        "per_query_wall_ns": float(pq_wall),
        "frontier_wall_ns": float(fr_wall),
    }

    # --- kernel selection: Algorithm 1 with the kernel dimension open -----
    balancer = LoadBalancer(tree, bucket_size=bucket, sort_batches=True)
    result = balancer.discover()
    exhaustive = {}
    for kern in KERNELS:
        _samples, best = balancer._discover_kernel(kern, None)
        exhaustive[kern] = {
            "depth": int(best[0]),
            "ratio": float(best[1]),
            "cost_ns": float(max(best[2], best[3])),
        }
    cheapest = min(exhaustive, key=lambda k: exhaustive[k]["cost_ns"])

    controller = AdaptiveController.for_tree(tree, bucket_size=bucket)
    reference = BatchingEngine(tree, bucket_size=bucket)
    balanced = BatchingEngine(tree, bucket_size=bucket, balancer=controller)
    sel_queries = uniform[: max(bucket * 4, 1)]
    selection_identical = bool(np.array_equal(
        balanced.lookup_batch(sel_queries),
        reference.lookup_batch(sel_queries),
    ))

    return {
        "benchmark": "frontier",
        "mode": "smoke" if smoke else "full",
        "machine": machine.name,
        "keys": int(n_keys),
        "bucket_size": int(bucket),
        "tree_height": int(tree.cpu_tree.height),
        "zipf_floor_txns_per_query": ZIPF_TXNS_PER_QUERY_FLOOR,
        "workloads": workloads,
        "single_bucket": single_bucket,
        "selection": {
            "committed": {
                "kernel": result.kernel,
                "depth": int(result.depth),
                "ratio": float(result.ratio),
                "cost_ns": float(result.cost_ns),
            },
            "exhaustive": exhaustive,
            "cheapest_kernel": cheapest,
            "adaptive_kernel": controller.kernel,
            "bit_identical": selection_identical,
        },
    }


def gate_failures(report: Dict[str, Any]) -> List[str]:
    """The regression gate: empty list when the report passes."""
    failures = []
    rows = {row["workload"]: row for row in report["workloads"]}
    for label, row in rows.items():
        if not row["bit_identical"]:
            failures.append(
                f"{label}: frontier results diverged from per-query"
            )
        if not row["launches_identical"]:
            failures.append(
                f"{label}: kernel choice moved the launch count"
            )
    uniform, zipf = rows["uniform"], rows["zipf"]
    if (uniform["frontier"]["transactions"]
            >= uniform["per_query"]["transactions"]):
        failures.append(
            "uniform: frontier kernel is not strictly cheaper "
            f"({uniform['frontier']['transactions']} vs "
            f"{uniform['per_query']['transactions']} transactions)"
        )
    if (zipf["frontier"]["transactions"]
            > zipf["per_query"]["transactions"]):
        failures.append("zipf: frontier kernel costs more than per-query")
    floor = report["zipf_floor_txns_per_query"]
    if zipf["frontier"]["transactions_per_query"] > floor:
        failures.append(
            f"zipf: frontier {zipf['frontier']['transactions_per_query']:.4f}"
            f" txns/query regresses the {floor} floor"
        )
    sb = report["single_bucket"]
    if not sb["bit_identical"]:
        failures.append("single bucket: leaf indices diverged")
    if sb["frontier_transactions"] >= sb["per_query_transactions"]:
        failures.append(
            "single bucket: frontier not strictly cheaper "
            f"({sb['frontier_transactions']} vs "
            f"{sb['per_query_transactions']})"
        )
    sel = report["selection"]
    if sel["committed"]["kernel"] != sel["cheapest_kernel"]:
        failures.append(
            f"discovery committed {sel['committed']['kernel']} but "
            f"{sel['cheapest_kernel']} is cheaper"
        )
    committed_cost = sel["committed"]["cost_ns"]
    best_cost = sel["exhaustive"][sel["cheapest_kernel"]]["cost_ns"]
    if committed_cost > best_cost * (1 + 1e-9):
        failures.append(
            f"discovery cost {committed_cost:.0f}ns exceeds the "
            f"exhaustive optimum {best_cost:.0f}ns"
        )
    if sel["adaptive_kernel"] != sel["committed"]["kernel"]:
        failures.append(
            "AdaptiveController committed a different kernel than "
            "offline discovery on the same profile"
        )
    if not sel["bit_identical"]:
        failures.append(
            "kernel-selected engine diverged from the unbalanced reference"
        )
    return failures
