"""Wall-clock benchmarks of the simulator's real hot paths.

The figure benchmarks measure *modeled* time (the paper's cost model);
this module measures how long the simulation itself takes to run on the
host — the numbers that PR-level performance work actually moves.  It
times the paths the batch engine and the vectorization work touch:

* **build** — bulk-building the regular hybrid tree,
* **mirror** — vectorised I-segment packing vs the per-node reference
  loop, and the full mirror upload,
* **lookup** — bulk lookups through the sorted/deduplicated
  :class:`~repro.core.batching.BatchingEngine` vs the naive path, plus
  the *modeled* sorted-vs-unsorted transaction delta on a skewed
  (zipf) workload,
* **update** — the async batch updater wall-clock and the batched
  dirty-node mirror sync (PCIe transfer counts batched vs per-node),
* **touch** — batched :meth:`MemorySystem.touch_lines` vs the
  per-line loop.

``run_wallclock`` returns one JSON-serialisable dict; the CLI wrapper
``benchmarks/bench_wallclock.py`` writes it to ``BENCH_pr2.json`` and
enforces the no-regression gate (vectorised paths must not be slower
than their scalar references).

``run_overlap`` benchmarks the *threaded* overlap engine
(:mod:`repro.core.overlap`): serial batch engine vs sequential /
pipelined / double-buffered topologies, with bit-identity and
modeled-counter parity checks and a join against the event-driven
pipeline model's ``max(T2, T4)`` steady state.  The CLI writes it to
``BENCH_pr3.json`` via ``--overlap``.

``run_trace`` exercises the observability layer (:mod:`repro.obs`): a
double-buffered overlap run with tracing off (explicit ``NULL_OBS``)
and the same run with a live :class:`~repro.obs.Observability` bundle
attached, checking the PR's guarantee — bit-identical results and
identical modeled device counters either way — measuring the tracing
overhead, and exporting the Chrome-trace-event JSON (Perfetto-loadable)
with dispatcher / GPU-worker / CPU-pool spans on distinct thread
tracks.  The CLI writes ``BENCH_pr4.json`` + the ``.trace.json``
artifact via ``--trace``.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict

import numpy as np

from repro.core.batching import BatchingEngine, measure_sorted_delta
from repro.core.hbtree import HBPlusTree
from repro.core.overlap import OverlappedEngine
from repro.core.pipeline import BucketStrategy, PipelineSimulator
from repro.core.update import AsyncBatchUpdater, SyncUpdater
from repro.platform.configs import machine_m1
from repro.workloads.generators import generate_dataset, generate_skewed_queries
from repro.workloads.queries import make_insert_batch, make_point_queries


def time_best_ns(fn: Callable[[], Any], repeats: int = 3) -> float:
    """Best-of-N wall-clock time of ``fn`` in nanoseconds."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter_ns()
        fn()
        best = min(best, time.perf_counter_ns() - t0)
    return best


def _bench_build(keys, values, machine) -> Dict[str, Any]:
    t0 = time.perf_counter_ns()
    tree = HBPlusTree(keys, values, machine=machine)
    build_ns = time.perf_counter_ns() - t0
    return {
        "tree": tree,
        "result": {
            "keys": int(len(keys)),
            "build_wall_ns": float(build_ns),
            "height": int(tree.height),
            "inner_nodes": int(
                tree.cpu_tree.upper.count + tree.cpu_tree.last.count
            ),
        },
    }


def _bench_mirror(tree: HBPlusTree, repeats: int) -> Dict[str, Any]:
    pack_vec_ns = time_best_ns(tree.pack_i_segment, repeats)
    pack_scalar_ns = time_best_ns(tree.pack_i_segment_scalar, repeats)
    mirror_ns = time_best_ns(tree.mirror_i_segment, repeats)
    return {
        "pack_vectorized_wall_ns": pack_vec_ns,
        "pack_scalar_wall_ns": pack_scalar_ns,
        "pack_speedup": pack_scalar_ns / max(1.0, pack_vec_ns),
        "mirror_build_wall_ns": mirror_ns,
    }


def _bench_lookup(tree: HBPlusTree, queries, zipf_queries,
                  repeats: int) -> Dict[str, Any]:
    engine = BatchingEngine(tree, measure_baseline=True)
    naive_ns = time_best_ns(lambda: tree.lookup_batch(queries), repeats)
    sorted_ns = time_best_ns(lambda: engine.lookup_batch(queries), repeats)
    delta = measure_sorted_delta(tree, zipf_queries)
    skew_engine = BatchingEngine(tree, measure_baseline=True)
    skew_engine.lookup_batch(zipf_queries)
    return {
        "queries": int(len(queries)),
        "naive_lookup_wall_ns": naive_ns,
        "sorted_lookup_wall_ns": sorted_ns,
        "zipf": {
            "queries": delta.queries,
            "unique": delta.unique,
            "sorted_transactions_per_query": delta.sorted_per_query,
            "unsorted_transactions_per_query": delta.unsorted_per_query,
            "transaction_reduction": delta.gain,
            "engine_transactions_per_query":
                skew_engine.stats.transactions_per_query,
            "engine_baseline_transactions_per_query":
                skew_engine.stats.baseline_transactions_per_query,
            "engine_sorted_gain": skew_engine.stats.sorted_gain,
            "duplicate_fraction": skew_engine.stats.duplicate_fraction,
        },
    }


def _bench_update(keys, values, machine, batch_size: int) -> Dict[str, Any]:
    upd_keys, upd_vals = make_insert_batch(keys, batch_size, 64, seed=97)

    tree = HBPlusTree(keys, values, machine=machine, fill=0.7)
    t0 = time.perf_counter_ns()
    async_stats = AsyncBatchUpdater(tree).apply(upd_keys, upd_vals)
    async_ns = time.perf_counter_ns() - t0

    tree_b = HBPlusTree(keys, values, machine=machine, fill=0.7)
    tree_b.link.stats.reset()
    t0 = time.perf_counter_ns()
    sync_b = SyncUpdater(tree_b, batched=True).apply(upd_keys, upd_vals)
    sync_batched_ns = time.perf_counter_ns() - t0
    batched_transfers = tree_b.link.stats.transfers

    tree_p = HBPlusTree(keys, values, machine=machine, fill=0.7)
    tree_p.link.stats.reset()
    t0 = time.perf_counter_ns()
    sync_p = SyncUpdater(tree_p, batched=False).apply(upd_keys, upd_vals)
    sync_pernode_ns = time.perf_counter_ns() - t0
    pernode_transfers = tree_p.link.stats.transfers

    return {
        "batch_size": int(batch_size),
        "async_wall_ns": float(async_ns),
        "async_modeled_ns": async_stats.total_ns,
        "async_deferred": int(async_stats.deferred),
        "sync_batched_wall_ns": float(sync_batched_ns),
        "sync_batched_modeled_ns": sync_b.total_ns,
        "sync_batched_pcie_transfers": int(batched_transfers),
        "sync_batched_nodes": int(sync_b.synced_nodes),
        "sync_pernode_wall_ns": float(sync_pernode_ns),
        "sync_pernode_modeled_ns": sync_p.total_ns,
        "sync_pernode_pcie_transfers": int(pernode_transfers),
        "sync_pernode_nodes": int(sync_p.synced_nodes),
    }


def _bench_touch(tree: HBPlusTree, n_touches: int,
                 repeats: int) -> Dict[str, Any]:
    cpu = tree.cpu_tree
    cpu._ensure_segments()
    rng = np.random.default_rng(13)
    total_lines = cpu.leaves.count * cpu.leaves.lines_per_leaf
    idx = rng.integers(0, total_lines, size=n_touches)

    def scalar():
        tree.mem.flush()
        for i in idx.tolist():
            tree.mem.touch_line(cpu.l_segment, int(i))

    def batched():
        tree.mem.flush()
        tree.mem.touch_lines(cpu.l_segment, idx)

    scalar_ns = time_best_ns(scalar, repeats)
    batched_ns = time_best_ns(batched, repeats)
    return {
        "touches": int(n_touches),
        "scalar_wall_ns": scalar_ns,
        "batched_wall_ns": batched_ns,
        "speedup": scalar_ns / max(1.0, batched_ns),
    }


#: thread topologies measured by :func:`run_overlap` — (strategy,
#: gpu_workers, cpu_workers); ``sequential`` is the inline no-thread
#: reference, the rest exercise real overlap
OVERLAP_CONFIGS = (
    ("sequential", 1, 1),
    ("pipelined", 1, 2),
    ("double_buffered", 2, 2),
    ("double_buffered", 2, 4),
)


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _device_counters(tree) -> Dict[str, int]:
    c = tree.device.memory.counters
    return {
        "kernel_launches": int(tree.device.kernel_launches),
        "transactions_64": int(c.transactions_64),
        "bytes_moved": int(c.bytes_moved),
    }


def run_overlap(smoke: bool = False) -> Dict[str, Any]:
    """Benchmark the threaded overlap engine; returns the BENCH_pr3 payload.

    Measures each topology in :data:`OVERLAP_CONFIGS` against the serial
    :class:`~repro.core.batching.BatchingEngine` on the same tree and
    query stream, checking the three things the PR guarantees — bit-identical
    results, identical modeled device counters, and the wall-clock
    speedup — and joins the measurement against the event-driven
    pipeline *model* (``max(T2, T4)`` steady state, Fig 6).

    The full run uses a >=1M-key tree and >=256k queries; ``smoke``
    shrinks both for CI.  ``cpu_count`` is recorded so the CLI gate can
    skip the speedup requirement on hosts without real parallelism
    (threads cannot beat serial on one core).
    """
    if smoke:
        n_keys, n_queries, bucket = 1 << 15, 1 << 13, 1 << 10
    else:
        n_keys, n_queries, bucket = 1 << 20, 1 << 18, 1 << 14
    repeats = 2 if smoke else 3
    machine = machine_m1()
    keys, values = generate_dataset(n_keys, seed=1234)
    queries = make_point_queries(keys, n_queries, seed=77)
    tree = HBPlusTree(keys, values, machine=machine)

    # serial reference: results, counters and wall time
    serial = BatchingEngine(tree, bucket_size=bucket)
    tree.device.reset_counters()
    ref = serial.lookup_batch(queries)
    ref_counters = _device_counters(tree)
    serial_ns = time_best_ns(lambda: serial.lookup_batch(queries), repeats)

    configs = []
    for strategy, gpu_workers, cpu_workers in OVERLAP_CONFIGS:
        engine = OverlappedEngine(
            tree, bucket_size=bucket, strategy=strategy,
            gpu_workers=gpu_workers, cpu_workers=cpu_workers,
        )
        # one counted run for the correctness checks + stats snapshot
        tree.device.reset_counters()
        out = engine.lookup_batch(queries)
        counters = _device_counters(tree)
        snapshot = engine.stats.snapshot()
        wall_ns = min(
            float(snapshot["wall_ns"]),
            time_best_ns(lambda e=engine: e.lookup_batch(queries), repeats),
        )
        configs.append({
            "strategy": strategy,
            "gpu_workers": gpu_workers,
            "cpu_workers": cpu_workers,
            "queue_depth": engine.queue_depth,
            "wall_ns": wall_ns,
            "speedup_vs_serial": serial_ns / max(1.0, wall_ns),
            "bit_identical": bool(np.array_equal(out, ref)),
            "counters_match": counters == ref_counters,
            "counters": counters,
            "stats": snapshot,
        })

    # join against the event-driven pipeline model (Fig 6)
    costs = tree.bucket_costs(
        bucket_size=bucket, sample=queries[:bucket], sort_batches=True
    )
    sim = PipelineSimulator(costs, BucketStrategy.DOUBLE_BUFFERED, bucket)
    model_run = sim.run_queries(n_queries)
    return {
        "benchmark": "overlap",
        "mode": "smoke" if smoke else "full",
        "machine": machine.name,
        "cpu_count": available_cpus(),
        "keys": int(n_keys),
        "queries": int(n_queries),
        "bucket_size": int(bucket),
        "serial": {
            "wall_ns": serial_ns,
            "counters": ref_counters,
            "transactions_per_query": serial.stats.transactions_per_query,
        },
        "configs": configs,
        "model": {
            "t1_ns": costs.t1,
            "t2_ns": costs.t2,
            "t3_ns": costs.t3,
            "t4_ns": costs.t4,
            "predicted_steady_state_ns": max(costs.t2, costs.t4),
            "double_buffered_makespan_ns": model_run.makespan_ns,
            "double_buffered_throughput_qps": model_run.throughput_qps,
            "timelines_head": model_run.timelines_df()[:4],
        },
    }


def run_trace(smoke: bool = False, trace_path: str = None) -> Dict[str, Any]:
    """Benchmark the observability layer; returns the BENCH_pr4 payload.

    Runs the double-buffered overlap engine twice over the same tree
    and query stream — once untraced (explicit ``NULL_OBS`` override so
    the tree's attached bundle cannot leak in), once with a live
    :class:`~repro.obs.Observability` bundle attached to the tree — and
    verifies the layer's core guarantee: enabling tracing never changes
    results or modeled counters.  The report records

    * ``bit_identical`` / ``counters_match`` — the guarantee,
    * ``overhead_ratio`` — traced / untraced best wall-clock,
    * ``trace`` — span counts, thread-track names, inline schema
      validation (:func:`repro.obs.validate_events`), and the exported
      file path when ``trace_path`` is given,
    * ``metrics`` — a sample of the unified registry snapshot
      (``collect_all`` over tree + engine).
    """
    from repro.obs import NULL_OBS, Observability, validate_events
    from repro.obs.export import collect_all

    if smoke:
        n_keys, n_queries, bucket = 1 << 15, 1 << 13, 1 << 10
    else:
        n_keys, n_queries, bucket = 1 << 20, 1 << 18, 1 << 14
    repeats = 2 if smoke else 3
    strategy, gpu_workers, cpu_workers = "double_buffered", 2, 2
    machine = machine_m1()
    keys, values = generate_dataset(n_keys, seed=1234)
    queries = make_point_queries(keys, n_queries, seed=77)
    tree = HBPlusTree(keys, values, machine=machine)

    def make_engine(obs=None) -> OverlappedEngine:
        return OverlappedEngine(
            tree, bucket_size=bucket, strategy=strategy,
            gpu_workers=gpu_workers, cpu_workers=cpu_workers, obs=obs,
        )

    # --- untraced reference ------------------------------------------------
    plain = make_engine(obs=NULL_OBS)
    plain_ns = float("inf")
    for _ in range(repeats):
        tree.device.reset_counters()
        t0 = time.perf_counter_ns()
        ref = plain.lookup_batch(queries)
        plain_ns = min(plain_ns, float(time.perf_counter_ns() - t0))
        ref_counters = _device_counters(tree)

    # --- traced run --------------------------------------------------------
    obs = Observability()
    tree.attach_obs(obs)
    traced = make_engine()  # follows the tree's bundle dynamically
    traced_ns = float("inf")
    for _ in range(repeats):
        obs.reset()  # keep only the final repeat's events in the trace
        tree.device.reset_counters()
        t0 = time.perf_counter_ns()
        out = traced.lookup_batch(queries)
        traced_ns = min(traced_ns, float(time.perf_counter_ns() - t0))
        traced_counters = _device_counters(tree)

    errors = validate_events(obs.tracer.events)
    thread_names = sorted(obs.tracer.thread_names().values())
    metrics_snapshot = collect_all(
        obs.metrics, tree=tree, engine=traced, engine_label="overlap"
    )
    report: Dict[str, Any] = {
        "benchmark": "trace",
        "mode": "smoke" if smoke else "full",
        "machine": machine.name,
        "cpu_count": available_cpus(),
        "keys": int(n_keys),
        "queries": int(n_queries),
        "bucket_size": int(bucket),
        "strategy": strategy,
        "gpu_workers": gpu_workers,
        "cpu_workers": cpu_workers,
        "bit_identical": bool(np.array_equal(out, ref)),
        "counters_match": traced_counters == ref_counters,
        "counters": {"untraced": ref_counters, "traced": traced_counters},
        "untraced_wall_ns": plain_ns,
        "traced_wall_ns": traced_ns,
        "overhead_ratio": traced_ns / max(1.0, plain_ns),
        "trace": {
            "events": len(obs.tracer.events),
            "spans": obs.tracer.span_count(),
            "thread_names": thread_names,
            "valid": not errors,
            "validation_errors": errors[:20],
            "path": trace_path,
        },
        "metrics": metrics_snapshot,
    }
    if trace_path is not None:
        obs.tracer.write(trace_path)
    return report


def run_wallclock(smoke: bool = False) -> Dict[str, Any]:
    """Run every wall-clock benchmark; returns the BENCH_pr2 payload.

    ``smoke`` shrinks the dataset so CI finishes in seconds; the full
    run sizes the tree past 10k inner nodes and the bulk lookup past
    100k queries (the PR's acceptance scales).
    """
    if smoke:
        n_keys, n_queries, batch = 1 << 15, 1 << 13, 512
    else:
        n_keys, n_queries, batch = 1 << 22, 1 << 17, 4096
    repeats = 2 if smoke else 3
    machine = machine_m1()
    keys, values = generate_dataset(n_keys, seed=1234)
    queries = make_point_queries(keys, n_queries, seed=77)
    zipf_queries = generate_skewed_queries("zipf", n_queries, seed=19)

    built = _bench_build(keys, values, machine)
    tree = built["tree"]
    report: Dict[str, Any] = {
        "benchmark": "wallclock",
        "mode": "smoke" if smoke else "full",
        "machine": machine.name,
        "build": built["result"],
        "mirror": _bench_mirror(tree, repeats),
        "lookup": _bench_lookup(tree, queries, zipf_queries, repeats),
        "update": _bench_update(keys, values, machine, batch),
        "touch": _bench_touch(tree, min(n_queries, 1 << 14), repeats),
    }
    return report
