"""Fast instrumented profiling of CPU-side tree search.

The scalar ``tree.lookup(..., instrument=True)`` path exercises the
whole SIMD-emulation machinery and is too slow for benchmark sweeps.
These helpers reproduce exactly the *memory access sequence* of a
software-pipelined multi-query run (level by level across the query
batch — the order Algorithm 2 generates) using vectorised descent plus
per-access ``touch_line`` calls, and convert the resulting counters
into a :class:`CpuQueryProfile`.

The test suite verifies that these profiles match what the slow
instrumented lookups measure.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.cpu.fast_tree import FastTree
from repro.cpu.node_search import NodeSearchAlgorithm
from repro.platform.configs import MachineConfig
from repro.platform.costmodel import CpuCostModel, CpuQueryProfile



def _split_warm(q: np.ndarray, warm: bool) -> Tuple[np.ndarray, np.ndarray]:
    """Split a query stream into a warm-up half and a measurement half.

    Measuring the same queries that warmed the cache overstates the hit
    rate (their exact lines are still resident); a steady-state profile
    needs fresh queries against a representatively warm cache, so the
    first half warms and the disjoint second half is measured.
    """
    if not warm or len(q) < 2:
        return q[:0], q
    half = len(q) // 2
    return q[:half], q[half:]


def profile_implicit(
    tree: ImplicitCpuBPlusTree, queries: np.ndarray, warm: bool = True
) -> CpuQueryProfile:
    """Memory profile of implicit-tree lookups (H+1 lines per query)."""
    if tree.mem is None or tree.i_segment is None:
        raise ValueError("tree must be built with a MemorySystem to profile")
    q = np.asarray(queries, dtype=tree.spec.dtype)
    warm_q, measure_q = _split_warm(q, warm)
    for p, q in enumerate((warm_q, measure_q) if warm else (measure_q,)):
        if len(q) == 0:
            continue
        if q is measure_q:
            tree.mem.reset_counters()
        node = np.zeros(len(q), dtype=np.int64)
        for level, level_keys in enumerate(tree.inner_levels):
            offset = tree._level_line_offset(level)
            for n in node.tolist():
                tree.mem.touch_line(tree.i_segment, offset + int(n))
            keys = level_keys[node]
            k = np.sum(keys < q[:, None], axis=1).astype(np.int64)
            next_size = (
                tree.inner_levels[level + 1].shape[0]
                if level + 1 < len(tree.inner_levels)
                else tree.num_leaves
            )
            node = np.minimum(node * tree.fanout + k, next_size - 1)
        for n in node.tolist():
            tree.mem.touch_line(tree.l_segment, int(n))
    counters = tree.mem.counters
    counters.queries = len(measure_q)
    return CpuQueryProfile.from_counters(
        counters, node_searches_per_query=tree.height + 1
    )


def profile_regular(
    tree: RegularCpuBPlusTree, queries: np.ndarray, warm: bool = True
) -> CpuQueryProfile:
    """Memory profile of regular-tree lookups (3 lines per inner node)."""
    if tree.mem is None:
        raise ValueError("tree must be built with a MemorySystem to profile")
    tree._ensure_segments()
    q = np.asarray(queries, dtype=tree.spec.dtype)
    kpl = tree.spec.keys_per_line
    warm_q, measure_q = _split_warm(q, warm)
    for p, q in enumerate((warm_q, measure_q) if warm else (measure_q,)):
        if len(q) == 0:
            continue
        if q is measure_q:
            tree.mem.reset_counters()
        node = np.full(len(q), tree.root, dtype=np.int64)
        for level in range(tree.height - 1, -1, -1):
            pool = tree.last if level == 0 else tree.upper
            keys = pool.keys[node]
            slot = np.sum(keys < q[:, None], axis=1)
            slot = np.minimum(slot, np.maximum(pool.size[node] - 1, 0))
            groups = (slot // kpl).tolist()
            for n, g in zip(node.tolist(), groups):
                tree._touch_inner(level, int(n), int(g))
            if level == 0:
                lines = slot.tolist()
                for n, ln in zip(node.tolist(), lines):
                    tree._touch_leaf_line(int(n), int(ln))
            else:
                node = pool.refs[node, slot].astype(np.int64)
    counters = tree.mem.counters
    counters.queries = len(measure_q)
    return CpuQueryProfile.from_counters(
        counters, node_searches_per_query=2.0 * tree.height + 1
    )


def profile_fast(
    tree: FastTree, queries: np.ndarray, warm: bool = True
) -> CpuQueryProfile:
    """Memory profile of FAST lookups (one line per d_L binary levels)."""
    if tree.mem is None:
        raise ValueError("tree must be built with a MemorySystem to profile")
    q = np.asarray(queries, dtype=tree.spec.dtype)
    warm_q, measure_q = _split_warm(q, warm)
    for q in (warm_q, measure_q) if warm else (measure_q,):
        if len(q) == 0:
            continue
        if q is measure_q:
            tree.mem.reset_counters()
        for key in q.tolist():
            tree.lookup(int(key), instrument=True)
    counters = tree.mem.counters
    counters.queries = len(measure_q)
    return CpuQueryProfile.from_counters(
        counters, node_searches_per_query=tree.lines_per_query
    )


def cpu_tree_performance(
    tree,
    machine: MachineConfig,
    queries: np.ndarray,
    algorithm: Optional[NodeSearchAlgorithm] = None,
    pipeline_len: Optional[int] = None,
    threads: Optional[int] = None,
) -> Tuple[float, float, CpuQueryProfile]:
    """(throughput_qps, latency_ns, profile) of a CPU-side tree."""
    if isinstance(tree, ImplicitCpuBPlusTree):
        profile = profile_implicit(tree, queries)
    elif isinstance(tree, RegularCpuBPlusTree):
        profile = profile_regular(tree, queries)
    elif isinstance(tree, FastTree):
        profile = profile_fast(tree, queries)
    else:
        raise TypeError(f"cannot profile a {type(tree).__name__}")
    cycles_override = None
    if isinstance(tree, FastTree):
        cycles_override = FastTree.COMPUTE_CYCLES_PER_LINE
    model = CpuCostModel(
        machine.cpu,
        algorithm=algorithm
        or getattr(tree, "algorithm", NodeSearchAlgorithm.HIERARCHICAL_SIMD),
        pipeline_len=(
            pipeline_len if pipeline_len is not None
            else machine.software_pipeline_len
        ),
        threads=threads,
        cycles_per_node=cycles_override,
    )
    return model.throughput_qps(profile), model.latency_ns(profile), profile
