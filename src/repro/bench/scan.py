"""Benchmark of the batched range-scan path (BENCH_pr9).

Answers the three questions DESIGN.md §15 leaves to measurement:

1. **Is the batched scan path exact?**  Every engine entry point —
   :meth:`~repro.core.batching.BatchingEngine.run_scans`,
   :meth:`~repro.core.overlap.OverlappedEngine.run_scans` and
   :meth:`~repro.core.resilience.ResilientHBPlusTree.run_scans`
   (the latter under an injected :class:`~repro.faults.FaultPlan`) —
   is checked bit-for-bit against the sequential per-tree
   ``range_query`` walk, on the regular and the implicit tree.

2. **Does the vectorised leaf-chain scan pay for itself?**  The gate
   requires the gap-mask-aware vectorised leaf scan
   (``range_scan_from``) to beat the scalar reference walk
   (``range_scan_from_scalar``) by at least ``VECTOR_SPEEDUP_GATE``x
   wall-clock at 1K-tuple scans, with results and modeled cache
   counters identical between the two.  The start leaves are
   descended once outside the timed region: the descent is the same
   emulated-SIMD search on both sides (and on the GPU path it is the
   bucket machinery's job anyway), so timing it would only dilute the
   stage the gate is about.

3. **Is scan costing live in discovery?**  Algorithm 1 is run twice on
   the same profiled tree — once lookup-only, once with
   ``set_scan_profile(0.5, 1024)`` — and the gate requires the
   committed (D, R) to move (not merely the kernel: the scan term
   must change the split itself).

``run_scan`` returns one JSON-serialisable dict; the CLI wrapper
(``benchmarks/bench_range_scan.py``) writes it to ``BENCH_pr9.json``
and turns :func:`gate_failures` into the exit code.  Gates 1 and 3 are
fully modeled (host-independent); gate 2 is the one wall-clock gate,
with a margin wide enough for noisy CI hosts.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.core.adaptive import AdaptiveConfig, AdaptiveController
from repro.core.batching import BatchingEngine
from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.load_balance import LoadBalancer
from repro.core.overlap import OverlappedEngine
from repro.core.resilience import ResilientHBPlusTree
from repro.faults import FaultInjector, FaultPlan
from repro.platform.configs import machine_m1
from repro.workloads.generators import generate_dataset
from repro.workloads.queries import (
    make_drifting_scan_queries,
    make_scan_queries,
)

#: wall-clock factor the vectorised leaf scan must beat the scalar
#: walk by at 1K-tuple scans (measured headroom is an order of
#: magnitude beyond this; the margin absorbs CI-host noise)
VECTOR_SPEEDUP_GATE = 5.0

#: the scan profile the discovery gate prices (half the mix scanning,
#: 1K tuples per scan — the scan-heavy tenant shape)
SCAN_PROFILE = (0.5, 1024.0)


def _sequential_walk(tree, los: np.ndarray, his: np.ndarray) -> List:
    """The ground truth: one ``range_query`` at a time, stream order."""
    return [
        tree.range_query(int(lo), int(hi))
        for lo, hi in zip(los.tolist(), his.tolist())
    ]


def _identity_rows(keys, values, machine, los, his,
                   fault_rate: float) -> List[Dict[str, Any]]:
    """Gate-1 rows: every engine entry point vs the sequential walk."""
    rows: List[Dict[str, Any]] = []
    for name, cls in (("regular", HBPlusTree),
                      ("implicit", ImplicitHBPlusTree)):
        ref = _sequential_walk(cls(keys, values, machine=machine),
                               los, his)
        batch = BatchingEngine(cls(keys, values, machine=machine))
        got_batch = batch.run_scans(los, his)
        overlap = OverlappedEngine(cls(keys, values, machine=machine))
        got_overlap = overlap.run_scans(los, his)
        overlap.quiesce()
        rows.append({
            "tree": name,
            "scans": len(los),
            "tuples": int(batch.stats.scan_tuples),
            "batching_bit_identical": got_batch == ref,
            "overlap_bit_identical": got_overlap == ref,
        })
        if cls is HBPlusTree:
            # the resilient wrapper serves the regular tree; the fault
            # plan exercises its retry/fallback ladder mid-scan
            plain = ResilientHBPlusTree(
                HBPlusTree(keys, values, machine=machine)
            )
            faulted_tree = HBPlusTree(keys, values, machine=machine)
            injector = FaultInjector(FaultPlan.uniform(fault_rate, seed=7))
            faulted_tree.attach_injector(injector)
            faulted = ResilientHBPlusTree(faulted_tree, injector=injector)
            rows[-1]["resilient_bit_identical"] = (
                plain.run_scans(los, his) == ref
            )
            rows[-1]["resilient_faulted_bit_identical"] = (
                faulted.run_scans(los, his) == ref
            )
            rows[-1]["faults_handled"] = int(faulted.stats.faults_handled)
    return rows


def _time_scans(fn, triples: List[Tuple[int, int, int]],
                repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for node, lo, hi in triples:
            fn(node, lo, hi)
        best = min(best, time.perf_counter() - t0)
    return best


def _speedup_row(keys, values, machine, scan_tuples: int,
                 n_scans: int, repeats: int) -> Dict[str, Any]:
    """Gate-2 row: scalar vs vectorised leaf scan, wall-clock +
    result/counter identity, from precomputed start leaves."""
    sk = np.sort(np.asarray(keys))
    rng = np.random.default_rng(31)
    starts = rng.integers(0, len(sk) - scan_tuples + 1, size=n_scans)
    pairs = [
        (int(sk[s]), int(sk[s + scan_tuples - 1])) for s in starts
    ]
    # two identically-built trees: the modeled cache is stateful, so
    # sharing one tree would hand the second run a warmed cache
    scalar_tree = HBPlusTree(keys, values, machine=machine).cpu_tree
    vector_tree = HBPlusTree(keys, values, machine=machine).cpu_tree
    # descend once, uninstrumented, outside the timed region — both
    # sides then scan the leaf chain from the same start leaf
    triples = [
        (scalar_tree._descend(lo, instrument=False)[0], lo, hi)
        for lo, hi in pairs
    ]

    before = dict(vars(scalar_tree.mem.counters))
    scalar_results = [
        scalar_tree.range_scan_from_scalar(node, lo, hi)
        for node, lo, hi in triples
    ]
    scalar_counters = {
        k: v - before[k] for k, v in vars(scalar_tree.mem.counters).items()
    }
    before = dict(vars(vector_tree.mem.counters))
    vector_results = [
        vector_tree.range_scan_from(node, lo, hi)
        for node, lo, hi in triples
    ]
    vector_counters = {
        k: v - before[k] for k, v in vars(vector_tree.mem.counters).items()
    }

    scalar_s = _time_scans(scalar_tree.range_scan_from_scalar, triples,
                           repeats)
    vector_s = _time_scans(vector_tree.range_scan_from, triples, repeats)
    return {
        "scan_tuples": scan_tuples,
        "scans": n_scans,
        "scalar_s": scalar_s,
        "vector_s": vector_s,
        "speedup": scalar_s / vector_s if vector_s > 0 else float("inf"),
        "results_identical": scalar_results == vector_results,
        "counters_identical": scalar_counters == vector_counters,
    }


def _discovery_row(keys, values, machine) -> Dict[str, Any]:
    """Gate-3 row: Algorithm 1 lookup-only vs scan-heavy."""
    tree = ImplicitHBPlusTree(keys, values, machine=machine)
    # at the machine's jumbo default bucket the GPU amortises its
    # launch cost so far that lookup-only discovery already sits at
    # the R binary-search floor; 4K buckets put the lookup-only
    # optimum in the interior, where the scan term has room to move it
    balancer = LoadBalancer(tree, bucket_size=4096)
    base = balancer.discover()
    balancer.set_scan_profile(*SCAN_PROFILE)
    scan = balancer.discover()
    balancer.set_scan_profile(0.0, 0.0)
    return {
        "lookup_only": {"depth": base.depth, "ratio": base.ratio,
                        "kernel": base.kernel},
        "scan_heavy": {"depth": scan.depth, "ratio": scan.ratio,
                       "kernel": scan.kernel},
        "scan_share": SCAN_PROFILE[0],
        "scan_length": SCAN_PROFILE[1],
        "split_moved": (base.depth, base.ratio)
        != (scan.depth, scan.ratio),
    }


def _adaptive_row(keys, values, machine, los, his) -> Dict[str, Any]:
    """The live loop: scan buckets fed through the controller move the
    balancer's scan profile window by window (costing live, end to
    end — not just in the offline discovery call)."""
    tree = ImplicitHBPlusTree(keys, values, machine=machine)
    controller = AdaptiveController.for_tree(
        tree,
        config=AdaptiveConfig(window_buckets=2, min_window_queries=32,
                              sample_size=256),
    )
    engine = BatchingEngine(tree, bucket_size=256, balancer=controller)
    ref = _sequential_walk(
        ImplicitHBPlusTree(keys, values, machine=machine), los, his
    )
    got = engine.run_scans(los, his)
    balancer = controller.balancer
    return {
        "bit_identical": got == ref,
        "windows": int(controller.stats.windows),
        "scans_noted": int(controller.stats.scans),
        "scan_share_live": float(balancer.scan_share),
        "scan_length_live": float(balancer.scan_length),
    }


def run_scan(smoke: bool = False) -> Dict[str, Any]:
    """The full PR-9 report (gates 1-3 + the live adaptive loop)."""
    machine = machine_m1()
    n_keys = 1 << 15 if smoke else 1 << 17
    n_scans = 192 if smoke else 1024
    repeats = 2 if smoke else 3
    speed_scans = 24 if smoke else 96
    keys, values = generate_dataset(n_keys, seed=21)

    los_g, his_g = make_scan_queries(keys, n_scans, 64,
                                     dist="geometric", seed=3)
    los_d, his_d = make_drifting_scan_queries(keys, n_scans, 32, seed=4)
    los = np.concatenate([los_g, los_d])
    his = np.concatenate([his_g, his_d])

    report: Dict[str, Any] = {
        "mode": "smoke" if smoke else "full",
        "machine": "m1",
        "keys": n_keys,
        "scans": int(len(los)),
        "identity": _identity_rows(keys, values, machine, los, his,
                                   fault_rate=0.3),
        "speedup": _speedup_row(keys, values, machine,
                                scan_tuples=1000,
                                n_scans=speed_scans, repeats=repeats),
        "discovery": _discovery_row(keys, values, machine),
        "adaptive": _adaptive_row(keys, values, machine,
                                  los[:1024], his[:1024]),
    }
    return report


def gate_failures(report: Dict[str, Any]) -> List[str]:
    """Every acceptance-gate violation in a ``run_scan`` report."""
    failures: List[str] = []
    for row in report["identity"]:
        for field in ("batching_bit_identical", "overlap_bit_identical",
                      "resilient_bit_identical",
                      "resilient_faulted_bit_identical"):
            if field in row and not row[field]:
                failures.append(
                    f"{row['tree']}: {field.replace('_', ' ')} is False"
                )
    sp = report["speedup"]
    if not sp["results_identical"]:
        failures.append("speedup run: scalar/vector results differ")
    if not sp["counters_identical"]:
        failures.append("speedup run: scalar/vector modeled counters differ")
    if sp["speedup"] < VECTOR_SPEEDUP_GATE:
        failures.append(
            f"vectorised scan speedup {sp['speedup']:.1f}x "
            f"< {VECTOR_SPEEDUP_GATE}x at {sp['scan_tuples']}-tuple scans"
        )
    disc = report["discovery"]
    if not disc["split_moved"]:
        failures.append(
            "discovery committed the same (D, R) for scan-heavy and "
            f"lookup-only mixes: {disc['lookup_only']}"
        )
    ada = report["adaptive"]
    if not ada["bit_identical"]:
        failures.append("adaptive engine scans diverge from the walk")
    if ada["scan_share_live"] <= 0.0:
        failures.append("adaptive loop never applied a live scan profile")
    return failures
