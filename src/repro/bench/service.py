"""Service-level benchmark of the sharded multi-tenant index (BENCH_pr10).

Four gates, one report:

1. **Identity** — the sharded service (range- and hash-routed,
   lookups, scans, updates) is bit-identical to a single unsharded
   tree over the merged keyspace, *including* while a
   :class:`~repro.faults.FaultPlan` drills the shards' GPUs (the
   per-shard :class:`~repro.core.resilience.ResilientHBPlusTree`
   wrappers keep every answer correct; the gate compares against the
   fault-free ground truth, not another faulty run).
2. **Quota isolation** — under a mixed-tenant Zipf workload, a noisy
   tenant hammering the service is capped at exactly its token-bucket
   budget while every other tenant's requests are all served: total
   noisy admissions never exceed ``capacity + refill * elapsed`` and
   no victim batch is rejected.
3. **Split/merge under load** — a hot shard is split and later merged
   while reader threads stream lookups, with a storage
   :class:`~repro.faults.FaultPlan` failing every snapshot write: the
   topology changes land (router epoch advances), every concurrent
   lookup stays correct, the merged contents are unchanged, and the
   snapshot failures are contained (counted, never fatal).
4. **Latency** — service-side p50/p95/p99 batch latency and
   throughput under the mixed-tenant load, reported with the fixed
   ceil-based nearest-rank percentile (``percentile_method`` is
   asserted in the gate so a silent regression to the old rounding
   cannot pass).

``run_service`` returns one JSON-serialisable dict; the CLI wrapper
(``benchmarks/bench_service.py``) writes ``BENCH_pr10.json`` and turns
:func:`gate_failures` into the exit code.
"""

from __future__ import annotations

import tempfile
import threading
import time
from typing import Any, Dict, List

import numpy as np

from repro.core.batching import BatchingEngine
from repro.faults import FaultInjector, FaultPlan
from repro.io import _contents
from repro.lifecycle import SnapshotManager
from repro.lifecycle.bulkload import bulk_load
from repro.platform.configs import machine_m1
from repro.service import (
    IndexService,
    QuotaConfig,
    QuotaExceeded,
    ServiceConfig,
)
from repro.workloads.generators import generate_dataset

#: GPU fault rate of the identity drill (high enough that every shard
#: sees faults on the smoke sizes)
DRILL_RATE = 0.2

#: Zipf skew of the mixed-tenant traffic
ZIPF_A = 1.3


def _zipf_queries(rng, keys: np.ndarray, n: int) -> np.ndarray:
    idx = (rng.zipf(ZIPF_A, n) - 1) % len(keys)
    return keys[idx]


def _rows_equal(a: List, b: List) -> bool:
    return [[tuple(r) for r in scan] for scan in a] \
        == [[tuple(r) for r in scan] for scan in b]


def _identity_rows(keys, values, machine, smoke: bool
                   ) -> List[Dict[str, Any]]:
    """Gate-1 rows: sharded vs unsharded, per router, plus the drill."""
    rng = np.random.default_rng(101)
    n_q = 512 if smoke else 4096
    n_scans = 16 if smoke else 64
    queries = np.concatenate([
        _zipf_queries(rng, keys, n_q),
        rng.integers(0, np.iinfo(np.uint64).max, n_q // 8,
                     dtype=np.uint64),  # misses
    ])
    los = np.sort(rng.choice(keys, n_scans))
    his = los + rng.integers(1, 1 << 40, n_scans, dtype=np.uint64)
    upk = rng.choice(keys, n_q // 4)
    upv = rng.integers(1, 1 << 32, n_q // 4, dtype=np.uint64)
    dlk = rng.choice(keys, n_q // 16)

    rows = []
    for router in ("range", "hash"):
        for fault_rate in (0.0, DRILL_RATE):
            plan = (FaultPlan.uniform(fault_rate, seed=77)
                    if fault_rate else None)
            svc = IndexService.build(keys, values, ServiceConfig(
                n_shards=4, router=router, machine=machine,
                fault_plan=plan,
            ))
            base_tree = bulk_load("hb-regular", keys, values,
                                  machine=machine)
            base = BatchingEngine(base_tree)
            lookups_ok = bool(np.array_equal(
                svc.lookup_batch(queries), base.lookup_batch(queries)
            ))
            scans_ok = _rows_equal(svc.run_scans(los, his),
                                   base.run_scans(los, his))
            svc.apply_updates(upk, upv, dlk)
            from repro.core.update import SyncUpdater
            SyncUpdater(base_tree).apply(upk, upv, dlk)
            sk, sv = svc.contents()
            bk, bv = _contents(base_tree)
            updates_ok = bool(np.array_equal(sk, bk)
                              and np.array_equal(sv, bv))
            faults = sum(s.stats().faults for s in svc.shards)
            rows.append({
                "router": router,
                "fault_rate": fault_rate,
                "lookups_bit_identical": lookups_ok,
                "scans_bit_identical": scans_ok,
                "updates_bit_identical": updates_ok,
                "injected_faults": faults,
            })
    return rows


def _quota_row(keys, values, machine, smoke: bool) -> Dict[str, Any]:
    """Gate-2: the noisy tenant is capped, the victims are unstarved."""
    rng = np.random.default_rng(202)
    capacity, refill = 2048.0, 512.0
    svc = IndexService.build(keys, values, ServiceConfig(
        n_shards=4, machine=machine,
        quota=QuotaConfig(tenants={"noisy": (capacity, refill)}),
    ))
    rounds = 4 if smoke else 16
    batch = 256 if smoke else 1024
    advance_s = 1.0
    noisy_attempted = noisy_admitted = noisy_rejected = 0
    victim_attempted = victim_admitted = 0
    for _ in range(rounds):
        # the noisy tenant submits 4x its fair share every round
        for _ in range(4):
            q = _zipf_queries(rng, keys, batch)
            noisy_attempted += len(q)
            try:
                svc.lookup_batch(q, tenant="noisy")
                noisy_admitted += len(q)
            except QuotaExceeded:
                noisy_rejected += len(q)
        for tenant in ("alpha", "beta"):
            q = _zipf_queries(rng, keys, batch)
            victim_attempted += len(q)
            svc.lookup_batch(q, tenant=tenant)  # raises on starvation
            victim_admitted += len(q)
        svc.advance(advance_s)
    budget = capacity + refill * rounds * advance_s
    return {
        "noisy_capacity": capacity,
        "noisy_refill_per_s": refill,
        "noisy_attempted": noisy_attempted,
        "noisy_admitted": noisy_admitted,
        "noisy_rejected": noisy_rejected,
        "noisy_budget": budget,
        "noisy_within_budget": noisy_admitted <= budget,
        "victim_attempted": victim_attempted,
        "victim_admitted": victim_admitted,
        "victims_unstarved": victim_admitted == victim_attempted,
    }


def _split_merge_row(keys, values, machine, smoke: bool
                     ) -> Dict[str, Any]:
    """Gate-3: online split+merge under reader load, snapshots failing."""
    rng = np.random.default_rng(303)
    truth = dict(zip(keys.tolist(), values.tolist()))
    errors: List[str] = []
    stop = threading.Event()

    with tempfile.TemporaryDirectory() as tmp:
        manager = SnapshotManager(
            tmp, injector=FaultInjector(FaultPlan.storage(1.0, seed=5))
        )
        svc = IndexService.build(
            keys, values,
            ServiceConfig(n_shards=3, machine=machine),
            snapshot_manager=manager,
        )

        def reader(seed: int) -> None:
            r = np.random.default_rng(seed)
            while not stop.is_set():
                q = _zipf_queries(r, keys, 128)
                out = svc.lookup_batch(q, tenant=f"reader{seed}")
                for k, v in zip(q.tolist(), out.tolist()):
                    if truth[k] != v:
                        errors.append(f"key {k}: got {v}, "
                                      f"want {truth[k]}")
                        return

        threads = [threading.Thread(target=reader, args=(s,))
                   for s in (1, 2)]
        for t in threads:
            t.start()
        epoch0 = svc.router.epoch
        rounds = 2 if smoke else 6
        for _ in range(rounds):
            hot = int(np.argmax([s.served_ops for s in svc.shards]))
            svc.split_shard(hot)
            time.sleep(0.02)
            svc.merge_shards(min(hot, svc.n_shards - 2))
            time.sleep(0.02)
        stop.set()
        for t in threads:
            t.join()

        sk, sv = svc.contents()
        contents_ok = bool(np.array_equal(sk, keys)
                           and np.array_equal(sv, values))
        return {
            "topology_changes": svc.splits + svc.merges,
            "epoch_delta": svc.router.epoch - epoch0,
            "snapshot_failures": svc.snapshot_failures,
            "snapshot_failures_contained": (
                svc.snapshot_failures == svc.splits
            ),
            "reader_errors": errors[:4],
            "reads_correct_throughout": not errors,
            "contents_unchanged": contents_ok,
        }


def _latency_row(keys, values, machine, smoke: bool) -> Dict[str, Any]:
    """Gate-4: mixed-tenant latency through the fixed percentile."""
    rng = np.random.default_rng(404)
    svc = IndexService.build(keys, values, ServiceConfig(
        n_shards=4, machine=machine,
    ))
    batches = 24 if smoke else 128
    for i in range(batches):
        tenant = ("alpha", "beta", "gamma")[i % 3]
        svc.lookup_batch(_zipf_queries(rng, keys, 256), tenant=tenant)
        if i % 6 == 5:
            los = np.sort(rng.choice(keys, 8))
            his = los + np.uint64(1 << 36)
            svc.run_scans(los, his, tenant=tenant)
    return svc.latency.summary()


def run_service(smoke: bool = False) -> Dict[str, Any]:
    """The full PR-10 report (gates 1-4)."""
    machine = machine_m1()
    n_keys = 2048 if smoke else 16384
    keys, values = generate_dataset(n_keys, key_bits=64, seed=10)
    order = np.argsort(keys)
    keys, values = keys[order], values[order]
    return {
        "mode": "smoke" if smoke else "full",
        "machine": machine.name,
        "keys": int(n_keys),
        "identity": _identity_rows(keys, values, machine, smoke),
        "quota": _quota_row(keys, values, machine, smoke),
        "split_merge": _split_merge_row(keys, values, machine, smoke),
        "latency": _latency_row(keys, values, machine, smoke),
    }


def gate_failures(report: Dict[str, Any]) -> List[str]:
    """Every acceptance-gate violation in a ``run_service`` report."""
    failures: List[str] = []
    for row in report["identity"]:
        tag = f"{row['router']}@{row['fault_rate']}"
        for what in ("lookups", "scans", "updates"):
            if not row[f"{what}_bit_identical"]:
                failures.append(f"identity[{tag}]: {what} diverged "
                                f"from the unsharded tree")
        if row["fault_rate"] > 0 and row["injected_faults"] == 0:
            failures.append(f"identity[{tag}]: the fault drill "
                            f"injected nothing")
    quota = report["quota"]
    if not quota["noisy_within_budget"]:
        failures.append(
            f"quota: noisy tenant admitted {quota['noisy_admitted']} "
            f"ops, budget {quota['noisy_budget']}"
        )
    if quota["noisy_rejected"] == 0:
        failures.append("quota: the noisy tenant was never throttled")
    if not quota["victims_unstarved"]:
        failures.append("quota: a victim tenant was starved")
    sm = report["split_merge"]
    if sm["epoch_delta"] < 2:
        failures.append("split_merge: topology never changed")
    if not sm["reads_correct_throughout"]:
        failures.append(
            f"split_merge: wrong reads during topology changes: "
            f"{sm['reader_errors']}"
        )
    if not sm["contents_unchanged"]:
        failures.append("split_merge: contents changed across "
                        "split+merge")
    if not sm["snapshot_failures_contained"]:
        failures.append(
            f"split_merge: {sm['snapshot_failures']} snapshot "
            f"failures for {sm['topology_changes']} changes"
        )
    lat = report["latency"]
    if lat["percentile_method"] != "ceil_nearest_rank":
        failures.append("latency: not using the fixed ceil "
                        "nearest-rank percentile")
    if not (0 < lat["p50_ns"] <= lat["p95_ns"] <= lat["p99_ns"]):
        failures.append(
            f"latency: inconsistent percentiles p50={lat['p50_ns']} "
            f"p95={lat['p95_ns']} p99={lat['p99_ns']}"
        )
    if lat["throughput_ops_s"] <= 0:
        failures.append("latency: zero throughput")
    return failures
