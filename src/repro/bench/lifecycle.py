"""Lifecycle benchmark: cold per-key build vs bulk load vs restore.

Builds the same hybrid regular tree three ways at the largest config —
per-key inserts into an empty tree (the naive cold start), the
sort-based bottom-up bulk load, and a restore from a checksummed
snapshot — and times each.  Then runs the deterministic storage-fault
drill: a torn write mid-snapshot (must cost only the snapshot), a
silently bit-rotted newest snapshot (restore must fall back to the
previous intact one), and an all-corrupt directory (restore must
degrade to cold bulk-build).

The report carries the gates the CLI wrapper enforces
(:func:`gate_failures`):

* restore is strictly faster than the cold per-key build (and bulk
  load beats per-key too);
* all three trees answer the same probe batch bit-identically;
* warm restart resumes pinned at the committed (D, R) with no
  init-time profile;
* every drill scenario lands on the documented recovery rung.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List

import numpy as np

from repro.core.adaptive import AdaptiveController
from repro.core.hbtree import HBPlusTree
from repro.faults import FaultInjector, FaultPlan
from repro.lifecycle import SnapshotManager, cold_build_per_key, warm_restart
from repro.obs import Observability
from repro.obs.export import collect_all
from repro.platform.configs import machine_m1
from repro.workloads.generators import generate_dataset


def _probe(keys: np.ndarray, size: int = 4096) -> np.ndarray:
    """Half stored keys, half guaranteed misses (hits shifted by one
    land in gaps or on neighbours — either way, ground truth is shared
    by every correct tree)."""
    half = min(size // 2, len(keys))
    rng = np.random.default_rng(1207)
    hits = rng.choice(keys, size=half, replace=False)
    misses = hits + np.uint64(1)
    return np.concatenate([hits, misses])


def run_lifecycle(smoke: bool = False) -> Dict[str, Any]:
    n = 1 << 13 if smoke else 1 << 17
    machine = machine_m1()
    keys, values = generate_dataset(n, seed=606)
    probe = _probe(keys)

    # -- the three build paths -----------------------------------------
    t0 = time.perf_counter_ns()
    cold_tree = cold_build_per_key(keys, values, machine)
    perkey_ns = time.perf_counter_ns() - t0

    t0 = time.perf_counter_ns()
    bulk_tree = HBPlusTree(keys, values, machine=machine)
    bulk_ns = time.perf_counter_ns() - t0

    controller = AdaptiveController.for_tree(bulk_tree)
    split = controller.split()

    obs = Observability()
    with tempfile.TemporaryDirectory(prefix="bench_lifecycle_") as tmp:
        manager = SnapshotManager(Path(tmp) / "snaps", obs=obs)
        t0 = time.perf_counter_ns()
        snap_path = manager.save(bulk_tree, split=split)
        snapshot_ns = time.perf_counter_ns() - t0

        t0 = time.perf_counter_ns()
        restored = manager.restore_latest(machine=machine)
        restore_ns = time.perf_counter_ns() - t0

        warm = warm_restart(manager, machine=machine)
        warm_balancer = warm.controller.balancer if warm.controller else None
        warm_pinned = (
            warm.controller is not None
            and warm.controller.split() == split
        )
        # a warm balancer must carry *no* init-time profile: the class
        # only annotates cpu_level_ns, so an unprofiled instance lacks
        # the attribute entirely
        warm_unprofiled = (
            warm_balancer is not None
            and not hasattr(warm_balancer, "cpu_level_ns")
        )

        expected = bulk_tree.lookup_batch(probe)
        bit_identical = bool(
            np.array_equal(expected, cold_tree.lookup_batch(probe))
            and np.array_equal(expected, restored.tree.lookup_batch(probe))
            and np.array_equal(expected, warm.tree.lookup_batch(probe))
        )

        drill = _fault_drill(bulk_tree, split, probe, machine, keys, values)
        lifecycle_metrics = collect_all(obs.metrics, lifecycle=manager)

    report: Dict[str, Any] = {
        "mode": "smoke" if smoke else "full",
        "machine": "M1",
        "keys": int(n),
        "probe_queries": int(len(probe)),
        "split": {"depth": split[0], "ratio": split[1]},
        "perkey_build_ns": int(perkey_ns),
        "bulk_build_ns": int(bulk_ns),
        "snapshot_ns": int(snapshot_ns),
        "restore_ns": int(restore_ns),
        "snapshot_bytes": int(manager.stats.snapshot_bytes),
        "snapshot_path": snap_path.name if snap_path else None,
        "restore_speedup_vs_perkey": (
            perkey_ns / restore_ns if restore_ns else float("inf")
        ),
        "bulk_speedup_vs_perkey": (
            perkey_ns / bulk_ns if bulk_ns else float("inf")
        ),
        "restore_source": restored.source,
        "mirror_verified": bool(restored.mirror_verified),
        "restored_split": {
            "depth": restored.split[0], "ratio": restored.split[1],
        } if restored.split else None,
        "warm_pinned": bool(warm_pinned),
        "warm_unprofiled": bool(warm_unprofiled),
        "bit_identical": bit_identical,
        "drill": drill,
        "lifecycle_metrics": {
            k: v for k, v in lifecycle_metrics.items()
            if k.startswith(("lifecycle", "live.lifecycle"))
        },
    }
    return report


def _fault_drill(tree, split, probe, machine, keys, values
                 ) -> Dict[str, Any]:
    """The three deterministic storage-fault scenarios, replayable
    from their seeds."""
    expected = tree.lookup_batch(probe)

    # 1. torn write mid-snapshot: the live tree and the directory's
    # set of valid snapshots must both be untouched
    with tempfile.TemporaryDirectory(prefix="drill_torn_") as tmp:
        manager = SnapshotManager(tmp)
        manager.save(tree, split=split)
        before = [p.name for p in manager.snapshots()]
        torn = SnapshotManager(
            tmp, injector=FaultInjector(FaultPlan(seed=9, torn_write=1.0))
        )
        path = torn.save(tree, split=split)
        after = [p.name for p in torn.snapshots()]
        torn_result = {
            "save_failed": path is None,
            "snapshot_failures": torn.stats.snapshot_failures,
            "dir_unchanged": before == after,
            "live_tree_identical": bool(
                np.array_equal(expected, tree.lookup_batch(probe))
            ),
        }

    # 2. newest snapshot silently bit-rotted: restore must fall back
    # to the previous intact snapshot
    with tempfile.TemporaryDirectory(prefix="drill_rot_") as tmp:
        clean = SnapshotManager(tmp)
        intact = clean.save(tree, split=split)
        rotten = SnapshotManager(
            tmp,
            injector=FaultInjector(FaultPlan(seed=11, storage_bitflip=1.0)),
        )
        corrupt = rotten.save(tree, split=split)  # succeeds, silently bad
        result = clean.restore_latest(machine=machine)
        fallback_result = {
            "corrupt_written": corrupt is not None,
            "source": result.source,
            "skipped": result.skipped,
            "fell_back_to_intact": (
                result.path is not None
                and intact is not None
                and result.path.name == intact.name
            ),
            "restored_identical": bool(
                np.array_equal(expected, result.tree.lookup_batch(probe))
            ),
        }

    # 3. every snapshot corrupt: restore must degrade to cold bulk-build
    with tempfile.TemporaryDirectory(prefix="drill_cold_") as tmp:
        rotten = SnapshotManager(
            tmp,
            injector=FaultInjector(FaultPlan(seed=13, storage_bitflip=1.0)),
        )
        rotten.save(tree, split=split)
        result = rotten.restore_latest(
            machine=machine,
            cold_source=lambda: HBPlusTree(keys, values, machine=machine),
        )
        cold_result = {
            "source": result.source,
            "skipped": result.skipped,
            "cold_builds": rotten.stats.cold_builds,
            "restored_identical": bool(
                np.array_equal(expected, result.tree.lookup_batch(probe))
            ),
        }

    return {
        "torn_write": torn_result,
        "bitrot_fallback": fallback_result,
        "all_corrupt_cold": cold_result,
    }


def gate_failures(report: Dict[str, Any]) -> List[str]:
    """The regression gate: empty list when the report passes."""
    failures: List[str] = []
    if report["restore_ns"] >= report["perkey_build_ns"]:
        failures.append(
            f"restore ({report['restore_ns']} ns) not strictly faster "
            f"than cold per-key build ({report['perkey_build_ns']} ns)"
        )
    if report["bulk_build_ns"] >= report["perkey_build_ns"]:
        failures.append(
            f"bulk load ({report['bulk_build_ns']} ns) not faster than "
            f"per-key build ({report['perkey_build_ns']} ns)"
        )
    if not report["bit_identical"]:
        failures.append(
            "cold / bulk / restored / warm trees disagree on the probe batch"
        )
    if report["restore_source"] != "snapshot":
        failures.append("clean restore did not come from a snapshot")
    if not report["mirror_verified"]:
        failures.append(
            "pristine-tree restore did not reproduce the capture-time "
            "GPU mirror image bit-for-bit"
        )
    if not report["warm_pinned"]:
        failures.append("warm restart did not pin the committed (D, R)")
    if not report["warm_unprofiled"]:
        failures.append("warm restart ran an init-time reprofiling window")
    torn = report["drill"]["torn_write"]
    if not (torn["save_failed"] and torn["dir_unchanged"]
            and torn["live_tree_identical"]):
        failures.append(f"torn-write drill failed: {torn}")
    rot = report["drill"]["bitrot_fallback"]
    if not (rot["corrupt_written"] and rot["source"] == "snapshot"
            and rot["skipped"] >= 1 and rot["fell_back_to_intact"]
            and rot["restored_identical"]):
        failures.append(f"bit-rot fallback drill failed: {rot}")
    cold = report["drill"]["all_corrupt_cold"]
    if not (cold["source"] == "cold" and cold["skipped"] >= 1
            and cold["restored_identical"]):
        failures.append(f"all-corrupt cold drill failed: {cold}")
    return failures
