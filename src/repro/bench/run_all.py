"""Regenerate every figure table: ``python -m repro.bench.run_all``.

Options:
    --full      larger datasets (slower, closer to the paper's sweep)
    --only ID   run a single experiment (e.g. --only fig16)
    --out FILE  additionally write the tables as a markdown report
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.figures import REGISTRY


def _markdown(table) -> str:
    cols = table.columns()
    if not cols:
        return f"### {table.experiment}\n(no rows)\n"
    lines = [f"### {table.experiment}: {table.description}", ""]
    lines.append("| " + " | ".join(cols) + " |")
    lines.append("|" + "|".join("---" for _ in cols) + "|")
    for row in table.rows:
        lines.append(
            "| " + " | ".join(str(row.get(c, "")) for c in cols) + " |"
        )
    for note in table.notes:
        lines.append(f"\n*{note}*")
    return "\n".join(lines) + "\n"


def _auto_chart(table) -> str:
    """Pick a reasonable chart projection for a table, if one exists."""
    from repro.bench.plotting import series_chart

    cols = table.columns()
    y = next((c for c in cols if c in ("mqps", "muqps", "async_mops",
                                       "transfer_pct")), None)
    x = next((c for c in cols if c in ("n", "bucket", "batch", "matches",
                                       "pipeline_len", "update_pct")), None)
    if x is None or y is None or x == y:
        return ""
    series = next(
        (c for c in cols
         if c in ("tree", "config", "variant", "method", "strategy",
                  "distribution") and c != x),
        None,
    )
    return series_chart(table, x, y, series_col=series)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the full-size dataset sweep")
    parser.add_argument("--only", default=None,
                        help="run a single experiment id")
    parser.add_argument("--out", default=None,
                        help="write a markdown report to this file")
    parser.add_argument("--plot", action="store_true",
                        help="also render ASCII charts of the sweeps")
    args = parser.parse_args(argv)

    ids = [args.only] if args.only else list(REGISTRY)
    report = ["# HB+-tree reproduction — experiment report", ""]
    for exp_id in ids:
        if exp_id not in REGISTRY:
            print(f"unknown experiment {exp_id!r}; known: {sorted(REGISTRY)}")
            return 2
        start = time.time()
        table = REGISTRY[exp_id](full=args.full)
        elapsed = time.time() - start
        print(table.format())
        if args.plot:
            chart = _auto_chart(table)
            if chart:
                print(chart)
                print()
        print(f"[{exp_id} completed in {elapsed:.1f}s]\n")
        report.append(_markdown(table))
    if args.out:
        Path(args.out).write_text("\n".join(report))
        print(f"markdown report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
