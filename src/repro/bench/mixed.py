"""Benchmark of the gapped-leaf optimistic mixed engine (BENCH_pr8).

Answers the three questions DESIGN.md §14 leaves to measurement:

1. **Does the optimistic engine win the mixed workload?**  The report
   runs the same :class:`~repro.workloads.queries.QueryMix` through the
   appendix-B.3 baseline (:class:`~repro.core.ConcurrentQueryEngine`,
   both the async and sync mirror methods) and through
   :class:`~repro.core.OptimisticMixedEngine` on a gapped tree, at the
   paper's 95/5 and 50/50 read/write ratios.  The gate requires the
   optimistic engine to beat *both* baseline methods on modeled
   throughput at *both* ratios.

2. **Is it still exact?**  Every run is checked bit-for-bit against a
   sequential reference: a fresh ungapped tree that applies the same
   mix one operation at a time.  Both the engine's own search results
   and the post-run GPU-mirror lookups (the full
   ``gpu_search_bucket`` → ``cpu_finish_bucket`` path) must match —
   including one run under an injected :class:`~repro.faults.FaultPlan`
   that exercises the sync retry/rebuild ladder.

3. **Do in-place gap writes actually shrink mirror maintenance?**  The
   optimistic engine pushes only version-dirty nodes through ranged
   :meth:`~repro.core.hbtree.HBPlusTree.sync_nodes` transfers.  At
   95/5 the dirty set is sparse and the gate requires the pushed bytes
   to stay under 0.75x the full I-segment rebuild; at 50/50 uniform
   fresh keys touch essentially every leaf, so the gate only requires
   no-worse-than-rebuild (the ranged path must degrade gracefully,
   not lose).

``run_mixed`` returns one JSON-serialisable dict; the CLI wrapper
(``benchmarks/bench_mixed_engine.py``) writes it to ``BENCH_pr8.json``
and turns :func:`gate_failures` into the exit code.  All gated
quantities are modeled (scheduler makespans, transfer bytes), so the
gate is host-independent.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.hbtree import HBPlusTree
from repro.core.mixed import ConcurrentQueryEngine, OptimisticMixedEngine
from repro.faults import FaultInjector, FaultPlan
from repro.platform.configs import machine_m1
from repro.workloads.generators import generate_dataset
from repro.workloads.queries import QueryMix, make_update_mix

#: leaf fill the gapped tree is bulk-built at — the BS-tree sweet spot
#: (enough slack that most inserts land in a gap, little enough that
#: the tree stays within ~1.5x the compact leaf count)
GAPPED_FILL = 0.70

#: the 95/5 mirror-bytes gate: ranged dirty-node sync must push less
#: than this fraction of the full I-segment rebuild
SPARSE_SYNC_BYTES_RATIO = 0.75


def _apply_sequentially(tree: HBPlusTree, mix: QueryMix) -> np.ndarray:
    """The ground truth: one ungapped tree, one op at a time, then a
    full mirror rebuild; returns the search answers in stream order."""
    update_iter = iter(zip(mix.update_keys.tolist(),
                           mix.update_values.tolist()))
    delete_iter = iter(mix.delete_keys.tolist())
    is_delete = (
        mix.is_delete
        if mix.is_delete is not None
        else np.zeros(len(mix.is_update), dtype=bool)
    )
    for is_update, is_del in zip(mix.is_update.tolist(), is_delete.tolist()):
        if is_del:
            tree.cpu_tree.delete(int(next(delete_iter)))
        elif is_update:
            key, value = next(update_iter)
            tree.cpu_tree.insert(int(key), int(value))
    tree.mirror_i_segment()
    return tree.cpu_tree.lookup_batch(mix.search_keys)


def _result_row(result) -> Dict[str, Any]:
    """The JSON view of one engine run (baseline or optimistic)."""
    row: Dict[str, Any] = {
        "method": result.method,
        "operations": int(result.schedule.operations),
        "makespan_ns": float(result.schedule.makespan_ns),
        "sync_transfer_ns": float(result.sync_transfer_ns),
        "total_ns": float(result.total_ns),
        "throughput_ops": float(result.throughput_ops),
    }
    for name in ("retries", "retry_ns", "dirty_nodes", "sync_transfers",
                 "sync_bytes", "sync_faults", "gap_writes", "shift_writes",
                 "splits"):
        value = getattr(result, name, None)
        if value is not None:
            row[name] = float(value) if name == "retry_ns" else int(value)
    rebuilt = getattr(result, "mirror_rebuilt", None)
    if rebuilt is not None:
        row["mirror_rebuilt"] = bool(rebuilt)
    return row


def _run_ratio(keys, values, machine, mix: QueryMix, label: str,
               update_ratio: float,
               plan: Optional[FaultPlan] = None) -> Dict[str, Any]:
    """One ratio: both baseline methods, the optimistic engine, and
    the sequential ground truth — each on its own fresh tree."""
    # sequential reference first: the answers every run must reproduce
    ref_tree = HBPlusTree(keys, values, machine=machine)
    truth = _apply_sequentially(ref_tree, mix)

    async_tree = HBPlusTree(keys, values, machine=machine)
    res_async = ConcurrentQueryEngine(async_tree).run(mix, method="async")
    sync_tree = HBPlusTree(keys, values, machine=machine)
    res_sync = ConcurrentQueryEngine(sync_tree).run(mix, method="sync")

    opt_tree = HBPlusTree(
        keys, values, machine=machine, gapped=True, fill=GAPPED_FILL
    )
    engine = OptimisticMixedEngine(opt_tree)
    if plan is not None:
        # attached after construction + cost sampling, so faults hit
        # exactly the engine's mirror maintenance under test
        opt_tree.attach_injector(FaultInjector(plan))
    res_opt = engine.run(mix)

    gap_stats = opt_tree.cpu_tree.gap_stats
    rebuild_bytes = opt_tree.i_segment_bytes
    row = {
        "ratio": label,
        "update_ratio": float(update_ratio),
        "delete_ratio": float(mix.delete_ratio),
        "operations": int(len(mix)),
        "faulted": plan is not None,
        "baseline_async": _result_row(res_async),
        "baseline_sync": _result_row(res_sync),
        "optimistic": _result_row(res_opt),
        "rebuild_bytes": int(rebuild_bytes),
        "sync_to_rebuild_bytes": (
            res_opt.sync_bytes / rebuild_bytes if rebuild_bytes else 0.0
        ),
        "gap_occupancy": float(opt_tree.cpu_tree.gap_occupancy()),
        "in_place_fraction": float(gap_stats.in_place_fraction),
        "speedup_vs_async": (
            res_opt.throughput_ops / res_async.throughput_ops
            if res_async.throughput_ops else float("inf")
        ),
        "speedup_vs_sync": (
            res_opt.throughput_ops / res_sync.throughput_ops
            if res_sync.throughput_ops else float("inf")
        ),
        "searches_bit_identical": bool(
            np.array_equal(res_opt.search_results, truth)
            and np.array_equal(res_async.search_results, truth)
            and np.array_equal(res_sync.search_results, truth)
        ),
        # the GPU-path check: the optimistic tree's mirror must answer
        # through gpu_search_bucket/cpu_finish_bucket exactly like the
        # sequentially-updated ungapped reference
        "mirror_bit_identical": bool(np.array_equal(
            opt_tree.lookup_batch(mix.search_keys),
            ref_tree.lookup_batch(mix.search_keys),
        )),
    }
    return row


def run_mixed(smoke: bool = False) -> Dict[str, Any]:
    """Optimistic vs baseline mixed engines; the BENCH_pr8 payload."""
    if smoke:
        n_keys, n_ops = 1 << 15, 1 << 12
    else:
        n_keys, n_ops = 1 << 17, 1 << 13
    machine = machine_m1()
    keys, values = generate_dataset(n_keys, seed=1234)

    ratios = [
        _run_ratio(
            keys, values, machine,
            make_update_mix(keys, n_ops, 0.05, seed=17), "95/5", 0.05,
        ),
        _run_ratio(
            keys, values, machine,
            make_update_mix(keys, n_ops, 0.50, seed=23), "50/50", 0.50,
        ),
    ]

    # the fault drill: deletes in the stream + a uniform GPU-side fault
    # plan aimed at the sync path; correctness must hold regardless of
    # how many transfers the retry/rebuild ladder had to absorb
    fault_mix = make_update_mix(
        keys, n_ops // 2, 0.10, seed=31, delete_ratio=0.05
    )
    fault_run = _run_ratio(
        keys, values, machine, fault_mix, "fault-drill", 0.10,
        plan=FaultPlan.uniform(0.05, seed=7),
    )

    return {
        "benchmark": "mixed",
        "mode": "smoke" if smoke else "full",
        "machine": machine.name,
        "keys": int(n_keys),
        "operations": int(n_ops),
        "gapped_fill": GAPPED_FILL,
        "sparse_sync_bytes_ratio": SPARSE_SYNC_BYTES_RATIO,
        "ratios": ratios,
        "fault_run": fault_run,
    }


def gate_failures(report: Dict[str, Any]) -> List[str]:
    """The regression gate: empty list when the report passes."""
    failures: List[str] = []
    rows = {row["ratio"]: row for row in report["ratios"]}
    for label, row in rows.items():
        opt = row["optimistic"]
        for base_name in ("baseline_async", "baseline_sync"):
            base = row[base_name]
            if opt["throughput_ops"] <= base["throughput_ops"]:
                failures.append(
                    f"{label}: optimistic {opt['throughput_ops']:.3e} ops/s "
                    f"does not beat {base_name} "
                    f"{base['throughput_ops']:.3e} ops/s"
                )
        if not row["searches_bit_identical"]:
            failures.append(
                f"{label}: search results diverged from the sequential "
                "reference"
            )
        if not row["mirror_bit_identical"]:
            failures.append(
                f"{label}: GPU-mirror lookups diverged from the "
                "sequential reference"
            )

    sparse = rows["95/5"]
    ratio_cap = report["sparse_sync_bytes_ratio"]
    if sparse["optimistic"]["mirror_rebuilt"]:
        failures.append(
            "95/5: sparse updates forced a full mirror rebuild instead "
            "of ranged dirty-node sync"
        )
    if sparse["sync_to_rebuild_bytes"] >= ratio_cap:
        failures.append(
            f"95/5: ranged sync pushed {sparse['sync_to_rebuild_bytes']:.3f}"
            f"x the rebuild bytes (gate: < {ratio_cap})"
        )
    if sparse["in_place_fraction"] <= 0.0:
        failures.append("95/5: no insert landed in a gap")
    dense = rows["50/50"]
    if dense["sync_to_rebuild_bytes"] > 1.0 + 1e-9:
        failures.append(
            f"50/50: ranged sync pushed {dense['sync_to_rebuild_bytes']:.3f}"
            "x the rebuild bytes (gate: <= 1.0)"
        )

    fault = report["fault_run"]
    if not fault["searches_bit_identical"]:
        failures.append(
            "fault drill: search results diverged under the fault plan"
        )
    if not fault["mirror_bit_identical"]:
        failures.append(
            "fault drill: GPU-mirror lookups diverged under the fault plan"
        )
    return failures
