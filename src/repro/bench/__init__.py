"""Experiment harness reproducing every figure of the paper's section 6.

Each figure lives in :mod:`repro.bench.figures` as a ``run()`` function
returning an :class:`repro.bench.harness.ExperimentTable`;
``python -m repro.bench.run_all`` regenerates all of them and prints
the tables the paper plots.
"""

from repro.bench.harness import ExperimentTable, Row
from repro.bench.profiling import (
    cpu_tree_performance,
    profile_fast,
    profile_implicit,
    profile_regular,
)

__all__ = [
    "ExperimentTable",
    "Row",
    "cpu_tree_performance",
    "profile_implicit",
    "profile_regular",
    "profile_fast",
]
