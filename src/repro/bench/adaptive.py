"""Benchmark of the online adaptive load balancer (DESIGN.md §11).

The question this answers is the one the offline §5.5 discovery cannot:
when the hot set *drifts*, does the feedback loop in
:mod:`repro.core.adaptive` track each phase's offline optimum, and does
it beat the static seed split it started from?

:func:`run_adaptive` builds an implicit hybrid tree on machine M1 with
4K buckets — the regime where Equation 4's two sides actually contest
each other (M2's weak GPU loses every level to the CPU, and tiny
buckets never amortize kernel init + PCIe, so both collapse to
cpu-only at every phase) — synthesizes a phased drifting lookup stream
with
:func:`~repro.workloads.trace.synthesize_drift_lookups`, and runs the
same stream through three :class:`~repro.core.batching.BatchingEngine`
configurations over the same tree:

* **unbalanced** — no balancer at all: the bit-identity reference;
* **static** — :class:`~repro.core.adaptive.StaticSplit` pinned to the
  seed split (offline ``discover()`` on a stored-key sample, i.e. what
  a deploy-time calibration would ship);
* **adaptive** — a live :class:`~repro.core.adaptive.AdaptiveController`
  with an attached :class:`~repro.obs.Observability` bundle recording
  the ``rebalance`` timeline.

Per phase it computes the *offline optimum*: a fresh profile +
``discover()`` on that phase's own queries — ground truth the adaptive
loop never sees.  The report carries three gates the CLI wrapper
(``benchmarks/bench_adaptive.py`` → ``BENCH_pr5.json``) enforces:

* ``converged`` — in every phase, the split in force at phase end is
  within one step of the phase's offline optimum (depth within 1,
  ratio within 0.125 — one Algorithm-1 binary-search step);
* ``beats_static`` — summed over phases, the adaptive split's modeled
  bucket cost (Equation 4 on the phase's own profile) is below the
  static seed split's;
* ``bit_identical`` — both balanced runs return exactly the
  unbalanced engine's results.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.adaptive import AdaptiveConfig, AdaptiveController, StaticSplit
from repro.core.batching import BatchingEngine
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.load_balance import LoadBalancer
from repro.obs import Observability, collect_all
from repro.platform.configs import machine_m1
from repro.workloads.generators import generate_dataset
from repro.workloads.trace import synthesize_drift_lookups

#: convergence tolerance: one Algorithm-1 step in each dimension
DEPTH_TOLERANCE = 1
RATIO_TOLERANCE = 0.125

#: hot-set fraction per phase — uniform, sharply hot, moderately hot
PHASE_WORKING_SETS = (1.0, 0.02, 0.25)


def _phase_sample(queries: np.ndarray, size: int = 2048) -> np.ndarray:
    """Deterministic profiling sample of one phase's query stream."""
    rng = np.random.default_rng(101)
    if len(queries) <= size:
        return queries.copy()
    return rng.choice(queries, size=size, replace=False)


def run_adaptive(smoke: bool = False) -> Dict[str, Any]:
    """Static vs adaptive under drift; returns the BENCH_pr5 payload."""
    if smoke:
        n_keys, queries_per_phase, bucket = 1 << 15, 1 << 14, 1 << 12
    else:
        n_keys, queries_per_phase, bucket = 1 << 17, 1 << 15, 1 << 12
    machine = machine_m1()
    keys, values = generate_dataset(n_keys, seed=1234)
    tree = ImplicitHBPlusTree(keys, values, machine)
    trace, phases = synthesize_drift_lookups(
        keys, phase_working_sets=PHASE_WORKING_SETS,
        queries_per_phase=queries_per_phase, seed=29,
    )

    # --- ground truth: per-phase offline optimum --------------------------
    oracle = LoadBalancer(tree, bucket_size=bucket, sort_batches=True)
    offline: List[Dict[str, Any]] = []
    for phase in phases:
        oracle.reprofile(_phase_sample(trace.keys[phase.slice]))
        result = oracle.discover()
        offline.append({
            "phase": phase.name,
            "working_set": phase.working_set,
            "depth": result.depth,
            "ratio": result.ratio,
            "cost_ns": result.cost_ns,
        })

    # --- the static seed split: deploy-time calibration -------------------
    seed_balancer = LoadBalancer(tree, bucket_size=bucket, sort_batches=True)
    seed = seed_balancer.discover()

    # --- unbalanced reference ---------------------------------------------
    reference = BatchingEngine(tree, bucket_size=bucket)
    ref_out = reference.lookup_batch(trace.keys)

    # --- static run --------------------------------------------------------
    static_engine = BatchingEngine(
        tree, bucket_size=bucket,
        balancer=StaticSplit(seed.depth, seed.ratio),
    )
    static_out = static_engine.lookup_batch(trace.keys)

    # --- adaptive run, phase by phase so the split timeline is visible ----
    obs = Observability()
    rebalance_events: List[Dict[str, Any]] = []
    obs.hooks.subscribe(
        "rebalance", lambda **p: rebalance_events.append(dict(p))
    )
    # 4K buckets are big enough that two per window gives the 2048-query
    # reservoir its full depth; two confirming windows is one phase
    # quarter, so a move lands well inside the phase that caused it.
    # The hot-set phases here are worth a few percent of modeled cost,
    # so the gate runs with a 2% hysteresis bar instead of the
    # conservative 5% default
    controller = AdaptiveController.for_tree(
        tree, config=AdaptiveConfig(window_buckets=2, confirm_windows=2,
                                    hysteresis_gain=0.02),
        bucket_size=bucket, obs=obs,
    )
    adaptive_engine = BatchingEngine(tree, bucket_size=bucket,
                                     balancer=controller)
    adaptive_parts = []
    phase_rows: List[Dict[str, Any]] = []
    for phase, optimum in zip(phases, offline):
        adaptive_parts.append(
            adaptive_engine.lookup_batch(trace.keys[phase.slice])
        )
        depth, ratio = controller.split()
        # score both splits on this phase's own profile (Equation 4)
        oracle.reprofile(_phase_sample(trace.keys[phase.slice]))
        adaptive_cost = oracle.balanced_cost_ns(depth, ratio)
        static_cost = oracle.balanced_cost_ns(seed.depth, seed.ratio)
        phase_rows.append({
            "phase": phase.name,
            "working_set": phase.working_set,
            "offline_depth": optimum["depth"],
            "offline_ratio": optimum["ratio"],
            "offline_cost_ns": optimum["cost_ns"],
            "adaptive_depth": depth,
            "adaptive_ratio": ratio,
            "adaptive_cost_ns": adaptive_cost,
            "static_cost_ns": static_cost,
            "converged": (
                abs(depth - optimum["depth"]) <= DEPTH_TOLERANCE
                and abs(ratio - optimum["ratio"]) <= RATIO_TOLERANCE
            ),
        })
    adaptive_out = np.concatenate(adaptive_parts)

    adaptive_total = sum(r["adaptive_cost_ns"] for r in phase_rows)
    static_total = sum(r["static_cost_ns"] for r in phase_rows)
    metrics = collect_all(obs.metrics, tree=tree, engine=adaptive_engine,
                          engine_label="adaptive", adaptive=controller)
    return {
        "benchmark": "adaptive",
        "mode": "smoke" if smoke else "full",
        "machine": machine.name,
        "keys": int(n_keys),
        "queries_per_phase": int(queries_per_phase),
        "bucket_size": int(bucket),
        "tree_height": int(tree.height),
        "seed_split": {"depth": seed.depth, "ratio": seed.ratio},
        "phases": phase_rows,
        "offline": offline,
        "adaptive_total_cost_ns": adaptive_total,
        "static_total_cost_ns": static_total,
        "cost_gain": 1.0 - adaptive_total / max(static_total, 1e-9),
        "converged": all(r["converged"] for r in phase_rows),
        "beats_static": adaptive_total < static_total,
        "bit_identical": bool(
            np.array_equal(adaptive_out, ref_out)
            and np.array_equal(static_out, ref_out)
        ),
        "rebalances": [
            {k: e[k] for k in ("depth", "ratio", "gain", "reason", "moved")}
            for e in rebalance_events
        ],
        "controller": controller.stats.snapshot(),
        "metrics_sample": {
            k: v for k, v in sorted(metrics.items())
            if k.startswith(("adaptive.", "live.rebalance"))
        },
    }


def gate_failures(report: Dict[str, Any]) -> List[str]:
    """The regression gate: empty list when the report passes."""
    failures = []
    if not report["bit_identical"]:
        failures.append(
            "balanced engine results diverged from the unbalanced reference"
        )
    for row in report["phases"]:
        if not row["converged"]:
            failures.append(
                f"{row['phase']}: adaptive split "
                f"(D={row['adaptive_depth']}, R={row['adaptive_ratio']}) "
                f"is more than one step from the offline optimum "
                f"(D={row['offline_depth']}, R={row['offline_ratio']})"
            )
    if not report["beats_static"]:
        failures.append(
            f"adaptive modeled cost {report['adaptive_total_cost_ns']:.0f}ns "
            f"did not beat the static seed split "
            f"{report['static_total_cost_ns']:.0f}ns"
        )
    return failures
