"""Small experiment-table infrastructure shared by all figure benches."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

Row = Dict[str, Any]


def stats_row(
    snapshot: Dict[str, Any],
    keys: Optional[Sequence[str]] = None,
    prefix: str = "",
) -> Row:
    """Turn a stats ``snapshot()`` dict into table columns.

    ``keys`` selects (and orders) a subset; ``prefix`` namespaces the
    column names when one row merges several stats objects.
    """
    selected = snapshot if keys is None else {
        k: snapshot[k] for k in keys
    }
    return {f"{prefix}{k}": v for k, v in selected.items()}


@dataclass
class ExperimentTable:
    """An experiment's output: titled rows, printable as a table."""

    experiment: str
    description: str
    rows: List[Row] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, **kwargs: Any) -> None:
        self.rows.append(dict(kwargs))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def columns(self) -> List[str]:
        cols: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def select(self, **filters: Any) -> List[Row]:
        """Rows matching all the given column=value filters."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in filters.items()):
                out.append(row)
        return out

    def value(self, column: str, **filters: Any) -> Any:
        """The single value of ``column`` in the row matching filters."""
        rows = self.select(**filters)
        if len(rows) != 1:
            raise KeyError(
                f"expected exactly one row for {filters}, found {len(rows)}"
            )
        return rows[0][column]

    def format(self, float_digits: int = 2) -> str:
        """Render an aligned text table."""
        cols = self.columns()
        if not cols:
            return f"== {self.experiment} ==\n(no rows)\n"

        def fmt(v: Any) -> str:
            if isinstance(v, float):
                return f"{v:.{float_digits}f}"
            return str(v)

        table = [[fmt(row.get(c, "")) for c in cols] for row in self.rows]
        widths = [
            max(len(c), *(len(r[i]) for r in table)) if table else len(c)
            for i, c in enumerate(cols)
        ]
        lines = [f"== {self.experiment}: {self.description} =="]
        lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in table:
            lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:
        return self.format()


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; the right average for throughput ratios.

    An empty input yields 0.0 (no ratios — nothing to average); a zero
    or negative entry raises ``ValueError``.  The earlier behaviour of
    silently dropping non-positive entries inflated the reported mean
    exactly when a ratio collapsed to zero — the case a benchmark gate
    most needs to see.
    """
    vals = [float(v) for v in values]
    if not vals:
        return 0.0
    bad = [v for v in vals if not v > 0]
    if bad:
        raise ValueError(
            f"geometric_mean requires positive values; got {bad[:4]}"
        )
    # sum of logs, not a running product: immune to overflow/underflow
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
