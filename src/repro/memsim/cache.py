"""Set-associative LRU cache model (the last-level cache).

The paper's hybrid design hinges on the observation that CPU tree search
is fast while the tree fits in the LLC and becomes memory-bandwidth bound
once it outgrows it (section 5.1).  This model makes that transition
emerge from actual line-granularity simulation: top tree levels stay hot,
leaf lines thrash.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.memsim.metrics import AccessCounters


class SetAssociativeCache:
    """A classic set-associative cache with LRU replacement.

    Addresses are byte addresses; the cache indexes them by line.
    """

    def __init__(self, size_bytes: int, associativity: int = 16, line_size: int = 64):
        if size_bytes <= 0 or associativity <= 0 or line_size <= 0:
            raise ValueError("cache geometry values must be positive")
        if size_bytes % (associativity * line_size) != 0:
            # round down to a valid geometry rather than refusing odd sizes
            size_bytes = max(
                associativity * line_size,
                size_bytes // (associativity * line_size) * associativity * line_size,
            )
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.num_sets = size_bytes // (associativity * line_size)
        self._sets: List[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.counters = AccessCounters()

    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    def access(self, addr: int) -> bool:
        """Read the line containing byte ``addr``; True on hit."""
        line = addr // self.line_size
        cache_set = self._sets[self._set_index(line)]
        self.counters.line_accesses += 1
        if line in cache_set:
            cache_set.move_to_end(line)
            self.counters.cache_hits += 1
            return True
        if len(cache_set) >= self.associativity:
            cache_set.popitem(last=False)
        cache_set[line] = None
        self.counters.cache_misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Check residency without updating LRU state or counters."""
        line = addr // self.line_size
        return line in self._sets[self._set_index(line)]

    def flush(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.associativity
