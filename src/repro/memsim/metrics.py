"""Counters accumulated by the simulated memory hierarchy.

Every performance number a benchmark reports is derived from these
counters plus the machine config constants — nothing is hard-coded to a
figure's expected outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class AccessCounters:
    """Event counts collected while a workload runs against the models."""

    #: cache-line reads issued by the workload
    line_accesses: int = 0
    #: reads served by the (last level) cache
    cache_hits: int = 0
    #: reads that went to main memory
    cache_misses: int = 0
    #: address translations served by the TLB
    tlb_hits: int = 0
    #: page walks triggered by small (4 KB) pages
    tlb_misses_small: int = 0
    #: page walks triggered by huge pages
    tlb_misses_huge: int = 0
    #: node-search key comparisons executed
    key_comparisons: int = 0
    #: SIMD vector operations executed
    simd_ops: int = 0
    #: queries resolved
    queries: int = 0
    #: lines brought in by the stream prefetcher (bandwidth, no stall)
    prefetches: int = 0

    def add(self, other: "AccessCounters") -> None:
        """Accumulate ``other`` into this counter set in place."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    @property
    def tlb_misses(self) -> int:
        return self.tlb_misses_small + self.tlb_misses_huge

    def per_query(self, name: str) -> float:
        """Average of counter ``name`` per resolved query."""
        if self.queries == 0:
            return 0.0
        return getattr(self, name) / self.queries

    @property
    def cache_hit_rate(self) -> float:
        if self.line_accesses == 0:
            return 0.0
        return self.cache_hits / self.line_accesses

    def snapshot(self) -> dict:
        """A plain-dict copy, convenient for assertions and reports."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
