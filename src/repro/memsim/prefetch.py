"""Hardware stream prefetcher.

Modern CPUs detect ascending cache-line streams and prefetch ahead;
that is why the leaf-chain scans of range queries (Fig 17) run at
bandwidth, not at one latency per line.  This model watches the access
stream per segment: when a line follows its predecessor, the next
``degree`` lines are brought into the cache ahead of use.

Random point lookups never form streams, so enabling the prefetcher
does not perturb the point-query experiments.
"""

from __future__ import annotations

from collections import OrderedDict


class StreamPrefetcher:
    """An ascending-stride stream detector with a small stream table."""

    def __init__(self, cache, degree: int = 2, streams: int = 8):
        if degree < 0:
            raise ValueError("prefetch degree cannot be negative")
        if streams < 1:
            raise ValueError("need at least one stream slot")
        self.cache = cache
        self.degree = degree
        self.max_streams = streams
        # stream id (segment base) -> last line seen
        self._streams: OrderedDict[int, int] = OrderedDict()
        self.issued = 0
        self.useful_window: int = 0  # lines currently prefetched ahead

    def observe(self, segment_base: int, line: int,
                segment_last_line: int) -> int:
        """Feed one demand access; returns lines prefetched now."""
        last = self._streams.get(segment_base)
        issued = 0
        if last is not None and line == last + 1:
            # confirmed stream: pull the next `degree` lines
            for ahead in range(1, self.degree + 1):
                target = line + ahead
                if target > segment_last_line:
                    break
                if not self.cache.contains(target * self.cache.line_size):
                    self.cache.access(target * self.cache.line_size)
                    # the fill above counted as a demand miss; correct
                    # the books: prefetches are not demand traffic
                    self.cache.counters.line_accesses -= 1
                    self.cache.counters.cache_misses -= 1
                    issued += 1
        self._streams[segment_base] = line
        self._streams.move_to_end(segment_base)
        while len(self._streams) > self.max_streams:
            self._streams.popitem(last=False)
        self.issued += issued
        return issued

    def reset(self) -> None:
        self._streams.clear()
        self.issued = 0
