"""Simulated CPU memory hierarchy.

Models the parts of the memory system the paper's CPU-side design is built
around (section 4.1):

* a huge-page-aware segment allocator (:mod:`repro.memsim.allocator`) that
  places the inner-node segment (I-segment) and leaf segment (L-segment)
  on small or huge pages,
* a TLB with separate entry pools per page size and page-walk costs
  (:mod:`repro.memsim.tlb`),
* a set-associative LRU last-level cache (:mod:`repro.memsim.cache`),
* a :class:`repro.memsim.mainmem.MemorySystem` facade that routes
  cache-line accesses through TLB + cache and accumulates the counters
  the benchmarks turn into time.
"""

from repro.memsim.allocator import PageKind, Segment, SegmentAllocator
from repro.memsim.cache import SetAssociativeCache
from repro.memsim.mainmem import MemorySystem, PageConfig
from repro.memsim.metrics import AccessCounters
from repro.memsim.tlb import Tlb

__all__ = [
    "AccessCounters",
    "PageKind",
    "PageConfig",
    "Segment",
    "SegmentAllocator",
    "SetAssociativeCache",
    "MemorySystem",
    "Tlb",
]
