"""TLB model with separate entry pools per page size.

Reproduces the translation behaviour the paper's Fig 7 depends on:

* small (4 KB) pages share a limited pool of entries, so trees larger
  than the TLB reach miss more as they grow;
* huge pages have only a handful of last-level entries (four 1 GB entries
  on the evaluation machines), so a huge-page region up to
  ``4 * huge_page`` is translated for free and larger regions start
  missing again;
* a miss costs a page walk — five memory accesses for 4 KB pages but only
  three for 1 GB pages, which is why the all-huge configuration wins in
  Fig 7(b) even where its miss *count* is higher.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.memsim.allocator import PageKind
from repro.memsim.metrics import AccessCounters


class _LruSet:
    """A fixed-capacity fully-associative LRU set of page numbers."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("TLB capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[int, None] = OrderedDict()

    def access(self, page: int) -> bool:
        """Touch ``page``; return True on hit, False on miss (and fill)."""
        if page in self._entries:
            self._entries.move_to_end(page)
            return True
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[page] = None
        return False

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class Tlb:
    """Two-pool TLB: one pool for small pages, one for huge pages.

    The small-page pool models the combined first-level DTLB + STLB as a
    single LRU pool of ``entries_small + stlb_entries`` entries, which is
    the reach that matters for miss counting.
    """

    def __init__(
        self,
        entries_small: int = 64,
        stlb_entries: int = 512,
        entries_huge: int = 4,
    ):
        self._small = _LruSet(entries_small + stlb_entries)
        self._huge = _LruSet(entries_huge)
        self.counters = AccessCounters()

    def translate(self, page: int, kind: PageKind) -> bool:
        """Translate an access to ``page``; returns True on a TLB hit.

        A miss is recorded per page kind so benchmarks can charge the
        right page-walk cost.
        """
        pool = self._small if kind is PageKind.SMALL else self._huge
        hit = pool.access(page)
        if hit:
            self.counters.tlb_hits += 1
        elif kind is PageKind.SMALL:
            self.counters.tlb_misses_small += 1
        else:
            self.counters.tlb_misses_huge += 1
        return hit

    def flush(self) -> None:
        """Drop all cached translations (e.g. on context switch)."""
        self._small.flush()
        self._huge.flush()

    @property
    def small_reach(self) -> int:
        """Number of small pages the TLB can map simultaneously."""
        return self._small.capacity

    @property
    def huge_reach(self) -> int:
        """Number of huge pages the TLB can map simultaneously."""
        return self._huge.capacity
