"""Huge-page-aware segment allocator.

The paper (section 4.1) separates tree nodes into an inner-node segment
(I-segment) and a leaf segment (L-segment) and developed "our own memory
allocator which allows determining whether a node resides on a huge page
or not".  This module reproduces that: segments are carved out of a flat
virtual address space, each segment is backed by pages of a chosen kind,
and the resulting addresses feed the TLB/cache models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List


class PageKind(enum.Enum):
    """Backing page size for a segment."""

    SMALL = "small"
    HUGE = "huge"


def _round_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


@dataclass(frozen=True)
class Segment:
    """A contiguous virtual-address range backed by one page kind."""

    name: str
    base: int
    size: int
    page_kind: PageKind
    page_size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def address_of(self, offset: int) -> int:
        """Virtual address of byte ``offset`` within the segment."""
        if not 0 <= offset < self.size:
            raise ValueError(
                f"offset {offset} outside segment {self.name!r} of size {self.size}"
            )
        return self.base + offset

    def page_of(self, addr: int) -> int:
        """Page number (global) covering virtual address ``addr``."""
        if not self.contains(addr):
            raise ValueError(f"address {addr:#x} not in segment {self.name!r}")
        return addr // self.page_size

    @property
    def num_pages(self) -> int:
        first = self.base // self.page_size
        last = (self.end - 1) // self.page_size
        return last - first + 1


class SegmentAllocator:
    """Carves named segments out of a flat virtual address space.

    Each segment is aligned to its page size so a huge-page segment never
    shares a page with anything else (matching how a real huge-page
    mapping behaves).
    """

    def __init__(self, small_page: int = 4096, huge_page: int = 16 * 1024 * 1024):
        if small_page <= 0 or huge_page <= 0:
            raise ValueError("page sizes must be positive")
        if huge_page % small_page != 0:
            raise ValueError("huge page size must be a multiple of the small page size")
        self.small_page = small_page
        self.huge_page = huge_page
        self._next_free = huge_page  # keep address 0 unmapped
        self._segments: Dict[str, Segment] = {}

    def page_size(self, kind: PageKind) -> int:
        return self.small_page if kind is PageKind.SMALL else self.huge_page

    def allocate(self, name: str, size: int, page_kind: PageKind) -> Segment:
        """Allocate a new page-aligned segment.

        Raises ``ValueError`` for duplicate names or non-positive sizes.
        """
        if name in self._segments:
            raise ValueError(f"segment {name!r} already allocated")
        if size <= 0:
            raise ValueError("segment size must be positive")
        page = self.page_size(page_kind)
        base = _round_up(self._next_free, page)
        segment = Segment(
            name=name, base=base, size=size, page_kind=page_kind, page_size=page
        )
        self._next_free = base + _round_up(size, page)
        self._segments[name] = segment
        return segment

    def free(self, name: str) -> None:
        """Release a segment (the address range is not reused)."""
        if name not in self._segments:
            raise KeyError(f"segment {name!r} not allocated")
        del self._segments[name]

    def get(self, name: str) -> Segment:
        return self._segments[name]

    def __contains__(self, name: str) -> bool:
        return name in self._segments

    @property
    def segments(self) -> List[Segment]:
        return list(self._segments.values())

    def segment_for(self, addr: int) -> Segment:
        """The segment covering virtual address ``addr``."""
        for segment in self._segments.values():
            if segment.contains(addr):
                return segment
        raise KeyError(f"address {addr:#x} is unmapped")

    @property
    def total_allocated(self) -> int:
        return sum(seg.size for seg in self._segments.values())
