"""Facade combining allocator, TLB and cache into one memory system.

Tree implementations call :meth:`MemorySystem.touch` for every node (or
cache line) they inspect; the facade performs address translation against
the TLB model and a lookup in the LLC model, accumulating the counters
that the platform cost model later converts into time.
"""

from __future__ import annotations

import enum

from repro.memsim.allocator import PageKind, Segment, SegmentAllocator
from repro.memsim.cache import SetAssociativeCache
from repro.memsim.metrics import AccessCounters
from repro.memsim.tlb import Tlb


class PageConfig(enum.Enum):
    """The three memory-page configurations evaluated in Fig 7.

    * ``SMALL_SMALL`` — both segments on 4 KB pages.
    * ``HUGE_SMALL``  — I-segment on huge pages, L-segment on 4 KB pages.
    * ``HUGE_HUGE``   — both segments on huge pages.
    """

    SMALL_SMALL = ("small", "small")
    HUGE_SMALL = ("huge", "small")
    HUGE_HUGE = ("huge", "huge")

    @property
    def inner_kind(self) -> PageKind:
        return PageKind.SMALL if self.value[0] == "small" else PageKind.HUGE

    @property
    def leaf_kind(self) -> PageKind:
        return PageKind.SMALL if self.value[1] == "small" else PageKind.HUGE


class MemorySystem:
    """The CPU-side simulated memory hierarchy.

    Parameters mirror :class:`repro.platform.configs.CpuSpec`; a
    convenience constructor builds one directly from a spec.
    """

    def __init__(
        self,
        llc_bytes: int = 20 * 1024 * 1024 // 64,
        associativity: int = 16,
        line_size: int = 64,
        small_page: int = 4096,
        huge_page: int = 16 * 1024 * 1024,
        tlb_entries_small: int = 64,
        stlb_entries: int = 512,
        tlb_entries_huge: int = 4,
        prefetch_degree: int = 2,
    ):
        self.line_size = line_size
        self.allocator = SegmentAllocator(small_page=small_page, huge_page=huge_page)
        self.cache = SetAssociativeCache(
            llc_bytes, associativity=associativity, line_size=line_size
        )
        self.tlb = Tlb(
            entries_small=tlb_entries_small,
            stlb_entries=stlb_entries,
            entries_huge=tlb_entries_huge,
        )
        from repro.memsim.prefetch import StreamPrefetcher
        self.prefetcher = (
            StreamPrefetcher(self.cache, degree=prefetch_degree)
            if prefetch_degree > 0 else None
        )
        self.counters = AccessCounters()

    @classmethod
    def from_spec(cls, spec) -> "MemorySystem":
        """Build a memory system matching a :class:`CpuSpec`."""
        return cls(
            llc_bytes=spec.llc_bytes,
            line_size=spec.cache_line,
            small_page=spec.small_page,
            huge_page=spec.huge_page,
            tlb_entries_small=spec.tlb_entries_small,
            stlb_entries=spec.stlb_entries,
            tlb_entries_huge=spec.tlb_entries_huge,
        )

    def allocate(self, name: str, size: int, page_kind: PageKind) -> Segment:
        return self.allocator.allocate(name, size, page_kind)

    def touch(self, segment: Segment, offset: int, nbytes: int = 64) -> int:
        """Access ``nbytes`` at ``offset`` inside ``segment``.

        Returns the number of cache misses incurred.  Each touched line
        is translated through the TLB and looked up in the LLC.
        """
        if nbytes <= 0:
            raise ValueError("access size must be positive")
        start = segment.address_of(offset)
        # address_of validates the start; validate the end as well
        segment.address_of(offset + nbytes - 1)
        first_line = start // self.line_size
        last_line = (start + nbytes - 1) // self.line_size
        seg_last_line = (segment.end - 1) // self.line_size
        misses = 0
        for line in range(first_line, last_line + 1):
            addr = line * self.line_size
            self.tlb.translate(addr // segment.page_size, segment.page_kind)
            if not self.cache.access(addr):
                misses += 1
            if self.prefetcher is not None:
                self.counters.prefetches += self.prefetcher.observe(
                    segment.base, line, seg_last_line
                )
        touched = last_line - first_line + 1
        self.counters.line_accesses += touched
        self.counters.cache_hits += touched - misses
        self.counters.cache_misses += misses
        self.counters.tlb_hits = self.tlb.counters.tlb_hits
        self.counters.tlb_misses_small = self.tlb.counters.tlb_misses_small
        self.counters.tlb_misses_huge = self.tlb.counters.tlb_misses_huge
        return misses

    def touch_line(self, segment: Segment, line_index: int) -> int:
        """Access the ``line_index``-th cache line of ``segment``."""
        return self.touch(segment, line_index * self.line_size, self.line_size)

    def touch_lines(self, segment: Segment, line_indices) -> int:
        """Access many cache lines of ``segment``; returns total misses.

        Counter- AND state-identical to calling :meth:`touch_line` per
        index in order, but the batch is decomposed into maximal runs
        of +1-consecutive lines and each run is processed wholesale,
        one ``in`` probe plus one LRU operation per line:

        * once the stream is confirmed, every later line of the run
          was prefetched just in time, so its demand access is a hit
          and a probe miss means the line was one prefetch *issue*,
          never a demand miss — only the first one or two lines of a
          run can miss;
        * the in-run prefetch fills can be deferred from prefetch
          time to the line's own demand time: two lines less than
          ``degree`` apart never share a cache set (``degree`` is far
          below ``num_sets``), so between the real fill and the
          demand nothing else touches that set — the probe still
          sees the pre-fill state, the eviction victim is the same,
          and no intervening access can observe the difference.

        The TLB is independent of the cache, so it is settled in a
        separate pass over page *stretches*: only the first line of a
        stretch can change pool state, the rest re-touch the MRU
        entry.  The prefetcher's stream-table entry is read once and
        written back once.  This is the hot path of the leaf-chain
        scans and of ``profile_leaf_stage`` over large samples.
        """
        import numpy as np

        idx = np.asarray(line_indices, dtype=np.int64).reshape(-1)
        n = len(idx)
        if n == 0:
            return 0
        ls = self.line_size
        # bounds: validating the extremes covers every index between
        segment.address_of(int(idx.min()) * ls)
        segment.address_of(int(idx.max()) * ls + ls - 1)
        addrs = ((segment.base + idx * ls) // ls) * ls
        vp_arr = addrs // segment.page_size
        line_arr = addrs // ls
        vpages = vp_arr.tolist()
        lines = line_arr.tolist()
        seg_last_line = (segment.end - 1) // ls
        kind = segment.page_kind
        base = segment.base

        tlb = self.tlb
        small = kind is PageKind.SMALL
        pool = tlb._small if small else tlb._huge
        pool_entries = pool._entries
        pool_cap = pool.capacity
        tlb_hits = 0
        tlb_misses = 0

        cache = self.cache
        sets = cache._sets
        num_sets = cache.num_sets
        assoc = cache.associativity
        misses = 0

        prefetcher = self.prefetcher
        prefetches = 0
        if prefetcher is not None:
            streams = prefetcher._streams
            degree = prefetcher.degree
            last = streams.get(base)
            if last is None:
                streams[base] = -1  # placed now; the value lands below
                while len(streams) > prefetcher.max_streams:
                    streams.popitem(last=False)
        else:
            degree = 0
            last = None

        runs = [0]
        runs += (np.flatnonzero(np.diff(line_arr) != 1) + 1).tolist()
        runs.append(n)
        if degree < num_sets:
            # TLB pass: one pool probe per page stretch
            stretch = [0]
            stretch += (np.flatnonzero(np.diff(vp_arr) != 0) + 1).tolist()
            stretch.append(n)
            for a, b in zip(stretch, stretch[1:]):
                vp = vpages[a]
                if vp in pool_entries:
                    pool_entries.move_to_end(vp)
                    tlb_hits += b - a
                else:
                    if len(pool_entries) >= pool_cap:
                        pool_entries.popitem(last=False)
                    pool_entries[vp] = None
                    tlb_misses += 1
                    tlb_hits += b - a - 1
            # cache + prefetch pass, one run at a time; in-run
            # prefetch fills are deferred to each line's own demand
            # (exact while degree < num_sets — see the docstring)
            for a, b in zip(runs, runs[1:]):
                s = lines[a]
                e = lines[b - 1]
                if prefetcher is not None:
                    # first line whose access confirms the stream
                    conf = s if (last is not None and s == last + 1) else s + 1
                else:
                    conf = e + 1
                # accesses at/before the confirming one can miss ...
                for x in range(s, min(conf, e) + 1):
                    cache_set = sets[x % num_sets]
                    if x in cache_set:
                        cache_set.move_to_end(x)
                    else:
                        if len(cache_set) >= assoc:
                            cache_set.popitem(last=False)
                        cache_set[x] = None
                        misses += 1
                # ... every later line was prefetched just in time: a
                # non-resident one was one prefetch issue, never a
                # demand miss (the fill is not demand traffic — no
                # demand counters, and a resident target keeps its
                # LRU position)
                for x in range(min(conf, e) + 1, e + 1):
                    cache_set = sets[x % num_sets]
                    if x in cache_set:
                        cache_set.move_to_end(x)
                    else:
                        if len(cache_set) >= assoc:
                            cache_set.popitem(last=False)
                        cache_set[x] = None
                        prefetches += 1
                if degree and conf <= e:
                    # the stream window reaches degree lines past the
                    # run's end; fill the non-resident tail
                    for x in range(max(conf + 1, e + 1),
                                   min(e + degree, seg_last_line) + 1):
                        cache_set = sets[x % num_sets]
                        if x not in cache_set:
                            if len(cache_set) >= assoc:
                                cache_set.popitem(last=False)
                            cache_set[x] = None
                            prefetches += 1
                last = e
        else:
            prev_vp = -1
            for vp, line in zip(vpages, lines):
                if vp == prev_vp:
                    tlb_hits += 1
                elif vp in pool_entries:
                    pool_entries.move_to_end(vp)
                    tlb_hits += 1
                    prev_vp = vp
                else:
                    if len(pool_entries) >= pool_cap:
                        pool_entries.popitem(last=False)
                    pool_entries[vp] = None
                    tlb_misses += 1
                    prev_vp = vp
                cache_set = sets[line % num_sets]
                if line in cache_set:
                    cache_set.move_to_end(line)
                else:
                    if len(cache_set) >= assoc:
                        cache_set.popitem(last=False)
                    cache_set[line] = None
                    misses += 1
                if degree and last is not None and line == last + 1:
                    for ahead in range(1, degree + 1):
                        target = line + ahead
                        if target > seg_last_line:
                            break
                        target_set = sets[target % num_sets]
                        if target not in target_set:
                            if len(target_set) >= assoc:
                                target_set.popitem(last=False)
                            target_set[target] = None
                            prefetches += 1
                last = line

        if prefetcher is not None:
            streams[base] = lines[-1]
            streams.move_to_end(base)
            prefetcher.issued += prefetches

        tc = tlb.counters
        tc.tlb_hits += tlb_hits
        if small:
            tc.tlb_misses_small += tlb_misses
        else:
            tc.tlb_misses_huge += tlb_misses
        cc = cache.counters
        cc.line_accesses += n
        cc.cache_hits += n - misses
        cc.cache_misses += misses
        c = self.counters
        c.prefetches += prefetches
        c.line_accesses += n
        c.cache_hits += n - misses
        c.cache_misses += misses
        c.tlb_hits = tc.tlb_hits
        c.tlb_misses_small = tc.tlb_misses_small
        c.tlb_misses_huge = tc.tlb_misses_huge
        return misses

    def publish_metrics(self, metrics, **labels) -> None:
        """Export the access counters into a
        :class:`repro.obs.MetricsRegistry` as ``mem.*`` gauges.

        Pull-style on purpose: the touch loops are the simulator's
        hottest paths, so observability reads the accumulated counters
        on demand instead of instrumenting every access.
        """
        from repro.obs.export import publish_memory

        publish_memory(metrics, self, **labels)

    def reset_counters(self) -> None:
        """Zero all counters (keeps cache/TLB *contents* warm)."""
        self.counters.reset()
        self.tlb.counters.reset()
        self.cache.counters.reset()

    def flush(self) -> None:
        """Cold-start: empty the cache and TLB."""
        self.cache.flush()
        self.tlb.flush()
        if self.prefetcher is not None:
            self.prefetcher.reset()
