"""Facade combining allocator, TLB and cache into one memory system.

Tree implementations call :meth:`MemorySystem.touch` for every node (or
cache line) they inspect; the facade performs address translation against
the TLB model and a lookup in the LLC model, accumulating the counters
that the platform cost model later converts into time.
"""

from __future__ import annotations

import enum

from repro.memsim.allocator import PageKind, Segment, SegmentAllocator
from repro.memsim.cache import SetAssociativeCache
from repro.memsim.metrics import AccessCounters
from repro.memsim.tlb import Tlb


class PageConfig(enum.Enum):
    """The three memory-page configurations evaluated in Fig 7.

    * ``SMALL_SMALL`` — both segments on 4 KB pages.
    * ``HUGE_SMALL``  — I-segment on huge pages, L-segment on 4 KB pages.
    * ``HUGE_HUGE``   — both segments on huge pages.
    """

    SMALL_SMALL = ("small", "small")
    HUGE_SMALL = ("huge", "small")
    HUGE_HUGE = ("huge", "huge")

    @property
    def inner_kind(self) -> PageKind:
        return PageKind.SMALL if self.value[0] == "small" else PageKind.HUGE

    @property
    def leaf_kind(self) -> PageKind:
        return PageKind.SMALL if self.value[1] == "small" else PageKind.HUGE


class MemorySystem:
    """The CPU-side simulated memory hierarchy.

    Parameters mirror :class:`repro.platform.configs.CpuSpec`; a
    convenience constructor builds one directly from a spec.
    """

    def __init__(
        self,
        llc_bytes: int = 20 * 1024 * 1024 // 64,
        associativity: int = 16,
        line_size: int = 64,
        small_page: int = 4096,
        huge_page: int = 16 * 1024 * 1024,
        tlb_entries_small: int = 64,
        stlb_entries: int = 512,
        tlb_entries_huge: int = 4,
        prefetch_degree: int = 2,
    ):
        self.line_size = line_size
        self.allocator = SegmentAllocator(small_page=small_page, huge_page=huge_page)
        self.cache = SetAssociativeCache(
            llc_bytes, associativity=associativity, line_size=line_size
        )
        self.tlb = Tlb(
            entries_small=tlb_entries_small,
            stlb_entries=stlb_entries,
            entries_huge=tlb_entries_huge,
        )
        from repro.memsim.prefetch import StreamPrefetcher
        self.prefetcher = (
            StreamPrefetcher(self.cache, degree=prefetch_degree)
            if prefetch_degree > 0 else None
        )
        self.counters = AccessCounters()

    @classmethod
    def from_spec(cls, spec) -> "MemorySystem":
        """Build a memory system matching a :class:`CpuSpec`."""
        return cls(
            llc_bytes=spec.llc_bytes,
            line_size=spec.cache_line,
            small_page=spec.small_page,
            huge_page=spec.huge_page,
            tlb_entries_small=spec.tlb_entries_small,
            stlb_entries=spec.stlb_entries,
            tlb_entries_huge=spec.tlb_entries_huge,
        )

    def allocate(self, name: str, size: int, page_kind: PageKind) -> Segment:
        return self.allocator.allocate(name, size, page_kind)

    def touch(self, segment: Segment, offset: int, nbytes: int = 64) -> int:
        """Access ``nbytes`` at ``offset`` inside ``segment``.

        Returns the number of cache misses incurred.  Each touched line
        is translated through the TLB and looked up in the LLC.
        """
        if nbytes <= 0:
            raise ValueError("access size must be positive")
        start = segment.address_of(offset)
        # address_of validates the start; validate the end as well
        segment.address_of(offset + nbytes - 1)
        first_line = start // self.line_size
        last_line = (start + nbytes - 1) // self.line_size
        seg_last_line = (segment.end - 1) // self.line_size
        misses = 0
        for line in range(first_line, last_line + 1):
            addr = line * self.line_size
            self.tlb.translate(addr // segment.page_size, segment.page_kind)
            if not self.cache.access(addr):
                misses += 1
            if self.prefetcher is not None:
                self.counters.prefetches += self.prefetcher.observe(
                    segment.base, line, seg_last_line
                )
        touched = last_line - first_line + 1
        self.counters.line_accesses += touched
        self.counters.cache_hits += touched - misses
        self.counters.cache_misses += misses
        self.counters.tlb_hits = self.tlb.counters.tlb_hits
        self.counters.tlb_misses_small = self.tlb.counters.tlb_misses_small
        self.counters.tlb_misses_huge = self.tlb.counters.tlb_misses_huge
        return misses

    def touch_line(self, segment: Segment, line_index: int) -> int:
        """Access the ``line_index``-th cache line of ``segment``."""
        return self.touch(segment, line_index * self.line_size, self.line_size)

    def touch_lines(self, segment: Segment, line_indices) -> int:
        """Access many cache lines of ``segment``; returns total misses.

        Counter-identical to calling :meth:`touch_line` per index in
        order (the cache and TLB are stateful LRU models, so the walk
        itself cannot be collapsed), but the address arithmetic is
        vectorised and the counters are updated once per batch instead
        of once per line — the profiling hot path of
        ``profile_leaf_stage`` over large samples.
        """
        import numpy as np

        idx = np.asarray(line_indices, dtype=np.int64).reshape(-1)
        n = len(idx)
        if n == 0:
            return 0
        ls = self.line_size
        # bounds: validating the extremes covers every index between
        segment.address_of(int(idx.min()) * ls)
        segment.address_of(int(idx.max()) * ls + ls - 1)
        addrs = ((segment.base + idx * ls) // ls) * ls
        vpages = addrs // segment.page_size
        seg_last_line = (segment.end - 1) // ls
        lines = addrs // ls
        kind = segment.page_kind
        base = segment.base
        translate = self.tlb.translate
        access = self.cache.access
        prefetcher = self.prefetcher
        misses = 0
        prefetches = 0
        if prefetcher is None:
            for vp, addr in zip(vpages.tolist(), addrs.tolist()):
                translate(vp, kind)
                if not access(addr):
                    misses += 1
        else:
            observe = prefetcher.observe
            for vp, addr, line in zip(
                vpages.tolist(), addrs.tolist(), lines.tolist()
            ):
                translate(vp, kind)
                if not access(addr):
                    misses += 1
                prefetches += observe(base, line, seg_last_line)
        c = self.counters
        c.prefetches += prefetches
        c.line_accesses += n
        c.cache_hits += n - misses
        c.cache_misses += misses
        c.tlb_hits = self.tlb.counters.tlb_hits
        c.tlb_misses_small = self.tlb.counters.tlb_misses_small
        c.tlb_misses_huge = self.tlb.counters.tlb_misses_huge
        return misses

    def publish_metrics(self, metrics, **labels) -> None:
        """Export the access counters into a
        :class:`repro.obs.MetricsRegistry` as ``mem.*`` gauges.

        Pull-style on purpose: the touch loops are the simulator's
        hottest paths, so observability reads the accumulated counters
        on demand instead of instrumenting every access.
        """
        from repro.obs.export import publish_memory

        publish_memory(metrics, self, **labels)

    def reset_counters(self) -> None:
        """Zero all counters (keeps cache/TLB *contents* warm)."""
        self.counters.reset()
        self.tlb.counters.reset()
        self.cache.counters.reset()

    def flush(self) -> None:
        """Cold-start: empty the cache and TLB."""
        self.cache.flush()
        self.tlb.flush()
        if self.prefetcher is not None:
            self.prefetcher.reset()
