"""Key/value dataset and query generators (paper section 6.1).

The evaluation datasets are uniformly distributed unique keys in
``[0, MAX)``; after the tree is built the pairs are randomly permuted
with the Knuth shuffle and replayed as the search input.  The skew
experiment (Fig 12) additionally draws query values from Normal, Gamma
and Zipf distributions over ``[0, 1]``, linearly mapped to the key
domain.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.keys import key_spec


def generate_dataset(
    n: int,
    key_bits: int = 64,
    seed: int = 42,
) -> Tuple[np.ndarray, np.ndarray]:
    """Unique uniform random keys plus random values.

    Keys lie strictly below the sentinel (``2**bits - 1``).  Returns
    ``(keys, values)`` in *unsorted* (generation) order.
    """
    if n <= 0:
        raise ValueError("dataset size must be positive")
    spec = key_spec(key_bits)
    rng = np.random.default_rng(seed)
    if key_bits == 64:
        # rejection-free: draw 64-bit values and deduplicate (collisions
        # are vanishingly rare below ~2**32 keys)
        keys = rng.integers(0, spec.max_value, size=int(n * 1.01) + 16,
                            dtype=np.uint64)
        keys = np.unique(keys)[:n]
        while len(keys) < n:
            extra = rng.integers(0, spec.max_value, size=n, dtype=np.uint64)
            keys = np.unique(np.concatenate([keys, extra]))[:n]
    else:
        if n >= spec.max_value:
            raise ValueError("dataset larger than the 32-bit key domain")
        keys = rng.choice(
            spec.max_value - 1, size=n, replace=False
        ).astype(spec.dtype)
    rng.shuffle(keys)
    values = rng.integers(
        0, spec.max_value, size=n, dtype=spec.dtype, endpoint=False
    )
    return keys.astype(spec.dtype), values


def knuth_shuffle(array: np.ndarray, seed: int = 7) -> np.ndarray:
    """The Fisher-Yates/Knuth shuffle [Knuth, TAOCP vol 2].

    Explicit implementation (not ``rng.shuffle``) as the paper cites
    the algorithm; returns a shuffled copy.
    """
    out = np.array(array, copy=True)
    rng = np.random.default_rng(seed)
    n = len(out)
    # vectorized Fisher-Yates: draw all swap targets first
    targets = (rng.random(n - 1) * np.arange(n, 1, -1)).astype(np.int64)
    for i in range(n - 1):
        j = i + int(targets[i])
        out[i], out[j] = out[j], out[i]
    return out


def _uniform(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.random(n)


def _normal(rng: np.random.Generator, n: int) -> np.ndarray:
    """Normal(mu=0.5, sigma^2=0.125), clipped into [0, 1]."""
    return np.clip(rng.normal(0.5, np.sqrt(0.125), n), 0.0, 1.0)


def _gamma(rng: np.random.Generator, n: int) -> np.ndarray:
    """Gamma(k=3, theta=3), rescaled into [0, 1]."""
    raw = rng.gamma(3.0, 3.0, n)
    return raw / max(raw.max(), 1e-9)


def _zipf(rng: np.random.Generator, n: int) -> np.ndarray:
    """Zipf(alpha=2), rescaled into [0, 1] — the heavy-skew case."""
    raw = rng.zipf(2.0, n).astype(np.float64)
    # the tail can overflow to inf; clamp before normalizing
    raw = np.clip(raw, 1.0, 1e12)
    return raw / max(raw.max(), 1e-9)


DISTRIBUTIONS: Dict[str, callable] = {
    "uniform": _uniform,
    "normal": _normal,
    "gamma": _gamma,
    "zipf": _zipf,
}


def generate_skewed_queries(
    distribution: str,
    n: int,
    key_bits: int = 64,
    seed: int = 11,
) -> np.ndarray:
    """Query keys drawn from a named distribution over the key domain.

    Values in ``[0, 1]`` are linearly mapped to ``[0, MAX)``
    (section 6.3, Fig 12).  The returned keys are *probe* keys: they
    need not exist in the dataset.
    """
    if distribution not in DISTRIBUTIONS:
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"expected one of {sorted(DISTRIBUTIONS)}"
        )
    spec = key_spec(key_bits)
    rng = np.random.default_rng(seed)
    unit = DISTRIBUTIONS[distribution](rng, n)
    # stay strictly below the sentinel: float64 rounding would push
    # unit == 1.0 to exactly 2**bits, an invalid cast
    scaled = np.clip(unit, 0.0, 1.0) * float(spec.max_value) * (1 - 2**-32)
    return scaled.astype(spec.dtype)
