"""Workload generation: datasets, query streams, distributions, traces."""

from repro.workloads.generators import (
    DISTRIBUTIONS,
    generate_dataset,
    generate_skewed_queries,
    knuth_shuffle,
)
from repro.workloads.queries import (
    MIX_RATIOS,
    SCAN_LENGTH_DISTS,
    QueryMix,
    make_drifting_scan_queries,
    make_insert_batch,
    make_point_queries,
    make_range_queries,
    make_ratio_mix,
    make_scan_queries,
    make_update_mix,
)
from repro.workloads.trace import (
    DriftPhase,
    OpKind,
    ReplayStats,
    WorkloadTrace,
    replay_trace,
    synthesize_drift_lookups,
    synthesize_trace,
)

__all__ = [
    "DISTRIBUTIONS",
    "generate_dataset",
    "generate_skewed_queries",
    "knuth_shuffle",
    "QueryMix",
    "make_point_queries",
    "make_range_queries",
    "make_insert_batch",
    "make_scan_queries",
    "make_drifting_scan_queries",
    "make_update_mix",
    "make_ratio_mix",
    "MIX_RATIOS",
    "SCAN_LENGTH_DISTS",
    "DriftPhase",
    "OpKind",
    "ReplayStats",
    "WorkloadTrace",
    "replay_trace",
    "synthesize_drift_lookups",
    "synthesize_trace",
]
