"""Query-stream builders for the evaluation workloads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.keys import key_spec
from repro.workloads.generators import knuth_shuffle


def make_point_queries(keys: np.ndarray, n: int, seed: int = 7) -> np.ndarray:
    """A stream of ``n`` point queries over existing keys.

    The paper permutes the inserted pairs with the Knuth shuffle and
    replays them; for ``n`` beyond the dataset size the stream wraps.
    For datasets much larger than the stream, a uniform sample is drawn
    first and the (quadratic-in-Python) explicit shuffle runs on the
    sample only — the stream is equidistributed either way.
    """
    keys = np.asarray(keys)
    if len(keys) > 4 * n:
        rng = np.random.default_rng(seed)
        keys = rng.choice(keys, size=2 * n, replace=False)
    shuffled = knuth_shuffle(keys, seed=seed)
    if n <= len(shuffled):
        return shuffled[:n]
    reps = -(-n // len(shuffled))
    return np.tile(shuffled, reps)[:n]


def make_range_queries(
    keys: np.ndarray, n: int, matches_per_query: int, seed: int = 9
) -> List[Tuple[int, int]]:
    """Range queries each matching ``matches_per_query`` stored keys.

    Built from the sorted key array: a window of ``matches`` consecutive
    keys becomes the ``[lo, hi]`` bounds (Fig 17's experiment shape).
    """
    if matches_per_query < 1:
        raise ValueError("a range query must match at least one key")
    sk = np.sort(np.asarray(keys))
    if matches_per_query > len(sk):
        raise ValueError("matches_per_query exceeds the dataset size")
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, len(sk) - matches_per_query + 1, size=n)
    return [
        (int(sk[s]), int(sk[s + matches_per_query - 1])) for s in starts
    ]


#: supported scan-length distributions for :func:`make_scan_queries`
SCAN_LENGTH_DISTS = ("fixed", "uniform", "geometric")


def make_scan_queries(
    keys: np.ndarray,
    n: int,
    mean_length: int,
    dist: str = "fixed",
    seed: int = 11,
) -> Tuple[np.ndarray, np.ndarray]:
    """``n`` range scans with a chosen scan-length distribution.

    Returns parallel ``(los, his)`` arrays, the shape the engines'
    ``run_scans`` entry points take.  Each scan's bounds are a window
    of stored keys, so scan ``i`` matches exactly ``lengths[i]`` keys:

    * ``"fixed"`` — every scan matches ``mean_length`` keys;
    * ``"uniform"`` — lengths uniform on ``[1, 2 * mean_length - 1]``;
    * ``"geometric"`` — geometric with mean ``mean_length`` (the
      short-scan-heavy tail typical of pagination traffic).

    Lengths are clipped to the dataset size.
    """
    if mean_length < 1:
        raise ValueError("mean scan length must be at least 1")
    if dist not in SCAN_LENGTH_DISTS:
        raise ValueError(
            f"unknown scan-length dist {dist!r}; "
            f"choose from {SCAN_LENGTH_DISTS}"
        )
    sk = np.sort(np.asarray(keys))
    rng = np.random.default_rng(seed)
    if dist == "fixed":
        lengths = np.full(n, mean_length, dtype=np.int64)
    elif dist == "uniform":
        lengths = rng.integers(1, 2 * mean_length, size=n)
    else:
        lengths = rng.geometric(1.0 / mean_length, size=n)
    lengths = np.clip(lengths, 1, len(sk))
    starts = rng.integers(0, len(sk) - lengths + 1, size=n)
    los = sk[starts]
    his = sk[starts + lengths - 1]
    return los.copy(), his.copy()


def make_drifting_scan_queries(
    keys: np.ndarray,
    n: int,
    mean_length: int,
    hot_fraction: float = 0.9,
    hot_span: float = 0.05,
    drift_per_scan: float = 0.0005,
    dist: str = "fixed",
    seed: int = 19,
) -> Tuple[np.ndarray, np.ndarray]:
    """Scans concentrated on a hot key range that drifts over the stream.

    A ``hot_fraction`` share of the scans start inside a window
    covering ``hot_span`` of the sorted key space; the window's left
    edge advances by ``drift_per_scan`` (of the key space, wrapping)
    per emitted scan — the moving-hot-set shape that exercises the
    adaptive controller's window-by-window scan profiling.  The cold
    remainder starts uniformly anywhere.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be within [0, 1]")
    if not 0.0 < hot_span <= 1.0:
        raise ValueError("hot_span must be within (0, 1]")
    sk = np.sort(np.asarray(keys))
    rng = np.random.default_rng(seed)
    if dist == "fixed":
        lengths = np.full(n, mean_length, dtype=np.int64)
    elif dist == "uniform":
        lengths = rng.integers(1, 2 * mean_length, size=n)
    elif dist == "geometric":
        lengths = rng.geometric(1.0 / mean_length, size=n)
    else:
        raise ValueError(
            f"unknown scan-length dist {dist!r}; "
            f"choose from {SCAN_LENGTH_DISTS}"
        )
    lengths = np.clip(lengths, 1, len(sk))
    max_start = len(sk) - lengths  # inclusive upper start bound
    hot_left = (np.arange(n) * drift_per_scan) % 1.0
    hot_u = rng.random(n)
    hot_pos = ((hot_left + hot_u * hot_span) % 1.0 * len(sk)).astype(
        np.int64
    )
    cold_pos = rng.integers(0, len(sk), size=n)
    is_hot = rng.random(n) < hot_fraction
    starts = np.minimum(np.where(is_hot, hot_pos, cold_pos), max_start)
    los = sk[starts]
    his = sk[starts + lengths - 1]
    return los.copy(), his.copy()


def make_insert_batch(
    existing: np.ndarray, n: int, key_bits: int = 64, seed: int = 13
) -> Tuple[np.ndarray, np.ndarray]:
    """``n`` fresh (key, value) pairs disjoint from ``existing``."""
    spec = key_spec(key_bits)
    rng = np.random.default_rng(seed)
    existing_set = set(np.asarray(existing).tolist())
    out: List[int] = []
    while len(out) < n:
        draw = rng.integers(0, spec.max_value, size=2 * (n - len(out)) + 8,
                            dtype=np.uint64 if key_bits == 64 else np.uint32)
        for k in draw.tolist():
            if k not in existing_set and k < spec.max_value:
                existing_set.add(k)
                out.append(k)
                if len(out) == n:
                    break
    keys = np.asarray(out, dtype=spec.dtype)
    values = rng.integers(0, spec.max_value, size=n, dtype=spec.dtype)
    return keys, values


@dataclass(frozen=True)
class QueryMix:
    """A mixed search/update stream (appendix B.3, Fig 21).

    Deletes are optional: ``is_delete[i]`` marks op ``i`` as a delete
    (consuming the next key of ``delete_keys``); ``is_update`` keeps
    its original meaning (upsert), and an op that is neither is a
    search — so mixes built before deletes existed are unchanged.
    """

    search_keys: np.ndarray
    update_keys: np.ndarray
    update_values: np.ndarray
    #: interleaving: op[i] True means upsert, False means search/delete
    is_update: np.ndarray
    #: keys removed by delete ops, in op order (empty = no deletes)
    delete_keys: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint64)
    )
    #: op[i] True means delete; None or all-False = no deletes
    is_delete: Optional[np.ndarray] = None

    @property
    def update_ratio(self) -> float:
        if len(self.is_update) == 0:
            return 0.0
        return float(np.mean(self.is_update))

    @property
    def delete_ratio(self) -> float:
        if self.is_delete is None or len(self.is_delete) == 0:
            return 0.0
        return float(np.mean(self.is_delete))

    def __len__(self) -> int:
        return len(self.is_update)


#: paper-style read/write ratio presets (update fraction by name)
MIX_RATIOS = {"95/5": 0.05, "50/50": 0.50, "read-only": 0.0}


def make_update_mix(
    existing: np.ndarray,
    n: int,
    update_ratio: float,
    key_bits: int = 64,
    seed: int = 17,
    delete_ratio: float = 0.0,
) -> QueryMix:
    """A stream of ``n`` operations with the given update fraction.

    ``delete_ratio`` carves an additional fraction of the stream into
    deletes of *existing* keys (distinct targets, so every delete hits
    a live key); the remainder splits into fresh-key upserts
    (``update_ratio``) and searches over the existing keys.
    """
    if not 0.0 <= update_ratio <= 1.0:
        raise ValueError("update_ratio must be within [0, 1]")
    if not 0.0 <= delete_ratio <= 1.0 or update_ratio + delete_ratio > 1.0:
        raise ValueError("update_ratio + delete_ratio must be within [0, 1]")
    rng = np.random.default_rng(seed)
    n_updates = int(round(n * update_ratio))
    n_deletes = int(round(n * delete_ratio))
    n_deletes = min(n_deletes, n - n_updates, len(np.asarray(existing)))
    n_searches = n - n_updates - n_deletes
    search_keys = make_point_queries(existing, max(n_searches, 1), seed=seed)
    upd_keys, upd_vals = (
        make_insert_batch(existing, n_updates, key_bits, seed=seed + 1)
        if n_updates
        else (np.empty(0, dtype=existing.dtype),
              np.empty(0, dtype=existing.dtype))
    )
    del_keys = (
        rng.choice(np.asarray(existing), size=n_deletes, replace=False)
        if n_deletes
        else np.empty(0, dtype=np.asarray(existing).dtype)
    )
    kinds = np.concatenate([
        np.ones(n_updates, dtype=np.int8),
        np.full(n_deletes, 2, dtype=np.int8),
        np.zeros(n_searches, dtype=np.int8),
    ])
    rng.shuffle(kinds)
    return QueryMix(
        search_keys=search_keys[:n_searches],
        update_keys=upd_keys,
        update_values=upd_vals,
        is_update=kinds == 1,
        delete_keys=del_keys,
        is_delete=(kinds == 2) if n_deletes else None,
    )


def make_ratio_mix(
    existing: np.ndarray,
    n: int,
    ratio: str,
    key_bits: int = 64,
    seed: int = 17,
) -> QueryMix:
    """A :class:`QueryMix` from a named read/write preset (``"95/5"``,
    ``"50/50"``, ``"read-only"``)."""
    if ratio not in MIX_RATIOS:
        raise ValueError(
            f"unknown ratio {ratio!r}; choose from {sorted(MIX_RATIOS)}"
        )
    return make_update_mix(
        existing, n, MIX_RATIOS[ratio], key_bits=key_bits, seed=seed
    )
