"""Synthetic workload traces: record, synthesize, replay.

The paper evaluates with uniform and analytically skewed query streams;
production index workloads additionally show *temporal locality* — a
hot working set that drifts over time.  Since real traces are not
available, :func:`synthesize_trace` generates the closest synthetic
equivalent: operations drawn from a sliding hot window over the key
space, with a configurable read/insert/delete/range mix.

Traces serialize to ``.npz`` (so experiments are replayable
byte-for-byte) and replay against any dynamic tree via
:func:`replay_trace`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.keys import key_spec


class OpKind(enum.IntEnum):
    LOOKUP = 0
    UPSERT = 1
    DELETE = 2
    RANGE = 3


@dataclass
class WorkloadTrace:
    """A replayable operation sequence."""

    ops: np.ndarray      # OpKind codes, int8
    keys: np.ndarray     # primary key per op
    values: np.ndarray   # value for upserts / high bound for ranges
    key_bits: int = 64

    def __post_init__(self):
        if not (len(self.ops) == len(self.keys) == len(self.values)):
            raise ValueError("trace columns must align")

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def read_ratio(self) -> float:
        if len(self.ops) == 0:
            return 0.0
        reads = np.isin(self.ops, [OpKind.LOOKUP, OpKind.RANGE])
        return float(np.mean(reads))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(path.suffix + ".npz")
        np.savez_compressed(
            path, ops=self.ops, keys=self.keys, values=self.values,
            key_bits=np.asarray([self.key_bits]),
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "WorkloadTrace":
        with np.load(Path(path)) as archive:
            return cls(
                ops=archive["ops"],
                keys=archive["keys"],
                values=archive["values"],
                key_bits=int(archive["key_bits"][0]),
            )


def synthesize_trace(
    base_keys: np.ndarray,
    n_ops: int,
    read_ratio: float = 0.9,
    delete_share: float = 0.1,
    range_share: float = 0.05,
    working_set: float = 0.05,
    drift_every: int = 1024,
    range_span: int = 16,
    key_bits: int = 64,
    seed: int = 29,
) -> WorkloadTrace:
    """A trace with a drifting hot working set.

    ``working_set`` is the fraction of the (sorted) key space that is
    hot at any moment; every ``drift_every`` operations the window
    slides, modeling daily/temporal shifts in production access
    patterns.  Writes split into upserts (fresh keys near the hot
    window) and deletes (existing hot keys) by ``delete_share``.
    """
    if not 0.0 <= read_ratio <= 1.0:
        raise ValueError("read_ratio must be in [0, 1]")
    if not 0.0 < working_set <= 1.0:
        raise ValueError("working_set must be in (0, 1]")
    spec = key_spec(key_bits)
    rng = np.random.default_rng(seed)
    sorted_keys = np.sort(np.asarray(base_keys, dtype=spec.dtype))
    n = len(sorted_keys)
    window = max(1, int(n * working_set))

    ops = np.empty(n_ops, dtype=np.int8)
    keys = np.empty(n_ops, dtype=spec.dtype)
    values = np.empty(n_ops, dtype=spec.dtype)
    window_start = 0
    for i in range(n_ops):
        if i % max(1, drift_every) == 0 and i:
            window_start = (window_start + window // 2) % max(1, n - window)
        hot_index = window_start + int(rng.integers(0, window))
        hot_index = min(hot_index, n - 1)
        hot_key = int(sorted_keys[hot_index])
        if rng.random() < read_ratio:
            if rng.random() < range_share / max(read_ratio, 1e-9):
                hi_index = min(hot_index + range_span - 1, n - 1)
                ops[i] = OpKind.RANGE
                keys[i] = hot_key
                values[i] = sorted_keys[hi_index]
            else:
                ops[i] = OpKind.LOOKUP
                keys[i] = hot_key
                values[i] = 0
        else:
            if rng.random() < delete_share:
                ops[i] = OpKind.DELETE
                keys[i] = hot_key
                values[i] = 0
            else:
                ops[i] = OpKind.UPSERT
                # fresh key adjacent to the hot region (clustered writes)
                keys[i] = min(
                    hot_key + int(rng.integers(1, 1 << 16)),
                    spec.max_value - 1,
                )
                values[i] = int(rng.integers(0, 1 << 32))
    return WorkloadTrace(ops=ops, keys=keys, values=values,
                         key_bits=key_bits)


@dataclass(frozen=True)
class DriftPhase:
    """One phase of a phased drifting lookup stream."""

    name: str
    #: operation offset of the phase within the trace
    start: int
    length: int
    #: hot fraction of the sorted key space this phase draws from
    working_set: float

    @property
    def slice(self) -> slice:
        return slice(self.start, self.start + self.length)


def synthesize_drift_lookups(
    base_keys: np.ndarray,
    phase_working_sets=(1.0, 0.02, 0.25),
    queries_per_phase: int = 32768,
    key_bits: int = 64,
    seed: int = 29,
):
    """Lookup-only trace in named phases with *known* boundaries.

    :func:`synthesize_trace` drifts continuously, which is right for
    end-to-end replay but wrong for evaluating adaptive load balancing:
    there the question is "did the controller converge to each phase's
    offline optimum?", which needs phases that hold still long enough
    to *have* an offline optimum.  Each phase draws
    ``queries_per_phase`` lookups from its own hot window (fraction
    ``working_set`` of the sorted key space, placed at a different
    region per phase), so a per-phase ``discover()`` on the phase's
    own queries is well-defined.

    Returns ``(trace, phases)`` — the trace is pure lookups, and each
    :class:`DriftPhase` carries its slice of the operation stream.
    """
    spec = key_spec(key_bits)
    rng = np.random.default_rng(seed)
    sorted_keys = np.sort(np.asarray(base_keys, dtype=spec.dtype))
    n = len(sorted_keys)
    if n == 0:
        raise ValueError("base_keys must be non-empty")
    if queries_per_phase < 1:
        raise ValueError("queries_per_phase must be >= 1")
    n_phases = len(phase_working_sets)
    parts = []
    phases = []
    for i, working_set in enumerate(phase_working_sets):
        if not 0.0 < working_set <= 1.0:
            raise ValueError("working_set must be in (0, 1]")
        window = max(1, int(n * working_set))
        span = max(1, n - window)
        window_start = (
            (i * span) // (n_phases - 1) if n_phases > 1 else 0
        )
        idx = window_start + rng.integers(0, window, size=queries_per_phase)
        parts.append(sorted_keys[np.minimum(idx, n - 1)])
        phases.append(DriftPhase(
            name=f"phase{i}", start=i * queries_per_phase,
            length=queries_per_phase, working_set=float(working_set),
        ))
    keys = np.concatenate(parts)
    trace = WorkloadTrace(
        ops=np.full(len(keys), OpKind.LOOKUP, dtype=np.int8),
        keys=keys,
        values=np.zeros(len(keys), dtype=spec.dtype),
        key_bits=key_bits,
    )
    return trace, phases


@dataclass
class ReplayStats:
    """Functional outcome of replaying one trace."""

    lookups: int = 0
    hits: int = 0
    upserts: int = 0
    deletes: int = 0
    delete_misses: int = 0
    ranges: int = 0
    range_tuples: int = 0

    @property
    def operations(self) -> int:
        return self.lookups + self.upserts + self.deletes + self.ranges

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def replay_trace(trace: WorkloadTrace, tree) -> ReplayStats:
    """Apply every trace operation to a dynamic tree, in order.

    ``tree`` needs ``lookup``/``insert``/``delete``/``range_query``
    (the regular B+-tree interface); hybrid trees replay against their
    CPU structure and re-mirror at the end.
    """
    target = getattr(tree, "cpu_tree", tree)
    stats = ReplayStats()
    for op, key, value in zip(trace.ops.tolist(), trace.keys.tolist(),
                              trace.values.tolist()):
        if op == OpKind.LOOKUP:
            stats.lookups += 1
            if target.lookup(int(key), instrument=False) is not None:
                stats.hits += 1
        elif op == OpKind.UPSERT:
            stats.upserts += 1
            target.insert(int(key), int(value))
        elif op == OpKind.DELETE:
            stats.deletes += 1
            if not target.delete(int(key)):
                stats.delete_misses += 1
        elif op == OpKind.RANGE:
            stats.ranges += 1
            stats.range_tuples += len(
                target.range_query(int(key), int(value))
            )
        else:  # pragma: no cover - trace corruption
            raise ValueError(f"unknown op code {op}")
    if hasattr(tree, "mirror_i_segment"):
        tree.mirror_i_segment()
    return stats
