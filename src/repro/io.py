"""Index persistence: save/load trees as ``.npz`` archives.

The archive stores the *logical contents* (sorted key/value pairs) plus
the structure kind and build parameters; loading bulk-builds the tree
— the approach the paper's own batch-rebuild pipeline implies for
implicit structures, and a clean round trip for all of them.  (The
regular tree's dynamic split history is not preserved: a reloaded tree
is a freshly bulk-loaded equivalent.)
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.cpu.css_tree import CssTree
from repro.cpu.fast_tree import FastTree
from repro.memsim.mainmem import MemorySystem
from repro.platform.configs import MachineConfig

_KINDS = {
    ImplicitCpuBPlusTree: "implicit-cpu",
    RegularCpuBPlusTree: "regular-cpu",
    CssTree: "css",
    FastTree: "fast",
    ImplicitHBPlusTree: "hb-implicit",
    HBPlusTree: "hb-regular",
}

#: archive format versions this module knows how to load
_SUPPORTED_VERSIONS = {"1"}


def _contents(tree):
    """(keys, values) of any supported tree, in key order."""
    if isinstance(tree, (ImplicitHBPlusTree, HBPlusTree)):
        tree = tree.cpu_tree
    if isinstance(tree, (CssTree, FastTree)):
        spec = tree.spec
        return (
            tree.sorted_keys.astype(spec.dtype, copy=True),
            tree.sorted_values.astype(spec.dtype, copy=True),
        )
    if isinstance(tree, ImplicitCpuBPlusTree):
        items = tree.items()
        spec = tree.spec
        keys = np.asarray([k for k, _v in items], dtype=spec.dtype)
        values = np.asarray([v for _k, v in items], dtype=spec.dtype)
        return keys, values
    if isinstance(tree, RegularCpuBPlusTree):
        items = list(tree.items())
        spec = tree.spec
        keys = np.asarray([k for k, _v in items], dtype=spec.dtype)
        values = np.asarray([v for _k, v in items], dtype=spec.dtype)
        return keys, values
    raise TypeError(f"cannot persist a {type(tree).__name__}")


def save_index(tree, path: Union[str, Path]) -> Path:
    """Serialize a tree's contents + build parameters to ``path``.

    The write is atomic: the archive lands in a same-directory temp
    file, is fsynced, then renamed over the target — a crash mid-save
    can leave a stray temp file but never a torn archive at ``path``.
    Returns the written path (``.npz`` appended if missing).
    """
    for cls, kind in _KINDS.items():
        if type(tree) is cls:
            break
    else:
        raise TypeError(f"cannot persist a {type(tree).__name__}")
    keys, values = _contents(tree)
    spec = tree.spec
    meta = {
        "kind": kind,
        "key_bits": spec.bits,
        "version": 1,
    }
    if kind == "implicit-cpu":
        meta["fanout"] = tree.fanout
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh, keys=keys, values=values,
                meta=np.asarray([f"{k}={v}" for k, v in meta.items()]),
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


def _parse_meta(raw) -> dict:
    meta = {}
    for entry in raw.tolist():
        k, v = str(entry).split("=", 1)
        meta[k] = v
    return meta


def build_index(
    kind: str,
    keys: np.ndarray,
    values: np.ndarray,
    *,
    key_bits: int = 64,
    fanout: Optional[int] = None,
    mem: Optional[MemorySystem] = None,
    machine: Optional[MachineConfig] = None,
    fill: float = 1.0,
):
    """Bulk-build a tree of ``kind`` (a ``_KINDS`` value) over sorted
    contents.

    This is the sort-based bottom-up rebuild path shared by
    :func:`load_index` and :mod:`repro.lifecycle` — every constructor
    here bulk-loads rather than inserting per key.
    """
    if kind == "implicit-cpu":
        kwargs = {} if fanout is None else {"fanout": fanout}
        return ImplicitCpuBPlusTree(keys, values, key_bits=key_bits,
                                    mem=mem, **kwargs)
    if kind == "regular-cpu":
        return RegularCpuBPlusTree(keys, values, key_bits=key_bits, mem=mem,
                                   fill=fill)
    if kind == "css":
        return CssTree(keys, values, key_bits=key_bits, mem=mem)
    if kind == "fast":
        return FastTree(keys, values, key_bits=key_bits, mem=mem)
    if kind == "hb-implicit":
        if machine is None:
            raise ValueError("building a hb-implicit index requires a machine")
        return ImplicitHBPlusTree(keys, values, machine=machine,
                                  key_bits=key_bits, mem=mem)
    if kind == "hb-regular":
        if machine is None:
            raise ValueError("building a hb-regular index requires a machine")
        return HBPlusTree(keys, values, machine=machine, key_bits=key_bits,
                          mem=mem, fill=fill)
    raise ValueError(f"unknown index kind {kind!r}")


def load_index(
    path: Union[str, Path],
    mem: Optional[MemorySystem] = None,
    machine: Optional[MachineConfig] = None,
    fill: float = 1.0,
):
    """Rebuild a persisted tree.

    Hybrid kinds (``hb-*``) need ``machine``; CPU kinds optionally take
    ``mem`` for instrumentation.  ``fill`` sets the big-leaf occupancy
    for the regular kinds (load at ~0.7 when updates will follow).
    Archives whose ``version`` meta is missing or unknown are rejected.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        keys = archive["keys"]
        values = archive["values"]
        meta = _parse_meta(archive["meta"])
    version = meta.get("version")
    if version is None:
        raise ValueError(f"archive {path} has no version meta")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"archive {path} has unsupported version {version!r} "
            f"(supported: {sorted(_SUPPORTED_VERSIONS)})"
        )
    kind = meta["kind"]
    try:
        return build_index(
            kind, keys, values,
            key_bits=int(meta["key_bits"]),
            fanout=int(meta["fanout"]) if "fanout" in meta else None,
            mem=mem, machine=machine, fill=fill,
        )
    except ValueError as exc:
        if "unknown index kind" in str(exc):
            raise ValueError(f"unknown index kind {kind!r} in {path}")
        raise
