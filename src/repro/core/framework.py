"""A general CPU-GPU framework for arbitrary leaf-stored trees.

The paper's second future-work direction (section 7): "develop a
general framework which enables the use of a CPU-GPU hybrid platform
for any arbitrary leaf-stored tree structure, such that using the node
structure and search/update function as input, the framework would
determine the parameters for an approach that best utilizes the
resources of both CPU and GPU."

This module implements that framework:

* :class:`LeafStoredTreeAdapter` — the interface a tree structure
  provides (inner-segment device image, CPU partial descent, GPU
  resume, leaf finish, instrumented profiles);
* adapters for the three structures in this repository — the implicit
  HB+-tree, the regular HB+-tree and the CSS-tree;
* :class:`HybridFramework` — measures per-level CPU and GPU costs for
  the *given* structure on the *given* machine and derives an execution
  :class:`HybridPlan`: pure-CPU, plain hybrid, or a load-balanced split
  (D, R) with a bucket size, whichever the cost model predicts fastest.
  ``execute`` then runs queries functionally according to the plan.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.pipeline import BucketStrategy, strategy_throughput_qps
from repro.cpu.css_tree import CssTree
from repro.gpusim.device import GpuDevice
from repro.gpusim.kernels.implicit_search import (
    implicit_search_from,
    implicit_search_vectorized,
)
from repro.gpusim.transfer import PcieLink
from repro.keys import KeySpec
from repro.platform.configs import MachineConfig
from repro.platform.costmodel import (
    BucketCosts,
    CpuCostModel,
    CpuQueryProfile,
    HYBRID_STAGE_OVERHEAD_NS,
)

BUCKET_CANDIDATES = (8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024)


class LeafStoredTreeAdapter(abc.ABC):
    """The node-structure/search interface the framework consumes."""

    #: human-readable structure name
    name: str = "leaf-stored-tree"

    #: whether the structure can resume a GPU descent from a mid-tree
    #: position (required for the load-balanced (D, R) split)
    supports_partial_descent: bool = True

    @property
    @abc.abstractmethod
    def spec(self) -> KeySpec:
        """Key width constants of the structure."""

    @property
    @abc.abstractmethod
    def height(self) -> int:
        """Number of inner (directory) levels above the leaves."""

    @abc.abstractmethod
    def cpu_descend(self, queries: np.ndarray,
                    levels: np.ndarray) -> np.ndarray:
        """Walk per-query ``levels`` inner levels on the CPU.

        Returns the per-query node positions where the GPU resumes.
        """

    @abc.abstractmethod
    def gpu_resume(self, queries: np.ndarray, start_levels: np.ndarray,
                   start_nodes: np.ndarray) -> Tuple[np.ndarray, int]:
        """Continue the descent on the GPU; returns (leaf refs, txns)."""

    @abc.abstractmethod
    def cpu_finish(self, queries: np.ndarray,
                   leaf_refs: np.ndarray) -> np.ndarray:
        """Resolve queries in the leaves; sentinel marks not-found."""

    @abc.abstractmethod
    def level_profiles(
        self, sample: np.ndarray
    ) -> Tuple[List[CpuQueryProfile], CpuQueryProfile]:
        """Instrumented per-inner-level CPU profiles plus the leaf
        profile, measured on a sample."""

    @abc.abstractmethod
    def gpu_transactions_per_query(self, sample: np.ndarray) -> float:
        """Measured device transactions per query for a full descent."""

    # -- conveniences ---------------------------------------------------

    def full_search(self, queries: np.ndarray) -> np.ndarray:
        """Plain hybrid search: GPU does every inner level."""
        q = np.asarray(queries, dtype=self.spec.dtype)
        zeros = np.zeros(len(q), dtype=np.int64)
        refs, _txn = self.gpu_resume(q, zeros, zeros)
        return self.cpu_finish(q, refs)


@dataclass
class HybridPlan:
    """The framework's decision for one structure on one machine."""

    mode: str  # "cpu-only" | "hybrid" | "balanced"
    depth: int
    ratio: float
    bucket_size: int
    buffers: int
    predicted_qps: float
    alternatives: dict = field(default_factory=dict)

    def describe(self) -> str:
        alts = ", ".join(
            f"{k}={v / 1e6:.1f}M" for k, v in sorted(self.alternatives.items())
        )
        return (
            f"{self.mode} (D={self.depth}, R={self.ratio:.2f}, "
            f"M={self.bucket_size}, buffers={self.buffers}) "
            f"-> {self.predicted_qps / 1e6:.1f} MQPS [{alts}]"
        )


class HybridFramework:
    """Plans and executes hybrid search for any adapted tree."""

    def __init__(
        self,
        adapter: LeafStoredTreeAdapter,
        machine: MachineConfig,
        sample: Optional[np.ndarray] = None,
        cpu_model: Optional[CpuCostModel] = None,
    ):
        self.adapter = adapter
        self.machine = machine
        self.cpu_model = cpu_model or CpuCostModel(machine.cpu)
        self._sample = sample
        self.plan_result: Optional[HybridPlan] = None

    # ------------------------------------------------------------------
    # measurement

    def _measure(self, sample: np.ndarray) -> None:
        profiles, leaf_profile = self.adapter.level_profiles(sample)
        model = self.cpu_model
        self.cpu_level_ns = [model.query_ns(p) for p in profiles]
        self.leaf_ns = (
            model.query_ns(leaf_profile) + HYBRID_STAGE_OVERHEAD_NS
        )
        txn_pq = self.adapter.gpu_transactions_per_query(sample)
        h = max(1, self.adapter.height)
        gpu = self.machine.gpu
        self.gpu_level_ns = [txn_pq / h * 64.0 / gpu.effective_bandwidth_gbs] * h

    # ------------------------------------------------------------------
    # cost evaluation

    def _split_times(self, depth: int, ratio: float,
                     bucket: int) -> Tuple[float, float]:
        """(Time_GPU, Time_CPU) for one bucket under a (D, R) split."""
        h = self.adapter.height
        depth = min(depth, h)
        cpu_pq = self.leaf_ns + sum(self.cpu_level_ns[:depth])
        gpu_pq = sum(self.gpu_level_ns[depth + 1:])
        if depth < h:
            cpu_pq += ratio * self.cpu_level_ns[depth]
            gpu_pq += (1.0 - ratio) * self.gpu_level_ns[depth]
        t_cpu = bucket * cpu_pq / self.cpu_model.threads
        t_gpu = self.machine.gpu.kernel_init_ns + bucket * gpu_pq
        return t_gpu, t_cpu

    def _bucket_costs(self, depth: int, ratio: float,
                      bucket: int) -> BucketCosts:
        t_gpu, t_cpu = self._split_times(depth, ratio, bucket)
        payload = self.adapter.spec.size_bytes + (8 if depth > 0 else 0)
        t1 = self.machine.pcie.transfer_ns(bucket * payload)
        t3 = self.machine.pcie.transfer_ns(bucket * 8)
        return BucketCosts(t1=t1, t2=t_gpu, t3=t3, t4=t_cpu)

    def _hybrid_qps(self, depth: int, ratio: float, bucket: int,
                    buffers: int = 2) -> float:
        costs = self._bucket_costs(depth, ratio, bucket)
        return strategy_throughput_qps(
            costs, BucketStrategy.DOUBLE_BUFFERED, bucket,
            n_buckets=32 * buffers,
        )

    def _cpu_only_qps(self) -> float:
        per_query = self.leaf_ns + sum(self.cpu_level_ns)
        return self.cpu_model.threads * 1e9 / per_query

    # ------------------------------------------------------------------
    # planning

    def plan(self) -> HybridPlan:
        """Measure, sweep the knobs, and pick the fastest mode."""
        sample = self._sample
        if sample is None:
            raise ValueError(
                "HybridFramework needs a query sample for planning; "
                "pass one at construction"
            )
        self._measure(np.asarray(sample, dtype=self.adapter.spec.dtype))
        h = self.adapter.height

        cpu_qps = self._cpu_only_qps()
        best = HybridPlan(
            mode="cpu-only", depth=h, ratio=1.0,
            bucket_size=self.machine.bucket_size, buffers=1,
            predicted_qps=cpu_qps,
        )
        alternatives = {"cpu-only": cpu_qps}
        for bucket in BUCKET_CANDIDATES:
            plain = self._hybrid_qps(0, 0.0, bucket)
            alternatives[f"hybrid@{bucket // 1024}K"] = plain
            if plain > best.predicted_qps:
                best = HybridPlan(
                    mode="hybrid", depth=0, ratio=0.0, bucket_size=bucket,
                    buffers=2, predicted_qps=plain,
                )
        # load-balanced candidates: Algorithm 1 per bucket size
        balanced_buckets = (
            BUCKET_CANDIDATES if self.adapter.supports_partial_descent
            else ()
        )
        for bucket in balanced_buckets:
            depth, ratio = self._discover(bucket)
            qps = self._hybrid_qps(depth, ratio, bucket, buffers=3)
            alternatives[f"balanced@{bucket // 1024}K"] = qps
            if qps > best.predicted_qps * 1.02 and (depth, ratio) != (0, 0.0):
                best = HybridPlan(
                    mode="balanced", depth=depth, ratio=ratio,
                    bucket_size=bucket, buffers=3, predicted_qps=qps,
                )
        best.alternatives = alternatives
        self.plan_result = best
        return best

    def _discover(self, bucket: int) -> Tuple[int, float]:
        """Algorithm 1 against the measured per-level costs."""
        h = self.adapter.height
        depth, ratio = 0, 1.0
        t_gpu, t_cpu = self._split_times(depth, ratio, bucket)
        while t_gpu > t_cpu and depth < h:
            depth += 1
            t_gpu, t_cpu = self._split_times(depth, ratio, bucket)
        ratio = 0.5
        for step in range(2, 6):
            t_gpu, t_cpu = self._split_times(depth, ratio, bucket)
            if t_gpu > t_cpu:
                ratio += 1.0 / (2 ** step)
            else:
                ratio -= 1.0 / (2 ** step)
        return depth, ratio

    # ------------------------------------------------------------------
    # execution

    def execute(self, queries: Sequence[int]) -> np.ndarray:
        """Run queries according to the current plan (functionally)."""
        if self.plan_result is None:
            self.plan()
        plan = self.plan_result
        q = np.asarray(queries, dtype=self.adapter.spec.dtype)
        h = self.adapter.height
        if plan.mode == "cpu-only":
            levels = np.full(len(q), h, dtype=np.int64)
            nodes = self.adapter.cpu_descend(q, levels)
            return self.adapter.cpu_finish(q, nodes)
        if plan.mode == "hybrid":
            return self.adapter.full_search(q)
        # balanced: Equation 4 semantics — an R fraction descends D+1
        # levels on the CPU, the rest D
        cut = int(round(plan.ratio * len(q)))
        levels = np.full(len(q), min(plan.depth + 1, h), dtype=np.int64)
        levels[cut:] = min(plan.depth, h)
        nodes = self.adapter.cpu_descend(q, levels)
        refs, _txn = self.adapter.gpu_resume(q, levels, nodes)
        return self.adapter.cpu_finish(q, refs)


# ----------------------------------------------------------------------
# adapters


class ImplicitHBAdapter(LeafStoredTreeAdapter):
    """Adapter over :class:`ImplicitHBPlusTree`."""

    name = "implicit-hb+tree"

    def __init__(self, tree: ImplicitHBPlusTree):
        self.tree = tree

    @property
    def spec(self) -> KeySpec:
        return self.tree.spec

    @property
    def height(self) -> int:
        return self.tree.height

    def cpu_descend(self, queries, levels):
        t = self.tree.cpu_tree
        q = np.asarray(queries, dtype=self.spec.dtype)
        node = np.zeros(len(q), dtype=np.int64)
        for level in range(t.height):
            active = levels > level
            if not np.any(active):
                break
            keys = t.inner_levels[level][node[active]]
            k = np.sum(keys < q[active, None], axis=1).astype(np.int64)
            next_size = (
                t.inner_levels[level + 1].shape[0]
                if level + 1 < t.height else t.num_leaves
            )
            node[active] = np.minimum(
                node[active] * t.fanout + k, next_size - 1
            )
        return node

    def gpu_resume(self, queries, start_levels, start_nodes):
        t = self.tree
        q = np.asarray(queries, dtype=self.spec.dtype)
        if t.gpu_depth == 0:
            return np.asarray(start_nodes, dtype=np.int64), 0
        leaf = implicit_search_from(
            t.iseg_buffer.array, t.level_offsets, t.level_sizes,
            t.gpu_depth, t.cpu_tree.fanout, q,
            start_levels=np.asarray(start_levels, dtype=np.int64),
            start_nodes=np.asarray(start_nodes, dtype=np.int64),
        )
        remaining = np.maximum(
            t.gpu_depth - np.asarray(start_levels, dtype=np.int64), 0
        )
        return leaf, int(np.sum(remaining))

    def cpu_finish(self, queries, leaf_refs):
        return self.tree.cpu_finish_bucket(
            np.asarray(queries, dtype=self.spec.dtype), leaf_refs
        )

    def level_profiles(self, sample):
        return _implicit_style_profiles(
            self.tree.mem, self.tree.cpu_tree, sample, self.spec
        )

    def gpu_transactions_per_query(self, sample):
        result = self.tree.gpu_search_bucket(
            np.asarray(sample, dtype=self.spec.dtype)
        )
        return result.transactions_per_query


class CssTreeAdapter(LeafStoredTreeAdapter):
    """Adapter over :class:`CssTree` — the directory mirrors to the GPU,
    the sorted data array stays in host memory."""

    name = "css-tree"

    def __init__(self, tree: CssTree, machine: MachineConfig):
        self.tree = tree
        self.machine = machine
        self.device = GpuDevice(machine.gpu)
        self.link = PcieLink(machine.pcie)
        self._mirror()

    def _mirror(self) -> None:
        t = self.tree
        parts, offsets, sizes = [], [], []
        elem = 0
        for level in t.directory:
            flat = level.reshape(-1)
            offsets.append(elem)
            sizes.append(flat.size)
            parts.append(flat)
            elem += flat.size
        if parts:
            image = np.concatenate(parts)
        else:
            image = np.full(t.fanout, t.spec.max_value, dtype=t.spec.dtype)
            offsets, sizes = [0], [t.fanout]
        self.level_offsets, self.level_sizes = offsets, sizes
        self.link.to_device(self.device.memory, "css_dir", image)
        self.dir_buffer = self.device.memory.get("css_dir")

    @property
    def spec(self) -> KeySpec:
        return self.tree.spec

    @property
    def height(self) -> int:
        return self.tree.height

    def cpu_descend(self, queries, levels):
        t = self.tree
        q = np.asarray(queries, dtype=self.spec.dtype)
        node = np.zeros(len(q), dtype=np.int64)
        for level in range(t.height):
            active = levels > level
            if not np.any(active):
                break
            keys = t.directory[level][node[active]]
            k = np.sum(keys < q[active, None], axis=1).astype(np.int64)
            next_size = (
                t.directory[level + 1].shape[0]
                if level + 1 < t.height else t.num_runs
            )
            node[active] = np.minimum(
                node[active] * t.fanout + k, next_size - 1
            )
        return node

    def gpu_resume(self, queries, start_levels, start_nodes):
        t = self.tree
        q = np.asarray(queries, dtype=self.spec.dtype)
        if t.height == 0:
            return np.asarray(start_nodes, dtype=np.int64), 0
        run = implicit_search_from(
            self.dir_buffer.array, self.level_offsets, self.level_sizes,
            t.height, t.fanout, q,
            start_levels=np.asarray(start_levels, dtype=np.int64),
            start_nodes=np.asarray(start_nodes, dtype=np.int64),
        )
        remaining = np.maximum(
            t.height - np.asarray(start_levels, dtype=np.int64), 0
        )
        return np.minimum(run, t.num_runs - 1), int(np.sum(remaining))

    def cpu_finish(self, queries, leaf_refs):
        t = self.tree
        q = np.asarray(queries, dtype=self.spec.dtype)
        run = np.minimum(np.asarray(leaf_refs, dtype=np.int64),
                         t.num_runs - 1)
        lo = run * t.fanout
        idx = lo[:, None] + np.arange(t.fanout)
        idx = np.minimum(idx, t.num_tuples - 1)
        rows = t.sorted_keys[idx]
        pos = np.sum(rows < q[:, None], axis=1)
        pos_c = np.minimum(pos, t.fanout - 1)
        flat = np.minimum(lo + pos_c, t.num_tuples - 1)
        found = t.sorted_keys[flat] == q
        out = np.full(len(q), self.spec.max_value, dtype=self.spec.dtype)
        out[found] = t.sorted_values[flat[found]]
        return out

    def level_profiles(self, sample):
        return _css_profiles(self.tree, sample)

    def gpu_transactions_per_query(self, sample):
        q = np.asarray(sample, dtype=self.spec.dtype)
        if self.tree.height == 0:
            return 0.0
        _leaf, txns = implicit_search_vectorized(
            self.dir_buffer.array, self.level_offsets, self.level_sizes,
            self.tree.height, self.tree.fanout, q,
            teams_per_warp=max(
                1, self.machine.gpu.warp_size // self.spec.gpu_threads_per_query
            ),
        )
        return txns / max(1, len(q))


class RegularHBAdapter(LeafStoredTreeAdapter):
    """Adapter over the regular :class:`HBPlusTree`.

    The regular tree's 3-step node search has no sub-tree resume path in
    this implementation, so the framework plans it between cpu-only and
    plain-hybrid modes (depth 0 only)."""

    name = "regular-hb+tree"
    supports_partial_descent = False

    def __init__(self, tree: HBPlusTree):
        self.tree = tree

    @property
    def spec(self) -> KeySpec:
        return self.tree.spec

    @property
    def height(self) -> int:
        return self.tree.cpu_tree.height

    def cpu_descend(self, queries, levels):
        # full descent only (used by cpu-only mode): returns leaf codes
        t = self.tree.cpu_tree
        q = np.asarray(queries, dtype=self.spec.dtype)
        node = np.full(len(q), t.root, dtype=np.int64)
        for level in range(t.height - 1, 0, -1):
            keys = t.upper.keys[node]
            slot = np.sum(keys < q[:, None], axis=1)
            slot = np.minimum(slot, np.maximum(t.upper.size[node] - 1, 0))
            node = t.upper.refs[node, slot].astype(np.int64)
        keys = t.last.keys[node]
        line = np.sum(keys < q[:, None], axis=1)
        line = np.minimum(line, np.maximum(t.last.size[node] - 1, 0))
        return node * t.fanout + line

    def gpu_resume(self, queries, start_levels, start_nodes):
        if np.any(np.asarray(start_levels) > 0):
            raise NotImplementedError(
                "the regular HB+-tree supports only full GPU descents"
            )
        result = self.tree.gpu_search_bucket(
            np.asarray(queries, dtype=self.spec.dtype)
        )
        return result.codes, result.transactions

    def cpu_finish(self, queries, leaf_refs):
        return self.tree.cpu_finish_bucket(
            np.asarray(queries, dtype=self.spec.dtype), leaf_refs
        )

    def level_profiles(self, sample):
        tree = self.tree.cpu_tree
        mem = self.tree.mem
        q = np.asarray(sample, dtype=self.spec.dtype)
        tree._ensure_segments()
        kpl = self.spec.keys_per_line
        mem.reset_counters()
        profiles: List[CpuQueryProfile] = []
        node = np.full(len(q), tree.root, dtype=np.int64)
        for level in range(tree.height - 1, -1, -1):
            pool = tree.last if level == 0 else tree.upper
            keys = pool.keys[node]
            slot = np.sum(keys < q[:, None], axis=1)
            slot = np.minimum(slot, np.maximum(pool.size[node] - 1, 0))
            before = mem.counters.cache_misses
            for n, g in zip(node.tolist(), (slot // kpl).tolist()):
                tree._touch_inner(level, int(n), int(g))
            misses = (mem.counters.cache_misses - before) / len(q)
            profiles.append(CpuQueryProfile(
                lines=3.0, misses=misses, tlb_small=0.0, tlb_huge=0.0,
                node_searches=2.0,
            ))
            if level == 0:
                lines = slot
                before = mem.counters.cache_misses
                for n, ln in zip(node.tolist(), lines.tolist()):
                    tree._touch_leaf_line(int(n), int(ln))
                leaf_misses = (mem.counters.cache_misses - before) / len(q)
            else:
                node = pool.refs[node, slot].astype(np.int64)
        leaf = CpuQueryProfile(
            lines=1.0, misses=leaf_misses, tlb_small=0.5, tlb_huge=0.0,
            node_searches=1.0,
        )
        return profiles, leaf

    def gpu_transactions_per_query(self, sample):
        result = self.tree.gpu_search_bucket(
            np.asarray(sample, dtype=self.spec.dtype)
        )
        return result.transactions_per_query


# ----------------------------------------------------------------------
# shared instrumented measurement for implicit-style structures


def _implicit_style_profiles(mem, tree, sample, spec):
    q = np.asarray(sample, dtype=spec.dtype)
    mem.reset_counters()
    profiles: List[CpuQueryProfile] = []
    node = np.zeros(len(q), dtype=np.int64)
    for level in range(tree.height):
        offset = tree._level_line_offset(level)
        before = mem.counters.cache_misses
        for n in node.tolist():
            mem.touch_line(tree.i_segment, offset + int(n))
        misses = (mem.counters.cache_misses - before) / len(q)
        profiles.append(CpuQueryProfile(
            lines=1.0, misses=misses, tlb_small=0.0, tlb_huge=0.0,
            node_searches=1.0,
        ))
        keys = tree.inner_levels[level][node]
        k = np.sum(keys < q[:, None], axis=1).astype(np.int64)
        next_size = (
            tree.inner_levels[level + 1].shape[0]
            if level + 1 < tree.height else tree.num_leaves
        )
        node = np.minimum(node * tree.fanout + k, next_size - 1)
    before = mem.counters.cache_misses
    tlb_before = mem.counters.tlb_misses_small
    for n in node.tolist():
        mem.touch_line(tree.l_segment, int(n))
    leaf = CpuQueryProfile(
        lines=1.0,
        misses=(mem.counters.cache_misses - before) / len(q),
        tlb_small=(mem.counters.tlb_misses_small - tlb_before) / len(q),
        tlb_huge=0.0,
        node_searches=1.0,
    )
    return profiles, leaf


def _css_profiles(tree: CssTree, sample):
    mem = tree.mem
    if mem is None:
        raise ValueError("CssTree must be built with a MemorySystem")
    q = np.asarray(sample, dtype=tree.spec.dtype)
    mem.reset_counters()
    profiles: List[CpuQueryProfile] = []
    node = np.zeros(len(q), dtype=np.int64)
    for level in range(tree.height):
        offset = tree._level_line_offset(level)
        before = mem.counters.cache_misses
        for n in node.tolist():
            mem.touch_line(tree.i_segment, offset + int(n))
        misses = (mem.counters.cache_misses - before) / len(q)
        profiles.append(CpuQueryProfile(
            lines=1.0, misses=misses, tlb_small=0.0, tlb_huge=0.0,
            node_searches=1.0,
        ))
        keys = tree.directory[level][node]
        k = np.sum(keys < q[:, None], axis=1).astype(np.int64)
        next_size = (
            tree.directory[level + 1].shape[0]
            if level + 1 < tree.height else tree.num_runs
        )
        node = np.minimum(node * tree.fanout + k, next_size - 1)
    before = mem.counters.cache_misses
    tlb_before = mem.counters.tlb_misses_small
    pair = 2 * tree.spec.size_bytes
    for n in node.tolist():
        lo = int(n) * tree.fanout
        hi = min(lo + tree.fanout, tree.num_tuples)
        mem.touch(tree.l_segment, lo * pair, max(pair, (hi - lo) * pair))
    leaf = CpuQueryProfile(
        lines=2.0,
        misses=(mem.counters.cache_misses - before) / len(q),
        tlb_small=(mem.counters.tlb_misses_small - tlb_before) / len(q),
        tlb_huge=0.0,
        node_searches=1.0,
    )
    return profiles, leaf
