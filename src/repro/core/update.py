"""Batch update execution for the regular HB+-tree (paper section 5.6).

Two methods with a batch-size-dependent trade-off (Figs 13-14):

* **asynchronous** — updates run in main memory in parallel groups of
  16K.  Each logical thread descends to the last-level inner node,
  takes that node's lock and resolves the update in place; queries that
  would split or merge a node are deferred to a single-threaded pass
  (thanks to the 256-entry big leaves this is <1% of updates).  When
  the whole batch is done, the *entire* I-segment transfers to GPU
  memory once.
* **synchronized** — a single *modifying* thread executes updates and
  enqueues every modified inner node; a *synchronizing* thread streams
  each node's 1 + 2K cache lines to the GPU mirror concurrently.
  Per-node pushes ride an open copy stream, so their cost is dominated
  by bandwidth, but the method cannot amortize like the bulk transfer —
  hence the crossover: synchronized wins for small batches, asynchronous
  for large ones.

Both methods are *functionally* executed against the real tree (every
insert/delete mutates it and the GPU mirror ends up consistent); the
thread-level parallelism is modeled in time, with lock conflicts and
deferrals counted from the actual access pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hbtree import HBPlusTree
from repro.faults import FaultError
from repro.platform.costmodel import CpuCostModel, CpuQueryProfile

#: group size of the asynchronous method (section 5.6)
ASYNC_GROUP_SIZE = 16 * 1024

#: parallel speedup of the locked multi-threaded async modify phase —
#: the paper measures 3x over single-threaded (Fig 13a); lock and cache
#: coherence traffic, not core count, is the limit
ASYNC_PARALLEL_SPEEDUP = 3.0

#: per-update slowdown of lock acquisition in the async method
LOCK_OVERHEAD_FACTOR = 1.6

#: per-node push overhead on the synchronizing thread's open stream
#: (request bookkeeping; the stream amortizes the big T_init)
SYNC_NODE_OVERHEAD_NS = 40.0


@dataclass
class UpdateStats:
    """Result of applying one update batch."""

    applied: int = 0
    deferred: int = 0
    lock_acquisitions: int = 0
    lock_conflicts: int = 0
    modify_ns: float = 0.0
    transfer_ns: float = 0.0
    synced_nodes: int = 0
    #: per-node pushes aborted by an injected fault; each one forces
    #: the end-of-batch full mirror rebuild that restores consistency
    sync_faults: int = 0

    @property
    def total_ns(self) -> float:
        return self.modify_ns + self.transfer_ns

    @property
    def deferred_fraction(self) -> float:
        total = self.applied + self.deferred
        return self.deferred / total if total else 0.0

    def throughput_qps(self, include_transfer: bool = True) -> float:
        total = self.applied + self.deferred
        t = self.total_ns if include_transfer else self.modify_ns
        if t <= 0:
            # empty/zero-cost batches report 0.0, not inf — the same
            # convention as the pipeline/engine throughput metrics, so
            # downstream aggregation (means, JSON) never sees inf
            return 0.0
        return total * 1e9 / t


@dataclass
class ImplicitRebuildStats:
    """Phase breakdown of an implicit HB+-tree update (Fig 15)."""

    l_segment_ns: float
    i_segment_ns: float
    transfer_ns: float

    @property
    def total_ns(self) -> float:
        return self.l_segment_ns + self.i_segment_ns + self.transfer_ns


def _measure_update_cost_ns(tree: HBPlusTree, sample_keys: np.ndarray) -> float:
    """Per-update cost of one thread: descend + leaf modification.

    Measured by instrumented descents over a sample, converted by the
    cost model without software pipelining (updates are dependent
    operations and cannot be pipelined like lookups).
    """
    cpu_tree = tree.cpu_tree
    mem = tree.mem
    mem.reset_counters()
    for key in sample_keys.tolist():
        cpu_tree.lookup(int(key), instrument=True)
    counters = mem.counters
    profile = CpuQueryProfile.from_counters(
        counters, node_searches_per_query=2.0 * cpu_tree.height + 1
    )
    model = CpuCostModel(tree.machine.cpu, pipeline_len=1, threads=1)
    # leaf modification: shifting half a big leaf on average (write
    # bandwidth), plus routing-key maintenance
    shift_bytes = cpu_tree.leaves.capacity_pairs * tree.spec.size_bytes
    shift_ns = shift_bytes / tree.machine.cpu.mem_bandwidth_gbs
    return model.query_ns(profile) + shift_ns


class AsyncBatchUpdater:
    """The asynchronous parallel update method."""

    def __init__(self, tree: HBPlusTree, threads: Optional[int] = None):
        self.tree = tree
        self.threads = threads if threads is not None else tree.machine.cpu.threads

    def apply(
        self,
        keys: Sequence[int],
        values: Sequence[int],
        deletes: Sequence[int] = (),
        transfer: bool = True,
    ) -> UpdateStats:
        """Apply a batch of upserts (and optional deletes)."""
        keys = np.asarray(keys, dtype=self.tree.spec.dtype)
        values = np.asarray(values, dtype=self.tree.spec.dtype)
        deletes = np.asarray(deletes, dtype=self.tree.spec.dtype)
        stats = UpdateStats()
        cpu_tree = self.tree.cpu_tree
        cost_sample = keys[: min(len(keys), 512)]
        per_update_ns = (
            _measure_update_cost_ns(self.tree, cost_sample) if len(keys) else 0.0
        )

        spec = self.tree.spec
        op_kind = np.concatenate([
            np.zeros(len(keys), dtype=np.int8),
            np.ones(len(deletes), dtype=np.int8),
        ])
        op_key = np.concatenate([keys, deletes])
        op_val = np.concatenate([values, np.zeros(len(deletes), dtype=spec.dtype)])
        for start in range(0, len(op_key), ASYNC_GROUP_SIZE):
            gk = op_key[start: start + ASYNC_GROUP_SIZE]
            gkind = op_kind[start: start + ASYNC_GROUP_SIZE]
            gv = op_val[start: start + ASYNC_GROUP_SIZE]
            # classify the whole group in one vectorised pass: batch
            # descent + batch presence check + projected leaf occupancy
            # replace the former per-op descend/lookup pair
            nodes, _lines = cpu_tree.descend_batch(gk)
            present = cpu_tree.lookup_batch(gk) != spec.max_value
            # live occupancy, not raw extent: on a gapped tree the
            # extent includes interleaved gaps and would over-defer
            sizes0 = cpu_tree.leaf_occupancy(nodes)
            _u, first_idx = np.unique(gk, return_index=True)
            is_first = np.zeros(len(gk), dtype=bool)
            is_first[first_idx] = True
            is_up = gkind == 0
            is_new = is_up & ~present & is_first
            # per-op projected leaf size: starting occupancy plus the
            # net effect of every earlier op in the group on that leaf
            # (grouped exclusive cumsum over the op order)
            delta = is_new.astype(np.int64)
            delta -= (~is_up & present).astype(np.int64)
            order = np.argsort(nodes, kind="stable")
            sn, sd = nodes[order], delta[order]
            csum = np.cumsum(sd)
            newrun = np.r_[True, sn[1:] != sn[:-1]]
            run_id = np.cumsum(newrun) - 1
            run_start = np.flatnonzero(newrun)
            base = np.where(run_start > 0, csum[run_start - 1], 0)
            prior = np.empty(len(gk), dtype=np.int64)
            prior[order] = csum - sd - base[run_id]
            projected = sizes0 + prior
            causes_split = is_new & (
                projected >= cpu_tree.leaves.capacity_pairs
            )
            causes_merge = ~is_up & (projected <= 1)
            deferred_mask = causes_split | causes_merge
            keep = np.flatnonzero(~deferred_mask)
            defer = np.flatnonzero(deferred_mask)
            stats.lock_acquisitions += len(keep)
            keep_up = keep[is_up[keep]]
            keep_del = keep[~is_up[keep]]
            if len(keep_del) and len(keep_up) and len(
                np.intersect1d(gk[keep_up], gk[keep_del])
            ):
                # an upsert and a delete of the same key inside one
                # group: phase reordering would flip their order, so
                # keep the original per-op interleaving for this group
                for i in keep.tolist():
                    if is_up[i]:
                        cpu_tree.insert(int(gk[i]), int(gv[i]))
                    else:
                        cpu_tree.delete(int(gk[i]))
            else:
                # the vectorised scatter: every touched leaf is merged
                # and rewritten once, reusing this group's batch
                # descent instead of descending again per op
                cpu_tree.insert_batch(
                    gk[keep_up], gv[keep_up], nodes=nodes[keep_up]
                )
                for i in keep_del.tolist():
                    cpu_tree.delete(int(gk[i]))
            stats.applied += len(keep)
            # lock conflicts: two logical threads hitting the same
            # last-level node simultaneously; estimated from collisions
            # within thread-count-sized windows of the actual pattern
            t = max(1, self.threads)
            touched = nodes[keep]
            if len(touched):
                pad = (-len(touched)) % t
                # pad with distinct sentinels so they never collide
                w = np.concatenate(
                    [touched, -np.arange(1, pad + 1, dtype=np.int64)]
                )
                w = np.sort(w.reshape(-1, t), axis=1)
                stats.lock_conflicts += int(np.sum(w[:, 1:] == w[:, :-1]))
            # single-threaded pass over the deferred (splitting) updates
            for i in defer.tolist():
                if is_up[i]:
                    cpu_tree.insert(int(gk[i]), int(gv[i]))
                else:
                    cpu_tree.delete(int(gk[i]))
            stats.deferred += len(defer)
            parallel_ns = len(keep) * per_update_ns * LOCK_OVERHEAD_FACTOR / min(
                ASYNC_PARALLEL_SPEEDUP, self.threads
            )
            conflict_ns = stats.lock_conflicts * per_update_ns * 0.5
            serial_ns = len(defer) * per_update_ns * 4.0  # splits are costly
            stats.modify_ns += parallel_ns + conflict_ns + serial_ns
        if transfer:
            stats.transfer_ns = self.tree.mirror_i_segment()
        else:
            self.tree.mirror_i_segment()  # keep the mirror consistent
        return stats


class SyncUpdater:
    """The synchronized update method (modifying + synchronizing thread).

    ``batched=True`` (the default) drains the synchronizing thread's
    queue through :meth:`HBPlusTree.sync_nodes`, which deduplicates
    repeatedly-modified nodes and coalesces adjacent dirty mirror slots
    into ranged transfers — fewer pushes on the open copy stream for
    the same final mirror state.  ``batched=False`` keeps the original
    per-node push, one transfer per modified node.
    """

    def __init__(self, tree: HBPlusTree, batched: bool = True):
        self.tree = tree
        self.batched = batched

    def apply(
        self,
        keys: Sequence[int],
        values: Sequence[int],
        deletes: Sequence[int] = (),
    ) -> UpdateStats:
        keys = np.asarray(keys, dtype=self.tree.spec.dtype)
        values = np.asarray(values, dtype=self.tree.spec.dtype)
        deletes = np.asarray(deletes, dtype=self.tree.spec.dtype)
        stats = UpdateStats()
        cpu_tree = self.tree.cpu_tree
        cost_sample = keys[: min(len(keys), 512)]
        per_update_ns = (
            _measure_update_cost_ns(self.tree, cost_sample) if len(keys) else 0.0
        )
        ops = [("upsert", int(k), int(v)) for k, v in zip(keys, values)]
        ops += [("delete", int(k), 0) for k in deletes]
        # one batch descent over the whole op stream replaces the old
        # per-op `_descend`: the ids are exact while the structure
        # holds, and any structural change triggers the full mirror
        # rebuild below, which restores consistency regardless
        all_op_keys = np.concatenate([keys, deletes])
        op_nodes = (
            cpu_tree.descend_batch(all_op_keys)[0]
            if len(all_op_keys)
            else np.empty(0, dtype=np.int64)
        )

        node_bytes = self.tree.node_stride * 8
        structural = 0
        rebuilt = False
        dirty: List[int] = []
        push_overhead_units = 0  # per-push bookkeeping on the open stream
        for (op, key, value), node in zip(ops, op_nodes.tolist()):
            height_before = cpu_tree.height
            leaves_before = cpu_tree.leaves.count
            if op == "upsert":
                cpu_tree.insert(key, value)
            else:
                cpu_tree.delete(key)
            stats.applied += 1
            if (cpu_tree.leaves.count != leaves_before
                    or cpu_tree.height != height_before):
                structural += 1
            elif self.batched:
                dirty.append(node)
            else:
                # enqueue the modified last-level inner node
                try:
                    self.tree.sync_node(0, node)
                    stats.synced_nodes += 1
                    push_overhead_units += 1
                except FaultError:
                    # the push aborted mid-flight; the mirror is stale
                    # for this node — repair with the full rebuild below
                    stats.sync_faults += 1
                    structural += 1
        if self.batched and dirty:
            # drain the queue once: dedup + coalesce into ranged pushes
            try:
                mirror_stats = self.tree.sync_nodes(
                    [(0, n) for n in dirty]
                )
                stats.synced_nodes = mirror_stats.nodes
                push_overhead_units = mirror_stats.transfers
                rebuilt = mirror_stats.rebuilt
            except FaultError:
                stats.sync_faults += 1
                structural += 1
        rebuild_ns = 0.0
        if structural and not rebuilt:
            # splits/merges change node identities (and aborted pushes
            # leave stale nodes): fall back to a full mirror rebuild,
            # exactly once at the end
            rebuild_ns = self.tree.mirror_i_segment()
        stats.modify_ns = len(ops) * per_update_ns
        # the synchronizing thread overlaps the modifying thread; only
        # the excess shows up as extra time.  Pushes ride one open copy
        # stream: bandwidth per node plus bookkeeping per push (the
        # batched path issues fewer pushes for the same nodes)
        modeled_push = (
            stats.synced_nodes * node_bytes
            / self.tree.machine.pcie.bandwidth_gbs
            + push_overhead_units * SYNC_NODE_OVERHEAD_NS
        )
        stats.transfer_ns = (
            max(0.0, modeled_push - stats.modify_ns)
            + (self.tree.machine.pcie.t_init_ns if stats.synced_nodes else 0.0)
            + rebuild_ns
        )
        return stats


def apply_cpu_only(
    cpu_tree, keys: Sequence[int], values: Sequence[int]
) -> int:
    """Upsert a batch into a plain CPU tree (baseline for Fig 13)."""
    n = 0
    for k, v in zip(np.asarray(keys).tolist(), np.asarray(values).tolist()):
        cpu_tree.insert(int(k), int(v))
        n += 1
    return n
