"""Batch update execution for the regular HB+-tree (paper section 5.6).

Two methods with a batch-size-dependent trade-off (Figs 13-14):

* **asynchronous** — updates run in main memory in parallel groups of
  16K.  Each logical thread descends to the last-level inner node,
  takes that node's lock and resolves the update in place; queries that
  would split or merge a node are deferred to a single-threaded pass
  (thanks to the 256-entry big leaves this is <1% of updates).  When
  the whole batch is done, the *entire* I-segment transfers to GPU
  memory once.
* **synchronized** — a single *modifying* thread executes updates and
  enqueues every modified inner node; a *synchronizing* thread streams
  each node's 1 + 2K cache lines to the GPU mirror concurrently.
  Per-node pushes ride an open copy stream, so their cost is dominated
  by bandwidth, but the method cannot amortize like the bulk transfer —
  hence the crossover: synchronized wins for small batches, asynchronous
  for large ones.

Both methods are *functionally* executed against the real tree (every
insert/delete mutates it and the GPU mirror ends up consistent); the
thread-level parallelism is modeled in time, with lock conflicts and
deferrals counted from the actual access pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hbtree import HBPlusTree
from repro.faults import FaultError
from repro.platform.costmodel import CpuCostModel, CpuQueryProfile

#: group size of the asynchronous method (section 5.6)
ASYNC_GROUP_SIZE = 16 * 1024

#: parallel speedup of the locked multi-threaded async modify phase —
#: the paper measures 3x over single-threaded (Fig 13a); lock and cache
#: coherence traffic, not core count, is the limit
ASYNC_PARALLEL_SPEEDUP = 3.0

#: per-update slowdown of lock acquisition in the async method
LOCK_OVERHEAD_FACTOR = 1.6

#: per-node push overhead on the synchronizing thread's open stream
#: (request bookkeeping; the stream amortizes the big T_init)
SYNC_NODE_OVERHEAD_NS = 40.0


@dataclass
class UpdateStats:
    """Result of applying one update batch."""

    applied: int = 0
    deferred: int = 0
    lock_acquisitions: int = 0
    lock_conflicts: int = 0
    modify_ns: float = 0.0
    transfer_ns: float = 0.0
    synced_nodes: int = 0
    #: per-node pushes aborted by an injected fault; each one forces
    #: the end-of-batch full mirror rebuild that restores consistency
    sync_faults: int = 0

    @property
    def total_ns(self) -> float:
        return self.modify_ns + self.transfer_ns

    @property
    def deferred_fraction(self) -> float:
        total = self.applied + self.deferred
        return self.deferred / total if total else 0.0

    def throughput_qps(self, include_transfer: bool = True) -> float:
        total = self.applied + self.deferred
        t = self.total_ns if include_transfer else self.modify_ns
        if t <= 0:
            return float("inf")
        return total * 1e9 / t


@dataclass
class ImplicitRebuildStats:
    """Phase breakdown of an implicit HB+-tree update (Fig 15)."""

    l_segment_ns: float
    i_segment_ns: float
    transfer_ns: float

    @property
    def total_ns(self) -> float:
        return self.l_segment_ns + self.i_segment_ns + self.transfer_ns


def _measure_update_cost_ns(tree: HBPlusTree, sample_keys: np.ndarray) -> float:
    """Per-update cost of one thread: descend + leaf modification.

    Measured by instrumented descents over a sample, converted by the
    cost model without software pipelining (updates are dependent
    operations and cannot be pipelined like lookups).
    """
    cpu_tree = tree.cpu_tree
    mem = tree.mem
    mem.reset_counters()
    for key in sample_keys.tolist():
        cpu_tree.lookup(int(key), instrument=True)
    counters = mem.counters
    profile = CpuQueryProfile.from_counters(
        counters, node_searches_per_query=2.0 * cpu_tree.height + 1
    )
    model = CpuCostModel(tree.machine.cpu, pipeline_len=1, threads=1)
    # leaf modification: shifting half a big leaf on average (write
    # bandwidth), plus routing-key maintenance
    shift_bytes = cpu_tree.leaves.capacity_pairs * tree.spec.size_bytes
    shift_ns = shift_bytes / tree.machine.cpu.mem_bandwidth_gbs
    return model.query_ns(profile) + shift_ns


class AsyncBatchUpdater:
    """The asynchronous parallel update method."""

    def __init__(self, tree: HBPlusTree, threads: Optional[int] = None):
        self.tree = tree
        self.threads = threads if threads is not None else tree.machine.cpu.threads

    def apply(
        self,
        keys: Sequence[int],
        values: Sequence[int],
        deletes: Sequence[int] = (),
        transfer: bool = True,
    ) -> UpdateStats:
        """Apply a batch of upserts (and optional deletes)."""
        keys = np.asarray(keys, dtype=self.tree.spec.dtype)
        values = np.asarray(values, dtype=self.tree.spec.dtype)
        deletes = np.asarray(deletes, dtype=self.tree.spec.dtype)
        stats = UpdateStats()
        cpu_tree = self.tree.cpu_tree
        cost_sample = keys[: min(len(keys), 512)]
        per_update_ns = (
            _measure_update_cost_ns(self.tree, cost_sample) if len(keys) else 0.0
        )

        ops: List[Tuple[str, int, int]] = [
            ("upsert", int(k), int(v)) for k, v in zip(keys, values)
        ] + [("delete", int(k), 0) for k in deletes]
        for start in range(0, len(ops), ASYNC_GROUP_SIZE):
            group = ops[start: start + ASYNC_GROUP_SIZE]
            deferred: List[Tuple[str, int, int]] = []
            touched_nodes: List[int] = []
            for op, key, value in group:
                node, _line, _path = cpu_tree._descend(key, instrument=False)
                size = int(cpu_tree.leaves.size[node])
                causes_split = (
                    op == "upsert"
                    and size >= cpu_tree.leaves.capacity_pairs
                    and cpu_tree.lookup(key, instrument=False) is None
                )
                causes_merge = op == "delete" and size <= 1
                if causes_split or causes_merge:
                    deferred.append((op, key, value))
                    continue
                touched_nodes.append(node)
                stats.lock_acquisitions += 1
                if op == "upsert":
                    cpu_tree.insert(key, value)
                else:
                    cpu_tree.delete(key)
                stats.applied += 1
            # lock conflicts: two logical threads hitting the same
            # last-level node simultaneously; estimated from collisions
            # within thread-count-sized windows of the actual pattern
            t = self.threads
            for w in range(0, len(touched_nodes), t):
                window = touched_nodes[w: w + t]
                stats.lock_conflicts += len(window) - len(set(window))
            # single-threaded pass over the deferred (splitting) updates
            for op, key, value in deferred:
                if op == "upsert":
                    cpu_tree.insert(key, value)
                else:
                    cpu_tree.delete(key)
                stats.deferred += 1
            parallel_ns = (
                len(group) - len(deferred)
            ) * per_update_ns * LOCK_OVERHEAD_FACTOR / min(
                ASYNC_PARALLEL_SPEEDUP, self.threads
            )
            conflict_ns = stats.lock_conflicts * per_update_ns * 0.5
            serial_ns = len(deferred) * per_update_ns * 4.0  # splits are costly
            stats.modify_ns += parallel_ns + conflict_ns + serial_ns
        if transfer:
            stats.transfer_ns = self.tree.mirror_i_segment()
        else:
            self.tree.mirror_i_segment()  # keep the mirror consistent
        return stats


class SyncUpdater:
    """The synchronized update method (modifying + synchronizing thread)."""

    def __init__(self, tree: HBPlusTree):
        self.tree = tree

    def apply(
        self,
        keys: Sequence[int],
        values: Sequence[int],
        deletes: Sequence[int] = (),
    ) -> UpdateStats:
        keys = np.asarray(keys, dtype=self.tree.spec.dtype)
        values = np.asarray(values, dtype=self.tree.spec.dtype)
        deletes = np.asarray(deletes, dtype=self.tree.spec.dtype)
        stats = UpdateStats()
        cpu_tree = self.tree.cpu_tree
        cost_sample = keys[: min(len(keys), 512)]
        per_update_ns = (
            _measure_update_cost_ns(self.tree, cost_sample) if len(keys) else 0.0
        )
        ops = [("upsert", int(k), int(v)) for k, v in zip(keys, values)]
        ops += [("delete", int(k), 0) for k in deletes]

        node_bytes = self.tree.node_stride * 8
        per_node_push_ns = (
            node_bytes / self.tree.machine.pcie.bandwidth_gbs
            + SYNC_NODE_OVERHEAD_NS
        )
        structural = 0
        for op, key, value in ops:
            height_before = cpu_tree.height
            leaves_before = cpu_tree.leaves.count
            node, _line, _path = cpu_tree._descend(key, instrument=False)
            if op == "upsert":
                cpu_tree.insert(key, value)
            else:
                cpu_tree.delete(key)
            stats.applied += 1
            if (cpu_tree.leaves.count != leaves_before
                    or cpu_tree.height != height_before):
                structural += 1
            else:
                # enqueue the modified last-level inner node
                try:
                    stats.transfer_ns += self.tree.sync_node(0, node)
                    stats.synced_nodes += 1
                except FaultError:
                    # the push aborted mid-flight; the mirror is stale
                    # for this node — repair with the full rebuild below
                    stats.sync_faults += 1
                    structural += 1
        rebuild_ns = 0.0
        if structural:
            # splits/merges change node identities (and aborted pushes
            # leave stale nodes): fall back to a full mirror rebuild,
            # exactly once at the end
            rebuild_ns = self.tree.mirror_i_segment()
        stats.modify_ns = len(ops) * per_update_ns
        # the synchronizing thread overlaps the modifying thread; only
        # the excess shows up as extra time
        modeled_push = stats.synced_nodes * per_node_push_ns
        stats.transfer_ns = (
            max(0.0, modeled_push - stats.modify_ns)
            + (self.tree.machine.pcie.t_init_ns if stats.synced_nodes else 0.0)
            + rebuild_ns
        )
        return stats


def apply_cpu_only(
    cpu_tree, keys: Sequence[int], values: Sequence[int]
) -> int:
    """Upsert a batch into a plain CPU tree (baseline for Fig 13)."""
    n = 0
    for k, v in zip(np.asarray(keys).tolist(), np.asarray(values).tolist()):
        cpu_tree.insert(int(k), int(v))
        n += 1
    return n
