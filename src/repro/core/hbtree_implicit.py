"""The implicit HB+-tree (paper sections 5.1-5.4, 5.6).

Layout (Fig 4): the I-segment (all inner nodes, breadth-first) is
*mirrored* in CPU and GPU memory; the L-segment (leaves) resides in CPU
memory only.  Inner-node fanout is reduced to ``keys_per_line`` (8 for
64-bit keys) so one GPU thread per key searches a node without warp
divergence, with catch-all keys pinned to the maximum value.

A point-lookup bucket flows:

1. queries transfer to GPU memory            (T1)
2. the GPU kernel walks all inner levels      (T2)
3. leaf indexes transfer back                 (T3)
4. the CPU searches the target leaves         (T4)

Updates rebuild the whole tree and re-upload the I-segment
(section 5.6; Fig 15 measures the phases).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.node_search import NodeSearchAlgorithm
from repro.gpusim.device import GpuDevice
from repro.gpusim.kernels.frontier_search import (
    FRONTIER,
    PER_QUERY,
    frontier_search_from_counted,
    frontier_search_vectorized,
    launch_frontier_search,
    validate_kernel,
)
from repro.gpusim.kernels.implicit_search import (
    implicit_search_from_counted,
    implicit_search_vectorized,
    launch_implicit_search,
)
from repro.gpusim.transfer import PcieLink
from repro.keys import key_spec
from repro.obs import NULL_OBS
from repro.memsim.mainmem import MemorySystem, PageConfig
from repro.platform.configs import MachineConfig
from repro.platform.costmodel import (
    BucketCosts,
    CpuCostModel,
    CpuQueryProfile,
    hybrid_bucket_costs,
)


@dataclass
class GpuSearchResult:
    """Outcome of the GPU inner-node stage for one bucket."""

    leaf_indices: np.ndarray
    transactions: int
    #: modeled transactions the same bucket costs in arrival order;
    #: filled by the batch engine when it measures baselines
    baseline_transactions: Optional[int] = None

    @property
    def transactions_per_query(self) -> float:
        if len(self.leaf_indices) == 0:
            return 0.0
        return self.transactions / len(self.leaf_indices)

    @property
    def sorted_gain(self) -> float:
        """Fraction of modeled transactions saved vs arrival order."""
        if not self.baseline_transactions:
            return 0.0
        return 1.0 - self.transactions / self.baseline_transactions


@dataclass
class RebuildTimes:
    """Phase times of one implicit-tree rebuild (Fig 15)."""

    l_segment_ns: float
    i_segment_ns: float
    transfer_ns: float

    @property
    def total_ns(self) -> float:
        return self.l_segment_ns + self.i_segment_ns + self.transfer_ns

    @property
    def transfer_fraction(self) -> float:
        rebuild = self.l_segment_ns + self.i_segment_ns
        return self.transfer_ns / rebuild if rebuild else 0.0


#: effective passes over the data a rebuild makes (merge of the update
#: batch + leaf packing + inner-level stacking); drives Fig 15's
#: rebuild-vs-transfer proportions
REBUILD_PASSES = 10.0

#: passes for the linear-merge rebuild path: the contents are already
#: sorted, so no re-sort is needed (merge + pack + stack)
MERGE_PASSES = 4.0


class ImplicitHBPlusTree:
    """Hybrid implicit B+-tree over a machine's CPU + GPU."""

    def __init__(
        self,
        keys: Sequence[int],
        values: Sequence[int],
        machine: MachineConfig,
        key_bits: int = 64,
        mem: Optional[MemorySystem] = None,
        page_config: PageConfig = PageConfig.HUGE_SMALL,
        algorithm: NodeSearchAlgorithm = NodeSearchAlgorithm.HIERARCHICAL_SIMD,
    ):
        self.machine = machine
        self.spec = key_spec(key_bits)
        self.mem = mem if mem is not None else MemorySystem.from_spec(machine.cpu)
        self.device = GpuDevice(machine.gpu)
        self.link = PcieLink(machine.pcie)
        self.cpu_tree = ImplicitCpuBPlusTree(
            keys,
            values,
            key_bits=key_bits,
            fanout=self.spec.implicit_hybrid_fanout,
            mem=self.mem,
            page_config=page_config,
            algorithm=algorithm,
            segment_prefix="hb_implicit",
        )
        self.last_rebuild: Optional[RebuildTimes] = None
        #: :class:`repro.obs.Observability`; the shared disabled bundle
        #: until :meth:`attach_obs` threads a live one through
        self.obs = NULL_OBS
        #: default GPU search kernel for calls that do not pass one —
        #: ``"per_query"`` (Snippet 3) or ``"frontier"`` (level-wise);
        #: the engines/balancers override per bucket via ``kernel=``
        self.kernel = PER_QUERY
        #: serializes direct tree reads (range scans) against engine
        #: ``quiesce()`` windows — engines over this tree adopt the
        #: same lock (same contract as ``HBPlusTree.serve_lock``)
        self.serve_lock = threading.RLock()
        self._mirror_i_segment()

    def attach_obs(self, obs) -> None:
        """Thread a :class:`repro.obs.Observability` bundle through the
        PCIe link, the GPU device, and this tree (same contract as
        ``HBPlusTree.attach_obs``)."""
        self.obs = obs
        self.link.obs = obs
        self.device.obs = obs

    # ------------------------------------------------------------------
    # GPU mirror

    def _mirror_i_segment(self) -> float:
        """(Re)build + upload the flat breadth-first I-segment mirror.

        Returns the simulated transfer time in ns.
        """
        fanout = self.cpu_tree.fanout
        parts: List[np.ndarray] = []
        offsets: List[int] = []
        sizes: List[int] = []
        elem = 0
        for level in self.cpu_tree.inner_levels:
            flat = level.reshape(-1)
            offsets.append(elem)
            sizes.append(flat.size)
            parts.append(flat)
            elem += flat.size
        if parts:
            flat_iseg = np.concatenate(parts)
        else:  # single-leaf tree: a trivial one-node I-segment
            flat_iseg = np.full(fanout, self.spec.max_value, dtype=self.spec.dtype)
            offsets, sizes = [0], [fanout]
        self.level_offsets = offsets
        self.level_sizes = sizes
        self.gpu_depth = len(self.cpu_tree.inner_levels)
        t = self.link.to_device(self.device.memory, "iseg", flat_iseg)
        self.iseg_buffer = self.device.memory.get("iseg")
        return t

    @property
    def i_segment_bytes(self) -> int:
        return self.iseg_buffer.nbytes

    @property
    def l_segment_bytes(self) -> int:
        return self.cpu_tree.l_segment_bytes

    @property
    def height(self) -> int:
        return self.cpu_tree.height

    @property
    def teams_per_warp(self) -> int:
        return max(1, self.machine.gpu.warp_size // self.spec.gpu_threads_per_query)

    # ------------------------------------------------------------------
    # search

    def gpu_begin_bucket(self, n_queries: int) -> bool:
        """Count one bucket's kernel launch (stage-2 entry).

        The stateful prologue of :meth:`gpu_search_bucket`, split out so
        a concurrent engine can run it serially in dispatch order while
        the pure :meth:`gpu_descend` runs on worker threads.  Returns
        False when the bucket launches nothing (empty bucket, or a
        zero-depth GPU slice).
        """
        if n_queries == 0 or self.gpu_depth == 0:
            return False
        self.device.kernel_launches += 1
        return True

    def _resolve_kernel(self, kernel: Optional[str]) -> str:
        """``kernel`` argument, or this tree's default; validated."""
        return validate_kernel(kernel if kernel is not None else self.kernel)

    def gpu_descend(
        self, queries: np.ndarray, kernel: Optional[str] = None
    ) -> "tuple[np.ndarray, int]":
        """Pure stage-2 descent: ``(leaf_indices, transactions)``.

        No launch counting, no counter mutation — thread-safe over the
        read-only mirror.  ``gpu_depth == 0`` yields all-zero leaf
        indices, matching :meth:`gpu_search_bucket`.  ``kernel`` picks
        the per-query Snippet-3 descent or the level-wise frontier
        descent — identical leaf indices either way, different
        transaction accounting.
        """
        q = np.asarray(queries, dtype=self.spec.dtype)
        kern = self._resolve_kernel(kernel)
        if len(q) == 0 or self.gpu_depth == 0:
            return np.zeros(len(q), dtype=np.int64), 0
        if kern == FRONTIER:
            return frontier_search_vectorized(
                self.iseg_buffer.array,
                self.level_offsets,
                self.level_sizes,
                self.gpu_depth,
                self.cpu_tree.fanout,
                q,
            )
        return implicit_search_vectorized(
            self.iseg_buffer.array,
            self.level_offsets,
            self.level_sizes,
            self.gpu_depth,
            self.cpu_tree.fanout,
            q,
            teams_per_warp=self.teams_per_warp,
        )

    def gpu_search_bucket(
        self, queries: np.ndarray, kernel: Optional[str] = None
    ) -> GpuSearchResult:
        """Stage 2: traverse all inner levels on the (simulated) GPU."""
        q = np.asarray(queries, dtype=self.spec.dtype)
        kern = self._resolve_kernel(kernel)
        if not self.gpu_begin_bucket(len(q)):
            return GpuSearchResult(
                leaf_indices=np.zeros(len(q), dtype=np.int64), transactions=0
            )
        leaf, txns = self.gpu_descend(q, kernel=kern)
        self.device.memory.counters.transactions_64 += txns
        self.device.memory.counters.bytes_moved += txns * 64
        return GpuSearchResult(leaf_indices=leaf, transactions=txns)

    # -- load-balanced (D, R) split execution --------------------------

    #: the implicit layout supports resuming a GPU descent mid-tree,
    #: which is what the adaptive (D, R) split engines require
    supports_split_descent = True

    def cpu_descend_top(
        self, queries: np.ndarray, levels: np.ndarray
    ) -> np.ndarray:
        """Walk per-query ``levels`` top inner levels on the CPU.

        Pure (no counters, thread-safe); returns the node positions the
        GPU resumes from.  Same clamped descent the load balancer's
        serial path uses, so a split bucket lands in the same leaves.
        """
        tree = self.cpu_tree
        q = np.asarray(queries, dtype=self.spec.dtype)
        node = np.zeros(len(q), dtype=np.int64)
        for level in range(tree.height):
            active = levels > level
            if not np.any(active):
                break
            keys = tree.inner_levels[level][node[active]]
            k = np.sum(keys < q[active, None], axis=1).astype(np.int64)
            next_size = (
                tree.inner_levels[level + 1].shape[0]
                if level + 1 < tree.height
                else tree.num_leaves
            )
            node[active] = np.minimum(
                node[active] * tree.fanout + k, next_size - 1
            )
        return node

    def gpu_descend_from(
        self,
        queries: np.ndarray,
        start_levels: np.ndarray,
        start_nodes: np.ndarray,
        kernel: Optional[str] = None,
    ) -> "tuple[np.ndarray, int]":
        """Pure stage-2 descent resumed from per-query (level, node).

        The split-space twin of :meth:`gpu_descend`: no launch
        counting, no counter mutation, safe from worker threads.  With
        all ``start_levels`` at 0 both outputs are identical to
        :meth:`gpu_descend` (the unbalanced corner of the split space).
        """
        q = np.asarray(queries, dtype=self.spec.dtype)
        kern = self._resolve_kernel(kernel)
        start = np.asarray(start_levels, dtype=np.int64)
        nodes = np.asarray(start_nodes, dtype=np.int64)
        if len(q) == 0 or self.gpu_depth == 0 or not np.any(
            start < self.gpu_depth
        ):
            return nodes.copy(), 0
        if kern == FRONTIER:
            return frontier_search_from_counted(
                self.iseg_buffer.array,
                self.level_offsets,
                self.level_sizes,
                self.gpu_depth,
                self.cpu_tree.fanout,
                q,
                start_levels=start,
                start_nodes=nodes,
            )
        return implicit_search_from_counted(
            self.iseg_buffer.array,
            self.level_offsets,
            self.level_sizes,
            self.gpu_depth,
            self.cpu_tree.fanout,
            q,
            start_levels=start,
            start_nodes=nodes,
            teams_per_warp=self.teams_per_warp,
        )

    def gpu_search_bucket_from(
        self,
        queries: np.ndarray,
        start_levels: np.ndarray,
        start_nodes: np.ndarray,
        kernel: Optional[str] = None,
    ) -> GpuSearchResult:
        """Stateful split-bucket GPU stage: screen, descend, account.

        An all-CPU bucket (every query already descended to the leaves
        by :meth:`cpu_descend_top`) launches no kernel and charges no
        transactions — the execution twin of the load balancer's
        ``sample_times`` fix for ``depth == h``.
        """
        q = np.asarray(queries, dtype=self.spec.dtype)
        kern = self._resolve_kernel(kernel)
        start = np.asarray(start_levels, dtype=np.int64)
        gpu_active = int(np.count_nonzero(start < self.gpu_depth))
        if not self.gpu_begin_bucket(gpu_active):
            return GpuSearchResult(
                leaf_indices=np.asarray(start_nodes, dtype=np.int64).copy(),
                transactions=0,
            )
        leaf, txns = self.gpu_descend_from(q, start, start_nodes, kernel=kern)
        self.device.memory.counters.transactions_64 += txns
        self.device.memory.counters.bytes_moved += txns * 64
        return GpuSearchResult(leaf_indices=leaf, transactions=txns)

    def modeled_transactions(
        self, queries: np.ndarray, kernel: Optional[str] = None
    ) -> int:
        """Transactions the GPU stage would charge for ``queries``.

        Pure measurement through the coalescing model — no launch, no
        device counters.  Used by the batch engine to price the
        arrival-order baseline of a sorted bucket, and by the load
        balancer to price each kernel when it profiles.
        """
        q = np.asarray(queries, dtype=self.spec.dtype)
        _leaf, txns = self.gpu_descend(q, kernel=kernel)
        return txns

    def gpu_search_bucket_literal(
        self, queries: np.ndarray, kernel: Optional[str] = None
    ) -> np.ndarray:
        """Stage 2 on the literal SIMT interpreter (slow; for tests)."""
        q = np.asarray(queries, dtype=self.spec.dtype)
        if self._resolve_kernel(kernel) == FRONTIER:
            leaf, _stats = launch_frontier_search(
                self.device,
                self.iseg_buffer,
                self.level_offsets,
                self.gpu_depth,
                self.cpu_tree.fanout,
                q,
                level_sizes=self.level_sizes,
            )
            return leaf
        leaf, _stats = launch_implicit_search(
            self.device,
            self.iseg_buffer,
            self.level_offsets,
            self.gpu_depth,
            self.cpu_tree.fanout,
            q,
        )
        return leaf

    def cpu_finish_bucket(
        self, queries: np.ndarray, leaf_indices: np.ndarray
    ) -> np.ndarray:
        """Stage 4: search the target leaves on the CPU."""
        q = np.asarray(queries, dtype=self.spec.dtype)
        if len(q) == 0:
            return np.zeros(0, dtype=self.spec.dtype)
        leaf = np.minimum(leaf_indices, self.cpu_tree.num_leaves - 1)
        rows = self.cpu_tree.leaf_keys[leaf]
        pos = np.sum(rows < q[:, None], axis=1)
        pos_c = np.minimum(pos, rows.shape[1] - 1)
        found = rows[np.arange(len(q)), pos_c] == q
        out = np.full(len(q), self.spec.max_value, dtype=self.spec.dtype)
        out[found] = self.cpu_tree.leaf_values[leaf[found], pos_c[found]]
        return out

    def lookup_batch(self, queries: Sequence[int]) -> np.ndarray:
        """Full hybrid lookup; the sentinel value marks not-found.

        Keys of any integer dtype (or Python ints) are coerced once via
        :meth:`repro.keys.KeySpec.coerce`, with an overflow check.
        """
        q = self.spec.coerce(queries)
        result = self.gpu_search_bucket(q)
        return self.cpu_finish_bucket(q, result.leaf_indices)

    def lookup(self, key: int) -> Optional[int]:
        out = self.lookup_batch(np.asarray([key], dtype=self.spec.dtype))
        val = int(out[0])
        return None if val == self.spec.max_value else val

    def range_query(self, lo: int, hi: int):
        """Sequential leaf scan, serialized against engine
        ``quiesce()`` windows via the shared serve lock."""
        with self.serve_lock:
            return self.cpu_tree.range_query(lo, hi)

    def cpu_scan_bucket(
        self, los: np.ndarray, his: np.ndarray, leaf_indices: np.ndarray
    ) -> List[List[Tuple[int, int]]]:
        """Stage 4 for range scans: leaf walks from GPU-located starts.

        ``leaf_indices`` are the per-start-key leaves the GPU stage
        produced for the ``lo`` bounds (clamped like
        :meth:`cpu_finish_bucket`); the scan resumes there without
        re-running the CPU descent.
        """
        leaves = np.minimum(
            np.asarray(leaf_indices, dtype=np.int64),
            self.cpu_tree.num_leaves - 1,
        )
        tree = self.cpu_tree
        return [
            tree.range_scan_from(int(leaf), int(lo), int(hi))
            for leaf, lo, hi in zip(
                leaves.tolist(),
                np.asarray(los).tolist(),
                np.asarray(his).tolist(),
            )
        ]

    # ------------------------------------------------------------------
    # instrumented profiling (feeds the cost model)

    def profile_leaf_stage(self, sample_queries: np.ndarray) -> CpuQueryProfile:
        """Measure the CPU leaf stage's per-query memory behaviour."""
        q = np.asarray(sample_queries, dtype=self.spec.dtype)
        result = self.gpu_search_bucket(q)
        leaf = np.minimum(result.leaf_indices, self.cpu_tree.num_leaves - 1)
        self.mem.reset_counters()
        self.mem.touch_lines(self.cpu_tree.l_segment, leaf)
        counters = self.mem.counters
        counters.queries = len(q)
        return CpuQueryProfile.from_counters(counters, node_searches_per_query=1.0)

    def bucket_costs(
        self,
        bucket_size: Optional[int] = None,
        sample: Optional[np.ndarray] = None,
        cpu_model: Optional[CpuCostModel] = None,
        sort_batches: bool = False,
    ) -> BucketCosts:
        """Derive the paper's T1-T4 for this tree on this machine.

        ``sort_batches=True`` prices the sorted/deduplicated pipeline
        of :class:`repro.core.batching.BatchingEngine` (GPU stage on
        the sorted distinct sample, all stages scaled by the distinct
        fraction).
        """
        bucket_size = bucket_size or self.machine.bucket_size
        if sample is None:
            stored = self.cpu_tree.leaf_keys.reshape(-1)
            stored = stored[stored != self.spec.max_value]
            if len(stored) == 0:
                raise ValueError(
                    "bucket_costs needs stored keys to sample a workload; "
                    "the tree is empty — rebuild with keys or pass "
                    "sample= explicitly"
                )
            rng = np.random.default_rng(3)
            # draw without replacement whenever the tree can fill the
            # bucket — duplicate draws inflate the sample's
            # unique_fraction and bias the sorted gain the planner
            # commits; replacement survives only as the tiny-tree
            # fallback
            size = 4096
            sample = rng.choice(stored, size=size,
                                replace=len(stored) < size)
        sample = np.asarray(sample, dtype=self.spec.dtype)
        if len(sample) == 0:
            raise ValueError("bucket_costs sample must be non-empty")
        unique_fraction = 1.0
        if sort_batches:
            from repro.core.batching import plan_bucket

            plan = plan_bucket(sample, dtype=self.spec.dtype)
            unique_fraction = plan.n_unique / plan.n_queries
            gpu_result = self.gpu_search_bucket(plan.sorted_unique)
            leaf_profile = self.profile_leaf_stage(plan.sorted_unique)
        else:
            gpu_result = self.gpu_search_bucket(sample)
            leaf_profile = self.profile_leaf_stage(sample)
        return hybrid_bucket_costs(
            self.machine,
            self.spec,
            bucket_size,
            gpu_transactions_per_query=gpu_result.transactions_per_query,
            gpu_levels=float(self.gpu_depth),
            cpu_leaf_profile=leaf_profile,
            cpu_model=cpu_model,
            unique_fraction=unique_fraction,
        )

    # ------------------------------------------------------------------
    # updates (rebuild, section 5.6 / Fig 15)

    def rebuild(self, keys: Sequence[int], values: Sequence[int]) -> RebuildTimes:
        """Rebuild both segments in main memory, then re-upload the
        I-segment to GPU memory."""
        self.cpu_tree.rebuild(keys, values)
        transfer_ns = self._mirror_i_segment()
        bw = self.machine.cpu.mem_bandwidth_gbs
        l_ns = self.l_segment_bytes * REBUILD_PASSES / bw
        i_ns = self.i_segment_bytes * REBUILD_PASSES / bw
        times = RebuildTimes(
            l_segment_ns=l_ns, i_segment_ns=i_ns, transfer_ns=transfer_ns
        )
        self.last_rebuild = times
        return times

    def merge_rebuild(
        self,
        upsert_keys: Sequence[int] = (),
        upsert_values: Sequence[int] = (),
        deletes: Sequence[int] = (),
    ) -> RebuildTimes:
        """Batch update by linear merge instead of a full re-sort.

        Functionally identical to :meth:`rebuild` over the merged
        contents, but cheaper: the existing contents are already sorted
        (``MERGE_PASSES`` vs ``REBUILD_PASSES``).
        """
        self.cpu_tree.merge_update(upsert_keys, upsert_values, deletes)
        transfer_ns = self._mirror_i_segment()
        bw = self.machine.cpu.mem_bandwidth_gbs
        times = RebuildTimes(
            l_segment_ns=self.l_segment_bytes * MERGE_PASSES / bw,
            i_segment_ns=self.i_segment_bytes * MERGE_PASSES / bw,
            transfer_ns=transfer_ns,
        )
        self.last_rebuild = times
        return times

    def __repr__(self) -> str:
        return (
            f"ImplicitHBPlusTree(n={len(self.cpu_tree)}, "
            f"height={self.height}, machine={self.machine.name!r}, "
            f"iseg={self.i_segment_bytes}B)"
        )

    def __len__(self) -> int:
        return len(self.cpu_tree)

    def __contains__(self, key: int) -> bool:
        return self.lookup(key) is not None
