"""Online adaptive load balancing (section 5.5 turned into a loop).

The offline :class:`~repro.core.load_balance.LoadBalancer` discovers one
(D, R) split for the traffic it was profiled on and never looks again.
Production traffic drifts — the hot set moves, the duplicate fraction
changes, the cache-residency of each inner level changes with it — and
a split discovered for yesterday's distribution quietly turns a
load-balanced tree back into a bottlenecked one.

:class:`AdaptiveController` closes the loop.  Engines report every
dispatched bucket through :meth:`~AdaptiveController.note_bucket`; the
controller keeps a deterministic reservoir over a sliding window of
buckets, and at each window boundary re-profiles per-level CPU/GPU
costs on that reservoir (instrumented cache/TLB descents + the pure
transaction model), re-runs Algorithm 1, and moves the applied (D, R)
— but only with hysteresis: the candidate must beat the current split
by ``hysteresis_gain`` for ``confirm_windows`` consecutive windows, so
one noisy window cannot thrash the split.

Determinism contract (tested in ``tests/test_adaptive.py``):

* decisions are functions of the query *values* only — modeled level
  costs and transaction counts, never wall clock;
* the per-bucket reservoir RNG is seeded from
  ``(seed, window, bucket)``, so the same trace always yields the same
  rebalance schedule;
* engines call :meth:`~AdaptiveController.note_bucket` serially from
  the dispatcher, in dispatch order;
* a split moves *which processor walks which level*, never what the
  walk returns — adaptive engine results stay bit-identical to the
  unbalanced engine's.

Re-profiling shares the host cache simulator with serving, so host-side
cache/TLB counters are perturbed by profiling descents; device-side
modeled counters are not (the GPU side is priced through the pure
transaction model).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.framework import RegularHBAdapter
from repro.core.load_balance import (
    DiscoveryResult,
    LoadBalancer,
    SplitCostModel,
)
from repro.gpusim.kernels.frontier_search import (
    KERNELS,
    PER_QUERY,
    validate_kernel,
)
from repro.obs import NULL_OBS
from repro.platform.costmodel import CpuCostModel

Split = Tuple[int, float]


def split_levels(n: int, depth: int, ratio: float,
                 height: int) -> np.ndarray:
    """Per-query CPU descent depths for one bucket under (D, R).

    Equation 4 semantics: an R fraction of the bucket has its level-D
    search done by the CPU (descends ``D + 1`` inner levels), the rest
    hands level D to the GPU (descends ``D``).  (D=0, R=0) is the
    all-zeros array — the unbalanced full-GPU path.
    """
    cut = int(round(ratio * n))
    levels = np.full(n, min(depth + 1, height), dtype=np.int64)
    levels[cut:] = min(depth, height)
    return levels


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the feedback loop."""

    #: buckets per sliding window (one evaluation per window)
    window_buckets: int = 8
    #: reservoir size the window's queries are downsampled to
    sample_size: int = 2048
    #: windows with fewer sampled queries than this are skipped
    min_window_queries: int = 64
    #: relative modeled-cost gain a candidate split must show
    hysteresis_gain: float = 0.05
    #: consecutive windows the same candidate must win before applying
    confirm_windows: int = 2
    #: reservoir RNG seed (decisions replay exactly for a fixed seed)
    seed: int = 0


@dataclass
class AdaptiveStats:
    """Counters of one controller's life."""

    buckets: int = 0
    queries: int = 0
    windows: int = 0
    evaluations: int = 0
    proposals: int = 0
    rebalances: int = 0
    forced_cpu_only: int = 0
    rediscoveries: int = 0
    scans: int = 0
    scan_tuples: int = 0
    last_gain: float = 0.0
    depth: int = 0
    ratio: float = 0.0
    kernel: str = PER_QUERY

    def snapshot(self) -> Dict[str, float]:
        return dataclasses.asdict(self)


class StaticSplit:
    """The null controller: a fixed (D, R) for every bucket.

    Speaks the same engine protocol as :class:`AdaptiveController`, so
    a benchmark can A/B a static seed split against the adaptive loop
    by swapping one constructor argument.
    """

    def __init__(self, depth: int = 0, ratio: float = 0.0,
                 kernel: str = PER_QUERY):
        self.depth = depth
        self.ratio = ratio
        self.kernel = validate_kernel(kernel)

    def split(self) -> Split:
        return (self.depth, self.ratio)

    def note_bucket(self, queries) -> None:
        pass

    def note_scan_bucket(self, los, tuples) -> None:
        pass


class RegularModeBalancer(SplitCostModel):
    """Mode-space balancer for the regular HB+-tree.

    The regular tree's 3-step node layout has no mid-tree GPU resume
    (``RegularHBAdapter.supports_partial_descent`` is ``False``), so
    its split space collapses to the endpoints of Equation 4: plain
    hybrid (D=0, R=0) and cpu-only (D=h, R=1).  :meth:`discover`
    evaluates exactly those two and commits the cheaper; the Equation-4
    cost evaluation itself is shared with :class:`LoadBalancer` through
    :class:`~repro.core.load_balance.SplitCostModel`.
    """

    def __init__(self, tree, bucket_size: Optional[int] = None,
                 cpu_model: Optional[CpuCostModel] = None,
                 reprofile_on_init: bool = True,
                 allowed_kernels: Optional[Tuple[str, ...]] = None):
        self.tree = tree
        self.machine = tree.machine
        self.bucket_size = bucket_size or self.machine.bucket_size
        self.cpu_model = cpu_model or CpuCostModel(self.machine.cpu)
        self.adapter = RegularHBAdapter(tree)
        if allowed_kernels is not None:
            allowed_kernels = tuple(
                validate_kernel(k) for k in allowed_kernels
            )
        self.allowed_kernels = allowed_kernels
        if reprofile_on_init:
            self.reprofile()
        self.depth = 0
        self.ratio = 0.0

    @property
    def height(self) -> int:
        return self.tree.cpu_tree.height

    def reprofile(self, sample: Optional[np.ndarray] = None,
                  sample_size: int = 2048) -> None:
        """Per-level CPU profiles + pure GPU transaction model.

        Like :meth:`LoadBalancer.reprofile`, the GPU side goes through
        :meth:`HBPlusTree.modeled_transactions` so a mid-run re-profile
        never counts a kernel launch or mutates device counters.
        """
        spec = self.tree.spec
        if sample is None:
            rng = np.random.default_rng(23)
            stored = np.asarray(
                [k for k, _v in self.tree.cpu_tree.items()],
                dtype=spec.dtype,
            )
            sample = rng.choice(
                stored, size=min(sample_size, len(stored)), replace=False
            )
        else:
            sample = np.asarray(sample, dtype=spec.dtype)
            if len(sample) == 0:
                raise ValueError("reprofile sample must be non-empty")
        profiles, leaf_profile = self.adapter.level_profiles(sample)
        model = self.cpu_model
        self.cpu_level_ns: List[float] = [
            model.query_ns(p) for p in profiles
        ]
        self.leaf_ns = model.query_ns(leaf_profile)
        h = max(1, self.height)
        gpu = self.machine.gpu
        self.gpu_level_ns_by_kernel = {}
        for kern in KERNELS:
            txns = self.tree.modeled_transactions(sample, kernel=kern)
            txn_per_query_level = txns / max(1, len(sample)) / h
            self.gpu_level_ns_by_kernel[kern] = [
                txn_per_query_level * 64.0 / gpu.effective_bandwidth_gbs
            ] * h
        self.gpu_level_ns = self.gpu_level_ns_by_kernel[PER_QUERY]
        # Scan costing: one more leaf probe per extra leaf line walked.
        self.leaf_scan_ns = self.leaf_ns
        self.scan_pairs_per_line = float(self.tree.spec.leaf_pairs_per_line)

    def _discover_kernel(self, kernel: str, bucket_size: Optional[int]):
        """Algorithm 1 restricted to the two modes the tree can run,
        priced with ``kernel``'s level costs.  The shared
        :meth:`SplitCostModel.discover` then iterates this over every
        measured kernel and commits the cheapest (kernel, mode)."""
        h = self.height
        samples: List[Tuple[int, float, float, float]] = []
        for depth, ratio in ((0, 0.0), (h, 1.0)):
            time_gpu, time_cpu = self.sample_times(
                depth, ratio, bucket_size, kernel=kernel
            )
            samples.append((depth, ratio, time_gpu, time_cpu))
        best = min(samples, key=lambda s: max(s[2], s[3]))
        return samples, best


class AdaptiveController:
    """The feedback loop: window → reprofile → Algorithm 1 → hysteresis.

    Engine protocol (spoken by :class:`BatchingEngine`,
    :class:`OverlappedEngine` and :class:`ResilientHBPlusTree`):

    * :meth:`split` — the (D, R) to apply to the *next* bucket;
    * :meth:`note_bucket` — called serially, in dispatch order, with
      each dispatched bucket's query stream.

    Observability: every applied move emits a ``rebalance`` hook event
    and counts under ``live.rebalance.*``; window-level gauges land as
    ``live.rebalance.gain`` / ``.depth`` / ``.ratio``.
    """

    def __init__(self, balancer: SplitCostModel,
                 config: Optional[AdaptiveConfig] = None,
                 obs=None, discover_on_init: bool = True):
        self.balancer = balancer
        self.config = config or AdaptiveConfig()
        self._obs_override = obs
        self.stats = AdaptiveStats()
        self._parts: List[np.ndarray] = []
        self._bucket_in_window = 0
        self._window_queries = 0
        self._window_scans = 0
        self._window_scan_tuples = 0
        self._pending: Optional[Split] = None
        self._streak = 0
        self._forced = False
        self._last_sample: Optional[np.ndarray] = None
        if discover_on_init:
            result = balancer.discover()
            self.depth, self.ratio = result.depth, result.ratio
            self.kernel = result.kernel
        else:
            self.depth, self.ratio = balancer.depth, balancer.ratio
            self.kernel = getattr(balancer, "kernel", PER_QUERY)
        self.stats.depth, self.stats.ratio = self.depth, self.ratio
        self.stats.kernel = self.kernel
        self._push_tree_kernel(self.kernel)

    # ------------------------------------------------------------------
    # construction conveniences

    @classmethod
    def for_tree(cls, tree, config: Optional[AdaptiveConfig] = None,
                 bucket_size: Optional[int] = None, obs=None,
                 discover_on_init: bool = True,
                 allowed_kernels: Optional[Tuple[str, ...]] = None,
                 ) -> "AdaptiveController":
        """Build the right balancer for the given hybrid tree.

        Trees with a mid-tree GPU resume path (the implicit tree) get
        the full (D, R) space through :class:`LoadBalancer`, profiled
        on the sorted-distinct stream the batch engines actually run;
        the regular tree gets the two-mode
        :class:`RegularModeBalancer`.  ``allowed_kernels`` restricts
        the kernel dimension of discovery (e.g. ``("per_query",)``
        pins the Snippet-3 schedule; the default considers every
        measured kernel).
        """
        if getattr(tree, "supports_split_descent", False):
            balancer: SplitCostModel = LoadBalancer(
                tree, bucket_size=bucket_size, sort_batches=True,
                allowed_kernels=allowed_kernels,
            )
        else:
            balancer = RegularModeBalancer(
                tree, bucket_size=bucket_size,
                allowed_kernels=allowed_kernels,
            )
        return cls(balancer, config=config, obs=obs,
                   discover_on_init=discover_on_init)

    @classmethod
    def warm_start(cls, tree, split: Split,
                   config: Optional[AdaptiveConfig] = None,
                   bucket_size: Optional[int] = None,
                   obs=None) -> "AdaptiveController":
        """Resume with a previously committed (D, R) pinned as the
        starting split — no init-time reprofiling window.

        The restore path hands the last committed split from a snapshot
        here; the balancer skips its constructor profile (the first
        live window reprofiles on actual traffic before any move), so
        a warm-restarted node serves at the committed split from the
        first bucket.
        """
        if getattr(tree, "supports_split_descent", False):
            balancer: SplitCostModel = LoadBalancer(
                tree, bucket_size=bucket_size, sort_batches=True,
                reprofile_on_init=False,
            )
        else:
            balancer = RegularModeBalancer(tree, bucket_size=bucket_size,
                                           reprofile_on_init=False)
        balancer.depth, balancer.ratio = int(split[0]), float(split[1])
        if len(split) > 2:
            balancer.kernel = validate_kernel(split[2])
        return cls(balancer, config=config, obs=obs,
                   discover_on_init=False)

    # ------------------------------------------------------------------
    # engine protocol

    @property
    def obs(self):
        if self._obs_override is not None:
            return self._obs_override
        return getattr(self.balancer.tree, "obs", NULL_OBS)

    @property
    def height(self) -> int:
        return self.balancer.height

    @property
    def cpu_only(self) -> bool:
        """Whether the current split leaves the GPU no work."""
        return not self.balancer.split_serves_gpu(self.depth, self.ratio)

    def split(self) -> Split:
        return (self.depth, self.ratio)

    def note_bucket(self, queries) -> None:
        """Fold one dispatched bucket into the sliding window.

        Must be called serially, in dispatch order — the window
        boundary (and therefore the whole rebalance schedule) is a
        function of the bucket sequence.
        """
        cfg = self.config
        q = np.asarray(queries)
        self.stats.buckets += 1
        self.stats.queries += len(q)
        self._window_queries += len(q)
        per_bucket = -(-cfg.sample_size // cfg.window_buckets)
        if len(q) <= per_bucket:
            part = q.copy()
        else:
            rng = np.random.default_rng(
                [cfg.seed, self.stats.windows, self._bucket_in_window]
            )
            part = rng.choice(q, size=per_bucket, replace=False)
        self._parts.append(part)
        self._bucket_in_window += 1
        if self._bucket_in_window >= cfg.window_buckets:
            self._close_window()

    def note_scan_bucket(self, los, tuples) -> None:
        """Fold one dispatched *scan* bucket into the sliding window.

        A scan's descent keys (the ``lo`` bounds) enter the reservoir
        like lookup keys — the descent cost model does not care why a
        key descends — while the scan count and returned-tuple volume
        feed the per-window scan profile that Algorithm 1 prices
        through :meth:`SplitCostModel.set_scan_profile`.
        """
        q = np.asarray(los)
        self.stats.scans += len(q)
        self.stats.scan_tuples += int(tuples)
        self._window_scans += len(q)
        self._window_scan_tuples += int(tuples)
        self.note_bucket(q)

    # ------------------------------------------------------------------
    # the loop body

    def _close_window(self) -> None:
        sample = (
            np.concatenate(self._parts) if self._parts
            else np.empty(0, dtype=np.int64)
        )
        self._parts = []
        self._bucket_in_window = 0
        scans = self._window_scans
        scan_tuples = self._window_scan_tuples
        total = self._window_queries
        self._window_scans = 0
        self._window_scan_tuples = 0
        self._window_queries = 0
        self.stats.windows += 1
        self.obs.count("live.rebalance.windows")
        if len(sample) < self.config.min_window_queries:
            return
        self._last_sample = sample
        if hasattr(self.balancer, "set_scan_profile"):
            share = scans / total if total else 0.0
            mean_length = scan_tuples / scans if scans else 0.0
            self.balancer.set_scan_profile(share, mean_length)
            self.obs.gauge("live.rebalance.scan_share", share)
        if self._forced:
            # a forced split (degraded mode) is pinned until
            # rediscover(); keep collecting windows so recovery
            # re-discovers on fresh traffic, but never move the split
            self._pending, self._streak = None, 0
            return
        self._evaluate(sample)

    def _evaluate(self, sample: np.ndarray) -> None:
        cfg = self.config
        balancer = self.balancer
        self.stats.evaluations += 1
        balancer.reprofile(sample)
        result = balancer.discover()
        # discover() moved the balancer to the candidate; the applied
        # split (and kernel) is still ours until hysteresis confirms
        # the move — restore before pricing the current split
        balancer.depth, balancer.ratio = self.depth, self.ratio
        balancer.kernel = self.kernel
        current_cost = balancer.balanced_cost_ns(self.depth, self.ratio)
        candidate = (result.depth, result.ratio, result.kernel)
        gain = (
            1.0 - result.cost_ns / current_cost if current_cost > 0 else 0.0
        )
        self.stats.last_gain = gain
        self.obs.gauge("live.rebalance.gain", gain)
        if (candidate == (self.depth, self.ratio, self.kernel)
                or gain < cfg.hysteresis_gain):
            self._pending, self._streak = None, 0
            return
        self.stats.proposals += 1
        self.obs.count("live.rebalance.proposed")
        if candidate == self._pending:
            self._streak += 1
        else:
            self._pending, self._streak = candidate, 1
        if self._streak >= cfg.confirm_windows:
            self._apply(candidate[:2], gain, reason="drift",
                        kernel=candidate[2])

    def _push_tree_kernel(self, kernel: str) -> None:
        """Propagate the chosen kernel to trees the engines do not
        plumb it to explicitly.

        The batch engines read the kernel from the balancer at dispatch
        time, but the regular tree served through
        :class:`~repro.core.resilience.ResilientHBPlusTree` reaches
        ``gpu_search_bucket`` with no kernel argument — its tree-level
        default is the only channel, so the controller owns it.
        """
        tree = getattr(self.balancer, "tree", None)
        if (tree is not None
                and not getattr(tree, "supports_split_descent", False)
                and hasattr(tree, "kernel")):
            tree.kernel = kernel

    def _apply(self, split: Split, gain: float, reason: str,
               kernel: Optional[str] = None) -> None:
        kern = kernel if kernel is not None else self.kernel
        moved = (split[0], split[1], kern) != (
            self.depth, self.ratio, self.kernel
        )
        self.depth, self.ratio = split
        self.kernel = kern
        self.balancer.depth, self.balancer.ratio = split
        self.balancer.kernel = kern
        self._push_tree_kernel(kern)
        self._pending, self._streak = None, 0
        self.stats.depth, self.stats.ratio = split
        self.stats.kernel = kern
        if moved:
            self.stats.rebalances += 1
            self.obs.count("live.rebalance.applied", reason=reason)
        self.obs.gauge("live.rebalance.depth", float(self.depth))
        self.obs.gauge("live.rebalance.ratio", float(self.ratio))
        self.obs.emit(
            "rebalance", depth=self.depth, ratio=self.ratio,
            kernel=kern, gain=gain, reason=reason, moved=moved,
        )

    # ------------------------------------------------------------------
    # resilience integration

    def force_cpu_only(self, reason: str = "degrade") -> None:
        """Pin the split to depth = h (all-CPU) until :meth:`rediscover`.

        The resilience layer calls this when the circuit breaker opens:
        a degraded tree must not keep a split that hands levels to a
        GPU it no longer trusts.
        """
        self._forced = True
        self.stats.forced_cpu_only += 1
        self._apply((self.height, 1.0), gain=0.0, reason=reason)

    def rediscover(self, reason: str = "recover") -> DiscoveryResult:
        """Drop the pin and re-run discovery on the freshest window.

        Recovery must *not* jump back to the stale pre-incident split:
        the traffic that drifted during the outage is what the
        re-opened GPU will serve.  Profiles on the last completed
        window when one exists, else on a stored-key sample.
        """
        self._forced = False
        self.stats.rediscoveries += 1
        self.balancer.reprofile(self._last_sample)
        result = self.balancer.discover()
        self._apply((result.depth, result.ratio), gain=0.0, reason=reason,
                    kernel=result.kernel)
        return result
