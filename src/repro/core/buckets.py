"""Query bucketing (paper section 5.4).

Incoming queries are broken into buckets of ``M`` (default 16K, the
optimum found in Fig 11) which are then scheduled through the CPU-GPU
pipeline.  ``M`` trades throughput (amortizing ``T_init``/``K_init``)
against latency.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

DEFAULT_BUCKET_SIZE = 16 * 1024


def num_buckets(n_queries: int, bucket_size: int = DEFAULT_BUCKET_SIZE) -> int:
    """Number of buckets a query stream decomposes into."""
    if bucket_size <= 0:
        raise ValueError("bucket size must be positive")
    return -(-n_queries // bucket_size)


def iter_buckets(
    queries: Sequence, bucket_size: int = DEFAULT_BUCKET_SIZE
) -> Iterator[np.ndarray]:
    """Yield the query stream in buckets of at most ``bucket_size``."""
    if bucket_size <= 0:
        raise ValueError("bucket size must be positive")
    q = np.asarray(queries)
    for start in range(0, len(q), bucket_size):
        yield q[start: start + bucket_size]
