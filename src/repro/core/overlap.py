"""Real overlapped CPU<->GPU bucket execution (threads + double buffering).

The paper's headline throughput comes from overlapping the GPU
I-segment stage with the CPU L-segment stage (section 5.4, Figs 5-6).
:mod:`repro.core.pipeline` *models* that overlap with an event-driven
simulator; this module *executes* it: real buckets flow through a
bounded-queue pipeline of actual ``threading`` workers, so the overlap
shows up in wall-clock time, not just in the cost model.

Thread topology (``strategy`` selects the shape)::

    dispatcher (caller thread)
        slices the query stream into buckets, sort/deduplicates each
        (reusing BucketPlan), and performs the *stateful* launch
        screening — injector consultation + launch counter — serially
        in bucket order, then feeds a bounded queue (the buffer slots)
    GPU-stage workers (1 for pipelined, N>=2 for double_buffered)
        drive the pure vectorised descent (``tree.gpu_descend``) on
        independent buffer slots; NumPy releases the GIL inside the
        large array ops, so workers genuinely run concurrently
    CPU leaf-stage pool (``cpu_workers`` threads)
        shards each bucket's ``cpu_finish_bucket`` across chunks; the
        worker finishing a bucket's last chunk inverse-scatters the
        per-distinct results back to arrival order into the caller's
        output array

Guarantees:

* **bit-identical results** to the serial
  :class:`~repro.core.batching.BatchingEngine` — same sort/dedup plan,
  same pure kernels, chunking the leaf stage is element-independent,
  and each bucket scatters into a disjoint output slice;
* **deterministic modeled counters** — the stateful pieces are never
  raced: fault/launch screening happens serially in the dispatcher (so
  the injector sees exactly the serial operation order) and the pure
  workers accumulate transactions into per-worker cells that merge into
  the device counters once, after all workers joined;
* **backpressure** — both queues are bounded; the dispatcher blocks
  when all buffer slots are full, exactly the double-buffering budget;
* **clean shutdown + exception propagation** — every blocking queue
  operation is stop-aware; a worker exception aborts the run, an
  injected launch fault stops dispatch but *drains* the in-flight
  buckets first (keeping counters bit-identical to the serial path,
  which executed every bucket before the failing screen); in both
  cases all threads are joined before ``lookup_batch`` raises, so a
  caller that catches the fault (the resilience layer degrading to
  CPU-only) never leaves workers running.
"""

from __future__ import annotations

import queue
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.batching import BucketPlan, plan_bucket
from repro.core.buckets import DEFAULT_BUCKET_SIZE, iter_buckets
from repro.core.pipeline import BucketStrategy
from repro.gpusim.kernels.frontier_search import validate_kernel
from repro.obs import NULL_OBS

#: granularity of stop-aware queue waits (seconds); every blocking
#: operation re-checks the stop flag at least this often, which is what
#: makes deadlock impossible even when an exception fires mid-bucket
POLL_S = 0.02


@dataclass
class QueueStats:
    """Occupancy of one bounded pipeline queue, sampled at every put."""

    capacity: int = 0
    samples: int = 0
    occupancy_sum: int = 0
    max_occupancy: int = 0

    def sample(self, size: int) -> None:
        self.samples += 1
        self.occupancy_sum += size
        if size > self.max_occupancy:
            self.max_occupancy = size

    @property
    def mean_occupancy(self) -> float:
        if self.samples == 0:
            return 0.0
        return self.occupancy_sum / self.samples

    def snapshot(self) -> Dict[str, float]:
        return {
            "capacity": self.capacity,
            "samples": self.samples,
            "mean_occupancy": self.mean_occupancy,
            "max_occupancy": self.max_occupancy,
        }

    def reset(self) -> None:
        self.samples = 0
        self.occupancy_sum = 0
        self.max_occupancy = 0


@dataclass
class OverlapStats:
    """Aggregated accounting of an overlapped engine's executed work.

    The modeled counters (buckets/queries/unique/transactions) match
    :class:`repro.core.batching.BatchStats` for the same workload; the
    wall-clock fields are what the overlap actually bought.
    """

    buckets: int = 0
    queries: int = 0
    unique: int = 0
    transactions: int = 0
    baseline_transactions: int = 0
    baselines_measured: int = 0
    #: makespan of all lookup_batch calls (ns, wall)
    wall_ns: float = 0.0
    #: busy wall time of the dispatcher (planning + screening)
    dispatch_busy_ns: float = 0.0
    #: summed busy wall time of the GPU-stage workers
    gpu_busy_ns: float = 0.0
    #: summed busy wall time of the CPU leaf-stage workers
    cpu_busy_ns: float = 0.0
    gpu_queue: QueueStats = field(default_factory=QueueStats)
    cpu_queue: QueueStats = field(default_factory=QueueStats)

    @property
    def duplicate_fraction(self) -> float:
        if self.queries == 0:
            return 0.0
        return 1.0 - self.unique / self.queries

    @property
    def transactions_per_query(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.transactions / self.queries

    @property
    def busy_ns(self) -> float:
        """Total stage busy time across all threads."""
        return self.dispatch_busy_ns + self.gpu_busy_ns + self.cpu_busy_ns

    @property
    def overlap_efficiency(self) -> float:
        """Measured concurrency: stage busy time over wall time.

        1.0 means perfectly serial execution (no overlap); values above
        1.0 mean that much stage work ran concurrently — e.g. 1.8 means
        the pipeline packed 1.8 seconds of stage time into every wall
        second.  Bounded by the number of runnable threads, and on a
        single-core host by ~1.0 regardless of topology.
        """
        if self.wall_ns <= 0:
            return 0.0
        return self.busy_ns / self.wall_ns

    def snapshot(self) -> Dict[str, object]:
        return {
            "buckets": self.buckets,
            "queries": self.queries,
            "unique": self.unique,
            "transactions": self.transactions,
            "baseline_transactions": self.baseline_transactions,
            "baselines_measured": self.baselines_measured,
            "duplicate_fraction": self.duplicate_fraction,
            "wall_ns": self.wall_ns,
            "dispatch_busy_ns": self.dispatch_busy_ns,
            "gpu_busy_ns": self.gpu_busy_ns,
            "cpu_busy_ns": self.cpu_busy_ns,
            "overlap_efficiency": self.overlap_efficiency,
            "gpu_queue": self.gpu_queue.snapshot(),
            "cpu_queue": self.cpu_queue.snapshot(),
        }

    def reset(self) -> None:
        caps = (self.gpu_queue.capacity, self.cpu_queue.capacity)
        self.buckets = 0
        self.queries = 0
        self.unique = 0
        self.transactions = 0
        self.baseline_transactions = 0
        self.baselines_measured = 0
        self.wall_ns = 0.0
        self.dispatch_busy_ns = 0.0
        self.gpu_busy_ns = 0.0
        self.cpu_busy_ns = 0.0
        self.gpu_queue = QueueStats(capacity=caps[0])
        self.cpu_queue = QueueStats(capacity=caps[1])


class _Sentinel:
    """End-of-stream marker (one per worker)."""


_SENTINEL = _Sentinel()
_STOPPED = _Sentinel()


class _BucketState:
    """One in-flight bucket between the GPU stage and the scatter."""

    __slots__ = ("index", "start", "plan", "codes", "per_unique",
                 "_remaining", "_lock")

    def __init__(self, index: int, start: int, plan: BucketPlan,
                 codes: np.ndarray, per_unique: np.ndarray,
                 n_chunks: int):
        self.index = index
        self.start = start
        self.plan = plan
        self.codes = codes
        self.per_unique = per_unique
        self._remaining = n_chunks
        self._lock = threading.Lock()

    def chunk_done(self) -> bool:
        """Count one finished chunk; True when the bucket completed."""
        with self._lock:
            self._remaining -= 1
            return self._remaining == 0


class OverlappedEngine:
    """Executes sorted/deduplicated buckets through real worker threads.

    Duck-typed over both hybrid trees — it needs ``spec``,
    ``gpu_begin_bucket`` / ``gpu_descend`` / ``cpu_finish_bucket`` /
    ``modeled_transactions`` and (for counter merging) ``device``.

    ``strategy`` (a :class:`~repro.core.pipeline.BucketStrategy` or its
    string value) picks the topology:

    * ``sequential`` — no threads; each bucket runs to completion
      inline.  The reference/fallback path, bit-identical by
      construction.
    * ``pipelined`` — one GPU worker, one buffer slot: the CPU pool
      finishes bucket *i* while the GPU descends bucket *i+1* (Fig 5).
    * ``double_buffered`` — ``gpu_workers`` (>= 2) workers on
      independent buffer slots hide the hand-offs entirely (Fig 6).

    ``queue_depth`` overrides the buffer-slot count (tests use 1 to
    stress backpressure); ``cpu_chunk_min`` bounds leaf-stage shard
    granularity so tiny buckets are not over-split.
    """

    def __init__(
        self,
        tree,
        bucket_size: Optional[int] = None,
        strategy="double_buffered",
        gpu_workers: Optional[int] = None,
        cpu_workers: int = 4,
        queue_depth: Optional[int] = None,
        measure_baseline: bool = False,
        cpu_chunk_min: int = 2048,
        obs=None,
        balancer=None,
        kernel: Optional[str] = None,
    ):
        self.tree = tree
        #: explicit GPU kernel override; ``None`` defers to the
        #: balancer's discovered kernel, then the tree default
        self.kernel = validate_kernel(kernel) if kernel is not None else None
        #: optional (D, R) split source — an
        #: :class:`repro.core.adaptive.AdaptiveController` or
        #: :class:`~repro.core.adaptive.StaticSplit`.  Consulted and
        #: fed strictly in the dispatcher (serially, in bucket order),
        #: so the rebalance schedule — like fault screening — is
        #: deterministic in the bucket sequence; workers only ever run
        #: the pure split descent.
        self.balancer = balancer
        if balancer is not None and not getattr(
            tree, "supports_split_descent", False
        ):
            raise ValueError(
                "a (D, R) balancer needs a tree with a mid-tree GPU "
                "resume path (supports_split_descent); the regular "
                "HB+-tree is balanced through ResilientHBPlusTree's "
                "mode controller instead"
            )
        #: explicit :class:`repro.obs.Observability` override; when
        #: None the engine follows the tree's bundle dynamically (so
        #: ``tree.attach_obs`` works regardless of construction order)
        self._obs = obs
        self.bucket_size = bucket_size or getattr(
            getattr(tree, "machine", None), "bucket_size", DEFAULT_BUCKET_SIZE
        )
        self.strategy = (
            strategy if isinstance(strategy, BucketStrategy)
            else BucketStrategy(strategy)
        )
        if gpu_workers is None:
            gpu_workers = 2 if self.strategy is BucketStrategy.DOUBLE_BUFFERED else 1
        if self.strategy is BucketStrategy.PIPELINED and gpu_workers != 1:
            raise ValueError("pipelined strategy uses exactly one GPU worker")
        if gpu_workers < 1 or cpu_workers < 1:
            raise ValueError("need at least one worker per stage")
        self.gpu_workers = gpu_workers
        self.cpu_workers = cpu_workers
        if queue_depth is None:
            # pipelined: a single buffer slot; double buffered: one slot
            # per GPU worker (the independent buffers of Fig 6)
            queue_depth = 1 if self.strategy is BucketStrategy.PIPELINED \
                else gpu_workers
        if queue_depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.queue_depth = queue_depth
        self.cpu_queue_depth = max(queue_depth, 2 * cpu_workers)
        self.measure_baseline = measure_baseline
        self.cpu_chunk_min = max(1, cpu_chunk_min)
        self.stats = OverlapStats()
        self.stats.gpu_queue.capacity = self.queue_depth
        self.stats.cpu_queue.capacity = self.cpu_queue_depth
        #: serializes batch entry against :meth:`quiesce` — worker
        #: threads live only inside ``lookup_batch``, so holding this
        #: lock guarantees no thread is touching the tree; the tree's
        #: own ``serve_lock`` is adopted when it has one, so direct
        #: tree scans serialize against the same quiesce window
        self._serve_lock = getattr(tree, "serve_lock", None) \
            or threading.RLock()

    @property
    def obs(self):
        """The live observability bundle (explicit override or the
        tree's attached bundle; the shared disabled one otherwise)."""
        if self._obs is not None:
            return self._obs
        return getattr(self.tree, "obs", NULL_OBS)

    # ------------------------------------------------------------------

    def lookup_batch(self, queries: Sequence) -> np.ndarray:
        """All queries' values in arrival order; sentinel = not found.

        Bit-identical to ``BatchingEngine(tree).lookup_batch(queries)``
        and to the tree's own serial path.  Raises whatever a worker or
        the launch screening raised — but only after every in-flight
        bucket drained and every thread joined.
        """
        q = self.tree.spec.coerce(queries)
        out = np.zeros(len(q), dtype=self.tree.spec.dtype)
        if len(q) == 0:
            return out
        t0 = time.perf_counter_ns()
        try:
            with self._serve_lock, self.obs.span(
                "overlap.lookup_batch",
                queries=len(q), strategy=self.strategy.value,
            ):
                if self.strategy is BucketStrategy.SEQUENTIAL:
                    self._run_sequential(q, out)
                else:
                    _OverlapRun(self, q, out).execute()
        finally:
            self.stats.wall_ns += time.perf_counter_ns() - t0
        return out

    @contextmanager
    def quiesce(self):
        """Hold serving still between batches (snapshot-under-load).

        The pipeline's worker threads exist only for the duration of a
        ``lookup_batch`` call and are joined before it returns, so
        taking the serve lock guarantees no worker is mid-descent:
        the snapshot reads a tree no thread is touching.  Batches
        before and after the quiesce window stay bit-identical.
        """
        with self._serve_lock:
            yield self

    def run_scans(self, los: Sequence, his: Sequence):
        """Batched range scans under the serve lock.

        Scans reuse the dispatcher's stateful machinery — balancer
        split + feedback and the serial launch screening (the injector
        fault site), in bucket order — then finish with the vectorised
        L-segment chain walk (``tree.cpu_scan_bucket``).  The leaf
        stage dominates a scan and produces variable-length output, so
        scans run serially under the serve lock rather than through the
        lookup pipeline's fixed-width buffers; results are
        bit-identical to the sequential per-tree walk.
        """
        lo_arr = self.tree.spec.coerce(los)
        hi_arr = self.tree.spec.coerce(his)
        if len(lo_arr) != len(hi_arr):
            raise ValueError("run_scans needs matching lo/hi arrays")
        if len(lo_arr) == 0:
            return []
        obs = self.obs
        out = []
        t0 = time.perf_counter_ns()
        try:
            with self._serve_lock, obs.span(
                "overlap.run_scans", scans=len(lo_arr)
            ):
                bucket_starts = range(0, len(lo_arr), self.bucket_size)
                for index, start in enumerate(bucket_starts):
                    his_b = hi_arr[start: start + self.bucket_size]
                    t_plan = time.perf_counter_ns()
                    try:
                        with obs.span("plan_screen", bucket=index):
                            plan = plan_bucket(
                                lo_arr[start: start + self.bucket_size],
                                dtype=self.tree.spec.dtype,
                            )
                            obs.emit(
                                "scan_bucket_start", index=index,
                                n_queries=plan.n_queries,
                                n_unique=plan.n_unique,
                            )
                            levels, gpu_active, kernel = \
                                self._dispatch_split(plan)
                            launch = self.tree.gpu_begin_bucket(gpu_active)
                    finally:
                        self.stats.dispatch_busy_ns += \
                            time.perf_counter_ns() - t_plan
                    t_gpu = time.perf_counter_ns()
                    try:
                        with obs.span("gpu_descend", bucket=index,
                                      n_unique=plan.n_unique):
                            codes, txns = self._stage_descend(
                                plan, launch, levels, kernel
                            )
                    finally:
                        self.stats.gpu_busy_ns += \
                            time.perf_counter_ns() - t_gpu
                    t_cpu = time.perf_counter_ns()
                    try:
                        with obs.span("cpu_scan", bucket=index,
                                      n_unique=plan.n_unique):
                            scans = self.tree.cpu_scan_bucket(
                                plan.queries, his_b, codes[plan.inverse]
                            )
                            out.extend(scans)
                    finally:
                        self.stats.cpu_busy_ns += \
                            time.perf_counter_ns() - t_cpu
                    tuples = sum(len(s) for s in scans)
                    self._account_bucket(plan, txns)
                    if self.balancer is not None and hasattr(
                        self.balancer, "note_scan_bucket"
                    ):
                        self.balancer.note_scan_bucket(
                            plan.queries, tuples
                        )
                    obs.emit(
                        "scan_bucket_end", index=index,
                        n_queries=plan.n_queries, n_unique=plan.n_unique,
                        transactions=txns, tuples=tuples,
                    )
        finally:
            self.stats.wall_ns += time.perf_counter_ns() - t0
        return out

    # ------------------------------------------------------------------
    # (D, R) split plumbing

    def _bucket_kernel(self) -> Optional[str]:
        """The GPU kernel for the next bucket (None = tree default)."""
        if self.kernel is not None:
            return self.kernel
        if self.balancer is not None:
            return getattr(self.balancer, "kernel", None)
        return None

    def _dispatch_split(self, plan: BucketPlan):
        """Read + feed the balancer once per bucket (dispatcher only).

        Returns ``(levels, gpu_active, kernel)``: the per-query CPU
        descent depths (None when unbalanced), the query count the
        launch screening charges — an all-CPU bucket screens zero GPU
        queries, so it launches no kernel and consults no injector —
        and the GPU kernel the split was priced with.  The kernel is
        read *before* the balancer is fed: feeding back may close a
        window and move the committed split, which must only affect the
        next bucket.
        """
        if self.balancer is None:
            return None, plan.n_unique, self._bucket_kernel()
        from repro.core.adaptive import split_levels

        depth, ratio = self.balancer.split()
        kernel = self._bucket_kernel()
        self.balancer.note_bucket(plan.queries)
        levels = split_levels(
            plan.n_unique, depth, ratio, self.tree.height
        )
        gpu_active = int(np.count_nonzero(levels < self.tree.gpu_depth))
        return levels, gpu_active, kernel

    def _stage_descend(self, plan: BucketPlan, launch: bool, levels,
                       kernel: Optional[str] = None):
        """Pure inner-level stage for one bucket (worker-safe).

        Unbalanced buckets run the full GPU descent; split buckets walk
        their top levels on the CPU and resume on the GPU.  When the
        split put every query's full descent on the CPU, the CPU nodes
        *are* the leaf indices and no GPU work happens at all.
        """
        if levels is None:
            if launch:
                return self.tree.gpu_descend(
                    plan.sorted_unique, kernel=kernel
                )
            return np.zeros(plan.n_unique, dtype=np.int64), 0
        nodes = self.tree.cpu_descend_top(plan.sorted_unique, levels)
        if launch:
            return self.tree.gpu_descend_from(
                plan.sorted_unique, levels, nodes, kernel=kernel
            )
        return nodes, 0

    # ------------------------------------------------------------------
    # sequential reference path (no threads)

    def _run_sequential(self, q: np.ndarray, out: np.ndarray) -> None:
        tree = self.tree
        obs = self.obs
        for index, bucket in enumerate(iter_buckets(q, self.bucket_size)):
            # each timed region is accumulated at exactly one site (the
            # finally), so a fault raised by the launch screening still
            # books the time spent before it — and never twice
            t_plan = time.perf_counter_ns()
            try:
                with obs.span("plan_screen", bucket=index):
                    plan = plan_bucket(bucket, dtype=tree.spec.dtype)
                    obs.emit(
                        "bucket_start", index=index,
                        n_queries=plan.n_queries, n_unique=plan.n_unique,
                    )
                    levels, gpu_active, kernel = self._dispatch_split(plan)
                    launch = tree.gpu_begin_bucket(gpu_active)
            finally:
                self.stats.dispatch_busy_ns += time.perf_counter_ns() - t_plan
            t_gpu = time.perf_counter_ns()
            try:
                with obs.span("gpu_descend", bucket=index,
                              n_unique=plan.n_unique):
                    codes, txns = self._stage_descend(
                        plan, launch, levels, kernel
                    )
                    if self.measure_baseline:
                        self.stats.baseline_transactions += \
                            tree.modeled_transactions(plan.queries)
                        self.stats.baselines_measured += 1
            finally:
                self.stats.gpu_busy_ns += time.perf_counter_ns() - t_gpu
            t_cpu = time.perf_counter_ns()
            try:
                with obs.span("cpu_finish", bucket=index,
                              n_unique=plan.n_unique):
                    per_unique = tree.cpu_finish_bucket(
                        plan.sorted_unique, codes
                    )
                    start = index * self.bucket_size
                    out[start: start + plan.n_queries] = plan.scatter(
                        per_unique
                    )
            finally:
                self.stats.cpu_busy_ns += time.perf_counter_ns() - t_cpu
            self._account_bucket(plan, txns)
            obs.emit(
                "bucket_end", index=index,
                n_queries=plan.n_queries, n_unique=plan.n_unique,
                transactions=txns,
            )

    def _account_bucket(self, plan: BucketPlan, txns: int) -> None:
        """Merge one completed bucket into engine + device counters."""
        self.stats.buckets += 1
        self.stats.queries += plan.n_queries
        self.stats.unique += plan.n_unique
        self.stats.transactions += txns
        counters = self.tree.device.memory.counters
        counters.transactions_64 += txns
        counters.bytes_moved += txns * 64


class _OverlapRun:
    """One threaded ``lookup_batch`` execution (workers live per call).

    All mutable state shared between threads is either (a) owned by one
    thread, (b) a ``queue.Queue``, (c) guarded by a lock, or (d) a
    disjoint slice of a preallocated array.  Modeled counters are only
    touched in :meth:`_merge`, after every worker joined.
    """

    def __init__(self, engine: OverlappedEngine, q: np.ndarray,
                 out: np.ndarray):
        self.engine = engine
        self.tree = engine.tree
        self.q = q
        self.out = out
        self.gpu_q: "queue.Queue" = queue.Queue(maxsize=engine.queue_depth)
        self.cpu_q: "queue.Queue" = queue.Queue(maxsize=engine.cpu_queue_depth)
        self.stop = threading.Event()
        self._error_lock = threading.Lock()
        self.errors: List[BaseException] = []
        #: launch-screening fault (graceful: drain, then re-raise)
        self.fault: Optional[BaseException] = None
        # per-worker accumulation cells (merged once, deterministically)
        self.gpu_txns = [0] * engine.gpu_workers
        self.gpu_baseline = [0] * engine.gpu_workers
        self.gpu_baselines_measured = [0] * engine.gpu_workers
        self.gpu_busy = [0] * engine.gpu_workers
        self.cpu_busy = [0] * engine.cpu_workers
        self.dispatch_busy = 0
        self._gpu_alive = engine.gpu_workers
        self._alive_lock = threading.Lock()
        self._done_lock = threading.Lock()
        self.done_buckets = 0
        self.done_queries = 0
        self.done_unique = 0

    # -- stop-aware queue primitives -----------------------------------

    def _put(self, qobj: "queue.Queue", item, qstats: QueueStats) -> bool:
        """Blocking put that re-checks the stop flag; False if stopped."""
        while True:
            if self.stop.is_set():
                return False
            try:
                qobj.put(item, timeout=POLL_S)
            except queue.Full:
                continue
            qstats.sample(qobj.qsize())
            return True

    def _get(self, qobj: "queue.Queue"):
        """Blocking get that re-checks the stop flag."""
        while True:
            if self.stop.is_set():
                return _STOPPED
            try:
                return qobj.get(timeout=POLL_S)
            except queue.Empty:
                continue

    def _fail(self, err: BaseException) -> None:
        with self._error_lock:
            self.errors.append(err)
        self.stop.set()

    # -- lifecycle ------------------------------------------------------

    def execute(self) -> None:
        eng = self.engine
        gpu_threads = [
            threading.Thread(
                target=self._gpu_worker, args=(i,), daemon=True,
                name=f"overlap-gpu-{i}",
            )
            for i in range(eng.gpu_workers)
        ]
        cpu_threads = [
            threading.Thread(
                target=self._cpu_worker, args=(i,), daemon=True,
                name=f"overlap-cpu-{i}",
            )
            for i in range(eng.cpu_workers)
        ]
        for t in gpu_threads + cpu_threads:
            t.start()
        try:
            self._dispatch()
        except BaseException as err:  # unexpected dispatcher failure
            self._fail(err)
        finally:
            # always deliver end-of-stream so GPU workers terminate;
            # when stopped they exit on the flag instead
            for _ in range(eng.gpu_workers):
                self._put(self.gpu_q, _SENTINEL, eng.stats.gpu_queue)
        for t in gpu_threads + cpu_threads:
            t.join()
        self._merge()
        if self.errors:
            raise self.errors[0]
        if self.fault is not None:
            raise self.fault

    def _dispatch(self) -> None:
        eng = self.engine
        obs = eng.obs
        for index, bucket in enumerate(iter_buckets(self.q, eng.bucket_size)):
            if self.stop.is_set():
                break
            # the timed region (plan + stateful screening) accumulates
            # at exactly one site — the finally — so the fault branch
            # and the fall-through can never both book the same
            # interval (the double-count hazard this loop used to carry)
            t0 = time.perf_counter_ns()
            try:
                with obs.span("plan_screen", bucket=index):
                    plan = plan_bucket(bucket, dtype=self.tree.spec.dtype)
                    obs.emit(
                        "bucket_start", index=index,
                        n_queries=plan.n_queries, n_unique=plan.n_unique,
                    )
                    # split decision + balancer feedback, serially in
                    # bucket order, next to the injector for the same
                    # reason: the rebalance schedule must be a
                    # deterministic function of the bucket sequence
                    levels, gpu_active, kernel = eng._dispatch_split(plan)
                    try:
                        # stateful screening, serially in bucket order:
                        # the injector draw stream is identical to the
                        # serial path
                        launch = self.tree.gpu_begin_bucket(gpu_active)
                    except Exception as err:
                        # an injected launch fault: stop feeding, drain
                        # what is already in flight, re-raise after the
                        # join
                        self.fault = err
            finally:
                self.dispatch_busy += time.perf_counter_ns() - t0
            if self.fault is not None:
                break
            item = (index, index * eng.bucket_size, plan, launch, levels,
                    kernel)
            if not self._put(self.gpu_q, item, eng.stats.gpu_queue):
                break

    # -- workers --------------------------------------------------------

    def _gpu_worker(self, wid: int) -> None:
        eng = self.engine
        obs = eng.obs
        try:
            while True:
                item = self._get(self.gpu_q)
                if isinstance(item, _Sentinel):
                    break
                index, start, plan, launch, levels, kernel = item
                t0 = time.perf_counter_ns()
                with obs.span("gpu_descend", bucket=index,
                              n_unique=plan.n_unique):
                    codes, txns = eng._stage_descend(
                        plan, launch, levels, kernel
                    )
                self.gpu_txns[wid] += txns
                if eng.measure_baseline:
                    self.gpu_baseline[wid] += self.tree.modeled_transactions(
                        plan.queries
                    )
                    self.gpu_baselines_measured[wid] += 1
                self.gpu_busy[wid] += time.perf_counter_ns() - t0
                self._submit_cpu(index, start, plan, codes, txns)
        except BaseException as err:
            self._fail(err)
        finally:
            with self._alive_lock:
                self._gpu_alive -= 1
                last = self._gpu_alive == 0
            if last:
                # the GPU stage fully drained: close the CPU stage
                for _ in range(eng.cpu_workers):
                    self._put(self.cpu_q, _SENTINEL, eng.stats.cpu_queue)

    def _submit_cpu(self, index: int, start: int, plan: BucketPlan,
                    codes: np.ndarray, txns: int) -> None:
        """Shard one bucket's leaf stage into chunk tasks."""
        eng = self.engine
        n_u = plan.n_unique
        n_chunks = min(
            eng.cpu_workers, max(1, -(-n_u // eng.cpu_chunk_min))
        )
        per_unique = np.empty(n_u, dtype=self.tree.spec.dtype)
        state = _BucketState(index, start, plan, codes, per_unique, n_chunks)
        bounds = np.linspace(0, n_u, n_chunks + 1).astype(np.int64)
        for c in range(n_chunks):
            task = (state, int(bounds[c]), int(bounds[c + 1]), txns)
            if not self._put(self.cpu_q, task, eng.stats.cpu_queue):
                return

    def _cpu_worker(self, wid: int) -> None:
        obs = self.engine.obs
        try:
            while True:
                item = self._get(self.cpu_q)
                if isinstance(item, _Sentinel):
                    break
                state, a, b, txns = item
                t0 = time.perf_counter_ns()
                with obs.span("cpu_finish_chunk", bucket=state.index,
                              lo=a, hi=b):
                    state.per_unique[a:b] = self.tree.cpu_finish_bucket(
                        state.plan.sorted_unique[a:b], state.codes[a:b]
                    )
                    completed = state.chunk_done()
                    if completed:
                        # last chunk: inverse-scatter into the (disjoint)
                        # output slice and book the completed bucket
                        end = state.start + state.plan.n_queries
                        self.out[state.start: end] = state.plan.scatter(
                            state.per_unique
                        )
                        with self._done_lock:
                            self.done_buckets += 1
                            self.done_queries += state.plan.n_queries
                            self.done_unique += state.plan.n_unique
                self.cpu_busy[wid] += time.perf_counter_ns() - t0
                if completed:
                    # completion order, from a worker thread — handlers
                    # must be thread-safe (see repro.obs.hooks)
                    obs.emit(
                        "bucket_end", index=state.index,
                        n_queries=state.plan.n_queries,
                        n_unique=state.plan.n_unique, transactions=txns,
                    )
        except BaseException as err:
            self._fail(err)

    # -- deterministic counter merge ------------------------------------

    def _merge(self) -> None:
        """Fold per-worker cells into engine + device counters.

        Runs single-threaded after all joins; totals are sums of
        per-bucket quantities, so they are independent of which worker
        ran which bucket in which order — the same totals the serial
        path produces.
        """
        eng = self.engine
        stats = eng.stats
        txns = sum(self.gpu_txns)
        stats.buckets += self.done_buckets
        stats.queries += self.done_queries
        stats.unique += self.done_unique
        stats.transactions += txns
        stats.baseline_transactions += sum(self.gpu_baseline)
        stats.baselines_measured += sum(self.gpu_baselines_measured)
        stats.dispatch_busy_ns += self.dispatch_busy
        stats.gpu_busy_ns += sum(self.gpu_busy)
        stats.cpu_busy_ns += sum(self.cpu_busy)
        counters = self.tree.device.memory.counters
        counters.transactions_64 += txns
        counters.bytes_moved += txns * 64
