"""The regular HB+-tree (paper section 5).

The CPU side is :class:`RegularCpuBPlusTree` unchanged — "the inner
nodes are identical" to the CPU-optimized tree (section 5.2).  The
I-segment (all inner nodes) is additionally mirrored into GPU device
memory, packed per node as ``index line | key lines | ref lines``
(1 + 2K cache lines, Fig 2c), upper-pool nodes first and last-level
nodes behind them.

Mirror detail: in each node's device copy the key of its *last used
slot* is pinned to the maximum representable value ("the last keys of
all inner nodes of HB+-tree are always set to the maximum", section
5.3) so the GPU kernel needs no node sizes and every query always finds
a successor — including probes beyond the largest stored key, which
fall through the rightmost path.

Search is the bucket flow of section 5.4 with the 3-step node search of
section 5.3 on the GPU; the result of the last-level search directly
addresses the target cache line inside the big leaf.  Batch updates are
implemented in :mod:`repro.core.update`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.cpu.gapped import GappedCpuBPlusTree
from repro.cpu.node_search import NodeSearchAlgorithm
from repro.gpusim.device import GpuDevice
from repro.gpusim.kernels.frontier_search import (
    FRONTIER,
    PER_QUERY,
    validate_kernel,
)
from repro.gpusim.kernels.regular_search import (
    launch_regular_search,
    regular_search_vectorized,
)
from repro.gpusim.transfer import PcieLink
from repro.keys import key_spec
from repro.memsim.mainmem import MemorySystem, PageConfig
from repro.obs import NULL_OBS
from repro.platform.configs import MachineConfig
from repro.platform.costmodel import (
    BucketCosts,
    CpuCostModel,
    CpuQueryProfile,
    hybrid_bucket_costs,
)


@dataclass
class GpuSearchResult:
    """Outcome of the GPU stage: packed (node, leaf-line) codes."""

    codes: np.ndarray
    transactions: int
    #: modeled transactions the same batch costs in *arrival* order;
    #: set by the batch engine (:mod:`repro.core.batching`) when it
    #: measured the unsorted baseline of a sorted bucket
    baseline_transactions: Optional[int] = None

    @property
    def transactions_per_query(self) -> float:
        if len(self.codes) == 0:
            return 0.0
        return self.transactions / len(self.codes)

    @property
    def sorted_gain(self) -> float:
        """Fraction of modeled transactions saved vs arrival order."""
        if not self.baseline_transactions:
            return 0.0
        return 1.0 - self.transactions / self.baseline_transactions


@dataclass
class MirrorSyncStats:
    """Outcome of one batched dirty-node mirror sync."""

    nodes: int
    transfers: int
    time_ns: float
    #: True when the batch fell back to a full mirror rebuild (a dirty
    #: node lay outside the mirrored capacity)
    rebuilt: bool = False


class HBPlusTree:
    """Hybrid regular B+-tree over a machine's CPU + GPU."""

    def __init__(
        self,
        keys: Sequence[int] = (),
        values: Sequence[int] = (),
        machine: Optional[MachineConfig] = None,
        key_bits: int = 64,
        mem: Optional[MemorySystem] = None,
        page_config: PageConfig = PageConfig.HUGE_SMALL,
        algorithm: NodeSearchAlgorithm = NodeSearchAlgorithm.HIERARCHICAL_SIMD,
        fill: float = 1.0,
        injector=None,
        gapped: bool = False,
    ):
        if machine is None:
            raise ValueError("HBPlusTree requires a MachineConfig")
        self.machine = machine
        self.spec = key_spec(key_bits)
        self.mem = mem if mem is not None else MemorySystem.from_spec(machine.cpu)
        self.device = GpuDevice(machine.gpu)
        self.link = PcieLink(machine.pcie)
        # ``gapped=True`` swaps in the BS-tree-style gapped-leaf CPU
        # tree: same inner-node layout (the mirror packs only inner
        # pools, so the device image is bit-identical for lookups),
        # but most inserts become in-place gap writes that dirty
        # exactly one last-level node
        tree_cls = GappedCpuBPlusTree if gapped else RegularCpuBPlusTree
        self.cpu_tree = tree_cls(
            keys,
            values,
            key_bits=key_bits,
            mem=self.mem,
            page_config=page_config,
            algorithm=algorithm,
            segment_prefix="hb_regular",
            fill=fill,
        )
        #: :class:`repro.faults.FaultInjector`, or None.  Attached
        #: *after* the initial mirror so a tree is always born
        #: consistent; faults hit operation, not construction.
        self.injector = None
        #: True whenever the GPU mirror may disagree with the CPU tree
        #: (a sync was interrupted mid-flight); cleared by a successful
        #: full :meth:`mirror_i_segment`
        self.mirror_stale = False
        #: :class:`repro.obs.Observability`; the shared disabled bundle
        #: until :meth:`attach_obs` threads a live one through
        self.obs = NULL_OBS
        #: default GPU search kernel for calls that do not pass one —
        #: ``"per_query"`` charges warp-window coalescing, ``"frontier"``
        #: level-wise block-wide dedup (same 3-step descent either way)
        self.kernel = PER_QUERY
        #: serializes direct tree reads (range scans) against engine
        #: ``quiesce()`` windows — engines over this tree adopt the
        #: same lock, so a snapshot never observes a mid-split chain
        self.serve_lock = threading.RLock()
        self.mirror_i_segment()
        if injector is not None:
            self.attach_injector(injector)

    def attach_injector(self, injector) -> None:
        """Thread a :class:`repro.faults.FaultInjector` through the
        PCIe link, the GPU device, and this tree's sync path."""
        self.injector = injector
        self.link.injector = injector
        self.device.injector = injector

    def attach_obs(self, obs) -> None:
        """Thread a :class:`repro.obs.Observability` bundle through the
        PCIe link, the GPU device, and this tree (mirroring
        :meth:`attach_injector`).  Engines constructed over this tree
        without an explicit bundle follow it automatically."""
        self.obs = obs
        self.link.obs = obs
        self.device.obs = obs

    # ------------------------------------------------------------------
    # GPU mirror

    @property
    def node_stride(self) -> int:
        """Elements per mirrored node: index line + keys + refs."""
        kpl = self.spec.keys_per_line
        return kpl + 2 * self.cpu_tree.fanout

    def _pack_nodes(self, pool, nodes: np.ndarray) -> np.ndarray:
        """Device images of many pool nodes at once, one row per node.

        Bulk twin of the old per-node packing loop: the MAX catch-all
        pin, the index-line derivation and the ref cast all happen as
        whole-array operations.
        """
        kpl = self.spec.keys_per_line
        fanout = self.cpu_tree.fanout
        nodes = np.asarray(nodes, dtype=np.int64)
        n = len(nodes)
        out = np.empty((n, self.node_stride), dtype=np.uint64)
        if n == 0:
            return out
        # the fancy index already copies, so casting may reuse it
        keys = pool.keys[nodes].astype(np.uint64, copy=False)
        size = np.maximum(1, pool.size[nodes]).astype(np.int64)
        keys[np.arange(n), size - 1] = np.uint64(self.spec.max_value)
        out[:, :kpl] = keys.reshape(n, kpl, kpl)[:, :, -1]
        out[:, kpl: kpl + fanout] = keys
        out[:, kpl + fanout:] = pool.refs[nodes].astype(np.uint64)
        return out

    def _pack_node(self, pool, node: int) -> np.ndarray:
        """Device image of one inner node (with the MAX catch-all pin)."""
        return self._pack_nodes(pool, np.asarray([node]))[0]

    def pack_i_segment(self) -> np.ndarray:
        """The device image of the full I-segment, packed from the CPU
        tree (the source of truth).  Does not touch the GPU."""
        tree = self.cpu_tree
        upper_n = tree.upper.count
        last_n = tree.last.count
        stride = self.node_stride
        flat = np.empty((upper_n + last_n) * stride, dtype=np.uint64)
        flat[: upper_n * stride] = self._pack_nodes(
            tree.upper, np.arange(upper_n)
        ).reshape(-1)
        flat[upper_n * stride:] = self._pack_nodes(
            tree.last, np.arange(last_n)
        ).reshape(-1)
        return flat

    def pack_i_segment_scalar(self) -> np.ndarray:
        """Reference per-node packing loop.

        Kept as the equivalence/speedup baseline for the vectorised
        :meth:`pack_i_segment` (asserted in tests and timed by the
        wall-clock benchmark); not used on any hot path.
        """
        tree = self.cpu_tree
        kpl = self.spec.keys_per_line
        fanout = self.cpu_tree.fanout
        upper_n = tree.upper.count
        last_n = tree.last.count
        stride = self.node_stride
        flat = np.zeros((upper_n + last_n) * stride, dtype=np.uint64)

        def pack_one(pool, node):
            keys = pool.keys[node].copy()
            size = max(1, int(pool.size[node]))
            keys[size - 1] = self.spec.max_value
            index_line = keys.reshape(kpl, kpl)[:, -1]
            out = np.empty(stride, dtype=np.uint64)
            out[:kpl] = index_line.astype(np.uint64)
            out[kpl: kpl + fanout] = keys.astype(np.uint64)
            out[kpl + fanout:] = pool.refs[node].astype(np.uint64)
            return out

        for node in range(upper_n):
            flat[node * stride: (node + 1) * stride] = pack_one(tree.upper, node)
        for node in range(last_n):
            slot = upper_n + node
            flat[slot * stride: (slot + 1) * stride] = pack_one(tree.last, node)
        return flat

    def mirror_i_segment(self) -> float:
        """Rebuild + upload the full I-segment mirror; returns time ns.

        On an injected :class:`~repro.faults.SyncInterrupted` or
        transfer fault the old mirror stays in device memory and
        ``mirror_stale`` remains True — the hazard the resilience layer
        (:mod:`repro.core.resilience`) exists to repair.
        """
        with self.obs.span("hbtree.mirror_i_segment"):
            self.mirror_stale = True
            if self.injector is not None:
                self.injector.on_sync()
            flat = self.pack_i_segment()
            self.last_base = self.cpu_tree.upper.count
            t = self.link.to_device(self.device.memory, "iseg_regular", flat)
            self.iseg_buffer = self.device.memory.get("iseg_regular")
            self.mirror_stale = False
        self.obs.count("live.hbtree.mirror_uploads")
        return t

    def sync_node(self, level: int, node: int) -> float:
        """Push one modified inner node to the GPU mirror (section 5.6
        synchronized update).  Returns the transfer time in ns.

        Falls back to a full mirror rebuild when the pools outgrew the
        mirrored capacity (new nodes from splits).
        """
        tree = self.cpu_tree
        stride = self.node_stride
        slot = node + (self.last_base if level == 0 else 0)
        if (slot + 1) * stride > self.iseg_buffer.array.size or (
            level > 0 and node >= self.last_base
        ):
            return self.mirror_i_segment()
        pool = tree.last if level == 0 else tree.upper
        packed = self._pack_node(pool, node)
        was_stale = self.mirror_stale
        self.mirror_stale = True
        t = self.link.update_device(
            self.device.memory, "iseg_regular", packed, offset_elems=slot * stride
        )
        self.mirror_stale = was_stale
        return t

    def sync_nodes(self, dirty: Sequence) -> MirrorSyncStats:
        """Push a batch of modified inner nodes in ranged transfers.

        ``dirty`` is an iterable of ``(level, node)`` pairs (level 0 =
        last-level pool).  Duplicates collapse, the dirty mirror slots
        are sorted, and *adjacent* slots coalesce into one ranged
        ``update_device`` transfer each — so a batch update that soiled
        N nodes costs one PCIe round-trip per contiguous dirty range
        instead of N single-node round-trips (each paying ``T_init``).

        Falls back to a full mirror rebuild when any dirty node lies
        outside the mirrored capacity (splits grew the pools).  On an
        injected transfer fault the exception propagates with
        ``mirror_stale`` left True, exactly like :meth:`sync_node`.
        """
        tree = self.cpu_tree
        stride = self.node_stride
        pairs = sorted({(int(level), int(node)) for level, node in dirty})
        if not pairs:
            return MirrorSyncStats(nodes=0, transfers=0, time_ns=0.0)
        slots = np.asarray(
            [n + (self.last_base if lvl == 0 else 0) for lvl, n in pairs],
            dtype=np.int64,
        )
        out_of_mirror = (
            int(slots.max() + 1) * stride > self.iseg_buffer.array.size
            or any(lvl > 0 and n >= self.last_base for lvl, n in pairs)
        )
        if out_of_mirror:
            t = self.mirror_i_segment()
            return MirrorSyncStats(
                nodes=len(pairs), transfers=1, time_ns=t, rebuilt=True
            )
        order = np.argsort(slots)
        slots = slots[order]
        last_nodes = [n for lvl, n in pairs if lvl == 0]
        upper_nodes = [n for lvl, n in pairs if lvl > 0]
        rows = np.empty((len(pairs), stride), dtype=np.uint64)
        packed_slot = np.empty(len(pairs), dtype=np.int64)
        rows[: len(upper_nodes)] = self._pack_nodes(
            tree.upper, np.asarray(upper_nodes, dtype=np.int64)
        )
        packed_slot[: len(upper_nodes)] = [n for n in upper_nodes]
        rows[len(upper_nodes):] = self._pack_nodes(
            tree.last, np.asarray(last_nodes, dtype=np.int64)
        )
        packed_slot[len(upper_nodes):] = [
            n + self.last_base for n in last_nodes
        ]
        # reorder the packed rows into ascending-slot order
        rows = rows[np.argsort(packed_slot)]
        # contiguous dirty ranges -> one transfer each
        breaks = np.flatnonzero(np.diff(slots) > 1) + 1
        starts = np.r_[0, breaks]
        ends = np.r_[breaks, len(slots)]
        stats = MirrorSyncStats(nodes=len(pairs), transfers=0, time_ns=0.0)
        was_stale = self.mirror_stale
        self.mirror_stale = True
        with self.obs.span("hbtree.sync_nodes", nodes=len(pairs),
                           ranges=len(starts)):
            for s, e in zip(starts.tolist(), ends.tolist()):
                stats.time_ns += self.link.update_device(
                    self.device.memory,
                    "iseg_regular",
                    rows[s:e].reshape(-1),
                    offset_elems=int(slots[s]) * stride,
                )
                stats.transfers += 1
        self.mirror_stale = was_stale
        self.obs.count("live.hbtree.synced_nodes", stats.nodes)
        self.obs.count("live.hbtree.sync_transfers", stats.transfers)
        return stats

    @property
    def i_segment_bytes(self) -> int:
        return self.iseg_buffer.nbytes

    @property
    def height(self) -> int:
        return self.cpu_tree.height

    @property
    def teams_per_warp(self) -> int:
        return max(1, self.machine.gpu.warp_size // self.spec.gpu_threads_per_query)

    # ------------------------------------------------------------------
    # search

    def gpu_begin_bucket(self, n_queries: int) -> bool:
        """Screen + count one bucket's kernel launch (stage-2 entry).

        Mirrors exactly what :meth:`gpu_search_bucket` does before any
        compute — the injector consultation and the launch counter —
        so a concurrent engine can perform the (stateful, fault-bearing)
        screening serially in dispatch order while the pure descent
        runs on worker threads.  Returns False when the bucket launches
        nothing (empty bucket).
        """
        if n_queries == 0:
            return False
        self.device.begin_launch()
        return True

    def _resolve_kernel(self, kernel: Optional[str]) -> str:
        """``kernel`` argument, or this tree's default; validated."""
        return validate_kernel(kernel if kernel is not None else self.kernel)

    def gpu_descend(
        self, queries: np.ndarray, kernel: Optional[str] = None
    ) -> "tuple[np.ndarray, int]":
        """Pure stage-2 descent: ``(codes, transactions)``.

        No launch screening, no counter mutation — safe to call from
        multiple threads concurrently (the mirror is read-only during
        search).  Callers that want serial semantics should pair it
        with :meth:`gpu_begin_bucket` and merge the transactions into
        the device counters, which is what :meth:`gpu_search_bucket`
        and :class:`repro.core.overlap.OverlappedEngine` both do.

        ``kernel="frontier"`` keeps the same 3-step descent (the
        regular layout has no level-contiguous I-segment to sweep) but
        accounts transactions with block-wide level-by-level dedup —
        one line per distinct (node, line) across the whole bucket —
        instead of per-warp windows.  Codes are identical either way.
        """
        q = np.asarray(queries, dtype=self.spec.dtype)
        kern = self._resolve_kernel(kernel)
        if len(q) == 0:
            return np.zeros(0, dtype=np.int64), 0
        return regular_search_vectorized(
            self.iseg_buffer.array,
            self.node_stride,
            self.spec.keys_per_line,
            self.cpu_tree.fanout,
            self.cpu_tree.height,
            self.cpu_tree.root,
            self.last_base,
            q,
            teams_per_warp=self.teams_per_warp,
            frontier_block=len(q) if kern == FRONTIER else None,
        )

    def gpu_search_bucket(
        self, queries: np.ndarray, kernel: Optional[str] = None
    ) -> GpuSearchResult:
        """Stage 2: 3-step descent of all inner levels on the GPU."""
        q = np.asarray(queries, dtype=self.spec.dtype)
        kern = self._resolve_kernel(kernel)
        if not self.gpu_begin_bucket(len(q)):
            # an empty bucket launches nothing and costs nothing
            return GpuSearchResult(
                codes=np.zeros(0, dtype=np.int64), transactions=0
            )
        codes, txns = self.gpu_descend(q, kernel=kern)
        self.device.memory.counters.transactions_64 += txns
        self.device.memory.counters.bytes_moved += txns * 64
        return GpuSearchResult(codes=codes, transactions=txns)

    def modeled_transactions(
        self, queries: np.ndarray, kernel: Optional[str] = None
    ) -> int:
        """Transactions the GPU stage would charge for ``queries``.

        Pure measurement through the coalescing model — no kernel
        launch, no device counters.  Used by the batch engine to price
        the arrival-order baseline of a sorted bucket, and by the mode
        balancer to price each kernel when it profiles.
        """
        q = np.asarray(queries, dtype=self.spec.dtype)
        if len(q) == 0:
            return 0
        _codes, txns = self.gpu_descend(q, kernel=kernel)
        return txns

    def gpu_search_bucket_literal(self, queries: np.ndarray) -> np.ndarray:
        """Stage 2 on the literal SIMT interpreter (slow; for tests)."""
        q = np.asarray(queries, dtype=self.spec.dtype)
        codes, _stats = launch_regular_search(
            self.device,
            self.iseg_buffer,
            self.node_stride,
            self.spec.keys_per_line,
            self.cpu_tree.fanout,
            self.cpu_tree.height,
            self.cpu_tree.root,
            self.last_base,
            q,
        )
        return codes

    def cpu_finish_bucket(
        self, queries: np.ndarray, codes: np.ndarray
    ) -> np.ndarray:
        """Stage 4: search the addressed big-leaf cache lines."""
        q = np.asarray(queries, dtype=self.spec.dtype)
        if len(q) == 0:
            return np.zeros(0, dtype=self.spec.dtype)
        tree = self.cpu_tree
        fanout = tree.fanout
        node = (codes // fanout).astype(np.int64)
        line = (codes % fanout).astype(np.int64)
        p = self.spec.leaf_pairs_per_line
        base = line * p
        rows = tree.leaves.keys[node[:, None], base[:, None] + np.arange(p)]
        pos = np.sum(rows < q[:, None], axis=1)
        pos_c = np.minimum(pos, p - 1)
        found = rows[np.arange(len(q)), pos_c] == q
        out = np.full(len(q), self.spec.max_value, dtype=self.spec.dtype)
        idx = np.arange(len(q))[found]
        out[found] = tree.leaves.values[node[idx], base[idx] + pos_c[idx]]
        return out

    def lookup_batch(self, queries: Sequence[int]) -> np.ndarray:
        """Full hybrid lookup; the sentinel value marks not-found.

        Accepts any integer dtype (or plain Python ints): keys are
        coerced once via :meth:`repro.keys.KeySpec.coerce`, which raises
        ``OverflowError`` on out-of-range keys instead of silently
        wrapping them.
        """
        q = self.spec.coerce(queries)
        result = self.gpu_search_bucket(q)
        return self.cpu_finish_bucket(q, result.codes)

    def lookup(self, key: int) -> Optional[int]:
        out = self.lookup_batch(np.asarray([key], dtype=self.spec.dtype))
        val = int(out[0])
        return None if val == self.spec.max_value else val

    def range_query(self, lo: int, hi: int):
        """Sequential leaf-chain scan, serialized against engine
        ``quiesce()`` windows via the shared serve lock."""
        with self.serve_lock:
            return self.cpu_tree.range_query(lo, hi)

    def cpu_scan_bucket(
        self, los: np.ndarray, his: np.ndarray, codes: np.ndarray
    ) -> List[List[Tuple[int, int]]]:
        """Stage 4 for range scans: leaf-chain walks from GPU-located
        start leaves.

        ``codes`` are the per-start-key (node, leaf-line) codes the GPU
        stage produced for the ``lo`` bounds; the big-leaf index is the
        node part, and the chain walk resumes there without re-running
        the CPU descent.
        """
        nodes = (np.asarray(codes) // self.cpu_tree.fanout).astype(np.int64)
        tree = self.cpu_tree
        return [
            tree.range_scan_from(int(node), int(lo), int(hi))
            for node, lo, hi in zip(
                nodes.tolist(),
                np.asarray(los).tolist(),
                np.asarray(his).tolist(),
            )
        ]

    # ------------------------------------------------------------------
    # profiling / cost model

    def profile_leaf_stage(self, sample_queries: np.ndarray) -> CpuQueryProfile:
        q = np.asarray(sample_queries, dtype=self.spec.dtype)
        result = self.gpu_search_bucket(q)
        tree = self.cpu_tree
        node = (result.codes // tree.fanout).astype(np.int64)
        line = (result.codes % tree.fanout).astype(np.int64)
        self.mem.reset_counters()
        tree._ensure_segments()
        tree._touch_leaf_lines(node, line)
        counters = self.mem.counters
        counters.queries = len(q)
        return CpuQueryProfile.from_counters(counters, node_searches_per_query=1.0)

    def bucket_costs(
        self,
        bucket_size: Optional[int] = None,
        sample: Optional[np.ndarray] = None,
        cpu_model: Optional[CpuCostModel] = None,
        sort_batches: bool = False,
    ) -> BucketCosts:
        """Per-stage bucket costs measured on a sampled workload.

        ``sort_batches=True`` prices the sorted/deduplicated pipeline of
        :class:`repro.core.batching.BatchingEngine`: the GPU stage is
        measured on the sorted distinct sample (fewer transactions per
        query) and all four stages are scaled by the sample's distinct
        fraction, since duplicates collapse before transfer.
        """
        bucket_size = bucket_size or self.machine.bucket_size
        if sample is None:
            stored = self.cpu_tree.stored_keys()
            if len(stored) == 0:
                raise ValueError(
                    "bucket_costs needs stored keys to sample a workload; "
                    "the tree is empty — insert keys first or pass "
                    "sample= explicitly"
                )
            rng = np.random.default_rng(5)
            # draw without replacement whenever the tree can fill the
            # bucket — duplicate draws inflate the sample's
            # unique_fraction and bias the sorted gain the planner
            # commits; replacement survives only as the tiny-tree
            # fallback
            size = 4096
            sample = rng.choice(stored, size=size,
                                replace=len(stored) < size)
        sample = np.asarray(sample, dtype=self.spec.dtype)
        if len(sample) == 0:
            raise ValueError("bucket_costs sample must be non-empty")
        unique_fraction = 1.0
        if sort_batches:
            from repro.core.batching import plan_bucket

            plan = plan_bucket(sample, dtype=self.spec.dtype)
            unique_fraction = plan.n_unique / plan.n_queries
            gpu_result = self.gpu_search_bucket(plan.sorted_unique)
            leaf_profile = self.profile_leaf_stage(plan.sorted_unique)
        else:
            gpu_result = self.gpu_search_bucket(sample)
            leaf_profile = self.profile_leaf_stage(sample)
        return hybrid_bucket_costs(
            self.machine,
            self.spec,
            bucket_size,
            gpu_transactions_per_query=gpu_result.transactions_per_query,
            gpu_levels=3.0 * self.cpu_tree.height,
            cpu_leaf_profile=leaf_profile,
            cpu_model=cpu_model,
            unique_fraction=unique_fraction,
        )

    def __repr__(self) -> str:
        return (
            f"HBPlusTree(n={len(self.cpu_tree)}, "
            f"height={self.height}, machine={self.machine.name!r}, "
            f"iseg={self.i_segment_bytes}B)"
        )

    def __len__(self) -> int:
        return len(self.cpu_tree)

    def __contains__(self, key: int) -> bool:
        return self.lookup(key) is not None
