"""The regular HB+-tree (paper section 5).

The CPU side is :class:`RegularCpuBPlusTree` unchanged — "the inner
nodes are identical" to the CPU-optimized tree (section 5.2).  The
I-segment (all inner nodes) is additionally mirrored into GPU device
memory, packed per node as ``index line | key lines | ref lines``
(1 + 2K cache lines, Fig 2c), upper-pool nodes first and last-level
nodes behind them.

Mirror detail: in each node's device copy the key of its *last used
slot* is pinned to the maximum representable value ("the last keys of
all inner nodes of HB+-tree are always set to the maximum", section
5.3) so the GPU kernel needs no node sizes and every query always finds
a successor — including probes beyond the largest stored key, which
fall through the rightmost path.

Search is the bucket flow of section 5.4 with the 3-step node search of
section 5.3 on the GPU; the result of the last-level search directly
addresses the target cache line inside the big leaf.  Batch updates are
implemented in :mod:`repro.core.update`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.cpu.node_search import NodeSearchAlgorithm
from repro.gpusim.device import GpuDevice
from repro.gpusim.kernels.regular_search import (
    launch_regular_search,
    regular_search_vectorized,
)
from repro.gpusim.transfer import PcieLink
from repro.keys import key_spec
from repro.memsim.mainmem import MemorySystem, PageConfig
from repro.platform.configs import MachineConfig
from repro.platform.costmodel import (
    BucketCosts,
    CpuCostModel,
    CpuQueryProfile,
    hybrid_bucket_costs,
)


@dataclass
class GpuSearchResult:
    """Outcome of the GPU stage: packed (node, leaf-line) codes."""

    codes: np.ndarray
    transactions: int

    @property
    def transactions_per_query(self) -> float:
        if len(self.codes) == 0:
            return 0.0
        return self.transactions / len(self.codes)


class HBPlusTree:
    """Hybrid regular B+-tree over a machine's CPU + GPU."""

    def __init__(
        self,
        keys: Sequence[int] = (),
        values: Sequence[int] = (),
        machine: Optional[MachineConfig] = None,
        key_bits: int = 64,
        mem: Optional[MemorySystem] = None,
        page_config: PageConfig = PageConfig.HUGE_SMALL,
        algorithm: NodeSearchAlgorithm = NodeSearchAlgorithm.HIERARCHICAL_SIMD,
        fill: float = 1.0,
        injector=None,
    ):
        if machine is None:
            raise ValueError("HBPlusTree requires a MachineConfig")
        self.machine = machine
        self.spec = key_spec(key_bits)
        self.mem = mem if mem is not None else MemorySystem.from_spec(machine.cpu)
        self.device = GpuDevice(machine.gpu)
        self.link = PcieLink(machine.pcie)
        self.cpu_tree = RegularCpuBPlusTree(
            keys,
            values,
            key_bits=key_bits,
            mem=self.mem,
            page_config=page_config,
            algorithm=algorithm,
            segment_prefix="hb_regular",
            fill=fill,
        )
        #: :class:`repro.faults.FaultInjector`, or None.  Attached
        #: *after* the initial mirror so a tree is always born
        #: consistent; faults hit operation, not construction.
        self.injector = None
        #: True whenever the GPU mirror may disagree with the CPU tree
        #: (a sync was interrupted mid-flight); cleared by a successful
        #: full :meth:`mirror_i_segment`
        self.mirror_stale = False
        self.mirror_i_segment()
        if injector is not None:
            self.attach_injector(injector)

    def attach_injector(self, injector) -> None:
        """Thread a :class:`repro.faults.FaultInjector` through the
        PCIe link, the GPU device, and this tree's sync path."""
        self.injector = injector
        self.link.injector = injector
        self.device.injector = injector

    # ------------------------------------------------------------------
    # GPU mirror

    @property
    def node_stride(self) -> int:
        """Elements per mirrored node: index line + keys + refs."""
        kpl = self.spec.keys_per_line
        return kpl + 2 * self.cpu_tree.fanout

    def _pack_node(self, pool, node: int) -> np.ndarray:
        """Device image of one inner node (with the MAX catch-all pin)."""
        kpl = self.spec.keys_per_line
        fanout = self.cpu_tree.fanout
        keys = pool.keys[node].copy()
        size = max(1, int(pool.size[node]))
        keys[size - 1] = self.spec.max_value
        index_line = keys.reshape(kpl, kpl)[:, -1]
        out = np.empty(self.node_stride, dtype=np.uint64)
        out[:kpl] = index_line.astype(np.uint64)
        out[kpl: kpl + fanout] = keys.astype(np.uint64)
        out[kpl + fanout:] = pool.refs[node].astype(np.uint64)
        return out

    def pack_i_segment(self) -> np.ndarray:
        """The device image of the full I-segment, packed from the CPU
        tree (the source of truth).  Does not touch the GPU."""
        tree = self.cpu_tree
        upper_n = tree.upper.count
        last_n = tree.last.count
        stride = self.node_stride
        flat = np.zeros((upper_n + last_n) * stride, dtype=np.uint64)
        for node in range(upper_n):
            flat[node * stride: (node + 1) * stride] = self._pack_node(
                tree.upper, node
            )
        for node in range(last_n):
            slot = upper_n + node
            flat[slot * stride: (slot + 1) * stride] = self._pack_node(
                tree.last, node
            )
        return flat

    def mirror_i_segment(self) -> float:
        """Rebuild + upload the full I-segment mirror; returns time ns.

        On an injected :class:`~repro.faults.SyncInterrupted` or
        transfer fault the old mirror stays in device memory and
        ``mirror_stale`` remains True — the hazard the resilience layer
        (:mod:`repro.core.resilience`) exists to repair.
        """
        self.mirror_stale = True
        if self.injector is not None:
            self.injector.on_sync()
        flat = self.pack_i_segment()
        self.last_base = self.cpu_tree.upper.count
        t = self.link.to_device(self.device.memory, "iseg_regular", flat)
        self.iseg_buffer = self.device.memory.get("iseg_regular")
        self.mirror_stale = False
        return t

    def sync_node(self, level: int, node: int) -> float:
        """Push one modified inner node to the GPU mirror (section 5.6
        synchronized update).  Returns the transfer time in ns.

        Falls back to a full mirror rebuild when the pools outgrew the
        mirrored capacity (new nodes from splits).
        """
        tree = self.cpu_tree
        stride = self.node_stride
        slot = node + (self.last_base if level == 0 else 0)
        if (slot + 1) * stride > self.iseg_buffer.array.size or (
            level > 0 and node >= self.last_base
        ):
            return self.mirror_i_segment()
        pool = tree.last if level == 0 else tree.upper
        packed = self._pack_node(pool, node)
        was_stale = self.mirror_stale
        self.mirror_stale = True
        t = self.link.update_device(
            self.device.memory, "iseg_regular", packed, offset_elems=slot * stride
        )
        self.mirror_stale = was_stale
        return t

    @property
    def i_segment_bytes(self) -> int:
        return self.iseg_buffer.nbytes

    @property
    def height(self) -> int:
        return self.cpu_tree.height

    @property
    def teams_per_warp(self) -> int:
        return max(1, self.machine.gpu.warp_size // self.spec.gpu_threads_per_query)

    # ------------------------------------------------------------------
    # search

    def gpu_search_bucket(self, queries: np.ndarray) -> GpuSearchResult:
        """Stage 2: 3-step descent of all inner levels on the GPU."""
        q = np.asarray(queries, dtype=self.spec.dtype)
        self.device.begin_launch()
        codes, txns = regular_search_vectorized(
            self.iseg_buffer.array,
            self.node_stride,
            self.spec.keys_per_line,
            self.cpu_tree.fanout,
            self.cpu_tree.height,
            self.cpu_tree.root,
            self.last_base,
            q,
            teams_per_warp=self.teams_per_warp,
        )
        self.device.memory.counters.transactions_64 += txns
        self.device.memory.counters.bytes_moved += txns * 64
        return GpuSearchResult(codes=codes, transactions=txns)

    def gpu_search_bucket_literal(self, queries: np.ndarray) -> np.ndarray:
        """Stage 2 on the literal SIMT interpreter (slow; for tests)."""
        q = np.asarray(queries, dtype=self.spec.dtype)
        codes, _stats = launch_regular_search(
            self.device,
            self.iseg_buffer,
            self.node_stride,
            self.spec.keys_per_line,
            self.cpu_tree.fanout,
            self.cpu_tree.height,
            self.cpu_tree.root,
            self.last_base,
            q,
        )
        return codes

    def cpu_finish_bucket(
        self, queries: np.ndarray, codes: np.ndarray
    ) -> np.ndarray:
        """Stage 4: search the addressed big-leaf cache lines."""
        q = np.asarray(queries, dtype=self.spec.dtype)
        tree = self.cpu_tree
        fanout = tree.fanout
        node = (codes // fanout).astype(np.int64)
        line = (codes % fanout).astype(np.int64)
        p = self.spec.leaf_pairs_per_line
        base = line * p
        rows = tree.leaves.keys[node[:, None], base[:, None] + np.arange(p)]
        pos = np.sum(rows < q[:, None], axis=1)
        pos_c = np.minimum(pos, p - 1)
        found = rows[np.arange(len(q)), pos_c] == q
        out = np.full(len(q), self.spec.max_value, dtype=self.spec.dtype)
        idx = np.arange(len(q))[found]
        out[found] = tree.leaves.values[node[idx], base[idx] + pos_c[idx]]
        return out

    def lookup_batch(self, queries: Sequence[int]) -> np.ndarray:
        """Full hybrid lookup; the sentinel value marks not-found."""
        q = np.asarray(queries, dtype=self.spec.dtype)
        result = self.gpu_search_bucket(q)
        return self.cpu_finish_bucket(q, result.codes)

    def lookup(self, key: int) -> Optional[int]:
        out = self.lookup_batch(np.asarray([key], dtype=self.spec.dtype))
        val = int(out[0])
        return None if val == self.spec.max_value else val

    def range_query(self, lo: int, hi: int):
        return self.cpu_tree.range_query(lo, hi)

    # ------------------------------------------------------------------
    # profiling / cost model

    def profile_leaf_stage(self, sample_queries: np.ndarray) -> CpuQueryProfile:
        q = np.asarray(sample_queries, dtype=self.spec.dtype)
        result = self.gpu_search_bucket(q)
        tree = self.cpu_tree
        node = (result.codes // tree.fanout).astype(np.int64)
        line = (result.codes % tree.fanout).astype(np.int64)
        self.mem.reset_counters()
        tree._ensure_segments()
        for n, ln in zip(node.tolist(), line.tolist()):
            tree._touch_leaf_line(int(n), int(ln))
        counters = self.mem.counters
        counters.queries = len(q)
        return CpuQueryProfile.from_counters(counters, node_searches_per_query=1.0)

    def bucket_costs(
        self,
        bucket_size: Optional[int] = None,
        sample: Optional[np.ndarray] = None,
        cpu_model: Optional[CpuCostModel] = None,
    ) -> BucketCosts:
        bucket_size = bucket_size or self.machine.bucket_size
        if sample is None:
            rng = np.random.default_rng(5)
            stored = np.asarray([k for k, _v in self.cpu_tree.items()],
                                dtype=self.spec.dtype)
            sample = rng.choice(stored, size=min(4096, len(stored)))
        gpu_result = self.gpu_search_bucket(
            np.asarray(sample, dtype=self.spec.dtype)
        )
        leaf_profile = self.profile_leaf_stage(sample)
        return hybrid_bucket_costs(
            self.machine,
            self.spec,
            bucket_size,
            gpu_transactions_per_query=gpu_result.transactions_per_query,
            gpu_levels=3.0 * self.cpu_tree.height,
            cpu_leaf_profile=leaf_profile,
            cpu_model=cpu_model,
        )

    def __repr__(self) -> str:
        return (
            f"HBPlusTree(n={len(self.cpu_tree)}, "
            f"height={self.height}, machine={self.machine.name!r}, "
            f"iseg={self.i_segment_bytes}B)"
        )

    def __len__(self) -> int:
        return len(self.cpu_tree)

    def __contains__(self, key: int) -> bool:
        return self.lookup(key) is not None
