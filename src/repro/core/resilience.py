"""Resilient heterogeneous execution for the regular HB+-tree.

The HB+-tree's hybrid search path assumes the GPU, the PCIe link and
the I-segment mirror are perfect.  This layer removes that assumption
while preserving the tree's one hard guarantee: **faults may cost time,
never correctness**.

Mechanisms (bottom-up):

* **retry with exponential backoff + jitter** for PCIe transfers
  (failures and timeouts), with every wasted nanosecond accounted;
* **bounded kernel timeout with relaunch** — a hung kernel is charged
  its watchdog budget and relaunched, a failed launch retried;
* **checksum verification + targeted repair** of the I-segment mirror:
  the expected image is recomputed from the CPU tree (the source of
  truth), compared by CRC before every hybrid batch, and corrupted
  nodes are individually re-uploaded;
* **stale-mirror repair** — an interrupted sync leaves
  ``HBPlusTree.mirror_stale`` set; the mirror is re-uploaded before the
  GPU is allowed to serve again;
* **circuit breaker** — after repeated batch-level GPU failures the
  tree degrades to the existing CPU-only search path (the
  :class:`~repro.core.framework.HybridFramework` cpu-only mode /
  appendix B.1), then periodically probes the GPU and recovers by
  re-mirroring the I-segment.

All modeled time (base bucket costs, backoff, watchdog budgets, repair
transfers) accumulates in :class:`ResilienceStats`, from which the
fault-rate sweep in ``benchmarks/bench_fault_resilience.py`` derives
its throughput numbers.
"""

from __future__ import annotations

import zlib
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.batching import plan_bucket
from repro.core.framework import RegularHBAdapter
from repro.core.hbtree import GpuSearchResult, HBPlusTree
from repro.core.update import AsyncBatchUpdater, SyncUpdater, UpdateStats
from repro.faults import (
    FaultError,
    FaultInjector,
    KernelHang,
    KernelLaunchFault,
    TransferTimeout,
)
from repro.obs import NULL_OBS
from repro.platform.costmodel import CpuCostModel, HYBRID_STAGE_OVERHEAD_NS


class GpuUnavailable(RuntimeError):
    """Raised internally when retries are exhausted; the circuit
    breaker translates it into CPU-only degradation."""


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the resilience layer (all times in ns)."""

    #: attempts per transfer (first try + retries)
    max_transfer_retries: int = 4
    #: attempts per kernel launch
    max_kernel_retries: int = 3
    #: base backoff before the first retry
    backoff_base_ns: float = 2_000.0
    backoff_multiplier: float = 2.0
    #: jitter fraction added on top of the deterministic backoff
    backoff_jitter: float = 0.25
    #: watchdog budget charged when a transfer times out
    transfer_timeout_ns: float = 50_000.0
    #: watchdog budget charged when a kernel hangs
    kernel_timeout_ns: float = 100_000.0
    #: verify the mirror CRC before every hybrid batch
    verify_checksum: bool = True
    #: consecutive batch-level GPU failures that open the breaker
    breaker_threshold: int = 3
    #: degraded batches between recovery probes
    probe_interval: int = 16
    #: flat watchdog budget charged for a *failed* recovery probe: the
    #: probe runs in a reserved side slot, so its cost is the slot, not
    #: however quickly the GPU happened to die this time (this keeps the
    #: degraded-mode overhead independent of the fault rate)
    probe_budget_ns: float = 150_000.0
    #: fixed handling cost charged per caught fault (interrupt + error
    #: path bookkeeping); also what makes throughput decay monotone in
    #: the fault rate — the fault *count* grows with the rate even when
    #: the service-mode mix does not
    fault_overhead_ns: float = 1_000.0
    #: EWMA smoothing of the measured per-query hybrid cost
    ema_alpha: float = 0.4
    #: open the breaker when the hybrid EWMA exceeds ``margin`` times
    #: the CPU-only per-query cost (economic degradation: limping on a
    #: faulty GPU must never be slower than not using it)
    degrade_margin: float = 1.0
    #: hybrid batches measured before economic degradation may trigger
    min_ema_samples: int = 2
    #: seed of the backoff-jitter stream (independent of the fault plan)
    seed: int = 0

    def backoff_ns(self, attempt: int, jitter_u: float) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered."""
        base = self.backoff_base_ns * self.backoff_multiplier ** attempt
        return base * (1.0 + self.backoff_jitter * jitter_u)


@dataclass
class ResilienceStats:
    """Every fault/retry/degradation event, counted; plus modeled time."""

    batches: int = 0
    served_hybrid: int = 0
    served_cpu: int = 0
    #: total modeled serving time (base costs + every penalty below)
    served_ns: float = 0.0
    #: modeled time lost to faults (backoff + watchdogs + repairs);
    #: already included in ``served_ns``
    penalty_ns: float = 0.0
    backoff_ns: float = 0.0
    timeout_ns: float = 0.0
    repair_transfer_ns: float = 0.0
    transfer_retries: int = 0
    kernel_retries: int = 0
    mirror_refreshes: int = 0
    checksum_failures: int = 0
    repaired_nodes: int = 0
    gpu_batch_failures: int = 0
    degradations: int = 0
    #: degradations triggered by the cost comparison (limping hybrid
    #: costlier than CPU-only), a subset of ``degradations``
    economic_degradations: int = 0
    #: individual injected faults absorbed by a retry/repair path
    faults_handled: int = 0
    probes: int = 0
    recoveries: int = 0
    snapshots: int = 0
    snapshot_failures: int = 0

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of all counters (for tables and replay checks)."""
        return {
            "batches": self.batches,
            "served_hybrid": self.served_hybrid,
            "served_cpu": self.served_cpu,
            "served_ns": round(self.served_ns, 3),
            "penalty_ns": round(self.penalty_ns, 3),
            "backoff_ns": round(self.backoff_ns, 3),
            "timeout_ns": round(self.timeout_ns, 3),
            "repair_transfer_ns": round(self.repair_transfer_ns, 3),
            "transfer_retries": self.transfer_retries,
            "kernel_retries": self.kernel_retries,
            "mirror_refreshes": self.mirror_refreshes,
            "checksum_failures": self.checksum_failures,
            "repaired_nodes": self.repaired_nodes,
            "gpu_batch_failures": self.gpu_batch_failures,
            "degradations": self.degradations,
            "economic_degradations": self.economic_degradations,
            "faults_handled": self.faults_handled,
            "probes": self.probes,
            "recoveries": self.recoveries,
            "snapshots": self.snapshots,
            "snapshot_failures": self.snapshot_failures,
        }

    @property
    def served_queries(self) -> int:
        return self.served_hybrid + self.served_cpu

    def throughput_qps(self) -> float:
        """Modeled end-to-end throughput over everything served."""
        if self.served_ns <= 0:
            return float("inf") if self.served_queries else 0.0
        return self.served_queries * 1e9 / self.served_ns


class CircuitBreaker:
    """Counts consecutive GPU failures; opens after ``threshold``."""

    def __init__(self, threshold: int, probe_interval: int):
        if threshold < 1 or probe_interval < 1:
            raise ValueError("threshold and probe_interval must be >= 1")
        self.threshold = threshold
        self.probe_interval = probe_interval
        self.consecutive_failures = 0
        self.open = False
        self.degraded_batches = 0

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self) -> bool:
        """Count one failure; returns True when this opened the circuit."""
        self.consecutive_failures += 1
        if not self.open and self.consecutive_failures >= self.threshold:
            self.open = True
            self.degraded_batches = 0
            return True
        return False

    def trip(self) -> None:
        """Open the circuit directly (economic degradation)."""
        self.open = True
        self.consecutive_failures = 0
        self.degraded_batches = 0

    def note_degraded_batch(self) -> bool:
        """Count one degraded batch; True when a probe is due."""
        self.degraded_batches += 1
        return self.degraded_batches % self.probe_interval == 0

    def close(self) -> None:
        self.open = False
        self.consecutive_failures = 0
        self.degraded_batches = 0


def _crc(array: np.ndarray) -> int:
    return zlib.crc32(array.tobytes())


class ResilientHBPlusTree:
    """Fault-tolerant wrapper around a regular :class:`HBPlusTree`.

    All lookups flow through :meth:`lookup_batch`; it serves from the
    hybrid CPU-GPU path while the GPU is healthy and from the CPU-only
    path when the circuit breaker is open, repairing the mirror and
    probing for recovery along the way.  Updates flow through
    :meth:`apply_updates`, which restores mirror consistency no matter
    where a fault interrupts the sync.
    """

    def __init__(
        self,
        tree: HBPlusTree,
        injector: Optional[FaultInjector] = None,
        config: Optional[ResilienceConfig] = None,
        engine=None,
        obs=None,
        adaptive=None,
    ):
        self.tree = tree
        if obs is not None:
            # thread the bundle through the tree (and so the link and
            # device); engines over the same tree follow automatically
            tree.attach_obs(obs)
        #: optional :class:`repro.core.overlap.OverlappedEngine` over
        #: the *same* tree; when set, hybrid batches are served through
        #: the real threaded pipeline.  The engine drains its in-flight
        #: buckets and joins every worker before a fault propagates, so
        #: degradation to CPU-only never leaves workers running.
        if engine is not None and engine.tree is not tree:
            raise ValueError(
                "the overlapped engine must wrap the same HBPlusTree"
            )
        self.engine = engine
        self.config = config or ResilienceConfig()
        self.stats = ResilienceStats()
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold, self.config.probe_interval
        )
        if injector is not None:
            tree.attach_injector(injector)
        self.injector = tree.injector
        self.adapter = RegularHBAdapter(tree)
        self._jitter_rng = np.random.default_rng(
            [self.config.seed & 0x7FFFFFFF, 0x0BAC0FF]
        )
        #: EWMA of the measured per-query cost of hybrid service,
        #: penalties included; compared against the CPU-only cost to
        #: decide whether limping on a faulty GPU is still worth it
        self._hybrid_cost_ema: Optional[float] = None
        self._ema_samples = 0
        #: optional :class:`repro.core.adaptive.AdaptiveController`
        #: over a :class:`~repro.core.adaptive.RegularModeBalancer`:
        #: the regular tree has no mid-tree GPU resume, so adaptivity
        #: here is mode-space — {hybrid, cpu-only} — and integrates
        #: with the breaker.  Degrade pins the controller to cpu-only;
        #: a successful recovery probe re-discovers on the traffic that
        #: drifted during the outage instead of reviving the stale
        #: pre-incident mode; and a controller that finds cpu-only
        #: economically better trips the breaker (reason "adaptive").
        if adaptive is not None:
            bal_tree = getattr(
                getattr(adaptive, "balancer", None), "tree", None
            )
            if bal_tree is not None and bal_tree is not tree:
                raise ValueError(
                    "the adaptive controller must balance the same "
                    "HBPlusTree"
                )
        self.adaptive = adaptive
        self._calibrate()
        self._snapshot_expected()
        self._maybe_trip_adaptive()

    @property
    def obs(self):
        """The tree's live :class:`repro.obs.Observability` bundle."""
        return getattr(self.tree, "obs", NULL_OBS)

    # ------------------------------------------------------------------
    # calibration (fault-free: the injector is paused)

    def _calibrate(self) -> None:
        """Measure the fault-free base costs the time model charges per
        batch: hybrid per-bucket cost and CPU-only per-query cost."""
        ctx = self.injector.paused() if self.injector else nullcontext()
        with ctx:
            machine = self.tree.machine
            rng = np.random.default_rng(11)
            stored = np.asarray(
                [k for k, _v in self.tree.cpu_tree.items()],
                dtype=self.tree.spec.dtype,
            )
            sample = rng.choice(stored, size=min(2048, len(stored)))
            self._probe_queries = sample[:8].copy()
            costs = self.tree.bucket_costs(sample=sample)
            self.bucket_size = machine.bucket_size
            self.hybrid_bucket_ns = costs.double_buffered
            profiles, leaf = self.adapter.level_profiles(sample)
            model = CpuCostModel(machine.cpu)
            per_query = (
                model.query_ns(leaf) + HYBRID_STAGE_OVERHEAD_NS
                + sum(model.query_ns(p) for p in profiles)
            )
            self.cpu_only_query_ns = per_query / model.threads

    def _snapshot_expected(self) -> None:
        """Recompute the expected mirror image from the CPU tree."""
        self._expected = self.tree.pack_i_segment()
        self._expected_crc = _crc(self._expected)

    # ------------------------------------------------------------------
    # lifecycle

    def snapshot_to(self, manager, epoch=None):
        """Snapshot the live tree through a
        :class:`repro.lifecycle.SnapshotManager`, carrying the adaptive
        controller's committed (D, R) split when one is attached.

        Failure-contained: an injected storage fault (torn write)
        costs the snapshot and is counted, but the live tree, its
        mirror, and every already-written snapshot are untouched —
        service continues bit-identically.  Returns the written path
        or None on a failed attempt.
        """
        split = self.adaptive.split() if self.adaptive is not None else None
        path = manager.save(self.tree, split=split, epoch=epoch)
        if path is None:
            self.stats.snapshot_failures += 1
        else:
            self.stats.snapshots += 1
        return path

    # ------------------------------------------------------------------
    # retry primitives

    def _charge_penalty(self, ns: float) -> None:
        """Fault-caused time counts both as penalty and as serving time."""
        self.stats.penalty_ns += ns
        self.stats.served_ns += ns

    def _backoff(self, attempt: int) -> float:
        b = self.config.backoff_ns(attempt, float(self._jitter_rng.random()))
        self.stats.backoff_ns += b
        self._charge_penalty(b)
        return b

    def _handle_fault(self) -> None:
        """Fixed interrupt/error-path cost of absorbing one fault."""
        self.stats.faults_handled += 1
        self._charge_penalty(self.config.fault_overhead_ns)
        obs = self.obs
        obs.count("live.resilience.faults_handled")
        obs.instant("fault", category="resilience",
                    total=self.stats.faults_handled)
        obs.emit("fault", total=self.stats.faults_handled)

    def _transfer_with_retry(self, fn, *args, **kwargs):
        """Run one transfer, retrying with backoff on injected faults."""
        cfg = self.config
        for attempt in range(cfg.max_transfer_retries):
            try:
                return fn(*args, **kwargs)
            except FaultError as err:
                self.stats.transfer_retries += 1
                self._handle_fault()
                if isinstance(err, TransferTimeout):
                    self.stats.timeout_ns += cfg.transfer_timeout_ns
                    self._charge_penalty(cfg.transfer_timeout_ns)
                if attempt + 1 >= cfg.max_transfer_retries:
                    raise GpuUnavailable(
                        f"transfer failed after {cfg.max_transfer_retries} "
                        f"attempts: {err}"
                    ) from err
                self._backoff(attempt)

    # ------------------------------------------------------------------
    # mirror health

    def _refresh_mirror(self) -> None:
        """Full I-segment re-upload with retries; refreshes the
        expected image on success."""
        t = self._transfer_with_retry(self.tree.mirror_i_segment)
        self.stats.repair_transfer_ns += t
        self._charge_penalty(t)
        self.stats.mirror_refreshes += 1
        self._snapshot_expected()

    def _repair_corruption(self) -> None:
        """Compare the device mirror against the expected image and
        re-upload only the corrupted nodes."""
        buf = self.tree.iseg_buffer.array
        expected = self._expected
        if buf.size != expected.size:
            # structure drifted (shouldn't happen outside stale windows,
            # which _ensure_healthy_mirror repairs first) — full refresh
            self._refresh_mirror()
            return
        diff = np.nonzero(buf != expected)[0]
        if diff.size == 0:
            return
        stride = self.tree.node_stride
        slots = np.unique(diff // stride)
        for slot in slots.tolist():
            src = expected[slot * stride: (slot + 1) * stride]
            t = self._transfer_with_retry(
                self.tree.link.update_device,
                self.tree.device.memory,
                "iseg_regular",
                src,
                offset_elems=slot * stride,
            )
            self.stats.repair_transfer_ns += t
            self._charge_penalty(t)
            self.stats.repaired_nodes += 1

    def _ensure_healthy_mirror(self) -> None:
        """Make the mirror safe to search: repair staleness, tick the
        corruption site, verify the checksum, repair what flipped."""
        if self.tree.mirror_stale:
            self._refresh_mirror()
        if self.injector is not None:
            self.injector.maybe_corrupt(self.tree.iseg_buffer.array)
        if self.config.verify_checksum:
            if _crc(self.tree.iseg_buffer.array) != self._expected_crc:
                self.stats.checksum_failures += 1
                self._handle_fault()
                self._repair_corruption()

    # ------------------------------------------------------------------
    # GPU search with relaunch

    def _gpu_search(self, q: np.ndarray) -> GpuSearchResult:
        cfg = self.config
        for attempt in range(cfg.max_kernel_retries):
            try:
                return self.tree.gpu_search_bucket(q)
            except (KernelLaunchFault, KernelHang) as err:
                self.stats.kernel_retries += 1
                self._handle_fault()
                if isinstance(err, KernelHang):
                    self.stats.timeout_ns += cfg.kernel_timeout_ns
                    self._charge_penalty(cfg.kernel_timeout_ns)
                if attempt + 1 >= cfg.max_kernel_retries:
                    raise GpuUnavailable(
                        f"kernel failed after {cfg.max_kernel_retries} "
                        f"attempts: {err}"
                    ) from err
                self._backoff(attempt)

    def _engine_search(self, q: np.ndarray) -> np.ndarray:
        """One hybrid batch through the overlapped engine, with kernel
        retries.  ``OverlappedEngine.lookup_batch`` only raises after
        draining in-flight buckets and joining all workers, so each
        retry (and the eventual degradation) starts from a quiesced
        pipeline with deterministic counters."""
        cfg = self.config
        for attempt in range(cfg.max_kernel_retries):
            try:
                return self.engine.lookup_batch(q)
            except (KernelLaunchFault, KernelHang) as err:
                self.stats.kernel_retries += 1
                self._handle_fault()
                if isinstance(err, KernelHang):
                    self.stats.timeout_ns += cfg.kernel_timeout_ns
                    self._charge_penalty(cfg.kernel_timeout_ns)
                if attempt + 1 >= cfg.max_kernel_retries:
                    raise GpuUnavailable(
                        f"overlapped engine failed after "
                        f"{cfg.max_kernel_retries} attempts: {err}"
                    ) from err
                self._backoff(attempt)

    # ------------------------------------------------------------------
    # serving

    def _serve_cpu_only(self, q: np.ndarray) -> np.ndarray:
        levels = np.full(len(q), self.adapter.height, dtype=np.int64)
        codes = self.adapter.cpu_descend(q, levels)
        out = self.adapter.cpu_finish(q, codes)
        self.stats.served_cpu += len(q)
        self.stats.served_ns += len(q) * self.cpu_only_query_ns
        return out

    def _serve_hybrid(self, q: np.ndarray) -> np.ndarray:
        if self.engine is not None:
            out = self._engine_search(q)
        else:
            result = self._gpu_search(q)
            out = self.tree.cpu_finish_bucket(q, result.codes)
        self.stats.served_hybrid += len(q)
        self.stats.served_ns += (
            self.hybrid_bucket_ns * len(q) / self.bucket_size
        )
        return out

    def _note_hybrid_cost(self, per_query_ns: float) -> None:
        """Fold one hybrid batch's measured per-query cost into the
        EWMA; trip the breaker when limping beats not limping."""
        a = self.config.ema_alpha
        if self._hybrid_cost_ema is None:
            self._hybrid_cost_ema = per_query_ns
        else:
            self._hybrid_cost_ema = (
                a * per_query_ns + (1.0 - a) * self._hybrid_cost_ema
            )
        self._ema_samples += 1
        if (
            not self.breaker.open
            and self._ema_samples >= self.config.min_ema_samples
            and self._hybrid_cost_ema
            > self.config.degrade_margin * self.cpu_only_query_ns
        ):
            self.breaker.trip()
            self.stats.degradations += 1
            self.stats.economic_degradations += 1
            self._note_degrade("economic")

    def _note_degrade(self, reason: str) -> None:
        """Announce one breaker opening through every obs surface."""
        obs = self.obs
        obs.count("live.resilience.degradations", reason=reason)
        obs.instant("degrade", category="resilience", reason=reason)
        obs.emit("degrade", reason=reason)
        if self.adaptive is not None:
            # a degraded tree must not keep a split that trusts the
            # GPU; the pin holds until the recovery path rediscovers
            self.adaptive.force_cpu_only(reason)

    def _maybe_trip_adaptive(self) -> None:
        """Open the breaker when the mode controller has concluded the
        GPU is not worth using for the live traffic (the mode-space
        twin of economic degradation)."""
        if self.adaptive is None or self.breaker.open:
            return
        if not self.adaptive.cpu_only:
            return
        self.breaker.trip()
        self.stats.degradations += 1
        self.stats.economic_degradations += 1
        self._note_degrade("adaptive")

    def _probe_recovery(self) -> bool:
        """Try to bring the GPU back: re-mirror, then a trial search
        whose answers are verified against the CPU path.

        A failed probe is charged exactly ``probe_budget_ns``: whatever
        penalties the attempt incurred are rolled back and replaced by
        the flat watchdog slot, so degraded-mode overhead does not
        depend on *how* the GPU is failing.
        """
        self.stats.probes += 1
        pen0 = self.stats.penalty_ns
        ok = True
        try:
            self._refresh_mirror()
            q = np.asarray(self._probe_queries, dtype=self.tree.spec.dtype)
            probe = self._gpu_search(q)
            gpu_ans = self.tree.cpu_finish_bucket(q, probe.codes)
            cpu_ans = self.adapter.cpu_finish(
                q,
                self.adapter.cpu_descend(
                    q, np.full(len(q), self.adapter.height, dtype=np.int64)
                ),
            )
            ok = bool(np.array_equal(gpu_ans, cpu_ans))
        except GpuUnavailable:
            ok = False
        obs = self.obs
        obs.count("live.resilience.probes")
        obs.emit("probe", ok=ok)
        if not ok:
            incurred = self.stats.penalty_ns - pen0
            self._charge_penalty(self.config.probe_budget_ns - incurred)
            return False
        self.breaker.close()
        self._hybrid_cost_ema = None
        self._ema_samples = 0
        self.stats.recoveries += 1
        obs.count("live.resilience.recoveries")
        obs.instant("recover", category="resilience")
        obs.emit("recover")
        if self.adaptive is not None:
            # the pre-incident mode is stale: re-learn the base costs
            # and re-discover on the traffic that drifted during the
            # outage — which may immediately conclude the recovered
            # GPU is still not worth using for what is being served
            self._calibrate()
            self.adaptive.rediscover()
            self._maybe_trip_adaptive()
        return True

    def lookup_batch(self, queries: Sequence[int]) -> np.ndarray:
        """Fault-tolerant batch lookup; sentinel marks not-found.

        Never raises on injected faults and never returns a wrong
        value: the worst case is CPU-only service at CPU-only speed.
        """
        q = self.tree.spec.coerce(queries)
        if len(q) == 0:
            return q.copy()
        self.stats.batches += 1
        if self.adaptive is not None:
            # serially, in batch order — the mode schedule is a
            # deterministic function of the batch sequence; a window
            # closing here may move the mode for *this* batch
            self.adaptive.note_bucket(q)
            self._maybe_trip_adaptive()
        if self.breaker.open:
            with self.obs.span("resilient.lookup_batch", mode="cpu_only",
                               queries=len(q)):
                out = self._serve_cpu_only(q)
                if self.breaker.note_degraded_batch():
                    self._probe_recovery()
            return out
        pen0 = self.stats.penalty_ns
        with self.obs.span("resilient.lookup_batch", mode="hybrid",
                           queries=len(q)):
            try:
                self._ensure_healthy_mirror()
                out = self._serve_hybrid(q)
                self.breaker.record_success()
                batch_ns = (
                    self.stats.penalty_ns - pen0
                    + self.hybrid_bucket_ns * len(q) / self.bucket_size
                )
                self._note_hybrid_cost(batch_ns / len(q))
                return out
            except GpuUnavailable:
                self.stats.gpu_batch_failures += 1
                if self.breaker.record_failure():
                    self.stats.degradations += 1
                    self._note_degrade("consecutive_failures")
                out = self._serve_cpu_only(q)
                # a failed hybrid attempt costs its penalties *plus* the
                # CPU-only fallback — that is its effective hybrid cost
                batch_ns = (
                    self.stats.penalty_ns - pen0
                    + len(q) * self.cpu_only_query_ns
                )
                self._note_hybrid_cost(batch_ns / len(q))
                return out

    def lookup(self, key: int) -> Optional[int]:
        out = self.lookup_batch(
            np.asarray([key], dtype=self.tree.spec.dtype)
        )
        val = int(out[0])
        return None if val == self.tree.spec.max_value else val

    # ------------------------------------------------------------------
    # range scans

    def _scan_cpu_only(self, los: np.ndarray, his: np.ndarray) -> list:
        tree = self.tree.cpu_tree
        out = [
            tree.range_query(int(lo), int(hi))
            for lo, hi in zip(los.tolist(), his.tolist())
        ]
        self.stats.served_cpu += len(los)
        self.stats.served_ns += len(los) * self.cpu_only_query_ns
        return out

    def _scan_hybrid(self, los: np.ndarray, his: np.ndarray) -> list:
        plan = plan_bucket(los, dtype=self.tree.spec.dtype)
        result = self._gpu_search(plan.sorted_unique)
        codes = result.codes[plan.inverse]
        out = self.tree.cpu_scan_bucket(plan.queries, his, codes)
        self.stats.served_hybrid += plan.n_queries
        self.stats.served_ns += (
            self.hybrid_bucket_ns * plan.n_queries / self.bucket_size
        )
        return out

    def _scan_bucket(self, los: np.ndarray, his: np.ndarray) -> list:
        self.stats.batches += 1
        n = len(los)
        if self.breaker.open:
            with self.obs.span("resilient.scan_bucket", mode="cpu_only",
                               scans=n):
                out = self._scan_cpu_only(los, his)
                if self.breaker.note_degraded_batch():
                    self._probe_recovery()
        else:
            pen0 = self.stats.penalty_ns
            with self.obs.span("resilient.scan_bucket", mode="hybrid",
                               scans=n):
                try:
                    self._ensure_healthy_mirror()
                    out = self._scan_hybrid(los, his)
                    self.breaker.record_success()
                    batch_ns = (
                        self.stats.penalty_ns - pen0
                        + self.hybrid_bucket_ns * n / self.bucket_size
                    )
                    self._note_hybrid_cost(batch_ns / n)
                except GpuUnavailable:
                    self.stats.gpu_batch_failures += 1
                    if self.breaker.record_failure():
                        self.stats.degradations += 1
                        self._note_degrade("consecutive_failures")
                    out = self._scan_cpu_only(los, his)
                    batch_ns = (
                        self.stats.penalty_ns - pen0
                        + n * self.cpu_only_query_ns
                    )
                    self._note_hybrid_cost(batch_ns / n)
        if self.adaptive is not None:
            # scan buckets feed the mode controller like lookup buckets
            # do; the tuple volume is only known after the walk, so the
            # note lands post-serve (a window closing here moves the
            # mode for the *next* bucket)
            self.adaptive.note_scan_bucket(
                los, sum(len(s) for s in out)
            )
            self._maybe_trip_adaptive()
        return out

    def run_scans(self, los: Sequence[int], his: Sequence[int]) -> list:
        """Fault-tolerant batched range scans.

        Per-query results are bit-identical to the sequential
        ``tree.range_query`` walk: the worst an injected fault can do
        is demote a bucket to the CPU-only leaf-chain scan.  Holds the
        tree's serve lock, so a concurrent ``quiesce()``/snapshot never
        observes a half-served scan bucket.
        """
        spec = self.tree.spec
        lo_arr = spec.coerce(los)
        hi_arr = spec.coerce(his)
        if len(lo_arr) != len(hi_arr):
            raise ValueError("run_scans needs matching lo/hi arrays")
        if len(lo_arr) == 0:
            return []
        lock = getattr(self.tree, "serve_lock", None) or nullcontext()
        out = []
        with lock, self.obs.span("resilient.run_scans",
                                 scans=len(lo_arr)):
            for start in range(0, len(lo_arr), self.bucket_size):
                stop = start + self.bucket_size
                out.extend(
                    self._scan_bucket(lo_arr[start:stop],
                                      hi_arr[start:stop])
                )
        return out

    # ------------------------------------------------------------------
    # updates

    def apply_updates(
        self,
        keys: Sequence[int],
        values: Sequence[int],
        deletes: Sequence[int] = (),
        method: str = "async",
    ) -> UpdateStats:
        """Apply a batch of updates, restoring mirror consistency even
        when the sync path faults mid-flight.

        The CPU tree always absorbs every update (it never faults); an
        interrupted I-segment sync is retried, and on exhaustion the
        breaker opens — lookups keep serving correctly from the CPU.
        """
        if method == "async":
            updater = AsyncBatchUpdater(self.tree)
        elif method == "sync":
            updater = SyncUpdater(self.tree)
        else:
            raise ValueError(f"unknown update method: {method!r}")
        try:
            stats = updater.apply(keys, values, deletes)
        except FaultError:
            # the end-of-batch mirror sync aborted; the CPU tree holds
            # every update, only the mirror is stale
            stats = UpdateStats()
            try:
                self._refresh_mirror()
            except GpuUnavailable:
                self.stats.gpu_batch_failures += 1
                if self.breaker.record_failure():
                    self.stats.degradations += 1
                    self._note_degrade("consecutive_failures")
                self._snapshot_expected()
                return stats
        self._snapshot_expected()
        return stats

    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while the breaker is open (CPU-only service)."""
        return self.breaker.open

    def __len__(self) -> int:
        return len(self.tree)

    def __repr__(self) -> str:
        mode = "cpu-only(degraded)" if self.degraded else "hybrid"
        return (
            f"ResilientHBPlusTree(n={len(self.tree)}, mode={mode}, "
            f"faults_survived={self.stats.gpu_batch_failures}, "
            f"recoveries={self.stats.recoveries})"
        )
