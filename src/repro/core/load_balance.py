"""Load balancing between CPU and GPU (paper section 5.5).

On machines whose GPU is not comfortably faster than the CPU (M2), the
plain HB+-tree loses to the CPU-optimized tree: the GPU plus transfer
path costs more than it saves.  The load-balanced HB+-tree splits the
inner levels: the CPU traverses the *top* ``D`` levels (they are small
and cache-resident), the GPU the remaining levels, and the CPU finishes
in the leaves.  A fraction ``R`` of each bucket stops one level earlier
on the CPU, giving sub-level granularity.

Equation 4:

    C = max( L_C + sum_{i<D} C_{C,i} + R * C_{C,D},
             (1-R) * C_{G,D} + sum_{i>D} C_{G,i} )

Algorithm 1 (the discovery algorithm) finds (D, R): linear search on D
until the GPU is no longer the bottleneck, then 4 binary-search steps
on R.

The implementation is functional *and* modeled: per-level CPU costs are
measured by instrumented descents (top levels hit the LLC), per-level
GPU costs follow from transaction counts, and the balanced lookup
really executes split across the two engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.gpusim.kernels.frontier_search import (
    KERNELS,
    PER_QUERY,
    validate_kernel,
)
from repro.platform.costmodel import BucketCosts, CpuCostModel, CpuQueryProfile


@dataclass
class DiscoveryResult:
    """Outcome of Algorithm 1."""

    depth: int
    ratio: float
    samples: List[Tuple[int, float, float, float]]
    """(D, R, Time_GPU, Time_CPU) for every getSample call of the
    winning kernel's Algorithm-1 run."""
    #: the *measured* bucket cost max(Time_GPU, Time_CPU) at (depth,
    #: ratio) — always one of the sampled points, never an extrapolation
    cost_ns: float = 0.0
    #: the GPU kernel the committed split was priced with — discovery
    #: runs Algorithm 1 once per measured kernel and commits the
    #: cheapest (kernel, D, R) triple
    kernel: str = PER_QUERY

    @property
    def sample_count(self) -> int:
        return len(self.samples)


class SplitCostModel:
    """Equation 4 evaluation + Algorithm 1 over measured level costs.

    Subclasses own the measurement side: :meth:`reprofile` fills
    ``cpu_level_ns`` (top level first), ``gpu_level_ns`` and
    ``leaf_ns``, and :attr:`height` names the number of inner levels.
    Everything downstream of the measurements is shared —
    :meth:`sample_times` / :meth:`balanced_cost_ns` (Equation 4) and
    :meth:`discover` (Algorithm 1) — between the implicit-tree
    :class:`LoadBalancer` and the mode-space balancer the adaptive
    controller builds for the regular tree
    (:class:`repro.core.adaptive.RegularModeBalancer`).
    """

    # set by subclass constructors / reprofile()
    machine = None
    cpu_model = None
    bucket_size = 0
    cpu_level_ns: List[float]
    leaf_ns: float
    depth: int = 0
    ratio: float = 0.0
    #: the GPU kernel the committed split is priced with (a third
    #: discovery dimension next to D and R)
    kernel: str = PER_QUERY
    #: per-kernel measured level costs; ``None`` until a subclass
    #: :meth:`reprofile` fills it (scripted balancers that assign
    #: ``gpu_level_ns`` directly keep single-kernel behaviour)
    gpu_level_ns_by_kernel: Optional[Dict[str, List[float]]] = None
    #: restricts which kernels discovery may choose (``None`` = all
    #: measured kernels); lets a deployment pin the per-query schedule
    allowed_kernels: Optional[Tuple[str, ...]] = None
    #: fraction of bucket queries that are range scans (0 = pure
    #: lookups, the classic Eq-4 costing)
    scan_share: float = 0.0
    #: expected tuples returned per scan
    scan_length: float = 0.0
    #: modeled CPU cost of touching one additional leaf line while the
    #: scan walks the chain (set by :meth:`reprofile` from the measured
    #: leaf-stage cost)
    leaf_scan_ns: float = 0.0
    #: tuples one leaf cache line carries (how far a line's touch
    #: advances a scan before the next line is charged)
    scan_pairs_per_line: float = 8.0

    @property
    def gpu_level_ns(self) -> List[float]:
        """Per-level GPU costs of the *currently selected* kernel."""
        by = self.gpu_level_ns_by_kernel
        if by and self.kernel in by:
            return by[self.kernel]
        return self._gpu_level_ns

    @gpu_level_ns.setter
    def gpu_level_ns(self, value: List[float]) -> None:
        self._gpu_level_ns = value

    def gpu_costs_for(self, kernel: str) -> List[float]:
        """Per-level GPU costs under ``kernel`` (measured, or the
        single profiled cost list when no per-kernel profile exists)."""
        by = self.gpu_level_ns_by_kernel
        if by and kernel in by:
            return by[kernel]
        return self.gpu_level_ns

    def candidate_kernels(self) -> Tuple[str, ...]:
        """Kernels discovery can choose between — every kernel with a
        measured cost profile (intersected with :attr:`allowed_kernels`
        when restricted), in :data:`KERNELS` order (so ties go to the
        per-query default deterministically)."""
        by = self.gpu_level_ns_by_kernel
        if by:
            kernels = tuple(k for k in KERNELS if k in by)
        else:
            kernels = (self.kernel,)
        if self.allowed_kernels is not None:
            restricted = tuple(
                k for k in kernels if k in self.allowed_kernels
            )
            if restricted:
                return restricted
        return kernels

    @property
    def height(self) -> int:
        """Number of inner (directory) levels above the leaves."""
        raise NotImplementedError

    def reprofile(self, sample: Optional[np.ndarray] = None,
                  sample_size: int = 2048) -> None:
        raise NotImplementedError

    def set_scan_profile(self, share: float, length: float) -> None:
        """Price buckets as a scan/lookup mix.

        ``share`` is the fraction of queries that are range scans and
        ``length`` their expected tuple count.  A scan's descent costs
        exactly a lookup's; the difference is the leaf-chain
        continuation — ``share x extra-leaf-lines x leaf_scan_ns`` of
        *CPU* work per query — which shifts Equation 4's CPU side and
        therefore where Algorithm 1 commits (kernel, D, R).  Survives
        :meth:`reprofile` (the profile is traffic, not hardware).
        """
        if not 0.0 <= share <= 1.0:
            raise ValueError("scan share must be within [0, 1]")
        if length < 0.0:
            raise ValueError("scan length must be >= 0")
        self.scan_share = float(share)
        self.scan_length = float(length)

    def scan_extra_ns(self) -> float:
        """Per-query CPU cost of the scans' leaf-chain continuations.

        The first leaf line is already charged by ``leaf_ns`` (a scan
        starts exactly like a lookup); only the lines beyond it are
        extra, weighted by the scan share of the mix.
        """
        if self.scan_share <= 0.0 or self.scan_length <= 0.0:
            return 0.0
        extra_lines = max(
            0.0,
            self.scan_length / max(self.scan_pairs_per_line, 1.0) - 1.0,
        )
        return self.scan_share * extra_lines * self.leaf_scan_ns

    # ------------------------------------------------------------------
    # Equation 4 / getSample

    def split_serves_gpu(self, depth: int, ratio: float) -> bool:
        """Whether a (D, R) split leaves the GPU any work at all.

        At ``depth == h`` (and at ``depth == h - 1`` with ``R == 1``)
        every query descends all inner levels on the CPU; no kernel
        launches and nothing crosses PCIe.
        """
        h = self.height
        if depth >= h:
            return False
        return not (depth + 1 >= h and ratio >= 1.0)

    def sample_times(self, depth: int, ratio: float,
                     bucket_size: Optional[int] = None,
                     kernel: Optional[str] = None,
                     ) -> Tuple[float, float]:
        """getSample(D, R[, kernel]): (Time_GPU, Time_CPU) for one bucket."""
        m = bucket_size or self.bucket_size
        h = self.height
        depth = min(depth, h)
        gpu_level_ns = self.gpu_costs_for(
            validate_kernel(kernel) if kernel is not None else self.kernel
        )
        cpu_per_query = (
            self.leaf_ns + self.scan_extra_ns()
            + sum(self.cpu_level_ns[:depth])
        )
        if depth < h:
            cpu_per_query += ratio * self.cpu_level_ns[depth]
        gpu_per_query = sum(gpu_level_ns[depth + 1:])
        if depth < h:
            gpu_per_query += (1.0 - ratio) * gpu_level_ns[depth]
        threads = self.cpu_model.threads
        time_cpu = m * cpu_per_query / threads
        if not self.split_serves_gpu(depth, ratio):
            # an all-CPU split launches no kernel: charging
            # kernel_init_ns here penalized D == h with phantom
            # launch overhead the GPU never incurs
            time_gpu = 0.0
        else:
            time_gpu = self.machine.gpu.kernel_init_ns + m * gpu_per_query
        return time_gpu, time_cpu

    def balanced_cost_ns(self, depth: int, ratio: float,
                         bucket_size: Optional[int] = None,
                         kernel: Optional[str] = None) -> float:
        """Equation 4: the bucket cost under a (D, R) split."""
        time_gpu, time_cpu = self.sample_times(
            depth, ratio, bucket_size, kernel=kernel
        )
        return max(time_gpu, time_cpu)

    # ------------------------------------------------------------------
    # Algorithm 1

    def _discover_kernel(
        self, kernel: str, bucket_size: Optional[int]
    ) -> Tuple[List[Tuple[int, float, float, float]],
               Tuple[int, float, float, float]]:
        """One Algorithm-1 run priced with ``kernel``'s level costs.

        Returns ``(samples, best_sample)`` where ``best_sample`` is the
        cheapest *sampled* point — the binary search's final adjustment
        of R is never evaluated by ``sample_times``, so the loop
        variable may name a (D, R) whose cost was never measured.
        """
        h = self.height
        samples: List[Tuple[int, float, float, float]] = []
        depth, ratio = 0, 1.0
        time_gpu, time_cpu = self.sample_times(
            depth, ratio, bucket_size, kernel=kernel
        )
        samples.append((depth, ratio, time_gpu, time_cpu))
        while time_gpu > time_cpu and depth < h:
            depth += 1
            time_gpu, time_cpu = self.sample_times(
                depth, ratio, bucket_size, kernel=kernel
            )
            samples.append((depth, ratio, time_gpu, time_cpu))
        ratio = 0.5
        for step in range(2, 6):
            time_gpu, time_cpu = self.sample_times(
                depth, ratio, bucket_size, kernel=kernel
            )
            samples.append((depth, ratio, time_gpu, time_cpu))
            if time_gpu > time_cpu:
                ratio += 1.0 / (2 ** step)
            else:
                ratio -= 1.0 / (2 ** step)
        best = min(samples, key=lambda s: max(s[2], s[3]))
        return samples, best

    def discover(self, bucket_size: Optional[int] = None) -> DiscoveryResult:
        """The paper's discovery algorithm, executed literally.

        Runs one Algorithm-1 pass per measured kernel (per-query and,
        once profiled, frontier) and commits the cheapest
        (kernel, D, R) triple; ties go to the earlier kernel in
        :data:`KERNELS` order, i.e. the per-query default.
        """
        best_kernel: Optional[str] = None
        best_samples: List[Tuple[int, float, float, float]] = []
        best_sample: Tuple[int, float, float, float] = (0, 0.0, 0.0, 0.0)
        best_cost = float("inf")
        for kern in self.candidate_kernels():
            samples, sample = self._discover_kernel(kern, bucket_size)
            cost = max(sample[2], sample[3])
            if cost < best_cost:
                best_kernel = kern
                best_samples = samples
                best_sample = sample
                best_cost = cost
        assert best_kernel is not None
        depth, ratio, time_gpu, time_cpu = best_sample
        self.depth = depth
        self.ratio = ratio
        self.kernel = best_kernel
        return DiscoveryResult(
            depth=depth, ratio=ratio, samples=best_samples,
            cost_ns=max(time_gpu, time_cpu), kernel=best_kernel,
        )


class LoadBalancer(SplitCostModel):
    """The load-balanced implicit HB+-tree search (section 5.5)."""

    def __init__(
        self,
        tree: ImplicitHBPlusTree,
        bucket_size: Optional[int] = None,
        cpu_model: Optional[CpuCostModel] = None,
        sort_batches: bool = False,
        reprofile_on_init: bool = True,
        allowed_kernels: Optional[Tuple[str, ...]] = None,
    ):
        self.tree = tree
        self.machine = tree.machine
        self.bucket_size = bucket_size or self.machine.bucket_size
        self.cpu_model = cpu_model or CpuCostModel(self.machine.cpu)
        self.sort_batches = sort_batches
        if allowed_kernels is not None:
            allowed_kernels = tuple(
                validate_kernel(k) for k in allowed_kernels
            )
        self.allowed_kernels = allowed_kernels
        if reprofile_on_init:
            self.reprofile()
        self.depth = 0
        self.ratio = 1.0

    @property
    def height(self) -> int:
        return self.tree.cpu_tree.height

    # ------------------------------------------------------------------
    # per-level cost measurement

    def reprofile(self, sample: Optional[np.ndarray] = None,
                  sample_size: int = 2048) -> None:
        """Measure C_{C,i}, C_{G,i} and L_C from instrumented runs.

        ``sample`` supplies the query stream to profile on — the online
        adaptive controller passes a reservoir of *live* window queries
        here, so the per-level costs track the traffic actually being
        served.  When omitted, a seeded sample of stored keys is drawn
        (without replacement: sampling stored keys *with* replacement
        skews per-level miss rates on small trees, the same bug the
        PR 2 ``bucket_costs`` fix removed for tiny trees).

        The GPU side is measured through the pure transaction model
        (:meth:`ImplicitHBPlusTree.modeled_transactions`), so profiling
        never mutates device counters or the kernel-launch count — a
        re-profile in the middle of an engine run leaves the engine's
        modeled counters bit-identical to an unprofiled run.
        """
        tree = self.tree.cpu_tree
        spec = self.tree.spec
        if sample is None:
            rng = np.random.default_rng(23)
            stored = tree.leaf_keys.reshape(-1)
            stored = stored[stored != spec.max_value]
            sample = rng.choice(
                stored, size=min(sample_size, len(stored)), replace=False
            )
        else:
            sample = np.asarray(sample, dtype=spec.dtype)
            if len(sample) == 0:
                raise ValueError("reprofile sample must be non-empty")
        if self.sort_batches:
            # measure on the stream the batch engine actually runs:
            # sorted distinct queries (coalescing-friendly on the GPU)
            sample = np.unique(sample)
        mem = self.tree.mem
        h = tree.height

        # CPU cost per level: descend while recording per-level misses
        per_level_misses = [0.0] * h
        per_level_lines = [0.0] * h
        node = np.zeros(len(sample), dtype=np.int64)
        q = sample.astype(spec.dtype)
        mem.reset_counters()
        for level in range(h):
            offset = tree._level_line_offset(level)
            before = mem.counters.cache_misses
            mem.touch_lines(tree.i_segment, offset + node)
            per_level_misses[level] = (
                mem.counters.cache_misses - before
            ) / len(sample)
            per_level_lines[level] = 1.0
            keys = tree.inner_levels[level][node]
            k = np.sum(keys < q[:, None], axis=1).astype(np.int64)
            next_size = (
                tree.inner_levels[level + 1].shape[0]
                if level + 1 < h
                else tree.num_leaves
            )
            node = np.minimum(node * tree.fanout + k, next_size - 1)
        # leaf stage cost
        before = mem.counters.cache_misses
        tlb_s_before = mem.counters.tlb_misses_small
        tlb_h_before = mem.counters.tlb_misses_huge
        mem.touch_lines(tree.l_segment, node)
        leaf_misses = (mem.counters.cache_misses - before) / len(sample)
        leaf_tlb_s = (mem.counters.tlb_misses_small - tlb_s_before) / len(sample)
        leaf_tlb_h = (mem.counters.tlb_misses_huge - tlb_h_before) / len(sample)

        model = self.cpu_model
        self.cpu_level_ns: List[float] = []
        for level in range(h):
            profile = CpuQueryProfile(
                lines=per_level_lines[level],
                misses=per_level_misses[level],
                tlb_small=0.0,
                tlb_huge=0.0,
                node_searches=1.0,
            )
            self.cpu_level_ns.append(model.query_ns(profile))
        leaf_profile = CpuQueryProfile(
            lines=1.0,
            misses=leaf_misses,
            tlb_small=leaf_tlb_s,
            tlb_huge=leaf_tlb_h,
            node_searches=1.0,
        )
        self.leaf_ns = model.query_ns(leaf_profile)

        # GPU cost per level: transactions measured by the kernel twin
        # (pure model — no launch counted, no device-counter mutation),
        # once per kernel so discovery can price per_query vs frontier
        gpu = self.machine.gpu
        self.gpu_level_ns_by_kernel = {}
        for kern in KERNELS:
            txns = self.tree.modeled_transactions(sample, kernel=kern)
            txn_per_query_level = txns / max(1, len(sample)) / max(1, h)
            self.gpu_level_ns_by_kernel[kern] = [
                txn_per_query_level * 64.0 / gpu.effective_bandwidth_gbs
            ] * h
        self.gpu_level_ns = self.gpu_level_ns_by_kernel[PER_QUERY]

        # Scan costing: each extra leaf line walked past the landing line
        # costs one more CPU leaf probe; the implicit tree stores a whole
        # leaf per cache line.
        self.leaf_scan_ns = self.leaf_ns
        self.scan_pairs_per_line = float(tree.leaf_keys.shape[1])

    # ------------------------------------------------------------------
    # functional balanced lookup

    def lookup_batch(self, queries) -> np.ndarray:
        """Execute one bucket split at the discovered (D, R)."""
        tree = self.tree.cpu_tree
        spec = self.tree.spec
        q = np.asarray(queries, dtype=spec.dtype)
        h = tree.height
        n = len(q)
        if h == 0:
            return self.tree.cpu_finish_bucket(q, np.zeros(n, dtype=np.int64))
        # Equation 4 semantics: an R fraction of the bucket has its
        # level-D search done by the CPU (descends D+1 levels), the
        # rest hands level D to the GPU (descends D levels)
        cut = int(round(self.ratio * n))
        depths = np.full(n, min(self.depth + 1, h), dtype=np.int64)
        depths[cut:] = min(self.depth, h)

        node = np.zeros(n, dtype=np.int64)
        for level in range(h):
            active = depths > level
            if not np.any(active):
                break
            keys = tree.inner_levels[level][node[active]]
            k = np.sum(keys < q[active, None], axis=1).astype(np.int64)
            next_size = (
                tree.inner_levels[level + 1].shape[0]
                if level + 1 < h
                else tree.num_leaves
            )
            node[active] = np.minimum(
                node[active] * tree.fanout + k, next_size - 1
            )
        # GPU resumes from the per-query depth
        from repro.gpusim.kernels.implicit_search import (
            implicit_search_from,
        )
        leaf = implicit_search_from(
            self.tree.iseg_buffer.array,
            self.tree.level_offsets,
            self.tree.level_sizes,
            h,
            tree.fanout,
            q,
            start_levels=depths,
            start_nodes=node,
        )
        return self.tree.cpu_finish_bucket(q, leaf)

    def bucket_costs(self, bucket_size: Optional[int] = None) -> BucketCosts:
        """T1-T4 under the discovered split, for the pipeline simulator.

        T2 is the GPU share, T4 the CPU share (top levels + leaf); the
        transfers additionally carry the intermediate node index.
        """
        m = bucket_size or self.bucket_size
        spec = self.tree.spec
        time_gpu, time_cpu = self.sample_times(self.depth, self.ratio, m)
        if not self.split_serves_gpu(self.depth, self.ratio):
            # all-CPU split: nothing crosses PCIe in either direction
            return BucketCosts(t1=0.0, t2=time_gpu, t3=0.0, t4=time_cpu)
        # query + intermediate node index travel to the GPU
        t1 = self.machine.pcie.transfer_ns(m * (spec.size_bytes + 8))
        t3 = self.machine.pcie.transfer_ns(m * 8)
        return BucketCosts(t1=t1, t2=time_gpu, t3=t3, t4=time_cpu)
