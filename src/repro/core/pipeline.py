"""Bucket scheduling strategies (paper section 5.4, Figs 5-6).

Three strategies are modeled, matching the paper's Fig 10 comparison:

* **sequential** — each bucket runs T1 -> T2 -> T3 -> T4 to completion
  before the next starts; no overlap at all.
* **pipelined** — the next bucket's transfer starts as soon as the
  current bucket's intermediate results reach the CPU; CPU leaf search
  overlaps the GPU's work on the successor bucket (Fig 5).
* **double_buffered** — two (or three, for the load-balanced variant)
  GPU worker threads on separate buffers hide the transfers entirely
  (Fig 6); steady state costs ``max(T2, T4)`` per bucket.

Besides the closed-form steady-state costs (in
:class:`repro.platform.costmodel.BucketCosts`) this module provides an
event-driven simulator that plays an arbitrary number of buckets
through the chosen schedule, yielding full per-bucket completion times
— pipeline fill and drain included — from which latency statistics are
derived.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Optional

from repro.platform.costmodel import BucketCosts


def nearest_rank_index(percentile: float, n: int) -> int:
    """Zero-based index of the standard (ceil) nearest-rank percentile.

    For a sorted sample of ``n`` values, the nearest-rank method picks
    the ``ceil(p/100 * n)``-th smallest value.  The previous
    ``round``-based variant both under-selected mid-ranks (banker's
    rounding sent p=25 on n=2 to rank 0) and collapsed small
    percentiles to index 0 only via clamping; ceil is exact for every
    ``0 < p <= 100``: p=100 is the maximum, p<=100/n is the minimum.
    """
    if not 0 < percentile <= 100:
        raise ValueError("percentile must be in (0, 100]")
    if n <= 0:
        raise ValueError("need at least one value")
    return math.ceil(percentile / 100.0 * n) - 1


class BucketStrategy(enum.Enum):
    SEQUENTIAL = "sequential"
    PIPELINED = "pipelined"
    DOUBLE_BUFFERED = "double_buffered"


@dataclass
class BucketTimeline:
    """When each step of one bucket started/finished (ns)."""

    index: int
    t1_start: float
    t1_end: float
    t2_end: float
    t3_end: float
    t4_end: float
    #: queries actually carried by this bucket; ``None`` means a full
    #: bucket.  A partial final bucket still occupies a whole buffer
    #: slot (device buffers are fixed-size, the tail is padded), so its
    #: timing is a full bucket's — only its query count differs.
    queries: Optional[int] = None

    @property
    def completion(self) -> float:
        return self.t4_end

    def latency_of_average_query(self) -> float:
        """A query waits from bucket dispatch to mid-way through T4."""
        return self.t3_end + (self.t4_end - self.t3_end) / 2.0 - self.t1_start


@dataclass
class PipelineRun:
    """Result of playing N buckets through a schedule."""

    timelines: List[BucketTimeline]
    bucket_size: int

    @property
    def makespan_ns(self) -> float:
        """Completion time of the last bucket; 0.0 for an empty run."""
        if not self.timelines:
            return 0.0
        return max(t.completion for t in self.timelines)

    @property
    def total_queries(self) -> int:
        """Queries actually carried, partial final bucket included."""
        return sum(
            self.bucket_size if t.queries is None else t.queries
            for t in self.timelines
        )

    @property
    def throughput_qps(self) -> float:
        """Queries per second over the makespan.

        Defined as 0.0 for degenerate runs — no buckets, zero carried
        queries, or an all-zero cost model (makespan 0) — instead of
        raising ``ZeroDivisionError`` / returning NaN: an idle or
        costless pipeline serves nothing per second.
        """
        queries = self.total_queries
        makespan = self.makespan_ns
        if queries == 0 or makespan <= 0.0:
            return 0.0
        return queries * 1e9 / makespan

    @property
    def mean_latency_ns(self) -> float:
        """Mean per-bucket average-query latency; 0.0 for an empty run."""
        if not self.timelines:
            return 0.0
        lats = [t.latency_of_average_query() for t in self.timelines]
        return sum(lats) / len(lats)

    def latency_percentile_ns(self, percentile: float) -> float:
        """Per-bucket query latency at a percentile (e.g. 50, 99).

        Computed over the per-bucket average-query latencies, which
        capture pipeline fill/drain and queueing differences between
        buckets.  Uses the standard ceil-based nearest-rank
        (:func:`nearest_rank_index`); the earlier ``round``-based rank
        picked the lower of two candidates at mid-percentiles.
        """
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if not self.timelines:
            return 0.0
        lats = sorted(t.latency_of_average_query() for t in self.timelines)
        return lats[nearest_rank_index(percentile, len(lats))]

    def timelines_df(self) -> List[dict]:
        """Structured export of every bucket timeline (list of dicts).

        One row per bucket with every step boundary, the carried query
        count (partial final bucket included) and the derived per-row
        metrics — so benchmarks can join the model's prediction against
        measured wall-clock data without poking at private attributes.
        The rows are ``pandas.DataFrame``-ready but require nothing
        beyond the standard library.
        """
        rows = []
        for t in self.timelines:
            rows.append({
                "index": t.index,
                "t1_start": t.t1_start,
                "t1_end": t.t1_end,
                "t2_end": t.t2_end,
                "t3_end": t.t3_end,
                "t4_end": t.t4_end,
                "queries": self.bucket_size if t.queries is None else t.queries,
                "completion_ns": t.completion,
                "avg_query_latency_ns": t.latency_of_average_query(),
            })
        return rows

    @property
    def steady_state_bucket_ns(self) -> float:
        """Per-bucket cost once the pipeline is warm."""
        if len(self.timelines) < 2:
            return self.makespan_ns
        tail = self.timelines[len(self.timelines) // 2:]
        if len(tail) < 2:
            tail = self.timelines[-2:]
        return (tail[-1].completion - tail[0].completion) / (len(tail) - 1)


class PipelineSimulator:
    """Plays buckets through a strategy, tracking resource conflicts.

    Resources: the PCIe link (shared by T1/T3), the GPU (T2) and the
    CPU worker pool (T4).  ``buffers`` is the number of buckets allowed
    in flight: 1 models sequential handling, 2 the plain pipelined /
    double-buffered variants, 3 the load-balanced variant's deeper
    queue (section 5.5).
    """

    def __init__(self, costs: BucketCosts, strategy: BucketStrategy,
                 bucket_size: int, buffers: int = 2):
        if buffers < 1:
            raise ValueError("need at least one buffer")
        self.costs = costs
        self.strategy = strategy
        self.bucket_size = bucket_size
        self.buffers = buffers

    def run(self, n_buckets: int) -> PipelineRun:
        if n_buckets <= 0:
            raise ValueError("need at least one bucket")
        if self.strategy is BucketStrategy.SEQUENTIAL:
            timelines = self._run_sequential(n_buckets)
        elif self.strategy is BucketStrategy.PIPELINED:
            timelines = self._run_overlapped(n_buckets, transfer_hidden=False)
        else:
            timelines = self._run_overlapped(n_buckets, transfer_hidden=True)
        return PipelineRun(timelines=timelines, bucket_size=self.bucket_size)

    def run_queries(self, n_queries: int) -> PipelineRun:
        """Play exactly ``n_queries`` through the schedule.

        A trailing partial bucket pays a full bucket's time (fixed-size
        buffers) but counts only its real queries, so
        :attr:`PipelineRun.throughput_qps` no longer overcounts when
        the workload is not a bucket multiple.
        """
        if n_queries <= 0:
            raise ValueError("need at least one query")
        n_buckets = -(-n_queries // self.bucket_size)
        run = self.run(n_buckets)
        remainder = n_queries - (n_buckets - 1) * self.bucket_size
        if remainder != self.bucket_size:
            run.timelines[-1].queries = remainder
        return run

    # ------------------------------------------------------------------

    def _run_sequential(self, n: int) -> List[BucketTimeline]:
        c = self.costs
        out = []
        t = 0.0
        for i in range(n):
            t1s = t
            t1e = t1s + c.t1
            t2e = t1e + c.t2
            t3e = t2e + c.t3
            t4e = t3e + c.t4
            out.append(BucketTimeline(i, t1s, t1e, t2e, t3e, t4e))
            t = t4e
        return out

    def _run_overlapped(self, n: int, transfer_hidden: bool
                        ) -> List[BucketTimeline]:
        """Event-driven schedule with GPU, CPU and link as resources.

        With ``transfer_hidden`` (double buffering) a second buffer lets
        the next bucket's T1 proceed during the current bucket's T2, so
        the GPU never waits on the link; without it (plain pipelining)
        the next T1 may only start once the current bucket's results
        left the GPU (Fig 5's schedule).
        """
        c = self.costs
        out: List[BucketTimeline] = []
        gpu_free = 0.0
        cpu_free = 0.0
        # PCIe is full duplex: host->device and device->host transfers
        # ride separate DMA engines
        link_up_free = 0.0
        link_down_free = 0.0
        prev_t3_end = 0.0
        for i in range(n):
            if transfer_hidden or i == 0:
                t1s = max(link_up_free, 0.0)
            else:
                # Fig 5: bucket i+1 is loaded after bucket i's results
                # transferred back
                t1s = max(link_up_free, prev_t3_end)
            if i >= self.buffers:
                # the device-side query/result buffers free once the
                # intermediate results reached host memory (T3 end); the
                # CPU leaf stage works out of host memory and is not
                # part of the device buffer cycle
                t1s = max(t1s, out[i - self.buffers].t3_end)
            t1e = t1s + c.t1
            link_up_free = t1e
            t2s = max(t1e, gpu_free)
            t2e = t2s + c.t2
            gpu_free = t2e
            t3s = max(t2e, link_down_free)
            t3e = t3s + c.t3
            link_down_free = t3e
            prev_t3_end = t3e
            t4s = max(t3e, cpu_free)
            t4e = t4s + c.t4
            cpu_free = t4e
            out.append(BucketTimeline(i, t1s, t1e, t2e, t3e, t4e))
        return out


def strategy_throughput_qps(
    costs: BucketCosts, strategy: BucketStrategy, bucket_size: int,
    n_buckets: int = 64,
) -> float:
    """Steady-state throughput of a strategy via the event simulator."""
    run = PipelineSimulator(costs, strategy, bucket_size).run(n_buckets)
    return bucket_size * 1e9 / run.steady_state_bucket_ns


def strategy_latency_ns(
    costs: BucketCosts, strategy: BucketStrategy, bucket_size: int,
    n_buckets: int = 64,
) -> float:
    run = PipelineSimulator(costs, strategy, bucket_size).run(n_buckets)
    return run.mean_latency_ns
