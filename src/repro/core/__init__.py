"""The paper's contribution: the hybrid CPU-GPU B+-tree.

* :mod:`repro.core.hbtree_implicit` — implicit HB+-tree (section 5.2),
* :mod:`repro.core.hbtree` — regular HB+-tree,
* :mod:`repro.core.buckets` / :mod:`repro.core.pipeline` — bucket
  decomposition and the sequential / pipelined / double-buffered bucket
  scheduling strategies (section 5.4, Figs 5-6),
* :mod:`repro.core.load_balance` — the D/R load balancing scheme and
  its discovery algorithm (section 5.5, Algorithm 1),
* :mod:`repro.core.update` — batch update execution (section 5.6),
* :mod:`repro.core.batching` — sorted/deduplicated bucket execution
  (coalescing-aware batch engine; DESIGN.md §8),
* :mod:`repro.core.overlap` — the *real* overlapped pipeline: a
  double-buffered, multi-threaded CPU<->GPU engine executing buckets
  through actual worker threads (DESIGN.md §9),
* :mod:`repro.core.resilience` — fault-tolerant execution: retries,
  mirror checksum repair, circuit-breaker degradation to CPU-only
  service and recovery (beyond the paper; see DESIGN.md §7).
"""

from repro.core.batching import (
    BatchingEngine,
    BatchStats,
    BucketPlan,
    SortedDelta,
    measure_sorted_delta,
    plan_bucket,
)
from repro.core.buckets import iter_buckets, num_buckets
from repro.core.hbtree import HBPlusTree, MirrorSyncStats
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.load_balance import DiscoveryResult, LoadBalancer
from repro.core.overlap import OverlappedEngine, OverlapStats, QueueStats
from repro.core.pipeline import BucketStrategy, PipelineSimulator
from repro.core.resilience import (
    CircuitBreaker,
    GpuUnavailable,
    ResilienceConfig,
    ResilienceStats,
    ResilientHBPlusTree,
)
from repro.core.mixed import (
    ConcurrentQueryEngine,
    MixedRunResult,
    OptimisticMixedEngine,
    OptimisticRunResult,
)
from repro.core.update import (
    AsyncBatchUpdater,
    ImplicitRebuildStats,
    SyncUpdater,
    UpdateStats,
)

__all__ = [
    "HBPlusTree",
    "ImplicitHBPlusTree",
    "BatchingEngine",
    "BatchStats",
    "BucketPlan",
    "SortedDelta",
    "measure_sorted_delta",
    "plan_bucket",
    "MirrorSyncStats",
    "OverlappedEngine",
    "OverlapStats",
    "QueueStats",
    "ResilientHBPlusTree",
    "ResilienceConfig",
    "ResilienceStats",
    "CircuitBreaker",
    "GpuUnavailable",
    "iter_buckets",
    "num_buckets",
    "BucketStrategy",
    "PipelineSimulator",
    "LoadBalancer",
    "DiscoveryResult",
    "AsyncBatchUpdater",
    "SyncUpdater",
    "UpdateStats",
    "ImplicitRebuildStats",
    "ConcurrentQueryEngine",
    "MixedRunResult",
    "OptimisticMixedEngine",
    "OptimisticRunResult",
]
