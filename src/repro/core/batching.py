"""Sorted/deduplicated bucket execution (the batch execution engine).

The paper's throughput story rests on memory coalescing: teams of a
warp that read the *same* inner-node line share one 64-byte transaction
(section 5.3).  Arrival-order buckets squander that — neighbouring
queries land on unrelated subtrees, so nearly every team pays its own
transaction.  This module restructures each bucket before the GPU
stage:

1. **sort + deduplicate** the bucket's queries (``np.unique``), so the
   level-wise descent walks monotone node-id streams in which adjacent
   teams share lines (the FPGA batch-search result of Tzschoppe et al.
   and the lane-friendly batch layouts of the BS-tree exploit the same
   structure);
2. run the GPU descent and the CPU leaf stage **once per distinct
   key**;
3. **scatter** the per-distinct results back to arrival order with the
   inverse permutation — callers observe bit-identical output to the
   naive unsorted path.

The engine optionally measures the arrival-order baseline through the
same transaction model, surfacing the sorted-vs-unsorted delta through
:class:`GpuSearchResult.baseline_transactions` / ``sorted_gain`` and
the aggregated :class:`BatchStats`, which is how ``bucket_costs`` and
the load balancer see the gain.

The engine is duck-typed over both hybrid trees (regular and implicit):
it only needs ``gpu_search_bucket`` / ``cpu_finish_bucket`` /
``modeled_transactions`` and the key ``spec``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.buckets import DEFAULT_BUCKET_SIZE, iter_buckets
from repro.gpusim.kernels.frontier_search import validate_kernel
from repro.obs import NULL_OBS


@dataclass(frozen=True)
class BucketPlan:
    """One bucket's sort/dedup/scatter decomposition."""

    #: the bucket's queries in arrival order
    queries: np.ndarray
    #: sorted distinct query keys (what the GPU stage actually sees)
    sorted_unique: np.ndarray
    #: per-arrival-query index into ``sorted_unique`` (the scatter map)
    inverse: np.ndarray

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    @property
    def n_unique(self) -> int:
        return len(self.sorted_unique)

    @property
    def duplicate_fraction(self) -> float:
        """Share of the bucket's queries collapsed by deduplication."""
        if self.n_queries == 0:
            return 0.0
        return 1.0 - self.n_unique / self.n_queries

    def scatter(self, per_unique: np.ndarray) -> np.ndarray:
        """Expand per-distinct-key results back to arrival order."""
        return per_unique[self.inverse]


def plan_bucket(queries: Sequence, dtype=None) -> BucketPlan:
    """Sort + deduplicate one bucket; the inverse map restores order."""
    q = np.asarray(queries, dtype=dtype)
    if len(q) == 0:
        return BucketPlan(
            queries=q,
            sorted_unique=q,
            inverse=np.zeros(0, dtype=np.int64),
        )
    sorted_unique, inverse = np.unique(q, return_inverse=True)
    return BucketPlan(
        queries=q,
        sorted_unique=sorted_unique,
        inverse=inverse.reshape(-1).astype(np.int64),
    )


@dataclass
class BatchStats:
    """Aggregated accounting of an engine's executed buckets."""

    buckets: int = 0
    queries: int = 0
    unique: int = 0
    #: modeled GPU transactions actually charged (sorted batches)
    transactions: int = 0
    #: modeled transactions the same queries cost in arrival order
    #: (accumulated only when the engine measures baselines)
    baseline_transactions: int = 0
    baselines_measured: int = 0
    #: range scans executed through :meth:`BatchingEngine.run_scans`
    scans: int = 0
    #: tuples those scans returned (the leaf-chain work the cost model
    #: prices separately from point lookups)
    scan_tuples: int = 0

    @property
    def mean_scan_length(self) -> float:
        if self.scans == 0:
            return 0.0
        return self.scan_tuples / self.scans

    @property
    def transactions_per_query(self) -> float:
        """Charged transactions per *arrival* query (dedup included)."""
        if self.queries == 0:
            return 0.0
        return self.transactions / self.queries

    @property
    def baseline_transactions_per_query(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.baseline_transactions / self.queries

    @property
    def duplicate_fraction(self) -> float:
        if self.queries == 0:
            return 0.0
        return 1.0 - self.unique / self.queries

    @property
    def sorted_gain(self) -> float:
        """Fraction of modeled transactions saved vs arrival order."""
        if self.baseline_transactions <= 0:
            return 0.0
        return 1.0 - self.transactions / self.baseline_transactions


class BatchingEngine:
    """Executes buckets sorted + deduplicated over a hybrid tree.

    ``measure_baseline`` additionally runs the arrival-order bucket
    through the pure transaction model (no device-counter side
    effects), so every :class:`GpuSearchResult` carries its
    ``baseline_transactions`` and the engine's :class:`BatchStats`
    report the measured sorted-vs-unsorted delta.
    """

    def __init__(self, tree, bucket_size: Optional[int] = None,
                 measure_baseline: bool = False, obs=None, balancer=None,
                 kernel: Optional[str] = None):
        self.tree = tree
        self.bucket_size = bucket_size or getattr(
            getattr(tree, "machine", None), "bucket_size", DEFAULT_BUCKET_SIZE
        )
        self.measure_baseline = measure_baseline
        #: explicit GPU kernel override; ``None`` defers to the
        #: balancer's discovered kernel, then the tree default
        self.kernel = validate_kernel(kernel) if kernel is not None else None
        self.stats = BatchStats()
        #: serializes batch entry against :meth:`quiesce` so a snapshot
        #: taken under load sees a consistent tree between batches; the
        #: tree's own ``serve_lock`` is adopted when it has one, so
        #: direct tree scans (``tree.range_query``) and engine batches
        #: serialize against the same quiesce window
        self._serve_lock = getattr(tree, "serve_lock", None) \
            or threading.RLock()
        #: explicit :class:`repro.obs.Observability` override; None
        #: follows the tree's attached bundle dynamically
        self._obs = obs
        #: optional (D, R) split source — an
        #: :class:`repro.core.adaptive.AdaptiveController` or
        #: :class:`~repro.core.adaptive.StaticSplit`; consulted once
        #: per bucket, at dispatch, and fed the dispatched queries
        self.balancer = balancer
        if balancer is not None and not getattr(
            tree, "supports_split_descent", False
        ):
            raise ValueError(
                "a (D, R) balancer needs a tree with a mid-tree GPU "
                "resume path (supports_split_descent); the regular "
                "HB+-tree is balanced through ResilientHBPlusTree's "
                "mode controller instead"
            )

    @property
    def obs(self):
        if self._obs is not None:
            return self._obs
        return getattr(self.tree, "obs", NULL_OBS)

    # ------------------------------------------------------------------

    @staticmethod
    def _codes_of(result) -> np.ndarray:
        """The GPU stage's per-query output, whatever the tree calls it."""
        if hasattr(result, "codes"):
            return result.codes
        return result.leaf_indices

    def _bucket_kernel(self) -> Optional[str]:
        """The GPU kernel for the next bucket (None = tree default)."""
        if self.kernel is not None:
            return self.kernel
        if self.balancer is not None:
            return getattr(self.balancer, "kernel", None)
        return None

    def _descend(self, plan: BucketPlan):
        """The inner-level stage, split per the balancer when present.

        The split — and the kernel it was priced with — is read once
        per bucket at dispatch, *before* the bucket's arrival-order
        queries are fed back to the balancer (feeding back may close a
        window and move the committed split); rebalance decisions are a
        deterministic function of the bucket sequence.  A split moves
        levels between processors and a kernel moves the traversal
        schedule, never results: (D=0, R=0) reproduces
        ``gpu_search_bucket`` exactly (leaf indices *and* transaction
        count), and every kernel returns bit-identical leaves.
        """
        if self.balancer is None:
            return self.tree.gpu_search_bucket(
                plan.sorted_unique, kernel=self._bucket_kernel()
            )
        from repro.core.adaptive import split_levels

        depth, ratio = self.balancer.split()
        kernel = self._bucket_kernel()
        self.balancer.note_bucket(plan.queries)
        levels = split_levels(
            plan.n_unique, depth, ratio, self.tree.height
        )
        nodes = self.tree.cpu_descend_top(plan.sorted_unique, levels)
        return self.tree.gpu_search_bucket_from(
            plan.sorted_unique, levels, nodes, kernel=kernel
        )

    def execute_bucket(self, queries: Sequence):
        """Run one bucket; returns ``(values, GpuSearchResult)``.

        ``values`` are in arrival order and bit-identical to
        ``tree.lookup_batch(queries)``.
        """
        obs = self.obs
        plan = plan_bucket(queries, dtype=self.tree.spec.dtype)
        if plan.n_queries == 0:
            empty = np.zeros(0, dtype=self.tree.spec.dtype)
            return empty, self.tree.gpu_search_bucket(
                plan.sorted_unique, kernel=self._bucket_kernel()
            )
        index = self.stats.buckets
        obs.emit(
            "bucket_start", index=index,
            n_queries=plan.n_queries, n_unique=plan.n_unique,
        )
        with obs.span("bucket", bucket=index, n_queries=plan.n_queries,
                      n_unique=plan.n_unique):
            with obs.span("gpu_descend", bucket=index):
                result = self._descend(plan)
            if self.measure_baseline:
                result.baseline_transactions = self.tree.modeled_transactions(
                    plan.queries
                )
                self.stats.baseline_transactions += result.baseline_transactions
                self.stats.baselines_measured += 1
            with obs.span("cpu_finish", bucket=index):
                per_unique = self.tree.cpu_finish_bucket(
                    plan.sorted_unique, self._codes_of(result)
                )
        self.stats.buckets += 1
        self.stats.queries += plan.n_queries
        self.stats.unique += plan.n_unique
        self.stats.transactions += result.transactions
        obs.emit(
            "bucket_end", index=index,
            n_queries=plan.n_queries, n_unique=plan.n_unique,
            transactions=result.transactions,
        )
        return plan.scatter(per_unique), result

    def lookup_bucket(self, queries: Sequence) -> np.ndarray:
        """One bucket's values in arrival order."""
        values, _result = self.execute_bucket(queries)
        return values

    def lookup_batch(self, queries: Sequence) -> np.ndarray:
        """Stream an arbitrary query array through sorted buckets.

        Keys of any integer dtype coerce once (with overflow check) via
        :meth:`repro.keys.KeySpec.coerce` — identical input handling to
        ``HBPlusTree.lookup_batch``.
        """
        q = self.tree.spec.coerce(queries)
        if len(q) == 0:
            return np.zeros(0, dtype=self.tree.spec.dtype)
        with self._serve_lock:
            parts = [
                self.lookup_bucket(bucket)
                for bucket in iter_buckets(q, self.bucket_size)
            ]
        return np.concatenate(parts)

    # ------------------------------------------------------------------
    # range scans

    def scan_bucket(self, los: Sequence, his: Sequence):
        """Run one bucket of range scans; returns per-query pair lists.

        The start-key descents ride the exact point-lookup machinery —
        sort/dedup of the ``lo`` bounds, balancer-split levels, the
        discovered GPU kernel, fault-site screening — and the L-segment
        leaf-chain walk finishes on the CPU
        (``tree.cpu_scan_bucket``).  Results are bit-identical to
        ``[tree.cpu_tree.range_query(lo, hi) for lo, hi in zip(...)]``.
        """
        obs = self.obs
        plan = plan_bucket(los, dtype=self.tree.spec.dtype)
        his = np.asarray(his, dtype=self.tree.spec.dtype)
        if plan.n_queries == 0:
            return []
        index = self.stats.buckets
        obs.emit(
            "scan_bucket_start", index=index,
            n_queries=plan.n_queries, n_unique=plan.n_unique,
        )
        with obs.span("scan_bucket", bucket=index,
                      n_queries=plan.n_queries, n_unique=plan.n_unique):
            with obs.span("gpu_descend", bucket=index):
                result = self._descend(plan)
            with obs.span("cpu_scan", bucket=index):
                codes = self._codes_of(result)[plan.inverse]
                scans = self.tree.cpu_scan_bucket(plan.queries, his, codes)
        tuples = sum(len(s) for s in scans)
        self.stats.buckets += 1
        self.stats.queries += plan.n_queries
        self.stats.unique += plan.n_unique
        self.stats.transactions += result.transactions
        self.stats.scans += plan.n_queries
        self.stats.scan_tuples += tuples
        if self.balancer is not None and hasattr(
            self.balancer, "note_scan_bucket"
        ):
            self.balancer.note_scan_bucket(plan.queries, tuples)
        obs.emit(
            "scan_bucket_end", index=index,
            n_queries=plan.n_queries, n_unique=plan.n_unique,
            transactions=result.transactions, tuples=tuples,
        )
        return scans

    def run_scans(self, los: Sequence, his: Sequence):
        """Batched range scans through the hybrid bucket machinery.

        For each pair ``(los[i], his[i])`` returns the list of stored
        ``(key, value)`` tuples with ``lo <= key <= hi``, in key order —
        bit-identical to the sequential per-tree walk.  Start-key
        descents go through the GPU bucket path (sharing the balancer's
        committed (kernel, D, R) and the fault-injection sites); the
        leaf-chain scans run vectorised on the L-segment.
        """
        lo_arr = self.tree.spec.coerce(los)
        hi_arr = self.tree.spec.coerce(his)
        if len(lo_arr) != len(hi_arr):
            raise ValueError("run_scans needs matching lo/hi arrays")
        if len(lo_arr) == 0:
            return []
        out = []
        with self._serve_lock, self.obs.span(
            "engine.run_scans", scans=len(lo_arr)
        ):
            for start in range(0, len(lo_arr), self.bucket_size):
                stop = start + self.bucket_size
                out.extend(
                    self.scan_bucket(lo_arr[start:stop], hi_arr[start:stop])
                )
        return out

    @contextmanager
    def quiesce(self):
        """Hold serving still between batches (snapshot-under-load).

        Blocks until any in-flight :meth:`lookup_batch` drains, then
        keeps new batches parked while the caller (typically
        :meth:`repro.lifecycle.SnapshotManager.save_engine`) reads the
        tree.  Concurrent lookups before and after the window are
        bit-identical — quiescing orders batches, it never changes
        what any batch returns.
        """
        with self._serve_lock:
            yield self


@dataclass
class SortedDelta:
    """Measured sorted-vs-unsorted transaction delta on one workload."""

    queries: int
    unique: int
    sorted_transactions: int
    unsorted_transactions: int

    @property
    def sorted_per_query(self) -> float:
        return self.sorted_transactions / max(1, self.queries)

    @property
    def unsorted_per_query(self) -> float:
        return self.unsorted_transactions / max(1, self.queries)

    @property
    def gain(self) -> float:
        if self.unsorted_transactions <= 0:
            return 0.0
        return 1.0 - self.sorted_transactions / self.unsorted_transactions


def measure_sorted_delta(tree, queries: Sequence) -> SortedDelta:
    """Charge one workload through the transaction model both ways.

    Pure measurement — device counters and mirrors are untouched; used
    by tests, ``bucket_costs`` consumers and the wall-clock benchmark.
    """
    plan = plan_bucket(queries, dtype=tree.spec.dtype)
    return SortedDelta(
        queries=plan.n_queries,
        unique=plan.n_unique,
        sorted_transactions=tree.modeled_transactions(plan.sorted_unique),
        unsorted_transactions=tree.modeled_transactions(plan.queries),
    )
