"""Concurrent search/update query execution (paper appendix B.3).

The HB+-tree's query-processing threads can resolve both searches and
updates; updates take the target last-level node's lock, searches are
lock-free (but pay the mutex-capable code path's overhead).  The
synchronized I-segment maintenance additionally streams every modified
node to the GPU from a synchronizing thread; the asynchronous variant
defers to one bulk transfer.

:class:`ConcurrentQueryEngine` executes a :class:`QueryMix` *both*
functionally (every search resolved, every update applied, GPU mirror
left consistent) and temporally, via the discrete-event thread
scheduler of :mod:`repro.concurrency` — lock contention on hot leaves
emerges from the actual access pattern instead of a formula.

:class:`OptimisticMixedEngine` is the post-paper answer to the same
workload (ROADMAP item 2): gapped leaves (BS-tree) make most inserts
in-place writes with a short locked span, and FB+-tree-style optimistic
reads drop the ``MUTEX_OVERHEAD`` tax — readers snapshot per-node
version stamps, descend latch-free, and retry from the deepest
validated node when a writer raced them.  Retries are counted from the
*actual* schedule overlap of searches and writers on the same leaf,
and the mirror is maintained by ranged dirty-node transfers (the exact
dirty set falls out of the version-stamp diff) instead of a full
rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.concurrency import Operation, ScheduleResult, ThreadScheduler
from repro.core.hbtree import HBPlusTree, MirrorSyncStats
from repro.core.update import SYNC_NODE_OVERHEAD_NS, _measure_update_cost_ns
from repro.faults import FaultError
from repro.platform.costmodel import CpuCostModel
from repro.workloads.queries import QueryMix

#: slowdown of the update-capable query threads on the pure-search path
#: (mutex checks, synchronization points — appendix B.3's observation)
MUTEX_OVERHEAD = 1.25

#: how often the optimistic engine retries a faulted mirror sync before
#: giving up and propagating the fault (each retry re-consults the
#: deterministic injector, so a finite-rate plan always drains)
SYNC_FAULT_RETRIES = 8


@dataclass
class MixedRunResult:
    """Functional + temporal outcome of one mixed bucket."""

    search_results: np.ndarray
    schedule: ScheduleResult
    sync_transfer_ns: float
    method: str

    @property
    def total_ns(self) -> float:
        return max(self.schedule.makespan_ns, self.sync_transfer_ns)

    @property
    def throughput_ops(self) -> float:
        if self.total_ns <= 0:
            # empty/zero-cost mixes report 0.0, not a ZeroDivisionError
            # nor inf — the PR-4 zero-time convention shared by every
            # throughput metric, so downstream aggregation never breaks
            return 0.0
        return self.schedule.operations * 1e9 / self.total_ns


@dataclass
class OptimisticRunResult(MixedRunResult):
    """:class:`MixedRunResult` plus the optimistic engine's accounting."""

    #: optimistic-read retries (search/writer overlaps on one leaf)
    retries: int = 0
    #: modeled time of all retries (partial re-descents)
    retry_ns: float = 0.0
    #: inner nodes found dirty by the version-stamp diff
    dirty_nodes: int = 0
    #: ranged PCIe transfers that carried them
    sync_transfers: int = 0
    #: bytes pushed to the device by the mirror maintenance
    sync_bytes: int = 0
    #: True when a structural change (or a faulted sync) forced the
    #: full mirror rebuild instead of ranged dirty-node transfers
    mirror_rebuilt: bool = False
    #: injected faults absorbed by the sync retry ladder
    sync_faults: int = 0
    #: write-path behaviour of the batch (gapped trees only)
    gap_writes: int = 0
    shift_writes: int = 0
    splits: int = 0
    per_op_write_ns: List[float] = field(default_factory=list)

    @property
    def total_ns(self) -> float:
        # retries ride the same threads; the additive term spreads the
        # total retry work across them
        threads = max(1, self.schedule.threads)
        return max(
            self.schedule.makespan_ns + self.retry_ns / threads,
            self.sync_transfer_ns,
        )


class ConcurrentQueryEngine:
    """Executes mixed buckets on the regular HB+-tree, CPU-side."""

    def __init__(self, tree: HBPlusTree, threads: Optional[int] = None):
        self.tree = tree
        self.threads = threads if threads is not None else tree.machine.cpu.threads
        self._search_ns, self._update_ns = self._measure_costs()

    def _measure_costs(self):
        tree = self.tree
        all_keys = np.asarray(
            [k for k, _v in tree.cpu_tree.items()], dtype=tree.spec.dtype
        )
        if len(all_keys) == 0:
            return 100.0, 500.0
        rng = np.random.default_rng(67)
        # the sample never exceeds the population, so draw without
        # replacement — with replacement the duplicates skew the cache
        # profile toward re-touched lines (same fix as the adaptive
        # controller's reprofile path)
        stored = rng.choice(
            all_keys, size=min(2048, len(all_keys)), replace=False
        )
        from repro.bench.profiling import profile_regular
        profile = profile_regular(tree.cpu_tree, stored)
        model = CpuCostModel(tree.machine.cpu)
        search_ns = model.query_ns(profile) * MUTEX_OVERHEAD
        update_ns = _measure_update_cost_ns(tree, stored) * MUTEX_OVERHEAD
        return search_ns, update_ns

    def run(self, mix: QueryMix, method: str = "async") -> MixedRunResult:
        """Execute a mix; ``method`` picks the mirror maintenance."""
        if method not in ("async", "sync"):
            raise ValueError("method must be 'async' or 'sync'")
        tree = self.tree
        cpu_tree = tree.cpu_tree

        # one batch descent replaces the former per-op `_descend` calls;
        # the node ids are exact while no structural change intervenes,
        # and a structural change forces the full mirror rebuild below
        # anyway, so a stale id can only cost a redundant modeled lock
        upd_nodes = (
            cpu_tree.descend_batch(mix.update_keys)[0]
            if len(mix.update_keys)
            else np.empty(0, dtype=np.int64)
        )
        del_nodes = (
            cpu_tree.descend_batch(mix.delete_keys)[0]
            if len(mix.delete_keys)
            else np.empty(0, dtype=np.int64)
        )

        # functional execution + operation list for the scheduler
        operations: List[Operation] = []
        search_iter = iter(mix.search_keys)
        update_iter = iter(zip(mix.update_keys.tolist(),
                               mix.update_values.tolist(),
                               upd_nodes.tolist()))
        delete_iter = iter(zip(mix.delete_keys.tolist(), del_nodes.tolist()))
        is_delete = (
            mix.is_delete
            if mix.is_delete is not None
            else np.zeros(len(mix.is_update), dtype=bool)
        )
        searches: List[int] = []
        synced_nodes = 0
        # the update cost splits ~55% descent (lock-free) / 45% locked
        upd_work = self._update_ns * 0.55
        upd_locked = self._update_ns * 0.45
        for is_update, is_del in zip(mix.is_update.tolist(),
                                     is_delete.tolist()):
            if is_del:
                key, node = next(delete_iter)
                cpu_tree.delete(int(key))
                operations.append(Operation(
                    work_ns=upd_work, lock=("leaf", int(node)),
                    locked_ns=upd_locked, tag="delete",
                ))
                synced_nodes += 1
            elif is_update:
                key, value, node = next(update_iter)
                cpu_tree.insert(int(key), int(value))
                operations.append(Operation(
                    work_ns=upd_work, lock=("leaf", int(node)),
                    locked_ns=upd_locked, tag="update",
                ))
                synced_nodes += 1
            else:
                searches.append(int(next(search_iter)))
                operations.append(Operation(
                    work_ns=self._search_ns, tag="search",
                ))
        schedule = ThreadScheduler(self.threads).run(operations)

        # mirror maintenance
        if method == "sync":
            node_bytes = tree.node_stride * 8
            push_ns = (node_bytes / tree.machine.pcie.bandwidth_gbs
                       + SYNC_NODE_OVERHEAD_NS)
            sync_ns = synced_nodes * push_ns + (
                tree.machine.pcie.t_init_ns if synced_nodes else 0.0
            )
        else:
            sync_ns = 0.0  # async: one bulk transfer, excluded as in Fig 21
        tree.mirror_i_segment()

        results = (
            tree.cpu_tree.lookup_batch(
                np.asarray(searches, dtype=tree.spec.dtype)
            )
            if searches
            else np.empty(0, dtype=tree.spec.dtype)
        )
        return MixedRunResult(
            search_results=results,
            schedule=schedule,
            sync_transfer_ns=sync_ns,
            method=method,
        )


class OptimisticMixedEngine:
    """Gapped-leaf, latch-free mixed read/write engine.

    Works on any :class:`HBPlusTree`, but the wins come from
    ``HBPlusTree(..., gapped=True)``:

    * **searches** run latch-free at the plain lookup cost (no
      ``MUTEX_OVERHEAD``); a search that overlapped a writer's locked
      span on its target leaf pays a *retry* — a partial re-descent
      from the deepest node whose version stamp still validates, i.e.
      one inner-path re-read plus the leaf line out of the ``3h + 1``
      lines a full descent touches;
    * **writers** keep the per-leaf lock but hold it only for the
      actual write: one pair for an in-place gap write, the shifted
      run for a short shift, a leaf rewrite for a split — measured
      per-op from the tree's :class:`~repro.cpu.gapped.GapStats`
      deltas, not assumed;
    * the **mirror** is maintained from the version-stamp diff of the
      inner pools: the exact dirty node set flows through
      :meth:`HBPlusTree.sync_nodes` ranged transfers; only a
      structural change (split/merge — new node identities) or a
      faulted transfer falls back to the full rebuild, and injected
      :class:`~repro.faults.FaultError` are absorbed by a bounded
      retry ladder.
    """

    def __init__(self, tree: HBPlusTree, threads: Optional[int] = None):
        self.tree = tree
        self.threads = threads if threads is not None else tree.machine.cpu.threads
        self._search_ns, self._descend_ns = self._measure_costs()

    # ------------------------------------------------------------------
    # cost measurement

    def _measure_costs(self) -> Tuple[float, float]:
        tree = self.tree
        all_keys = tree.cpu_tree.stored_keys()
        if len(all_keys) == 0:
            return 80.0, 80.0
        rng = np.random.default_rng(67)
        stored = rng.choice(
            all_keys, size=min(2048, len(all_keys)), replace=False
        )
        from repro.bench.profiling import profile_regular
        profile = profile_regular(tree.cpu_tree, stored)
        model = CpuCostModel(tree.machine.cpu)
        # latch-free read path: plain lookup cost, no mutex tax.  A
        # writer's unlocked phase is the same descent.
        search_ns = model.query_ns(profile)
        return search_ns, search_ns

    def _write_cost_ns(self, stats_delta: Tuple[int, int, int, int]) -> float:
        """Locked-phase cost of one write from its GapStats delta."""
        gap_w, shifted_pairs, splits, rewrites = stats_delta
        spec = self.tree.spec
        bw = self.tree.machine.cpu.mem_bandwidth_gbs
        pair_bytes = 2 * spec.size_bytes
        cap = self.tree.cpu_tree.leaves.capacity_pairs
        ns = spec.cache_line / bw  # routing-key / version maintenance
        ns += gap_w * pair_bytes / bw
        ns += shifted_pairs * pair_bytes / bw
        # a split rewrites both halves; a batch rewrite spreads one leaf
        ns += splits * cap * pair_bytes / bw
        ns += rewrites * cap * pair_bytes / bw
        return ns

    def _compact_write_ns(self) -> float:
        """Fallback locked cost on a non-gapped tree: half-leaf shift."""
        spec = self.tree.spec
        cap = self.tree.cpu_tree.leaves.capacity_pairs
        return (
            cap / 2 * 2 * spec.size_bytes
            / self.tree.machine.cpu.mem_bandwidth_gbs
        )

    # ------------------------------------------------------------------
    # mirror maintenance

    def _rebuild_with_retries(self) -> Tuple[float, int]:
        """Full mirror rebuild, absorbing injected faults; returns
        ``(time_ns, faults_absorbed)``."""
        faults = 0
        last: Optional[FaultError] = None
        for _attempt in range(SYNC_FAULT_RETRIES):
            try:
                return self.tree.mirror_i_segment(), faults
            except FaultError as exc:
                faults += 1
                last = exc
        # the ladder is exhausted (a rate-1.0 plan, or genuinely dead
        # hardware): propagate the typed fault so callers — e.g. a
        # ResilientHBPlusTree wrapper — can degrade on it
        assert last is not None
        raise last

    def _sync_dirty(
        self, dirty: List[Tuple[int, int]]
    ) -> Tuple[MirrorSyncStats, int]:
        """Ranged dirty-node sync with the fault retry ladder."""
        try:
            return self.tree.sync_nodes(dirty), 0
        except FaultError:
            # the ranged push aborted mid-flight; the mirror is stale
            # for an unknown prefix — repair with the full rebuild
            t, faults = self._rebuild_with_retries()
            return (
                MirrorSyncStats(
                    nodes=len(dirty), transfers=1, time_ns=t, rebuilt=True
                ),
                faults + 1,
            )

    # ------------------------------------------------------------------
    # execution

    def run(self, mix: QueryMix) -> OptimisticRunResult:
        tree = self.tree
        cpu_tree = tree.cpu_tree
        gap_stats = getattr(cpu_tree, "gap_stats", None)

        # --- pre-run snapshots -----------------------------------------
        upper, last = cpu_tree.upper, cpu_tree.last
        u_count0, l_count0 = upper.count, last.count
        shape0 = (
            u_count0, l_count0, len(upper._free), len(last._free),
            cpu_tree.height,
        )
        uv0 = upper.version[:u_count0].copy()
        lv0 = last.version[:l_count0].copy()

        # one batch descent per op class (no scalar descent loops); the
        # ids are exact unless a split intervenes, and a split forces
        # the full-rebuild path where exactness is irrelevant
        search_nodes = (
            cpu_tree.descend_batch(mix.search_keys)[0]
            if len(mix.search_keys)
            else np.empty(0, dtype=np.int64)
        )
        upd_nodes = (
            cpu_tree.descend_batch(mix.update_keys)[0]
            if len(mix.update_keys)
            else np.empty(0, dtype=np.int64)
        )
        del_nodes = (
            cpu_tree.descend_batch(mix.delete_keys)[0]
            if len(mix.delete_keys)
            else np.empty(0, dtype=np.int64)
        )

        # --- functional execution + schedule construction --------------
        operations: List[Operation] = []
        op_is_search: List[bool] = []
        op_leaf: List[int] = []
        per_op_write_ns: List[float] = []
        searches: List[int] = []
        search_iter = iter(zip(mix.search_keys.tolist(),
                               search_nodes.tolist()))
        update_iter = iter(zip(mix.update_keys.tolist(),
                               mix.update_values.tolist(),
                               upd_nodes.tolist()))
        delete_iter = iter(zip(mix.delete_keys.tolist(), del_nodes.tolist()))
        is_delete = (
            mix.is_delete
            if mix.is_delete is not None
            else np.zeros(len(mix.is_update), dtype=bool)
        )

        def snap() -> Tuple[int, int, int, int]:
            if gap_stats is None:
                return (0, 0, 0, 0)
            return (
                gap_stats.gap_writes,
                gap_stats.shifted_pairs,
                gap_stats.splits,
                gap_stats.leaf_rewrites,
            )

        for is_update, is_del in zip(mix.is_update.tolist(),
                                     is_delete.tolist()):
            if is_del or is_update:
                before = snap()
                if is_del:
                    key, node = next(delete_iter)
                    cpu_tree.delete(int(key))
                else:
                    key, value, node = next(update_iter)
                    cpu_tree.insert(int(key), int(value))
                if gap_stats is None:
                    write_ns = self._compact_write_ns()
                else:
                    after = snap()
                    write_ns = self._write_cost_ns(
                        tuple(a - b for a, b in zip(after, before))
                    )
                per_op_write_ns.append(write_ns)
                operations.append(Operation(
                    work_ns=self._descend_ns,
                    lock=("leaf", int(node)),
                    locked_ns=write_ns,
                    tag="delete" if is_del else "update",
                ))
                op_is_search.append(False)
                op_leaf.append(int(node))
            else:
                key, node = next(search_iter)
                searches.append(int(key))
                operations.append(Operation(
                    work_ns=self._search_ns, tag="search",
                ))
                op_is_search.append(True)
                op_leaf.append(int(node))
        schedule = ThreadScheduler(self.threads).run(
            operations, record_spans=True
        )

        # --- optimistic-read retries from the actual conflict pattern --
        retries = self._count_retries(schedule, op_is_search, op_leaf)
        # a retry re-validates from the deepest intact node: in the
        # common one-leaf-write case that is a re-read of the inner
        # path's last node plus the leaf line — 4 of the ~3h+1 lines a
        # full descent touches
        height = cpu_tree.height
        retry_unit_ns = self._search_ns * 4.0 / (3.0 * height + 1.0)
        retry_ns = retries * retry_unit_ns

        # --- mirror maintenance: version diff -> ranged transfers ------
        bytes0 = tree.link.stats.bytes_to_device
        shape1 = (
            upper.count, last.count, len(upper._free), len(last._free),
            cpu_tree.height,
        )
        sync_faults = 0
        if shape1 != shape0:
            # structural change: node identities moved; rebuild once
            t, sync_faults = self._rebuild_with_retries()
            sync_stats = MirrorSyncStats(
                nodes=l_count0, transfers=1, time_ns=t, rebuilt=True
            )
            modeled_sync_ns = t
        else:
            dirty: List[Tuple[int, int]] = [
                (1, int(n))
                for n in np.flatnonzero(upper.version[:u_count0] != uv0)
            ]
            dirty += [
                (0, int(n))
                for n in np.flatnonzero(last.version[:l_count0] != lv0)
            ]
            if dirty:
                sync_stats, sync_faults = self._sync_dirty(dirty)
            else:
                sync_stats = MirrorSyncStats(nodes=0, transfers=0,
                                             time_ns=0.0)
            if sync_stats.rebuilt:
                modeled_sync_ns = sync_stats.time_ns
            else:
                # the ranged pushes ride one open copy stream concurrent
                # with the query threads (the SyncUpdater convention):
                # bandwidth per node, bookkeeping per push, one T_init —
                # not a full round-trip latency per transfer
                node_bytes = tree.node_stride * 8
                modeled_sync_ns = (
                    sync_stats.nodes * node_bytes
                    / tree.machine.pcie.bandwidth_gbs
                    + sync_stats.transfers * SYNC_NODE_OVERHEAD_NS
                    + (tree.machine.pcie.t_init_ns if sync_stats.nodes
                       else 0.0)
                )
        sync_bytes = tree.link.stats.bytes_to_device - bytes0

        results = (
            cpu_tree.lookup_batch(np.asarray(searches, dtype=tree.spec.dtype))
            if searches
            else np.empty(0, dtype=tree.spec.dtype)
        )
        gs = gap_stats
        return OptimisticRunResult(
            search_results=results,
            schedule=schedule,
            sync_transfer_ns=modeled_sync_ns,
            method="optimistic",
            retries=retries,
            retry_ns=retry_ns,
            dirty_nodes=sync_stats.nodes,
            sync_transfers=sync_stats.transfers,
            sync_bytes=int(sync_bytes),
            mirror_rebuilt=sync_stats.rebuilt,
            sync_faults=sync_faults,
            gap_writes=gs.gap_writes if gs else 0,
            shift_writes=gs.shift_writes if gs else 0,
            splits=gs.splits if gs else 0,
            per_op_write_ns=per_op_write_ns,
        )

    @staticmethod
    def _count_retries(
        schedule: ScheduleResult,
        op_is_search: List[bool],
        op_leaf: List[int],
    ) -> int:
        """Search/writer overlaps on the same leaf, from the timeline.

        A search retries once per writer whose *locked* interval
        overlapped the search's span on the search's target leaf —
        each such writer bumped the leaf's version while the reader
        was between its snapshot and its validation.
        """
        spans = schedule.spans
        if spans is None or not spans:
            return 0
        is_search = np.asarray(op_is_search, dtype=bool)
        leaf = np.asarray(op_leaf, dtype=np.int64)
        start = np.asarray([s.start_ns for s in spans])
        granted = np.asarray([s.granted_ns for s in spans])
        end = np.asarray([s.end_ns for s in spans])
        retries = 0
        for node in np.unique(leaf):
            on_leaf = leaf == node
            readers = np.flatnonzero(on_leaf & is_search)
            writers = np.flatnonzero(on_leaf & ~is_search)
            if len(readers) == 0 or len(writers) == 0:
                continue
            # overlap: writer locked [g, e) intersects reader [s, t)
            overlap = (
                (granted[writers][None, :] < end[readers][:, None])
                & (start[readers][:, None] < end[writers][None, :])
            )
            retries += int(np.count_nonzero(overlap))
        return retries
