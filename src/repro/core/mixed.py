"""Concurrent search/update query execution (paper appendix B.3).

The HB+-tree's query-processing threads can resolve both searches and
updates; updates take the target last-level node's lock, searches are
lock-free (but pay the mutex-capable code path's overhead).  The
synchronized I-segment maintenance additionally streams every modified
node to the GPU from a synchronizing thread; the asynchronous variant
defers to one bulk transfer.

:class:`ConcurrentQueryEngine` executes a :class:`QueryMix` *both*
functionally (every search resolved, every update applied, GPU mirror
left consistent) and temporally, via the discrete-event thread
scheduler of :mod:`repro.concurrency` — lock contention on hot leaves
emerges from the actual access pattern instead of a formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.concurrency import Operation, ScheduleResult, ThreadScheduler
from repro.core.hbtree import HBPlusTree
from repro.core.update import SYNC_NODE_OVERHEAD_NS, _measure_update_cost_ns
from repro.platform.costmodel import CpuCostModel
from repro.workloads.queries import QueryMix

#: slowdown of the update-capable query threads on the pure-search path
#: (mutex checks, synchronization points — appendix B.3's observation)
MUTEX_OVERHEAD = 1.25


@dataclass
class MixedRunResult:
    """Functional + temporal outcome of one mixed bucket."""

    search_results: np.ndarray
    schedule: ScheduleResult
    sync_transfer_ns: float
    method: str

    @property
    def total_ns(self) -> float:
        return max(self.schedule.makespan_ns, self.sync_transfer_ns)

    @property
    def throughput_ops(self) -> float:
        return self.schedule.operations * 1e9 / self.total_ns


class ConcurrentQueryEngine:
    """Executes mixed buckets on the regular HB+-tree, CPU-side."""

    def __init__(self, tree: HBPlusTree, threads: Optional[int] = None):
        self.tree = tree
        self.threads = threads if threads is not None else tree.machine.cpu.threads
        self._search_ns, self._update_ns = self._measure_costs()

    def _measure_costs(self):
        tree = self.tree
        all_keys = np.asarray(
            [k for k, _v in tree.cpu_tree.items()], dtype=tree.spec.dtype
        )
        if len(all_keys) == 0:
            return 100.0, 500.0
        rng = np.random.default_rng(67)
        stored = rng.choice(all_keys, size=min(2048, len(all_keys)))
        from repro.bench.profiling import profile_regular
        profile = profile_regular(tree.cpu_tree, stored)
        model = CpuCostModel(tree.machine.cpu)
        search_ns = model.query_ns(profile) * MUTEX_OVERHEAD
        update_ns = _measure_update_cost_ns(tree, stored) * MUTEX_OVERHEAD
        return search_ns, update_ns

    def run(self, mix: QueryMix, method: str = "async") -> MixedRunResult:
        """Execute a mix; ``method`` picks the mirror maintenance."""
        if method not in ("async", "sync"):
            raise ValueError("method must be 'async' or 'sync'")
        tree = self.tree
        cpu_tree = tree.cpu_tree

        # functional execution + operation list for the scheduler
        operations: List[Operation] = []
        search_iter = iter(mix.search_keys)
        update_iter = iter(zip(mix.update_keys.tolist(),
                               mix.update_values.tolist()))
        searches: List[int] = []
        synced_nodes = 0
        # the update cost splits ~55% descent (lock-free) / 45% locked
        upd_work = self._update_ns * 0.55
        upd_locked = self._update_ns * 0.45
        for is_update in mix.is_update.tolist():
            if is_update:
                key, value = next(update_iter)
                node, _line, _path = cpu_tree._descend(int(key),
                                                       instrument=False)
                cpu_tree.insert(int(key), int(value))
                operations.append(Operation(
                    work_ns=upd_work, lock=("leaf", int(node)),
                    locked_ns=upd_locked, tag="update",
                ))
                synced_nodes += 1
            else:
                searches.append(int(next(search_iter)))
                operations.append(Operation(
                    work_ns=self._search_ns, tag="search",
                ))
        schedule = ThreadScheduler(self.threads).run(operations)

        # mirror maintenance
        if method == "sync":
            node_bytes = tree.node_stride * 8
            push_ns = (node_bytes / tree.machine.pcie.bandwidth_gbs
                       + SYNC_NODE_OVERHEAD_NS)
            sync_ns = synced_nodes * push_ns + (
                tree.machine.pcie.t_init_ns if synced_nodes else 0.0
            )
        else:
            sync_ns = 0.0  # async: one bulk transfer, excluded as in Fig 21
        tree.mirror_i_segment()

        results = (
            tree.cpu_tree.lookup_batch(
                np.asarray(searches, dtype=tree.spec.dtype)
            )
            if searches
            else np.empty(0, dtype=tree.spec.dtype)
        )
        return MixedRunResult(
            search_results=results,
            schedule=schedule,
            sync_transfer_ns=sync_ns,
            method=method,
        )
