"""GPU-assisted batch updates (paper section 7, future work #1).

"So far, updates are performed sequentially by the CPU with
asynchronous data transfer to the GPU; this could be further improved
by employing GPU cycles in support of parallel update query execution."

The expensive part of an update is *locating* the target leaf — the
same inner-node descent a lookup performs.  This updater offloads that
descent to the GPU exactly like the search path does:

1. the update batch's keys transfer to GPU memory           (T1)
2. the search kernel resolves every key to its big-leaf line (T2)
3. the (node, line) codes transfer back                      (T3)
4. the CPU applies the modifications grouped by leaf — no descent
   needed; keys whose leaf splits mid-group re-descend on the CPU
   (the same <1% tail the asynchronous method defers)
5. the whole I-segment uploads once (as in the asynchronous method)

Compared with :class:`AsyncBatchUpdater`, the CPU-side cost per update
drops from (descent + modify) to (group + modify), and the descent cost
moves to the GPU where it overlaps via the bucket pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.hbtree import HBPlusTree
from repro.core.update import (
    ASYNC_PARALLEL_SPEEDUP,
    LOCK_OVERHEAD_FACTOR,
    UpdateStats,
    _measure_update_cost_ns,
)


@dataclass
class GpuUpdateStats(UpdateStats):
    """Update statistics plus the GPU offload's own step times."""

    gpu_locate_ns: float = 0.0
    transfer_in_ns: float = 0.0
    transfer_out_ns: float = 0.0
    redescended: int = 0

    @property
    def total_ns(self) -> float:
        return (self.modify_ns + self.transfer_ns + self.gpu_locate_ns
                + self.transfer_in_ns + self.transfer_out_ns)


class GpuAssistedUpdater:
    """Batch upserts with GPU-located target leaves."""

    def __init__(self, tree: HBPlusTree, threads: int = None):
        self.tree = tree
        self.threads = threads if threads is not None else tree.machine.cpu.threads

    def apply(
        self,
        keys: Sequence[int],
        values: Sequence[int],
        transfer: bool = True,
    ) -> GpuUpdateStats:
        tree = self.tree
        cpu_tree = tree.cpu_tree
        spec = tree.spec
        keys = np.asarray(keys, dtype=spec.dtype)
        values = np.asarray(values, dtype=spec.dtype)
        stats = GpuUpdateStats()
        if len(keys) == 0:
            return stats

        # steps 1-3: locate every key's (node, line) on the GPU
        result = tree.gpu_search_bucket(keys)
        nodes = (result.codes // cpu_tree.fanout).astype(np.int64)
        machine = tree.machine
        stats.transfer_in_ns = machine.pcie.transfer_ns(keys.nbytes)
        stats.transfer_out_ns = machine.pcie.transfer_ns(len(keys) * 8)
        from repro.platform.costmodel import GpuCostModel
        gpu_model = GpuCostModel(machine.gpu, spec.gpu_threads_per_query)
        stats.gpu_locate_ns = gpu_model.kernel_ns(
            result.transactions, len(keys), 3.0 * cpu_tree.height
        )

        # step 4: apply grouped by target leaf (the codes tell us where)
        per_update_ns = _measure_update_cost_ns(tree, keys[:512])
        # GPU already descended: only the leaf modification remains
        leaf_modify_ns = per_update_ns * 0.45
        groups: Dict[int, List[int]] = {}
        for i, node in enumerate(nodes.tolist()):
            groups.setdefault(int(node), []).append(i)
        applied_without_descent = 0
        for node, members in groups.items():
            leaves_before = cpu_tree.leaves.count
            for i in members:
                key, value = int(keys[i]), int(values[i])
                if cpu_tree.leaves.count != leaves_before:
                    # this leaf split while we were applying the group:
                    # the remaining GPU codes are stale, re-descend
                    cpu_tree.insert(key, value)
                    stats.redescended += 1
                    continue
                size = int(cpu_tree.leaves.size[node])
                will_split = (
                    size >= cpu_tree.leaves.capacity_pairs
                    and cpu_tree.lookup(key, instrument=False) is None
                )
                if will_split:
                    cpu_tree.insert(key, value)
                    stats.redescended += 1
                    continue
                # in-place apply at the located leaf (no descent)
                self._apply_at_leaf(node, key, value)
                applied_without_descent += 1
            stats.lock_acquisitions += 1
        stats.applied = len(keys)
        stats.deferred = stats.redescended

        stats.modify_ns = (
            applied_without_descent * leaf_modify_ns * LOCK_OVERHEAD_FACTOR
            / min(ASYNC_PARALLEL_SPEEDUP, self.threads)
            + stats.redescended * per_update_ns * 4.0
        )
        if transfer:
            stats.transfer_ns = tree.mirror_i_segment()
        else:
            tree.mirror_i_segment()
        return stats

    def _apply_at_leaf(self, node: int, key: int, value: int) -> None:
        """Insert/overwrite inside an already-located big leaf."""
        cpu_tree = self.tree.cpu_tree
        leaf_keys = cpu_tree.leaves.keys[node]
        size = int(cpu_tree.leaves.size[node])
        # scalar must carry the array dtype (uint64 precision!)
        pos = int(np.searchsorted(leaf_keys[:size],
                                  cpu_tree.spec.dtype(key)))
        if pos < size and int(leaf_keys[pos]) == key:
            cpu_tree.leaves.values[node, pos] = value
            return
        leaf_keys[pos + 1: size + 1] = leaf_keys[pos:size]
        cpu_tree.leaves.values[node, pos + 1: size + 1] = (
            cpu_tree.leaves.values[node, pos:size]
        )
        leaf_keys[pos] = key
        cpu_tree.leaves.values[node, pos] = value
        cpu_tree.leaves.size[node] = size + 1
        cpu_tree._refresh_last_level_keys(node)
        # raise routing keys up the tree for keys beyond the old max
        child = node
        parent = int(cpu_tree.last.parent[node])
        level = 1
        while parent != -1:
            psize = int(cpu_tree.upper.size[parent])
            refs = cpu_tree.upper.refs[parent, :psize]
            slot = int(np.where(refs == child)[0][0])
            if int(cpu_tree.upper.keys[parent, slot]) < key:
                cpu_tree._set_parent_key(level, parent, slot, key)
            child = parent
            parent = int(cpu_tree.upper.parent[parent])
            level += 1
        cpu_tree.num_tuples += 1
