"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The execution environment has no network and no `wheel` package, so the
PEP 517 editable path (which needs bdist_wheel) is unavailable; this file
lets setuptools fall back to `setup.py develop`.
"""

from setuptools import setup

setup()
