"""Fig 19 (appendix B.1) — HB+-tree lookup using only the CPU."""

import pytest

from benchmarks.conftest import run_table
from repro.bench.figures import fig19


@pytest.mark.benchmark(group="fig19")
def test_fig19_table(benchmark):
    table = run_table(benchmark, fig19.run)
    for n in {r["n"] for r in table.rows}:
        f9 = table.value("mqps", n=n, tree="cpu-implicit-f9")
        f8 = table.value("mqps", n=n, tree="hb-implicit-f8")
        assert f9 >= f8  # the fanout-9 layout wins on the CPU
