"""Fig 13 — regular HB+-tree update methods and I-segment sync time."""

import pytest

from benchmarks.conftest import run_table
from repro.bench.figures import fig13
from repro.core.hbtree import HBPlusTree
from repro.workloads.queries import make_insert_batch


@pytest.mark.benchmark(group="fig13")
def test_fig13_table(benchmark):
    table = run_table(benchmark, fig13.run)
    n = table.rows[0]["n"]
    assert (table.value("muqps", n=n, method="async-mt")
            > table.value("muqps", n=n, method="async-1t"))


@pytest.mark.benchmark(group="fig13-micro")
def test_functional_insert_cost(benchmark, bench_data, m1):
    """Raw cost of one insert into the regular tree (with splits)."""
    keys, values, _q = bench_data
    tree = HBPlusTree(keys[:32768], values[:32768], machine=m1, fill=0.7)
    new_keys, new_vals = make_insert_batch(keys[:32768], 50_000, 64)
    it = iter(range(len(new_keys)))

    def one_insert():
        i = next(it)
        tree.cpu_tree.insert(int(new_keys[i]), int(new_vals[i]))

    benchmark(one_insert)
