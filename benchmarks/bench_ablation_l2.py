"""Ablation: what does ignoring the GPU's L2 cache cost the model?

The base cost model charges every GPU transaction at DRAM rates; a real
GTX 780 serves the hot top I-segment levels from its 1.5 MB L2.  This
bench quantifies the conservative bias across tree sizes: small trees
(I-segment within L2 reach) would be noticeably faster than modeled,
large trees barely — which *strengthens* the paper's headline, since
its big-tree numbers are the ones the simplification understates least.
"""

import pytest

from benchmarks.conftest import run_table
from repro.bench.figures.extensions import run_l2


@pytest.mark.benchmark(group="ablation-l2")
def test_l2_ablation(benchmark):
    table = run_table(benchmark, run_l2)
    speedups = [r["t2_speedup_if_modeled"] for r in table.rows]
    # bias shrinks as the I-segment outgrows the L2
    assert speedups == sorted(speedups, reverse=True)
    assert speedups[0] > speedups[-1]
