"""Fig 18 — the load balancing scheme on the CPU-strong machine M2."""

import pytest

from benchmarks.conftest import run_table
from repro.bench.figures import fig18
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.load_balance import LoadBalancer


@pytest.mark.benchmark(group="fig18")
def test_fig18_table(benchmark):
    table = run_table(benchmark, fig18.run)
    for row in table.rows:
        assert row["hb_balanced_mqps"] > row["hb_plain_mqps"]


@pytest.mark.benchmark(group="fig18-micro")
def test_discovery_algorithm_cost(benchmark, bench_data, m2):
    """Cost of one full Algorithm-1 discovery run."""
    keys, values, _q = bench_data
    tree = ImplicitHBPlusTree(keys, values, machine=m2)
    balancer = LoadBalancer(tree)
    benchmark(balancer.discover)


@pytest.mark.benchmark(group="fig18-micro")
def test_balanced_lookup_cost(benchmark, bench_data, m2):
    keys, values, queries = bench_data
    tree = ImplicitHBPlusTree(keys, values, machine=m2)
    balancer = LoadBalancer(tree)
    balancer.discover()
    benchmark(balancer.lookup_batch, queries)
