"""Fig 20 (appendix B.2) — software pipeline length sweep."""

import pytest

from benchmarks.conftest import run_table
from repro.bench.figures import fig20
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.software_pipeline import SoftwarePipeline
from repro.memsim.mainmem import MemorySystem


@pytest.mark.benchmark(group="fig20")
def test_fig20_table(benchmark):
    table = run_table(benchmark, fig20.run)
    assert 1.7 <= table.value("speedup", pipeline_len=16) <= 3.2


@pytest.mark.benchmark(group="fig20-micro")
@pytest.mark.parametrize("p", [1, 16])
def test_literal_pipeline_executor_cost(benchmark, bench_data, p):
    """Cost of Algorithm 2's literal executor per 64-query batch."""
    keys, values, queries = bench_data
    mem = MemorySystem()
    tree = ImplicitCpuBPlusTree(keys, values, mem=mem)
    pipe = SoftwarePipeline(tree, pipeline_len=p)
    batch = queries[:64].tolist()
    benchmark(pipe.run, batch)
