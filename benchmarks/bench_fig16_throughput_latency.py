"""Fig 16 — the headline comparison: HB+-tree vs CPU-optimized tree.

Regenerates throughput (64- and 32-bit) and latency, and
micro-benchmarks the functional hybrid lookup path.
"""

import pytest

from benchmarks.conftest import run_table
from repro.bench.figures import fig16
from repro.core.hbtree_implicit import ImplicitHBPlusTree


@pytest.mark.benchmark(group="fig16")
def test_fig16_table_64bit(benchmark):
    table = run_table(benchmark, fig16.run)
    biggest = max(r["n"] for r in table.rows)
    hb = table.value("mqps", n=biggest, tree="hb-implicit")
    cpu = table.value("mqps", n=biggest, tree="cpu-implicit")
    assert hb > 1.5 * cpu  # the hybrid clearly wins at scale


@pytest.mark.benchmark(group="fig16")
def test_fig16_table_32bit(benchmark):
    table = run_table(benchmark, fig16.run, key_bits=32)
    biggest = max(r["n"] for r in table.rows)
    assert (table.value("mqps", n=biggest, tree="hb-implicit")
            > table.value("mqps", n=biggest, tree="cpu-implicit"))


@pytest.mark.benchmark(group="fig16-micro")
def test_hybrid_batch_lookup_cost(benchmark, bench_data, m1):
    keys, values, queries = bench_data
    tree = ImplicitHBPlusTree(keys, values, machine=m1)
    benchmark(tree.lookup_batch, queries)
