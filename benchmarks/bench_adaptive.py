"""Adaptive load-balancing benchmark CLI: static vs adaptive under drift.

Runs the phased drifting-hot-set workload through a static seed (D, R)
split and through the online :class:`~repro.core.adaptive.AdaptiveController`
on the same implicit hybrid tree, and writes the report (with the full
``rebalance`` timeline and the adaptive metrics snapshot) to
``BENCH_pr5.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_adaptive.py [--smoke] [--out PATH]

``--smoke`` shrinks the tree and the per-phase query count for CI.  The
regression gate (see :func:`repro.bench.adaptive.gate_failures`) exits
non-zero if

* any balanced run is not bit-identical to the unbalanced engine,
* the adaptive split at any phase end is more than one Algorithm-1
  step (depth 1, ratio 0.125) from that phase's offline optimum, or
* the adaptive loop fails to beat the static seed split on summed
  modeled bucket cost.

All gated quantities are modeled (Equation 4 on the phase's own
profile), so the gate is host-independent.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small dataset for CI (sub-second instead of seconds)",
    )
    parser.add_argument(
        "--out", default="BENCH_pr5.json",
        help="output JSON path (default: BENCH_pr5.json)",
    )
    args = parser.parse_args(argv)

    from repro.bench.adaptive import gate_failures, run_adaptive

    report = run_adaptive(smoke=args.smoke)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    seed = report["seed_split"]
    print(f"wrote {args.out} ({report['mode']} mode)")
    print(
        f"  tree: {report['keys']} keys, height {report['tree_height']}, "
        f"bucket {report['bucket_size']}, "
        f"{report['queries_per_phase']} queries/phase on {report['machine']}"
    )
    print(f"  static seed split: D={seed['depth']} R={seed['ratio']}")
    for row in report["phases"]:
        print(
            f"  {row['phase']} (ws={row['working_set']}): "
            f"offline D={row['offline_depth']} R={row['offline_ratio']} | "
            f"adaptive D={row['adaptive_depth']} R={row['adaptive_ratio']} "
            f"({row['adaptive_cost_ns']:.0f} ns vs static "
            f"{row['static_cost_ns']:.0f} ns)"
        )
    for event in report["rebalances"]:
        print(
            f"  rebalance[{event['reason']}]: -> D={event['depth']} "
            f"R={event['ratio']} (gain {100 * event['gain']:.1f}%, "
            f"moved={event['moved']})"
        )
    print(
        f"  modeled cost: adaptive {report['adaptive_total_cost_ns']:.0f} ns "
        f"vs static {report['static_total_cost_ns']:.0f} ns "
        f"({100 * report['cost_gain']:.1f}% saved), "
        f"identical={report['bit_identical']}"
    )

    failures = gate_failures(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
