"""Benchmarks of the fault-injection + resilience layer.

* the fault-rate sweep: throughput must decay gracefully (weakly
  monotone, small tolerance for transient costs near the degraded
  floor) with zero wrong answers at every rate;
* the recovery timeline: degraded service must return to the hybrid
  throughput level once faults clear;
* raw overhead of the resilience wrapper on a fault-free tree.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_table
from repro.bench.figures.resilience import (
    MONOTONE_TOLERANCE,
    run_fault_recovery,
    run_fault_resilience,
)
from repro.core.hbtree import HBPlusTree
from repro.core.resilience import ResilientHBPlusTree
from repro.faults import FaultInjector, FaultPlan


@pytest.mark.benchmark(group="fault-resilience")
def test_fault_rate_sweep(benchmark):
    """Graceful degradation: monotone decay, correct at every rate."""
    table = run_table(benchmark, run_fault_resilience)
    assert all(r["wrong_answers"] == 0 for r in table.rows)
    qps = table.column("mqps")
    for lo, hi in zip(qps[1:], qps[:-1]):
        assert lo <= hi * MONOTONE_TOLERANCE, (
            f"throughput rose with the fault rate: {qps}"
        )
    # the sweep must actually exercise degradation at the top end
    assert table.rows[-1]["mode"] == "cpu-only"
    assert table.rows[0]["mqps"] > table.rows[-1]["mqps"]


@pytest.mark.benchmark(group="fault-resilience")
def test_degradation_and_recovery(benchmark):
    """Throughput returns to the hybrid level after faults clear."""
    table = run_table(benchmark, run_fault_recovery)
    assert all(r["wrong_answers"] == 0 for r in table.rows)
    healthy = table.value("mqps", phase="healthy")
    faulty = table.value("mqps", phase="gpu faulty")
    recovered = table.value("mqps", phase="recovered")
    assert table.value("mode", phase="gpu faulty") == "cpu-only"
    assert table.value("mode", phase="recovered") == "hybrid"
    assert faulty < healthy
    assert recovered > faulty
    assert recovered > 0.9 * healthy


@pytest.mark.benchmark(group="fault-resilience")
def test_resilience_wrapper_overhead(benchmark, bench_data, m1):
    """Raw cost of serving through the wrapper with no faults."""
    keys, values, queries = bench_data
    tree = HBPlusTree(keys, values, machine=m1)
    r = ResilientHBPlusTree(
        tree, injector=FaultInjector(FaultPlan.none(seed=1))
    )
    out = benchmark(r.lookup_batch, queries)
    assert np.all(out != tree.spec.max_value)
    assert r.stats.served_cpu == 0
