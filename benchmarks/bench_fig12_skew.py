"""Fig 12 — impact of skewed query distributions."""

import pytest

from benchmarks.conftest import run_table
from repro.bench.figures import fig12
from repro.workloads.generators import generate_skewed_queries


@pytest.mark.benchmark(group="fig12")
def test_fig12_table(benchmark):
    table = run_table(benchmark, fig12.run)
    for tree in ("implicit", "regular"):
        assert table.value("vs_uniform", tree=tree,
                           distribution="zipf") > 1.15


@pytest.mark.benchmark(group="fig12-micro")
@pytest.mark.parametrize("dist", ["uniform", "normal", "gamma", "zipf"])
def test_distribution_generation_cost(benchmark, dist):
    benchmark(generate_skewed_queries, dist, 16384)
