"""Ablations: GPU transaction size, node index line, buffer depth."""

import pytest

from benchmarks.conftest import run_table
from repro.bench.figures import ablations


@pytest.mark.benchmark(group="ablations")
def test_txn_size_table(benchmark):
    table = run_table(benchmark, ablations.run_txn_size)
    per_size = {r["txn_bytes"]: r["bytes_per_query"] for r in table.rows}
    assert per_size[64] <= per_size[128]


@pytest.mark.benchmark(group="ablations")
def test_node_index_table(benchmark):
    table = run_table(benchmark, ablations.run_node_index)
    assert (table.value("lines_per_query", layout="indexed (paper)")
            < table.value("lines_per_query", layout="flat-scan"))


@pytest.mark.benchmark(group="ablations")
def test_buffers_table(benchmark):
    table = run_table(benchmark, ablations.run_buffers)
    assert table.value("mqps", buffers=2) >= table.value("mqps", buffers=1)
