"""Fig 21 (appendix B.3) — concurrent search/update execution."""

import pytest

from benchmarks.conftest import run_table
from repro.bench.figures import fig21


@pytest.mark.benchmark(group="fig21")
def test_fig21_table(benchmark):
    table = run_table(benchmark, fig21.run)
    asyncs = [r["async_mops"] for r in table.rows]
    syncs = [r["sync_mops"] for r in table.rows]
    opts = [r["opt_mops"] for r in table.rows]
    assert asyncs == sorted(asyncs, reverse=True)
    assert syncs[-1] <= asyncs[-1]  # sync degrades at least as fast
    # the gapped/optimistic engine dominates both paper methods at
    # every ratio: no mutex tax at 0% updates, in-place gap writes +
    # ranged mirror sync everywhere else
    assert all(o >= a for o, a in zip(opts, asyncs))
    assert all(o >= s for o, s in zip(opts, syncs))
