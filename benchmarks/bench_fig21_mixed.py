"""Fig 21 (appendix B.3) — concurrent search/update execution."""

import pytest

from benchmarks.conftest import run_table
from repro.bench.figures import fig21


@pytest.mark.benchmark(group="fig21")
def test_fig21_table(benchmark):
    table = run_table(benchmark, fig21.run)
    asyncs = [r["async_mops"] for r in table.rows]
    syncs = [r["sync_mops"] for r in table.rows]
    assert asyncs == sorted(asyncs, reverse=True)
    assert syncs[-1] <= asyncs[-1]  # sync degrades at least as fast
