"""Shared helpers for the figure benchmarks.

Every figure of the paper's evaluation has one module here.  Each module
contains:

* ``test_<fig>_table`` — regenerates the figure's data table (printed
  with ``-s``) through the experiment harness, timed once;
* micro-benchmarks of the operations the figure measures, so
  ``pytest benchmarks/ --benchmark-only`` also reports the raw
  simulation-operation costs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.platform.configs import machine_m1, machine_m2
from repro.workloads.generators import generate_dataset
from repro.workloads.queries import make_point_queries

BENCH_N = 1 << 17
BENCH_QUERIES = 2048


@pytest.fixture(scope="session")
def m1():
    return machine_m1()


@pytest.fixture(scope="session")
def m2():
    return machine_m2()


@pytest.fixture(scope="session")
def bench_data():
    keys, values = generate_dataset(BENCH_N, seed=1234)
    queries = make_point_queries(keys, BENCH_QUERIES, seed=77)
    return keys, values, queries


def run_table(benchmark, fn, **kwargs):
    """Run one experiment once under the benchmark timer and print it."""
    table = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
    print()
    print(table.format())
    return table
