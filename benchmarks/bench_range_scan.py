"""CLI for the batched range-scan benchmark gate.

Runs :func:`repro.bench.scan.run_scan` — engine-path bit-identity
(incl. under an injected fault plan), the scalar-vs-vectorised
leaf-chain wall-clock gate, and the scan-aware Algorithm-1 discovery
gate — writes the report, and exits non-zero when any gate in
:func:`repro.bench.scan.gate_failures` fails::

    PYTHONPATH=src python benchmarks/bench_range_scan.py \
        [--smoke] [--out BENCH_pr9.json]
"""

import argparse
import json
import sys
from pathlib import Path

from repro.bench.scan import gate_failures, run_scan


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small dataset for CI (sub-minute instead of minutes)",
    )
    parser.add_argument(
        "--out", default="BENCH_pr9.json",
        help="output JSON path (default: BENCH_pr9.json)",
    )
    args = parser.parse_args(argv)

    report = run_scan(smoke=args.smoke)
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({report['mode']}, machine={report['machine']}, "
          f"{report['keys']} keys, {report['scans']} scans)")
    for row in report["identity"]:
        print(
            f"  {row['tree']}: batching={row['batching_bit_identical']} "
            f"overlap={row['overlap_bit_identical']}"
            + (
                f" resilient={row['resilient_bit_identical']}"
                f"/faulted={row['resilient_faulted_bit_identical']}"
                f" (faults={row['faults_handled']})"
                if "resilient_bit_identical" in row else ""
            )
        )
    sp = report["speedup"]
    print(
        f"  leaf scan @ {sp['scan_tuples']} tuples: scalar "
        f"{sp['scalar_s']:.4f}s -> vector {sp['vector_s']:.4f}s "
        f"({sp['speedup']:.1f}x, results={sp['results_identical']}, "
        f"counters={sp['counters_identical']})"
    )
    disc = report["discovery"]
    print(
        f"  discovery: lookup-only {disc['lookup_only']} -> "
        f"scan-heavy {disc['scan_heavy']} (moved={disc['split_moved']})"
    )
    ada = report["adaptive"]
    print(
        f"  adaptive loop: windows={ada['windows']} "
        f"share={ada['scan_share_live']:.2f} "
        f"length={ada['scan_length_live']:.0f} "
        f"identical={ada['bit_identical']}"
    )

    failures = gate_failures(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
