"""Fig 14 — sync vs async update time across batch sizes."""

import pytest

from benchmarks.conftest import run_table
from repro.bench.figures import fig14


@pytest.mark.benchmark(group="fig14")
def test_fig14_table(benchmark):
    table = run_table(benchmark, fig14.run)
    assert table.rows[0]["winner"] == "sync"
    assert table.rows[-1]["winner"] == "async"
