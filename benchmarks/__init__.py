"""Figure-by-figure benchmark harness (run with pytest-benchmark)."""
