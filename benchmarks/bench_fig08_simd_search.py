"""Fig 8 — software pipelining and SIMD node-search algorithms (M2)."""

import numpy as np
import pytest

from benchmarks.conftest import run_table
from repro.bench.figures import fig08
from repro.cpu.node_search import (
    hierarchical_simd_search,
    linear_simd_search,
    sequential_search,
)


@pytest.mark.benchmark(group="fig08")
def test_fig08_table(benchmark):
    table = run_table(benchmark, fig08.run)
    for row in table.select(variant="hierarchical-simd"):
        assert row["vs_noswp"] > 1.5  # paper: +108-152%


NODE = [10, 20, 30, 40, 50, 60, 70, 80]


@pytest.mark.benchmark(group="fig08-micro")
@pytest.mark.parametrize("fn", [
    sequential_search, linear_simd_search, hierarchical_simd_search,
], ids=["sequential", "linear", "hierarchical"])
def test_node_search_emulation_cost(benchmark, fn):
    """Cost of one emulated node search (the literal snippet ports)."""
    benchmark(fn, NODE, 45)
