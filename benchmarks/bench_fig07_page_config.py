"""Fig 7 — memory page configuration: TLB misses and throughput."""

import pytest

from benchmarks.conftest import run_table
from repro.bench.figures import fig07
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.memsim.mainmem import MemorySystem, PageConfig


@pytest.mark.benchmark(group="fig07")
def test_fig07_table(benchmark):
    table = run_table(benchmark, fig07.run)
    # Fig 7(a): huge/small is bounded by one TLB miss per query
    for row in table.select(config="huge/small"):
        assert row["tlb_misses_per_query"] <= 1.0


@pytest.mark.benchmark(group="fig07-micro")
def test_instrumented_lookup_cost(benchmark, bench_data, m1):
    """Raw cost of one fully instrumented lookup (TLB+cache simulated)."""
    keys, values, queries = bench_data
    mem = MemorySystem.from_spec(m1.cpu)
    tree = ImplicitCpuBPlusTree(keys, values, mem=mem,
                                page_config=PageConfig.HUGE_SMALL)
    it = iter(range(10**9))
    benchmark(lambda: tree.lookup(int(queries[next(it) % len(queries)])))
