"""Micro-benchmarks of the GPU simulation substrate itself.

Not a paper figure: these quantify how expensive the literal SIMT
interpreter is relative to the vectorised kernel twins, which is the
reason the benchmarks use the twins (the tests assert equivalence).

Run as a script this file is also the CLI for the frontier-kernel
benchmark gate (DESIGN.md §13)::

    PYTHONPATH=src python benchmarks/bench_simt_kernels.py --frontier \
        [--smoke] [--out BENCH_pr7.json]

which measures the level-wise frontier kernel against the per-query
Snippet-3 kernel on uniform and Zipf traffic, verifies cost-model
kernel selection, writes the report, and exits non-zero when any gate
in :func:`repro.bench.frontier.gate_failures` fails.
"""

import numpy as np
import pytest

from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.gpusim.memory import coalesce
from repro.workloads.generators import generate_dataset


@pytest.fixture(scope="module")
def small_tree(m1):
    keys, values = generate_dataset(8192, seed=5)
    return ImplicitHBPlusTree(keys, values, machine=m1), keys


@pytest.mark.benchmark(group="simt")
def test_literal_simt_kernel_cost(benchmark, small_tree):
    tree, keys = small_tree
    sample = np.asarray(keys[:32], dtype=np.uint64)
    benchmark.pedantic(
        lambda: tree.gpu_search_bucket_literal(sample), rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="simt")
def test_literal_frontier_kernel_cost(benchmark, small_tree):
    tree, keys = small_tree
    sample = np.asarray(keys[:32], dtype=np.uint64)
    benchmark.pedantic(
        lambda: tree.gpu_search_bucket_literal(sample, kernel="frontier"),
        rounds=3, iterations=1,
    )


@pytest.mark.benchmark(group="simt")
def test_vectorized_kernel_cost(benchmark, small_tree):
    tree, keys = small_tree
    sample = np.asarray(keys[:2048], dtype=np.uint64)
    benchmark(lambda: tree.gpu_search_bucket(sample))


@pytest.mark.benchmark(group="simt")
def test_vectorized_frontier_kernel_cost(benchmark, small_tree):
    tree, keys = small_tree
    sample = np.unique(np.asarray(keys[:2048], dtype=np.uint64))
    benchmark(lambda: tree.gpu_search_bucket(sample, kernel="frontier"))


@pytest.mark.benchmark(group="simt")
def test_coalescer_cost(benchmark):
    ranges = [(i * 8, 8) for i in range(32)]
    benchmark(coalesce, ranges)


def main(argv=None) -> int:
    import argparse
    import json
    import sys
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--frontier", action="store_true",
        help="run the frontier-kernel benchmark gate (BENCH_pr7)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small dataset for CI (sub-second instead of seconds)",
    )
    parser.add_argument(
        "--out", default="BENCH_pr7.json",
        help="output JSON path (default: BENCH_pr7.json)",
    )
    args = parser.parse_args(argv)
    if not args.frontier:
        parser.error("script mode currently only implements --frontier; "
                     "run the pytest benchmarks with "
                     "`pytest benchmarks/bench_simt_kernels.py`")

    from repro.bench.frontier import gate_failures, run_frontier

    report = run_frontier(smoke=args.smoke)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {args.out} ({report['mode']} mode)")
    print(
        f"  tree: {report['keys']} keys, height {report['tree_height']}, "
        f"bucket {report['bucket_size']} on {report['machine']}"
    )
    for row in report["workloads"]:
        pq, fr = row["per_query"], row["frontier"]
        print(
            f"  {row['workload']}: per_query "
            f"{pq['transactions_per_query']:.4f} txns/query -> frontier "
            f"{fr['transactions_per_query']:.4f} "
            f"({100 * row['transaction_reduction']:.1f}% saved, "
            f"identical={row['bit_identical']})"
        )
    sb = report["single_bucket"]
    print(
        f"  single sorted bucket ({sb['bucket_queries']} queries, "
        f"depth {sb['gpu_depth']}): {sb['per_query_transactions']} -> "
        f"{sb['frontier_transactions']} transactions"
    )
    sel = report["selection"]
    print(
        f"  selection: committed kernel={sel['committed']['kernel']} "
        f"D={sel['committed']['depth']} R={sel['committed']['ratio']} "
        f"({sel['committed']['cost_ns']:.0f} ns); adaptive agrees: "
        f"{sel['adaptive_kernel'] == sel['committed']['kernel']}"
    )

    failures = gate_failures(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
