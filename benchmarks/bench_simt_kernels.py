"""Micro-benchmarks of the GPU simulation substrate itself.

Not a paper figure: these quantify how expensive the literal SIMT
interpreter is relative to the vectorised kernel twins, which is the
reason the benchmarks use the twins (the tests assert equivalence).
"""

import numpy as np
import pytest

from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.gpusim.memory import coalesce
from repro.workloads.generators import generate_dataset


@pytest.fixture(scope="module")
def small_tree(m1):
    keys, values = generate_dataset(8192, seed=5)
    return ImplicitHBPlusTree(keys, values, machine=m1), keys


@pytest.mark.benchmark(group="simt")
def test_literal_simt_kernel_cost(benchmark, small_tree):
    tree, keys = small_tree
    sample = np.asarray(keys[:32], dtype=np.uint64)
    benchmark.pedantic(
        lambda: tree.gpu_search_bucket_literal(sample), rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="simt")
def test_vectorized_kernel_cost(benchmark, small_tree):
    tree, keys = small_tree
    sample = np.asarray(keys[:2048], dtype=np.uint64)
    benchmark(lambda: tree.gpu_search_bucket(sample))


@pytest.mark.benchmark(group="simt")
def test_coalescer_cost(benchmark):
    ranges = [(i * 8, 8) for i in range(32)]
    benchmark(coalesce, ranges)
