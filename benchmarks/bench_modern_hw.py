"""Extrapolation: the 2016 design on 2020s-class hardware.

Not a paper figure — an analysis the reproduction makes possible: hold
the HB+-tree design fixed and swap the platform for a modern server
(32-core CPU, A100-class GPU, PCIe 4.0).  Measured outcome: both sides
speed up ~4-5x and the hybrid's relative advantage is *preserved*
(CPU memory bandwidth grew roughly in step with what the leaf stage
needs); the pipeline stays leaf-stage bound, so the design's "CPU does
only the leaves" split remains the right cut on modern hardware.
"""

import pytest

from benchmarks.conftest import run_table
from repro.bench.figures.extensions import run_modern_hw


@pytest.mark.benchmark(group="modern-hw")
def test_modern_hw_extrapolation(benchmark):
    table = run_table(benchmark, run_modern_hw)
    m1_row = table.select(machine="M1")[0]
    modern_row = table.select(machine="MODERN")[0]
    # the hybrid still wins clearly, and everything got much faster
    assert modern_row["hybrid_advantage"] > 1.3
    assert modern_row["hb_mqps"] > 2.5 * m1_row["hb_mqps"]
    # the modern platform remains leaf-stage bound: the paper's split
    # (CPU touches only leaves) is still the right cut
    assert modern_row["bottleneck"] == "cpu-leaf"
