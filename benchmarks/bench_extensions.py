"""Benchmarks for the section-7 future-work extensions.

* GPU-assisted batch updates vs the CPU asynchronous method,
* the generic hybrid framework's planning cost and its decisions,
* CSS-tree vs implicit B+-tree lookup (a structural ablation).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_table
from repro.bench.figures.extensions import run_framework, run_gpu_update
from repro.core.framework import (
    CssTreeAdapter,
    HybridFramework,
    ImplicitHBAdapter,
)
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.cpu.css_tree import CssTree
from repro.memsim.mainmem import MemorySystem


@pytest.mark.benchmark(group="ext-gpu-update")
def test_gpu_assisted_vs_cpu_async_updates(benchmark):
    """Future work #1: the descent offload should win for big batches."""
    table = run_table(benchmark, run_gpu_update)
    assert table.rows[-1]["speedup"] > 1.0


@pytest.mark.benchmark(group="ext-framework")
def test_framework_decisions(benchmark):
    """Future work #2: mode per (structure, machine)."""
    table = run_table(benchmark, run_framework)
    m2_rows = table.select(machine="M2")
    assert all(r["mode"] in ("balanced", "cpu-only") for r in m2_rows)
    m1_rows = table.select(machine="M1")
    assert all(r["mode"] == "hybrid" for r in m1_rows)


@pytest.mark.benchmark(group="ext-framework")
def test_framework_planning_cost(benchmark, bench_data, m2):
    """Raw planning cost (measure + Algorithm 1 + bucket sweep)."""
    keys, values, queries = bench_data
    tree = ImplicitHBPlusTree(keys, values, machine=m2)
    adapter = ImplicitHBAdapter(tree)

    def plan_once():
        return HybridFramework(adapter, m2, sample=queries).plan()

    plan = benchmark(plan_once)
    assert plan.mode in ("balanced", "cpu-only")


@pytest.mark.benchmark(group="ext-framework")
def test_framework_execute_css(benchmark, bench_data, m1):
    keys, values, queries = bench_data
    css = CssTree(keys, values, mem=MemorySystem.from_spec(m1.cpu))
    framework = HybridFramework(CssTreeAdapter(css, m1), m1,
                                sample=queries)
    framework.plan()
    out = benchmark(framework.execute, queries)
    assert np.all(out != css.spec.max_value)


@pytest.mark.benchmark(group="ext-structures")
@pytest.mark.parametrize("structure", ["css", "implicit-b+"])
def test_structure_lookup_cost(benchmark, bench_data, structure):
    """CSS-tree vs implicit B+-tree: raw batch-lookup cost."""
    keys, values, queries = bench_data
    if structure == "css":
        tree = CssTree(keys, values)
    else:
        from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
        tree = ImplicitCpuBPlusTree(keys, values)
    benchmark(tree.lookup_batch, queries)
