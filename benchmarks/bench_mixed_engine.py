"""CLI for the gapped-leaf optimistic mixed-engine benchmark gate.

Runs :func:`repro.bench.mixed.run_mixed` — the appendix-B.3 baseline
engine (async and sync mirror maintenance) against the
:class:`~repro.core.OptimisticMixedEngine` on a gapped tree, at the
paper's 95/5 and 50/50 read/write ratios plus one fault-injected
drill — writes the report, and exits non-zero when any gate in
:func:`repro.bench.mixed.gate_failures` fails::

    PYTHONPATH=src python benchmarks/bench_mixed_engine.py \
        [--smoke] [--out BENCH_pr8.json]
"""

import argparse
import json
import sys
from pathlib import Path

from repro.bench.mixed import gate_failures, run_mixed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small dataset for CI (sub-minute instead of minutes)",
    )
    parser.add_argument(
        "--out", default="BENCH_pr8.json",
        help="output JSON path (default: BENCH_pr8.json)",
    )
    args = parser.parse_args(argv)

    report = run_mixed(smoke=args.smoke)
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({report['mode']}, machine={report['machine']}, "
          f"{report['keys']} keys, {report['operations']} ops)")
    for row in report["ratios"] + [report["fault_run"]]:
        opt = row["optimistic"]
        print(
            f"  {row['ratio']}: async "
            f"{row['baseline_async']['throughput_ops']:.3e} / sync "
            f"{row['baseline_sync']['throughput_ops']:.3e} -> optimistic "
            f"{opt['throughput_ops']:.3e} ops/s "
            f"(retries={opt['retries']}, dirty={opt['dirty_nodes']}, "
            f"sync/rebuild bytes={row['sync_to_rebuild_bytes']:.3f}, "
            f"in-place={row['in_place_fraction']:.2f}, "
            f"identical={row['searches_bit_identical']}"
            f"/{row['mirror_bit_identical']})"
        )

    failures = gate_failures(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
