"""Fig 15 — implicit HB+-tree rebuild phases and the transfer share."""

import pytest

from benchmarks.conftest import run_table
from repro.bench.figures import fig15
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.workloads.generators import generate_dataset


@pytest.mark.benchmark(group="fig15")
def test_fig15_table(benchmark):
    table = run_table(benchmark, fig15.run)
    assert table.rows[-1]["transfer_pct"] < 15.0


@pytest.mark.benchmark(group="fig15-micro")
def test_functional_rebuild_cost(benchmark, bench_data, m1):
    """Wall-clock cost of a real tree rebuild + mirror upload."""
    keys, values, _q = bench_data
    tree = ImplicitHBPlusTree(keys[:2048], values[:2048], machine=m1)
    fresh = generate_dataset(65536, seed=4242)
    benchmark.pedantic(
        lambda: tree.rebuild(*fresh), rounds=3, iterations=1
    )
