"""CLI for the sharded multi-tenant service benchmark gate.

Runs :func:`repro.bench.service.run_service` — sharded-vs-unsharded
bit-identity (incl. under a GPU fault drill), tenant quota isolation,
online split/merge under reader load with failing snapshots, and the
service latency profile — writes the report, and exits non-zero when
any gate in :func:`repro.bench.service.gate_failures` fails::

    PYTHONPATH=src python benchmarks/bench_service.py \
        [--smoke] [--out BENCH_pr10.json]
"""

import argparse
import json
import sys
from pathlib import Path

from repro.bench.service import gate_failures, run_service


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small dataset for CI (sub-minute instead of minutes)",
    )
    parser.add_argument(
        "--out", default="BENCH_pr10.json",
        help="output JSON path (default: BENCH_pr10.json)",
    )
    args = parser.parse_args(argv)

    report = run_service(smoke=args.smoke)
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({report['mode']}, machine={report['machine']}, "
          f"{report['keys']} keys)")
    for row in report["identity"]:
        print(
            f"  identity {row['router']}@{row['fault_rate']}: "
            f"lookups={row['lookups_bit_identical']} "
            f"scans={row['scans_bit_identical']} "
            f"updates={row['updates_bit_identical']} "
            f"faults={row['injected_faults']}"
        )
    q = report["quota"]
    print(
        f"  quota: noisy {q['noisy_admitted']}/{q['noisy_attempted']} "
        f"admitted (budget {q['noisy_budget']:.0f}), victims "
        f"{q['victim_admitted']}/{q['victim_attempted']}"
    )
    sm = report["split_merge"]
    print(
        f"  split/merge: {sm['topology_changes']} changes, "
        f"{sm['snapshot_failures']} snapshot failures contained, "
        f"reads_correct={sm['reads_correct_throughout']}"
    )
    lat = report["latency"]
    print(
        f"  latency: p50={lat['p50_ns'] / 1e6:.2f}ms "
        f"p95={lat['p95_ns'] / 1e6:.2f}ms "
        f"p99={lat['p99_ns'] / 1e6:.2f}ms "
        f"({lat['throughput_ops_s'] / 1e3:.1f} kops/s)"
    )

    failures = gate_failures(report)
    for failure in failures:
        print(f"GATE FAILURE: {failure}", file=sys.stderr)
    if not failures:
        print("all gates passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
