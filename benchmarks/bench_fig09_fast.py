"""Fig 9 — FAST vs the implicit CPU-optimized B+-tree."""

import pytest

from benchmarks.conftest import run_table
from repro.bench.figures import fig09
from repro.cpu.fast_tree import FastTree


@pytest.mark.benchmark(group="fig09")
def test_fig09_table(benchmark):
    table = run_table(benchmark, fig09.run)
    for row in table.rows:
        assert row["btree_over_fast"] >= 1.0  # B+-tree never loses


@pytest.mark.benchmark(group="fig09-micro")
def test_fast_lookup_cost(benchmark, bench_data):
    keys, values, queries = bench_data
    tree = FastTree(keys, values)
    it = iter(range(10**9))
    benchmark(
        lambda: tree.lookup(int(queries[next(it) % len(queries)]),
                            instrument=False)
    )
