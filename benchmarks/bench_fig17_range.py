"""Fig 17 — range query throughput vs matches per query."""

import numpy as np
import pytest

from benchmarks.conftest import run_table
from repro.bench.figures import fig17
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.workloads.queries import make_range_queries


@pytest.mark.benchmark(group="fig17")
def test_fig17_table(benchmark):
    table = run_table(benchmark, fig17.run)
    adv = [r["hb_advantage_pct"] for r in table.rows]
    assert adv[-1] < adv[0]  # the hybrid advantage shrinks with matches


@pytest.mark.benchmark(group="fig17-micro")
@pytest.mark.parametrize("matches", [1, 8, 32])
def test_range_query_cost(benchmark, bench_data, matches):
    keys, values, _q = bench_data
    tree = ImplicitCpuBPlusTree(keys, values)
    ranges = make_range_queries(keys, 256, matches)
    it = iter(range(10**9))

    def one_range():
        lo, hi = ranges[next(it) % len(ranges)]
        return tree.range_query(lo, hi)

    benchmark(one_range)
