"""Lifecycle benchmark CLI: cold build vs bulk load vs restore.

Times the three ways to bring a hybrid regular tree into service —
per-key inserts into an empty tree, the sort-based bottom-up bulk
load, and a restore from a CRC-checksummed snapshot — then runs the
deterministic storage-fault drill (torn write, silent bit rot with
fallback, all-corrupt with cold rebuild) and writes the report to
``BENCH_pr6.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_lifecycle.py [--smoke] [--out PATH]

``--smoke`` shrinks the tree for CI.  The regression gate (see
:func:`repro.bench.lifecycle.gate_failures`) exits non-zero if restore
is not strictly faster than the cold per-key build, any of the four
trees disagrees on the probe batch, warm restart fails to pin the
committed (D, R) without a reprofiling window, or any drill scenario
misses its documented recovery rung.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small dataset for CI (seconds instead of minutes)",
    )
    parser.add_argument(
        "--out", default="BENCH_pr6.json",
        help="output JSON path (default: BENCH_pr6.json)",
    )
    args = parser.parse_args(argv)

    from repro.bench.lifecycle import gate_failures, run_lifecycle

    report = run_lifecycle(smoke=args.smoke)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    ms = 1e-6
    print(f"wrote {args.out} ({report['mode']} mode)")
    print(
        f"  tree: {report['keys']} keys on {report['machine']}, "
        f"committed split D={report['split']['depth']} "
        f"R={report['split']['ratio']}"
    )
    print(
        f"  per-key build {report['perkey_build_ns'] * ms:.1f} ms | "
        f"bulk load {report['bulk_build_ns'] * ms:.1f} ms "
        f"({report['bulk_speedup_vs_perkey']:.1f}x) | "
        f"restore {report['restore_ns'] * ms:.1f} ms "
        f"({report['restore_speedup_vs_perkey']:.1f}x)"
    )
    print(
        f"  snapshot: {report['snapshot_bytes']} bytes in "
        f"{report['snapshot_ns'] * ms:.1f} ms; warm restart pinned="
        f"{report['warm_pinned']} unprofiled={report['warm_unprofiled']}; "
        f"bit-identical={report['bit_identical']}"
    )
    for name, row in report["drill"].items():
        print(f"  drill[{name}]: {row}")

    failures = gate_failures(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
