"""Wall-clock benchmark CLI: times the simulator's real hot paths.

Unlike the figure benchmarks (which report *modeled* nanoseconds), this
script measures host wall-clock time of the paths PR-level performance
work targets — mirror packing, bulk lookup through the batch engine,
batch updates, and the batched cache-touch accounting — and writes the
results to ``BENCH_pr2.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py [--smoke] [--out PATH]
    PYTHONPATH=src python benchmarks/bench_wallclock.py --overlap [--smoke]
    PYTHONPATH=src python benchmarks/bench_wallclock.py --trace [--smoke]

``--smoke`` shrinks the dataset for CI.  The script exits non-zero if a
vectorised path is slower than its scalar reference by more than 1.5x,
or if sorting a skewed bucket fails to reduce modeled transactions —
the regression gate for the batch execution engine.

``--overlap`` instead benchmarks the threaded overlap engine and writes
``BENCH_pr3.json``.  Its gate always hard-fails on a bit-identity or
modeled-counter mismatch (correctness is host-independent); the
wall-clock requirements scale with the host's real parallelism, which
the report records as ``cpu_count``:

* the inline ``sequential`` topology must never be more than 1.5x
  slower than the serial batch engine (pure overhead bound);
* with >= 2 usable cores, no threaded topology may be more than 1.5x
  slower than serial;
* the full (non-smoke) run additionally requires >= 1.8x speedup from
  a double-buffered topology with >= 4 CPU workers when the host has
  >= 4 usable cores — on smaller hosts the speedup is reported but not
  enforced, because threads cannot beat serial without cores to run on.

``--trace`` benchmarks the observability layer (``repro.obs``) and
writes ``BENCH_pr4.json`` plus a Perfetto-loadable Chrome trace
(default ``<out stem>.trace.json``, load at https://ui.perfetto.dev).
Its gate hard-fails if a tracing-enabled run is not bit-identical to a
disabled run, if the modeled device counters diverge, if the exported
trace fails schema validation (orphan ends, unbalanced spans), if the
dispatcher / GPU-worker / CPU-pool tracks are missing from the trace,
or if tracing inflates wall-clock past the overhead bound.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: a vectorised path slower than its scalar reference by more than this
#: factor fails the gate
MAX_SLOWDOWN = 1.5

#: required full-run speedup of double-buffered overlap (>= 4 CPU
#: workers) over the serial engine — enforced only with >= 4 real cores
MIN_OVERLAP_SPEEDUP = 1.8

#: tracing may not inflate the overlap run's wall-clock past this
#: factor (generous: span bodies are microseconds next to millisecond
#: buckets, but smoke runs on loaded CI hosts are noisy)
MAX_TRACE_OVERHEAD = 1.5


def run_overlap_gate(args) -> int:
    """Run the overlap benchmark and enforce its (core-aware) gate."""
    from repro.bench.wallclock import run_overlap

    report = run_overlap(smoke=args.smoke)
    out = args.out or "BENCH_pr3.json"
    Path(out).write_text(json.dumps(report, indent=2) + "\n")

    cores = report["cpu_count"]
    serial_ns = report["serial"]["wall_ns"]
    model = report["model"]
    print(f"wrote {out} ({report['mode']} mode, {cores} usable cores)")
    print(
        f"  tree: {report['keys']} keys, {report['queries']} queries, "
        f"bucket {report['bucket_size']}"
    )
    print(f"  serial engine: {serial_ns / 1e6:.1f} ms")
    for cfg in report["configs"]:
        eff = cfg["stats"]["overlap_efficiency"]
        print(
            f"  {cfg['strategy']:>15} gpu={cfg['gpu_workers']} "
            f"cpu={cfg['cpu_workers']}: {cfg['wall_ns'] / 1e6:.1f} ms "
            f"({cfg['speedup_vs_serial']:.2f}x, overlap {eff:.2f}, "
            f"identical={cfg['bit_identical']}, "
            f"counters={cfg['counters_match']})"
        )
    print(
        "  model steady state max(T2,T4): "
        f"{model['predicted_steady_state_ns'] / 1e6:.2f} ms/bucket"
    )

    failures = []
    for cfg in report["configs"]:
        tag = (
            f"{cfg['strategy']} (gpu={cfg['gpu_workers']}, "
            f"cpu={cfg['cpu_workers']})"
        )
        if not cfg["bit_identical"]:
            failures.append(f"{tag}: results differ from the serial engine")
        if not cfg["counters_match"]:
            failures.append(
                f"{tag}: modeled device counters diverged from serial "
                f"({cfg['counters']} vs {report['serial']['counters']})"
            )
        threaded = cfg["strategy"] != "sequential"
        if (not threaded or cores >= 2) and \
                cfg["speedup_vs_serial"] < 1.0 / MAX_SLOWDOWN:
            failures.append(
                f"{tag}: {1 / cfg['speedup_vs_serial']:.2f}x slower than "
                f"serial (limit {MAX_SLOWDOWN}x)"
            )
    if report["mode"] == "full" and cores >= 4:
        best = max(
            (c["speedup_vs_serial"] for c in report["configs"]
             if c["strategy"] == "double_buffered" and c["cpu_workers"] >= 4),
            default=0.0,
        )
        if best < MIN_OVERLAP_SPEEDUP:
            failures.append(
                f"double-buffered (>=4 CPU workers) best speedup {best:.2f}x "
                f"< required {MIN_OVERLAP_SPEEDUP}x on {cores} cores"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def run_trace_gate(args) -> int:
    """Run the trace benchmark and enforce the observability gate."""
    from repro.bench.wallclock import run_trace

    out = args.out or "BENCH_pr4.json"
    trace_path = str(Path(out).with_suffix("")) + ".trace.json"
    report = run_trace(smoke=args.smoke, trace_path=trace_path)
    Path(out).write_text(json.dumps(report, indent=2) + "\n")

    trace = report["trace"]
    print(f"wrote {out} ({report['mode']} mode, {report['cpu_count']} cores)")
    print(f"wrote {trace_path} (load at https://ui.perfetto.dev)")
    print(
        f"  engine: {report['strategy']} gpu={report['gpu_workers']} "
        f"cpu={report['cpu_workers']}, {report['queries']} queries, "
        f"bucket {report['bucket_size']}"
    )
    print(
        f"  untraced {report['untraced_wall_ns'] / 1e6:.1f} ms -> traced "
        f"{report['traced_wall_ns'] / 1e6:.1f} ms "
        f"({report['overhead_ratio']:.3f}x overhead)"
    )
    print(
        f"  trace: {trace['events']} events, {trace['spans']} spans, "
        f"tracks {trace['thread_names']}, valid={trace['valid']}"
    )
    print(
        f"  identical={report['bit_identical']}, "
        f"counters={report['counters_match']}"
    )

    failures = []
    if not report["bit_identical"]:
        failures.append("tracing-enabled run is not bit-identical to disabled")
    if not report["counters_match"]:
        failures.append(
            "modeled device counters diverged under tracing "
            f"({report['counters']['traced']} vs "
            f"{report['counters']['untraced']})"
        )
    if not trace["valid"]:
        failures.append(
            f"trace failed schema validation: {trace['validation_errors']}"
        )
    tracks = set(trace["thread_names"])
    for needed in ("overlap-gpu-0", "overlap-cpu-0"):
        if needed not in tracks:
            failures.append(f"trace is missing the {needed} thread track")
    if not any("gpu" not in t and "cpu" not in t for t in tracks):
        failures.append("trace is missing the dispatcher (caller) track")
    if report["overhead_ratio"] > MAX_TRACE_OVERHEAD:
        failures.append(
            f"tracing overhead {report['overhead_ratio']:.2f}x exceeds "
            f"the {MAX_TRACE_OVERHEAD}x bound"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small dataset for CI (seconds instead of minutes)",
    )
    parser.add_argument(
        "--overlap", action="store_true",
        help="benchmark the threaded overlap engine (BENCH_pr3.json)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="benchmark the observability layer and export a Perfetto "
             "trace (BENCH_pr4.json + BENCH_pr4.trace.json)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default: BENCH_pr2.json, "
             "BENCH_pr3.json with --overlap, BENCH_pr4.json with --trace)",
    )
    args = parser.parse_args(argv)

    if args.overlap:
        return run_overlap_gate(args)
    if args.trace:
        return run_trace_gate(args)

    from repro.bench.wallclock import run_wallclock

    report = run_wallclock(smoke=args.smoke)
    out = args.out or "BENCH_pr2.json"
    Path(out).write_text(json.dumps(report, indent=2) + "\n")

    mirror = report["mirror"]
    touch = report["touch"]
    zipf = report["lookup"]["zipf"]
    update = report["update"]
    print(f"wrote {out} ({report['mode']} mode)")
    print(f"  pack_i_segment speedup vs scalar: {mirror['pack_speedup']:.2f}x")
    print(f"  touch_lines speedup vs per-line:  {touch['speedup']:.2f}x")
    print(
        "  zipf transactions/query: "
        f"{zipf['unsorted_transactions_per_query']:.2f} unsorted -> "
        f"{zipf['sorted_transactions_per_query']:.2f} sorted "
        f"({100 * zipf['transaction_reduction']:.1f}% saved)"
    )
    print(
        "  sync PCIe transfers: "
        f"{update['sync_pernode_pcie_transfers']} per-node -> "
        f"{update['sync_batched_pcie_transfers']} batched"
    )

    failures = []
    if mirror["pack_speedup"] < 1.0 / MAX_SLOWDOWN:
        failures.append(
            f"vectorised pack_i_segment is {1 / mirror['pack_speedup']:.2f}x "
            f"slower than the scalar loop (limit {MAX_SLOWDOWN}x)"
        )
    if touch["speedup"] < 1.0 / MAX_SLOWDOWN:
        failures.append(
            f"batched touch_lines is {1 / touch['speedup']:.2f}x slower "
            f"than the per-line loop (limit {MAX_SLOWDOWN}x)"
        )
    if zipf["transaction_reduction"] <= 0.0:
        failures.append(
            "sorting a zipf bucket did not reduce modeled transactions"
        )
    if (update["sync_batched_pcie_transfers"]
            > update["sync_pernode_pcie_transfers"]):
        failures.append(
            "batched mirror sync issued more PCIe transfers than per-node"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
