"""Wall-clock benchmark CLI: times the simulator's real hot paths.

Unlike the figure benchmarks (which report *modeled* nanoseconds), this
script measures host wall-clock time of the paths PR-level performance
work targets — mirror packing, bulk lookup through the batch engine,
batch updates, and the batched cache-touch accounting — and writes the
results to ``BENCH_pr2.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py [--smoke] [--out PATH]

``--smoke`` shrinks the dataset for CI.  The script exits non-zero if a
vectorised path is slower than its scalar reference by more than 1.5x,
or if sorting a skewed bucket fails to reduce modeled transactions —
the regression gate for the batch execution engine.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: a vectorised path slower than its scalar reference by more than this
#: factor fails the gate
MAX_SLOWDOWN = 1.5


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small dataset for CI (seconds instead of minutes)",
    )
    parser.add_argument(
        "--out", default="BENCH_pr2.json",
        help="output JSON path (default: BENCH_pr2.json)",
    )
    args = parser.parse_args(argv)

    from repro.bench.wallclock import run_wallclock

    report = run_wallclock(smoke=args.smoke)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    mirror = report["mirror"]
    touch = report["touch"]
    zipf = report["lookup"]["zipf"]
    update = report["update"]
    print(f"wrote {args.out} ({report['mode']} mode)")
    print(f"  pack_i_segment speedup vs scalar: {mirror['pack_speedup']:.2f}x")
    print(f"  touch_lines speedup vs per-line:  {touch['speedup']:.2f}x")
    print(
        "  zipf transactions/query: "
        f"{zipf['unsorted_transactions_per_query']:.2f} unsorted -> "
        f"{zipf['sorted_transactions_per_query']:.2f} sorted "
        f"({100 * zipf['transaction_reduction']:.1f}% saved)"
    )
    print(
        "  sync PCIe transfers: "
        f"{update['sync_pernode_pcie_transfers']} per-node -> "
        f"{update['sync_batched_pcie_transfers']} batched"
    )

    failures = []
    if mirror["pack_speedup"] < 1.0 / MAX_SLOWDOWN:
        failures.append(
            f"vectorised pack_i_segment is {1 / mirror['pack_speedup']:.2f}x "
            f"slower than the scalar loop (limit {MAX_SLOWDOWN}x)"
        )
    if touch["speedup"] < 1.0 / MAX_SLOWDOWN:
        failures.append(
            f"batched touch_lines is {1 / touch['speedup']:.2f}x slower "
            f"than the per-line loop (limit {MAX_SLOWDOWN}x)"
        )
    if zipf["transaction_reduction"] <= 0.0:
        failures.append(
            "sorting a zipf bucket did not reduce modeled transactions"
        )
    if (update["sync_batched_pcie_transfers"]
            > update["sync_pernode_pcie_transfers"]):
        failures.append(
            "batched mirror sync issued more PCIe transfers than per-node"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
