"""Fig 11 — bucket size sweep: throughput and latency."""

import pytest

from benchmarks.conftest import run_table
from repro.bench.figures import fig11
from repro.core.buckets import iter_buckets
from repro.core.hbtree_implicit import ImplicitHBPlusTree


@pytest.mark.benchmark(group="fig11")
def test_fig11_table(benchmark):
    table = run_table(benchmark, fig11.run)
    for tree in ("implicit", "regular"):
        lats = [r["latency_us"] for r in table.select(tree=tree)]
        assert lats == sorted(lats)  # latency grows with bucket size


@pytest.mark.benchmark(group="fig11-micro")
@pytest.mark.parametrize("bucket", [8192, 16384, 65536])
def test_bucket_execution_cost(benchmark, bench_data, m1, bucket):
    """Functional cost of pushing one bucket through the hybrid path."""
    keys, values, queries = bench_data
    tree = ImplicitHBPlusTree(keys, values, machine=m1)
    batch = next(iter_buckets(
        queries.repeat(max(1, bucket // len(queries) + 1))[:bucket], bucket
    ))
    benchmark(tree.lookup_batch, batch)
