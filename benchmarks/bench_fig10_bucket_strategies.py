"""Fig 10 — sequential / pipelined / double-buffered bucket handling."""

import pytest

from benchmarks.conftest import run_table
from repro.bench.figures import fig10
from repro.core.pipeline import BucketStrategy, PipelineSimulator
from repro.platform.costmodel import BucketCosts

COSTS = BucketCosts(t1=20e3, t2=60e3, t3=20e3, t4=55e3)


@pytest.mark.benchmark(group="fig10")
def test_fig10_table(benchmark):
    table = run_table(benchmark, fig10.run)
    for tree in ("implicit", "regular"):
        db = table.value("vs_sequential", tree=tree,
                         strategy="double_buffered")
        assert db > 1.6  # paper: +110%


@pytest.mark.benchmark(group="fig10-micro")
@pytest.mark.parametrize("strategy", list(BucketStrategy),
                         ids=lambda s: s.value)
def test_pipeline_simulation_cost(benchmark, strategy):
    """Cost of playing 256 buckets through the event simulator."""
    sim = PipelineSimulator(COSTS, strategy, 16384)
    benchmark(sim.run, 256)
