#!/usr/bin/env python3
"""Quickstart: build an HB+-tree, search it, inspect the cost model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ImplicitHBPlusTree, machine_m1
from repro.core.pipeline import BucketStrategy, strategy_throughput_qps
from repro.workloads import generate_dataset, make_point_queries


def main() -> None:
    # 1. generate a dataset (unique uniform keys, like the paper's)
    n = 1 << 18
    keys, values = generate_dataset(n, key_bits=64, seed=1)
    print(f"dataset: {n:,} unique 64-bit key/value tuples")

    # 2. build the hybrid tree on the simulated M1 platform
    #    (Xeon E5-2665 + Geforce GTX 780)
    machine = machine_m1()
    tree = ImplicitHBPlusTree(keys, values, machine=machine)
    print(f"tree height: {tree.height} inner levels")
    print(f"I-segment (mirrored to GPU): {tree.i_segment_bytes / 1024:.0f} KiB")
    print(f"L-segment (CPU memory only): {tree.l_segment_bytes / 1024:.0f} KiB")

    # 3. point lookups — single and batched
    k = int(keys[0])
    print(f"\nlookup({k}) = {tree.lookup(k)} (expected {int(values[0])})")
    queries = make_point_queries(keys, 10_000)
    out = tree.lookup_batch(queries)
    found = np.sum(out != tree.spec.max_value)
    print(f"batched: {found:,}/{len(queries):,} queries found their key")

    # 4. a range query (leaves are chained, so scans are sequential)
    sk = np.sort(keys)
    lo, hi = int(sk[1000]), int(sk[1015])
    matches = tree.range_query(lo, hi)
    print(f"range [{lo} .. {hi}] -> {len(matches)} tuples")

    # 5. the paper's cost model: T1..T4 per 16K-query bucket
    costs = tree.bucket_costs()
    print("\nbucket cost model (M = 16K queries):")
    print(f"  T1 host->device transfer : {costs.t1 / 1e3:8.1f} us")
    print(f"  T2 GPU inner-node search : {costs.t2 / 1e3:8.1f} us")
    print(f"  T3 device->host transfer : {costs.t3 / 1e3:8.1f} us")
    print(f"  T4 CPU leaf search       : {costs.t4 / 1e3:8.1f} us")
    for strategy in BucketStrategy:
        qps = strategy_throughput_qps(costs, strategy, machine.bucket_size)
        print(f"  {strategy.value:<16} -> {qps / 1e6:7.1f} MQPS")


if __name__ == "__main__":
    main()
