#!/usr/bin/env python3
"""Batch ETL updates: choosing between the two update methods.

Section 5.6 / Fig 14: the regular HB+-tree supports two batch-update
strategies whose costs cross over with batch size —

* **synchronized** — one modifying thread + one synchronizing thread
  pushing each modified inner node to the GPU mirror as it changes;
  cheap for small batches (no bulk transfer).
* **asynchronous** — parallel in-memory updates (groups of 16K, one
  lock per last-level node, <1% deferred to a serial pass), then a
  single full I-segment upload; wins once the transfer amortizes.

This example sizes a "micro-batch vs nightly-batch" decision the way a
deployment would: measure both on your own tree and pick per batch.

Run:  python examples/batch_etl_updates.py
"""

import numpy as np

from repro import HBPlusTree, machine_m1
from repro.core.update import AsyncBatchUpdater, SyncUpdater
from repro.workloads import generate_dataset
from repro.workloads.queries import make_insert_batch


def measure(machine, keys, values, batch_size):
    upd_keys, upd_vals = make_insert_batch(keys, batch_size, 64,
                                           seed=batch_size)
    sync_tree = HBPlusTree(keys, values, machine=machine, fill=0.7)
    sync = SyncUpdater(sync_tree).apply(upd_keys, upd_vals)

    async_tree = HBPlusTree(keys, values, machine=machine, fill=0.7)
    asyn = AsyncBatchUpdater(async_tree).apply(upd_keys, upd_vals)

    # both trees must now agree with each other and contain the batch
    assert np.array_equal(sync_tree.lookup_batch(upd_keys), upd_vals)
    assert np.array_equal(async_tree.lookup_batch(upd_keys), upd_vals)
    return sync, asyn


def main() -> None:
    machine = machine_m1()
    n = 1 << 17
    keys, values = generate_dataset(n, seed=3)
    print(f"base index: {n:,} tuples (regular HB+-tree, 70% leaf fill)\n")
    print(f"{'batch':>7}  {'sync (ms)':>10}  {'async (ms)':>10}  "
          f"{'deferred':>8}  winner")
    print("-" * 56)
    for batch in (64, 256, 1024, 4096):
        sync, asyn = measure(machine, keys, values, batch)
        winner = "sync" if sync.total_ns < asyn.total_ns else "async"
        print(f"{batch:>7}  {sync.total_ns / 1e6:>10.3f}  "
              f"{asyn.total_ns / 1e6:>10.3f}  "
              f"{100 * asyn.deferred_fraction:>7.2f}%  {winner}")
    print(
        "\nsmall batches: per-node pushes beat the bulk I-segment upload;"
        "\nlarge batches: one upload amortizes (the paper's Fig 14"
        "\ncrossover, at 64K-128K queries on the unscaled machines)."
    )


if __name__ == "__main__":
    main()
