#!/usr/bin/env python3
"""OLAP dashboard scenario: lookup-heavy index over a fact table.

The paper motivates HB+-tree with OLAP / decision-support workloads:
huge read volumes against an index that is only refreshed in batches
(section 1, 5.1).  This example plays that role:

* a "fact table" keyed by (customer id), indexed by the hybrid tree;
* dashboard widgets fire large batches of point lookups (drill-down
  filters) and range scans (top-N windows);
* a nightly ETL batch replaces a slice of the data, after which the
  implicit tree is rebuilt and the I-segment re-uploaded.

Run:  python examples/olap_dashboard.py
"""

import numpy as np

from repro import ImplicitHBPlusTree, machine_m1
from repro.core.pipeline import BucketStrategy, strategy_throughput_qps
from repro.workloads import generate_dataset, generate_skewed_queries


def dashboard_refresh(tree, customer_ids, spec):
    """One dashboard refresh: every widget resolves its point lookups."""
    out = tree.lookup_batch(customer_ids)
    hits = out != spec.max_value
    return int(np.sum(hits)), out


def main() -> None:
    machine = machine_m1()
    n = 1 << 18
    print(f"loading fact table: {n:,} customer rows")
    keys, revenue = generate_dataset(n, seed=2024)
    tree = ImplicitHBPlusTree(keys, revenue, machine=machine)

    # --- widget 1: per-customer revenue drill-down (uniform probes) ----
    batch = np.random.default_rng(5).choice(keys, size=16_384)
    hits, _ = dashboard_refresh(tree, batch, tree.spec)
    costs = tree.bucket_costs(sample=batch[:2048])
    qps = strategy_throughput_qps(
        costs, BucketStrategy.DOUBLE_BUFFERED, machine.bucket_size
    )
    print(f"widget 1 (drill-down): {hits:,} hits, "
          f"modeled {qps / 1e6:.0f} MQPS on {machine.name}")

    # --- widget 2: a hot-key leaderboard (Zipf-skewed probes) ----------
    # repeat customers dominate; the hot leaves stay cache resident
    skewed = generate_skewed_queries("zipf", 16_384, seed=6)
    costs_hot = tree.bucket_costs(sample=skewed[:2048])
    qps_hot = strategy_throughput_qps(
        costs_hot, BucketStrategy.DOUBLE_BUFFERED, machine.bucket_size
    )
    print(f"widget 2 (hot keys)  : modeled {qps_hot / 1e6:.0f} MQPS "
          f"({qps_hot / qps:.2f}x the uniform widget — skew helps, Fig 12)")

    # --- widget 3: top-window range scans ------------------------------
    sk = np.sort(keys)
    windows = [(int(sk[i]), int(sk[i + 31])) for i in
               range(0, 32 * 100, 32)]
    total = sum(len(tree.range_query(lo, hi)) for lo, hi in windows)
    print(f"widget 3 (ranges)    : {len(windows)} windows, "
          f"{total:,} tuples scanned via the leaf chain")

    # --- nightly ETL: replace 10% of rows, rebuild, re-upload ----------
    rng = np.random.default_rng(99)
    refreshed = keys.copy()
    stale = rng.choice(n, size=n // 10, replace=False)
    new_keys, new_rev = generate_dataset(n // 10, seed=77)
    refreshed[stale] = new_keys
    refreshed, idx = np.unique(refreshed, return_index=True)
    new_values = revenue.copy()
    new_values[stale] = new_rev
    times = tree.rebuild(refreshed, new_values[idx])
    print("\nnightly batch refresh (implicit tree => full rebuild):")
    print(f"  L-segment rebuild : {times.l_segment_ns / 1e6:6.2f} ms")
    print(f"  I-segment rebuild : {times.i_segment_ns / 1e6:6.2f} ms")
    print(f"  I-segment upload  : {times.transfer_ns / 1e6:6.2f} ms "
          f"({100 * times.transfer_fraction:.1f}% of reconstruction — "
          "paper Fig 15 reports 3-7%)")
    probe = int(refreshed[0])
    print(f"  sanity: lookup({probe}) = {tree.lookup(probe)}")


if __name__ == "__main__":
    main()
