#!/usr/bin/env python3
"""The generic leaf-stored hybrid framework (paper section 7).

The paper's future work asks for "a general framework which enables the
use of a CPU-GPU hybrid platform for any arbitrary leaf-stored tree
structure".  This example runs three different structures — the
implicit HB+-tree, the regular HB+-tree and a CSS-tree — through
:class:`repro.HybridFramework` on both evaluation machines and shows
how the framework picks a different execution mode per (structure,
machine) pair.

Run:  python examples/generic_framework.py
"""

import numpy as np

from repro import (
    CssTree,
    CssTreeAdapter,
    HBPlusTree,
    HybridFramework,
    ImplicitHBAdapter,
    ImplicitHBPlusTree,
    MemorySystem,
    RegularHBAdapter,
    machine_m1,
    machine_m2,
)
from repro.workloads import generate_dataset, make_point_queries


def adapters_for(keys, values, machine):
    yield ImplicitHBAdapter(
        ImplicitHBPlusTree(keys, values, machine=machine)
    )
    yield RegularHBAdapter(HBPlusTree(keys, values, machine=machine))
    yield CssTreeAdapter(
        CssTree(keys, values, mem=MemorySystem.from_spec(machine.cpu)),
        machine,
    )


def main() -> None:
    keys, values = generate_dataset(1 << 17, seed=10)
    sample = make_point_queries(keys, 2048)
    probes = keys[:4096]

    for machine in (machine_m1(), machine_m2()):
        print(f"\n=== {machine.name}: {machine.cpu.name} + "
              f"{machine.gpu.name} ===")
        for adapter in adapters_for(keys, values, machine):
            framework = HybridFramework(adapter, machine, sample=sample)
            plan = framework.plan()
            out = framework.execute(probes)
            assert np.array_equal(out, values[:4096])
            print(f"  {adapter.name:<18} {plan.describe()}")
    print(
        "\nThe framework measured each structure's per-level CPU and GPU"
        "\ncosts on each machine and chose: plain hybrid where the GPU is"
        "\nstrong (M1), a balanced (D, R) split or CPU-only where it is"
        "\nnot (M2) — all verified functionally above."
    )


if __name__ == "__main__":
    main()
