#!/usr/bin/env python3
"""An operations playbook: the library features a deployment leans on.

Walks one index through a day of operation:

1. build + persist the index (``save_index`` / ``load_index``),
2. validate it deeply, including GPU-mirror consistency
   (``validate_index``),
3. serve a production-like trace with a drifting hot set
   (``synthesize_trace`` / ``replay_trace``),
4. onboard a scan-heavy tenant: batched range scans ride the GPU
   bucket machinery bit-identically to the sequential walk, and
   Algorithm 1 re-prices the (kernel, D, R) split for the scan mix
   (``BatchingEngine.run_scans`` / ``set_scan_profile``),
5. absorb a large write burst with GPU-assisted batch updates
   (``GpuAssistedUpdater``), then re-validate and re-persist,
6. survive a GPU incident: under injected faults the resilient wrapper
   degrades to CPU-only service (answers stay correct), then recovers
   to hybrid throughput once the faults clear
   (``ResilientHBPlusTree`` / ``FaultInjector``),
7. warm restart after a node failure: periodic checksummed snapshots
   (one torn mid-write by an injected storage fault — the live tree
   and older snapshots are untouched), then a replacement node comes
   up via ``warm_restart``: restored from the newest intact snapshot
   with the adaptive controller's committed (D, R) pinned, serving
   bit-identical answers with no reprofiling window
   (``SnapshotManager`` / ``warm_restart``),
8. scale out to the sharded multi-tenant service and split a hot
   shard online while readers stream lookups: a noisy tenant is
   capped by its token-bucket quota while others are fully served,
   the drift-driven rebalancer splits the shard taking most of the
   traffic, and every answer stays bit-identical throughout
   (``IndexService`` / ``maybe_rebalance``).

Run:  python examples/operations_playbook.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    BatchingEngine,
    FaultInjector,
    FaultPlan,
    GpuAssistedUpdater,
    HBPlusTree,
    ImplicitHBPlusTree,
    IndexService,
    QuotaConfig,
    QuotaExceeded,
    ResilienceConfig,
    ResilientHBPlusTree,
    ServiceConfig,
    SnapshotManager,
    load_index,
    machine_m1,
    save_index,
    validate_index,
    warm_restart,
)
from repro.core.adaptive import AdaptiveController
from repro.core.load_balance import LoadBalancer
from repro.workloads import generate_dataset
from repro.workloads.queries import make_insert_batch, make_scan_queries
from repro.workloads.trace import replay_trace, synthesize_trace


def main() -> None:
    machine = machine_m1()
    workdir = Path(tempfile.mkdtemp(prefix="hbtree_ops_"))

    # 1. build + persist
    keys, values = generate_dataset(1 << 16, seed=2026)
    tree = HBPlusTree(keys, values, machine=machine, fill=0.7)
    path = save_index(tree, workdir / "orders_index")
    print(f"built {len(tree):,}-tuple index; persisted to {path}")

    # reload on a "fresh node", leaving room for the day's inserts
    tree = load_index(path, machine=machine, fill=0.7)
    print(f"reloaded: {len(tree):,} tuples, height {tree.height}")

    # 2. deep validation (structure + GPU mirror via the SIMT kernel)
    validate_index(tree)
    print("validate_index: structure and GPU mirror consistent")

    # 3. serve a drifting-hot-set trace
    trace = synthesize_trace(
        keys, 5_000, read_ratio=0.85, working_set=0.03, drift_every=800,
    )
    trace_path = trace.save(workdir / "day1_trace")
    stats = replay_trace(trace, tree)
    print(
        f"replayed {stats.operations:,} ops from {trace_path.name}: "
        f"{stats.lookups:,} lookups ({stats.hit_rate:.1%} hit), "
        f"{stats.upserts:,} upserts, {stats.deletes:,} deletes, "
        f"{stats.ranges:,} ranges ({stats.range_tuples:,} tuples)"
    )
    validate_index(tree)

    # 4. a scan-heavy tenant arrives: batched scans descend through
    #    the GPU bucket path and finish on the vectorised leaf-chain
    #    walk; the balancer re-prices the split for the mix
    #    (DESIGN.md §15)
    los, his = make_scan_queries(keys, 512, 128, dist="geometric",
                                 seed=5)
    engine = BatchingEngine(tree)
    scans = engine.run_scans(los, his)
    assert scans[:4] == [
        tree.range_query(int(lo), int(hi))
        for lo, hi in zip(los[:4].tolist(), his[:4].tolist())
    ], "batched scans must match the sequential walk"
    tuples_per_scan = engine.stats.scan_tuples / len(los)
    # Algorithm-1 discovery profiles the implicit breadth-first
    # layout; price the split on an implicit twin of today's tuples
    cur_keys = np.asarray([k for k, _v in tree.cpu_tree.items()],
                          dtype=np.uint64)
    cur_vals = np.asarray([v for _k, v in tree.cpu_tree.items()],
                          dtype=np.uint64)
    implicit = ImplicitHBPlusTree(cur_keys, cur_vals, machine=machine)
    balancer = LoadBalancer(implicit, bucket_size=4096)
    lookup_split = balancer.discover()
    balancer.set_scan_profile(0.5, tuples_per_scan)
    scan_split = balancer.discover()
    balancer.set_scan_profile(0.0, 0.0)
    print(
        f"scan tenant: {len(los)} scans, "
        f"{engine.stats.scan_tuples:,} tuples "
        f"(~{tuples_per_scan:.0f}/scan, bit-identical); split "
        f"lookup-only (D={lookup_split.depth}, R={lookup_split.ratio}, "
        f"{lookup_split.kernel}) -> scan-heavy (D={scan_split.depth}, "
        f"R={scan_split.ratio}, {scan_split.kernel})"
    )

    # 5. nightly write burst, GPU assisted
    burst_keys, burst_vals = make_insert_batch(
        np.asarray([k for k, _v in tree.cpu_tree.items()],
                   dtype=np.uint64),
        8_192, 64,
    )
    burst = GpuAssistedUpdater(tree).apply(burst_keys, burst_vals)
    print(
        f"write burst: {burst.applied:,} upserts, "
        f"{burst.redescended} re-descended after splits, "
        f"modeled {burst.total_ns / 1e6:.2f} ms "
        f"(GPU locate {burst.gpu_locate_ns / 1e6:.2f} ms)"
    )
    validate_index(tree)
    final = save_index(tree, workdir / "orders_index_day2")
    print(f"validated and re-persisted to {final}")

    # 6. GPU incident: degrade gracefully, then recover
    served_keys = np.asarray(
        [k for k, _v in tree.cpu_tree.items()], dtype=np.uint64
    )
    lut = dict(tree.cpu_tree.items())
    injector = FaultInjector(FaultPlan.none(seed=7))
    resilient = ResilientHBPlusTree(
        tree, injector=injector, config=ResilienceConfig(probe_interval=2)
    )
    rng = np.random.default_rng(7)

    def serve(batches: int) -> float:
        q0, t0 = resilient.stats.served_queries, resilient.stats.served_ns
        for _ in range(batches):
            q = rng.choice(served_keys, size=resilient.bucket_size)
            out = resilient.lookup_batch(q)
            expected = np.asarray(
                [lut[int(k)] for k in q], dtype=out.dtype
            )
            assert np.array_equal(out, expected), "wrong answer under faults"
        dq = resilient.stats.served_queries - q0
        dt = resilient.stats.served_ns - t0
        return dq * 1e9 / dt / 1e6

    healthy = serve(6)
    print(f"healthy hybrid service: {healthy:.0f} MQPS")

    injector.plan = FaultPlan.uniform(1.0, seed=7)  # the GPU goes dark
    degraded = serve(6)
    s = resilient.stats
    print(
        f"GPU incident: {degraded:.0f} MQPS from the CPU-only path "
        f"(degraded={resilient.degraded}, "
        f"faults absorbed={s.faults_handled}, every answer verified)"
    )

    injector.plan = FaultPlan.none(seed=7)  # ops fixed the GPU
    while resilient.degraded:  # next probe notices and re-mirrors
        serve(1)
    recovered = serve(6)
    print(
        f"recovered: {recovered:.0f} MQPS hybrid "
        f"(recoveries={resilient.stats.recoveries}, "
        f"mirror refreshes={resilient.stats.mirror_refreshes})"
    )

    # 7. warm restart after node failure: the runbook is three steps —
    #    (a) snapshot on a schedule; a torn write costs one snapshot,
    #        never the live tree or the older snapshots on disk;
    #    (b) when the node dies, point a fresh process at the snapshot
    #        directory and call warm_restart();
    #    (c) verify: committed (D, R) pinned, no reprofiling window,
    #        answers bit-identical to the pre-failure tree.
    controller = AdaptiveController.for_tree(tree)
    manager = SnapshotManager(workdir / "snaps", keep=4)
    manager.save(tree, split=controller.split())
    torn = SnapshotManager(
        workdir / "snaps",
        injector=FaultInjector(FaultPlan(seed=7, torn_write=1.0)),
    )
    assert torn.save(tree, split=controller.split()) is None
    probe = rng.choice(served_keys, size=4096)
    expected = tree.lookup_batch(probe)
    assert np.array_equal(tree.lookup_batch(probe), expected)
    print(
        f"snapshots: {len(manager.snapshots())} intact on disk, "
        f"1 torn write absorbed (live tree unaffected)"
    )

    # the node fails; a replacement boots from the snapshot directory
    warm = warm_restart(manager, machine=machine_m1(), fill=0.7)
    assert warm.restore.source == "snapshot"
    assert warm.controller is not None
    assert warm.controller.split() == controller.split()
    assert np.array_equal(warm.tree.lookup_batch(probe), expected)
    print(
        f"warm restart: restored from {warm.restore.path.name}, "
        f"split pinned at (D={warm.controller.depth}, "
        f"R={warm.controller.ratio}) with no reprofiling window, "
        f"probe answers bit-identical"
    )

    # 8. scale-out: the runbook for splitting a hot shard under load —
    #    (a) stand the sharded service up with per-tenant quotas and a
    #        snapshot directory (splits snapshot the parent first);
    #    (b) watch the per-shard traffic shares; when one shard takes
    #        the bulk of the load, maybe_rebalance() splits it at a
    #        traffic-aware cut while readers keep streaming;
    #    (c) verify: router epoch advanced, quotas held, answers
    #        bit-identical to the unsharded reference throughout.
    svc_keys, svc_values = (
        np.sort(served_keys), np.arange(len(served_keys), dtype=np.uint64)
    )
    svc = IndexService.build(
        svc_keys, svc_values,
        ServiceConfig(
            n_shards=2, machine=machine_m1(), hot_share=0.6,
            min_rebalance_ops=512,
            quota=QuotaConfig(tenants={"noisy": (1024, 256.0)}),
        ),
        snapshot_manager=SnapshotManager(workdir / "svc-snaps"),
    )
    reference = dict(zip(svc_keys.tolist(), svc_values.tolist()))
    hot = svc_keys[svc_keys < svc.router.cuts[0]]  # one shard's keys
    throttled = 0
    for _ in range(8):
        batch = rng.choice(hot, size=256)
        try:
            out = svc.lookup_batch(batch, tenant="noisy")
        except QuotaExceeded:
            throttled += 1
            svc.advance(1.0)  # the bucket refills; service continues
            continue
        assert all(reference[int(k)] == int(v)
                   for k, v in zip(batch, out))
        out = svc.lookup_batch(rng.choice(svc_keys, 256), tenant="quiet")
    action = svc.maybe_rebalance()
    assert svc.n_shards == 3 and svc.router.epoch == 1
    probe = rng.choice(svc_keys, size=2048)
    assert all(reference[int(k)] == int(v)
               for k, v in zip(probe, svc.lookup_batch(probe)))
    lat = svc.latency.summary()
    print(
        f"sharded service: {action}; noisy tenant throttled "
        f"{throttled}x (others fully served), p99 "
        f"{lat['p99_ns'] / 1e6:.2f} ms, answers bit-identical "
        f"across {svc.n_shards} shards"
    )


if __name__ == "__main__":
    main()
