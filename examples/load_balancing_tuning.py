#!/usr/bin/env python3
"""Tuning the CPU/GPU split on a laptop-class machine (section 5.5).

On M2 (Core i7-4800MQ + Geforce 770M) the GPU is too weak to carry the
whole inner-node traversal: the plain HB+-tree *loses* to a pure CPU
tree.  The load balancing scheme hands the top D inner levels (plus an
R fraction of level D) back to the CPU; the discovery algorithm
(Algorithm 1) finds (D, R) by sampling.

Run:  python examples/load_balancing_tuning.py
"""

import numpy as np

from repro import ImplicitHBPlusTree, LoadBalancer, machine_m2
from repro.core.pipeline import BucketStrategy, strategy_throughput_qps
from repro.workloads import generate_dataset, make_point_queries


def main() -> None:
    machine = machine_m2()
    print(f"platform: {machine.cpu.name} + {machine.gpu.name}")
    keys, values = generate_dataset(1 << 18, seed=4)
    tree = ImplicitHBPlusTree(keys, values, machine=machine)
    queries = make_point_queries(keys, 2048)

    # plain hybrid: everything inner on the GPU
    plain_costs = tree.bucket_costs(sample=queries)
    plain = strategy_throughput_qps(
        plain_costs, BucketStrategy.DOUBLE_BUFFERED, machine.bucket_size
    )
    print(f"\nplain HB+-tree      : {plain / 1e6:6.1f} MQPS "
          "(GPU does all inner levels)")

    # run the discovery algorithm
    balancer = LoadBalancer(tree)
    result = balancer.discover()
    print(f"discovery algorithm : D = {result.depth}, "
          f"R = {result.ratio:.3f} after {result.sample_count} samples")
    for d, r, tg, tc in result.samples:
        print(f"   sample D={d} R={r:.3f}: "
              f"GPU {tg / 1e3:7.1f} us vs CPU {tc / 1e3:7.1f} us")

    lb_costs = balancer.bucket_costs()
    balanced = strategy_throughput_qps(
        lb_costs, BucketStrategy.DOUBLE_BUFFERED, machine.bucket_size,
        n_buckets=96,
    )
    print(f"\nbalanced HB+-tree   : {balanced / 1e6:6.1f} MQPS "
          f"({balanced / plain:.2f}x the plain hybrid)")

    # the balanced search is functionally identical
    out = balancer.lookup_batch(queries)
    expect = tree.lookup_batch(queries)
    assert np.array_equal(out, expect)
    print("balanced search verified against the plain hybrid: identical "
          f"results on {len(queries):,} queries")


if __name__ == "__main__":
    main()
